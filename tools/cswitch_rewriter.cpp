//===- cswitch_rewriter.cpp - Command-line allocation-site rewriter -------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The command-line front end of the automated parser (paper §4.3).
//
//   cswitch_rewriter file.cpp            # rewritten source to stdout
//   cswitch_rewriter --in-place file.cpp # rewrite the file
//   cswitch_rewriter --report file.cpp   # only list candidate sites
//
//===----------------------------------------------------------------------===//

#include "rewriter/Rewriter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cswitch;

static void printReport(const RewriteResult &Result, const char *Path) {
  for (const RewriteAction &A : Result.Actions) {
    std::fprintf(stderr, "%s:%zu: %s<%s> %s — %s\n", Path, A.Line,
                 A.ContainerName.c_str(), A.ElementText.c_str(),
                 A.VariableName.c_str(),
                 A.Rewritten ? "rewritten to adaptive context"
                             : A.SkipReason.c_str());
  }
  std::fprintf(stderr, "%zu site(s) rewritten, %zu reported\n",
               Result.rewrittenCount(), Result.Actions.size());
}

int main(int Argc, char **Argv) {
  bool InPlace = false;
  bool ReportOnly = false;
  const char *Path = nullptr;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--in-place") == 0)
      InPlace = true;
    else if (std::strcmp(Argv[I], "--report") == 0)
      ReportOnly = true;
    else
      Path = Argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: cswitch_rewriter [--in-place|--report] <file>\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  RewriterOptions Options;
  Options.FileName = Path;
  Options.DryRun = ReportOnly;
  RewriteResult Result = rewriteSource(Buffer.str(), Options);
  printReport(Result, Path);
  if (ReportOnly)
    return 0;

  if (InPlace) {
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Path);
      return 1;
    }
    Out << Result.Code;
    return 0;
  }
  std::fputs(Result.Code.c_str(), stdout);
  return 0;
}
