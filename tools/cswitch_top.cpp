//===- cswitch_top.cpp - Live metrics watcher & timeline exporter ---------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Companion CLI of the Switch::serveMetrics endpoint:
//
//   cswitch_top watch  [--url http://127.0.0.1:9100] [--interval SEC]
//                      [--once]
//       Polls /metrics and renders a top-style table: one row per
//       allocation site with its monitoring counters and record/evaluate
//       p99 latencies, plus the engine totals. --once prints a single
//       sample and exits (what the CI smoke test drives).
//
//   cswitch_top export --perfetto [--url ...] [--out trace.json]
//       Fetches /trace.json (the Perfetto decision timeline: EventLog
//       events + per-site latency counters on one clock) and writes it
//       to --out (default cswitch_trace.json; `-` for stdout). Load the
//       file in ui.perfetto.dev or chrome://tracing.
//
// The HTTP client is deliberately tiny (blocking GET over a POSIX
// socket, HTTP/1.0, loopback-scale) — the endpoint it talks to is just
// as minimal by design.
//
//===----------------------------------------------------------------------===//

#include <arpa/inet.h>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <netdb.h>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

struct ParsedUrl {
  std::string Host = "127.0.0.1";
  std::string Port = "9100";
  std::string BasePath; // without trailing slash
};

/// Parses http://host:port[/base]; returns false on anything else.
bool parseUrl(const std::string &Url, ParsedUrl &Out) {
  const std::string Scheme = "http://";
  if (Url.rfind(Scheme, 0) != 0)
    return false;
  std::string Rest = Url.substr(Scheme.size());
  size_t Slash = Rest.find('/');
  std::string HostPort = Rest.substr(0, Slash);
  if (Slash != std::string::npos) {
    Out.BasePath = Rest.substr(Slash);
    while (!Out.BasePath.empty() && Out.BasePath.back() == '/')
      Out.BasePath.pop_back();
  }
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos) {
    Out.Host = HostPort;
    Out.Port = "80";
  } else {
    Out.Host = HostPort.substr(0, Colon);
    Out.Port = HostPort.substr(Colon + 1);
  }
  return !Out.Host.empty() && !Out.Port.empty();
}

/// Blocking HTTP GET; fills \p Body with the response body. Returns
/// false on connection/protocol failure (message on stderr).
bool httpGet(const ParsedUrl &Url, const std::string &Path,
             std::string &Body) {
  addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  if (int Err = ::getaddrinfo(Url.Host.c_str(), Url.Port.c_str(), &Hints,
                              &Res)) {
    std::fprintf(stderr, "cswitch_top: cannot resolve %s:%s: %s\n",
                 Url.Host.c_str(), Url.Port.c_str(), ::gai_strerror(Err));
    return false;
  }
  int Fd = -1;
  for (addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    std::fprintf(stderr, "cswitch_top: cannot connect to %s:%s\n",
                 Url.Host.c_str(), Url.Port.c_str());
    return false;
  }

  std::string Request = "GET " + Url.BasePath + Path +
                        " HTTP/1.0\r\nHost: " + Url.Host +
                        "\r\nConnection: close\r\n\r\n";
  size_t Sent = 0;
  while (Sent < Request.size()) {
    ssize_t N = ::send(Fd, Request.data() + Sent, Request.size() - Sent, 0);
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }

  std::string Response;
  char Buf[4096];
  for (ssize_t N; (N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0;)
    Response.append(Buf, static_cast<size_t>(N));
  ::close(Fd);

  size_t HeaderEnd = Response.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos) {
    std::fprintf(stderr, "cswitch_top: malformed HTTP response\n");
    return false;
  }
  if (Response.rfind("HTTP/", 0) != 0 ||
      Response.find(" 200 ") == std::string::npos ||
      Response.find(" 200 ") > Response.find("\r\n")) {
    std::fprintf(stderr, "cswitch_top: %s\n",
                 Response.substr(0, Response.find("\r\n")).c_str());
    return false;
  }
  Body = Response.substr(HeaderEnd + 4);
  return true;
}

//===----------------------------------------------------------------------===//
// OpenMetrics line parsing (just enough for the exposition we render)
//===----------------------------------------------------------------------===//

struct SiteRow {
  double Created = 0;
  double Switches = 0;
  double RecordP99 = 0;
  double EvaluateP99 = 0;
  std::string Variant;
};

struct MetricsSample {
  double Contexts = 0;
  double InstancesCreated = 0;
  double Evaluations = 0;
  double Switches = 0;
  double RecordP99 = 0;
  double EvaluateP99 = 0;
  double TopologyNodes = 1;
  double EventsDropped = 0;
  // Provenance of the decision inputs (info-metric labels): which
  // model/tuning artifacts and store the decisions trace back to.
  std::string ModelSource, ModelFingerprint, ModelFitTimestamp;
  std::string TuningSource, TuningFingerprint;
  std::string StorePath;
  std::map<unsigned, double> NodeDropped; // node index -> events dropped
  std::map<std::string, SiteRow> Sites;
};

/// Extracts the value of \p Label from an OpenMetrics label block,
/// un-escaping \" \\ and \n.
bool labelValue(const std::string &Labels, const std::string &Label,
                std::string &Out) {
  size_t Pos = 0;
  std::string Needle = Label + "=\"";
  for (;;) {
    Pos = Labels.find(Needle, Pos);
    if (Pos == std::string::npos)
      return false;
    // Match whole label names only (avoid `site` matching `website`).
    if (Pos != 0 && Labels[Pos - 1] != ',' && Labels[Pos - 1] != '{') {
      Pos += Needle.size();
      continue;
    }
    break;
  }
  Out.clear();
  for (size_t I = Pos + Needle.size(); I < Labels.size(); ++I) {
    char C = Labels[I];
    if (C == '\\' && I + 1 < Labels.size()) {
      char E = Labels[++I];
      Out += E == 'n' ? '\n' : E;
    } else if (C == '"') {
      return true;
    } else {
      Out += C;
    }
  }
  return false;
}

/// Parses one exposition line: name, label block (may be empty), value.
bool parseSampleLine(const std::string &Line, std::string &Name,
                     std::string &Labels, double &Value) {
  if (Line.empty() || Line[0] == '#')
    return false;
  size_t NameEnd = Line.find_first_of("{ ");
  if (NameEnd == std::string::npos)
    return false;
  Name = Line.substr(0, NameEnd);
  size_t ValueStart;
  if (Line[NameEnd] == '{') {
    size_t Close = Line.find('}', NameEnd);
    if (Close == std::string::npos)
      return false;
    Labels = Line.substr(NameEnd, Close - NameEnd + 1);
    ValueStart = Close + 1;
  } else {
    Labels.clear();
    ValueStart = NameEnd;
  }
  return std::sscanf(Line.c_str() + ValueStart, " %lf", &Value) == 1;
}

MetricsSample parseMetrics(const std::string &Text) {
  MetricsSample Sample;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;

    std::string Name, Labels, Site;
    double Value = 0;
    if (!parseSampleLine(Line, Name, Labels, Value))
      continue;
    bool P99 = Labels.find("quantile=\"0.99\"") != std::string::npos;
    if (Name == "cswitch_contexts")
      Sample.Contexts = Value;
    else if (Name == "cswitch_engine_instances_created_total")
      Sample.InstancesCreated = Value;
    else if (Name == "cswitch_engine_evaluations_total")
      Sample.Evaluations = Value;
    else if (Name == "cswitch_engine_switches_total")
      Sample.Switches = Value;
    else if (Name == "cswitch_record_latency_nanos" && P99)
      Sample.RecordP99 = Value;
    else if (Name == "cswitch_evaluate_latency_nanos" && P99)
      Sample.EvaluateP99 = Value;
    else if (Name == "cswitch_topology_nodes")
      Sample.TopologyNodes = Value;
    else if (Name == "cswitch_events_dropped_total")
      Sample.EventsDropped = Value;
    else if (Name == "cswitch_model_info") {
      labelValue(Labels, "source", Sample.ModelSource);
      labelValue(Labels, "fingerprint", Sample.ModelFingerprint);
      labelValue(Labels, "fit_timestamp", Sample.ModelFitTimestamp);
    } else if (Name == "cswitch_tuning_info") {
      labelValue(Labels, "source", Sample.TuningSource);
      labelValue(Labels, "fingerprint", Sample.TuningFingerprint);
    } else if (Name == "cswitch_store_info") {
      labelValue(Labels, "path", Sample.StorePath);
    } else if (Name == "cswitch_node_events_dropped_total") {
      std::string Node;
      if (labelValue(Labels, "node", Node))
        Sample.NodeDropped[static_cast<unsigned>(std::atoi(Node.c_str()))] =
            Value;
    } else if (labelValue(Labels, "site", Site)) {
      SiteRow &Row = Sample.Sites[Site];
      if (Name == "cswitch_instances_created_total")
        Row.Created = Value;
      else if (Name == "cswitch_switches_total")
        Row.Switches = Value;
      else if (Name == "cswitch_site_record_latency_nanos" && P99)
        Row.RecordP99 = Value;
      else if (Name == "cswitch_site_evaluate_latency_nanos" && P99)
        Row.EvaluateP99 = Value;
      else if (Name == "cswitch_context_variant_info")
        labelValue(Labels, "variant", Row.Variant);
    }
  }
  return Sample;
}

void renderSample(const MetricsSample &Sample, const std::string &Url) {
  std::printf("cswitch_top — %s\n", Url.c_str());
  // Provenance line: which artifacts the selection decisions trace back
  // to (absent sections mean the target has not loaded that input).
  if (!Sample.ModelSource.empty() || !Sample.TuningSource.empty() ||
      !Sample.StorePath.empty()) {
    std::printf("provenance:");
    if (!Sample.ModelSource.empty()) {
      std::printf("   model %s", Sample.ModelSource.c_str());
      if (!Sample.ModelFingerprint.empty())
        std::printf(" [%s]", Sample.ModelFingerprint.c_str());
      if (!Sample.ModelFitTimestamp.empty() &&
          Sample.ModelFitTimestamp != "0")
        std::printf(" fit@%s", Sample.ModelFitTimestamp.c_str());
    }
    if (!Sample.TuningSource.empty()) {
      std::printf("   tuning %s", Sample.TuningSource.c_str());
      if (!Sample.TuningFingerprint.empty())
        std::printf(" [%s]", Sample.TuningFingerprint.c_str());
    }
    if (!Sample.StorePath.empty())
      std::printf("   store %s", Sample.StorePath.c_str());
    std::printf("\n");
  }
  std::printf("contexts %.0f   instances %.0f   evaluations %.0f   "
              "switches %.0f   p99 record %.0f ns   p99 evaluate %.0f ns\n",
              Sample.Contexts, Sample.InstancesCreated, Sample.Evaluations,
              Sample.Switches, Sample.RecordP99, Sample.EvaluateP99);
  std::printf("nodes %.0f   events dropped %.0f", Sample.TopologyNodes,
              Sample.EventsDropped);
  if (!Sample.NodeDropped.empty()) {
    std::printf("   per-node [");
    bool First = true;
    for (const auto &[Node, Dropped] : Sample.NodeDropped) {
      std::printf("%s%u:%.0f", First ? "" : " ", Node, Dropped);
      First = false;
    }
    std::printf("]");
  }
  std::printf("\n\n");
  std::printf("%-32s %-20s %12s %9s %14s %14s\n", "SITE", "VARIANT",
              "INSTANCES", "SWITCHES", "REC P99(ns)", "EVAL P99(ns)");
  for (const auto &[Site, Row] : Sample.Sites)
    std::printf("%-32.32s %-20.20s %12.0f %9.0f %14.0f %14.0f\n",
                Site.c_str(), Row.Variant.c_str(), Row.Created, Row.Switches,
                Row.RecordP99, Row.EvaluateP99);
  std::fflush(stdout);
}

int runWatch(const std::string &Url, double IntervalSec, bool Once) {
  ParsedUrl Parsed;
  if (!parseUrl(Url, Parsed)) {
    std::fprintf(stderr, "cswitch_top: bad --url %s\n", Url.c_str());
    return 1;
  }
  for (;;) {
    std::string Body;
    if (!httpGet(Parsed, "/metrics", Body))
      return 1;
    if (!Once)
      std::printf("\033[H\033[2J"); // clear screen between samples
    renderSample(parseMetrics(Body), Url);
    if (Once)
      return 0;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(IntervalSec * 1000)));
  }
}

int runExport(const std::string &Url, const std::string &OutPath) {
  ParsedUrl Parsed;
  if (!parseUrl(Url, Parsed)) {
    std::fprintf(stderr, "cswitch_top: bad --url %s\n", Url.c_str());
    return 1;
  }
  std::string Trace;
  if (!httpGet(Parsed, "/trace.json", Trace))
    return 1;
  if (OutPath == "-") {
    std::fwrite(Trace.data(), 1, Trace.size(), stdout);
    return 0;
  }
  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cswitch_top: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  size_t Written = std::fwrite(Trace.data(), 1, Trace.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Trace.size();
  if (!Ok) {
    std::fprintf(stderr, "cswitch_top: short write to %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu bytes to %s — open in ui.perfetto.dev\n",
               Trace.size(), OutPath.c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cswitch_top watch  [--url http://127.0.0.1:9100]"
      " [--interval SEC] [--once]\n"
      "  cswitch_top export --perfetto [--url http://127.0.0.1:9100]"
      " [--out trace.json]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Mode = Argv[1];
  std::string Url = "http://127.0.0.1:9100";
  std::string OutPath = "cswitch_trace.json";
  double IntervalSec = 2.0;
  bool Once = false;
  bool Perfetto = false;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--url" && I + 1 < Argc)
      Url = Argv[++I];
    else if (Arg == "--interval" && I + 1 < Argc)
      IntervalSec = std::atof(Argv[++I]);
    else if (Arg == "--out" && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (Arg == "--once")
      Once = true;
    else if (Arg == "--perfetto")
      Perfetto = true;
    else
      return usage();
  }
  if (Mode == "watch")
    return runWatch(Url, IntervalSec < 0.1 ? 0.1 : IntervalSec, Once);
  if (Mode == "export") {
    if (!Perfetto)
      return usage();
    return runExport(Url, OutPath);
  }
  return usage();
}
