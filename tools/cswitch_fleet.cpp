//===- cswitch_fleet.cpp - Fleet store sync + recalibration CLI -----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Command-line front end of the fleet calibration service (DESIGN.md
// §12): move selection stores between replicas, aggregate a fleet's
// knowledge into one document, and recalibrate a performance model from
// a recorded trace.
//
//   cswitch_fleet pull http://127.0.0.1:9100/store --out fleet.store
//   cswitch_fleet push http://127.0.0.1:9100/store local.store
//   cswitch_fleet aggregate URL... --out fleet.store [--decay 0.5]
//   cswitch_fleet distribute fleet.store URL...
//   cswitch_fleet recalibrate trace.bin --model model.txt
//       --out store.model [--holdout 4] [--epsilon 0.05]
//   cswitch_fleet artifact-info store.model
//
// Exit status: 0 on success (for recalibrate: candidate promoted), 1 on
// any failure (for recalibrate: candidate rejected by the held-out
// gate), 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetSync.h"
#include "fleet/ModelArtifact.h"
#include "fleet/Recalibrator.h"
#include "model/DefaultModel.h"
#include "store/SelectionStore.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cswitch;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: cswitch_fleet <command> ...\n"
      "  pull <url> --out <file>            fetch a peer's store\n"
      "  push <url> <file>                  push a store document\n"
      "  aggregate <url>... --out <file>    pull peers, flock-merge into "
      "<file>\n"
      "      [--decay F]                    remote decay factor "
      "(default 0.5)\n"
      "  distribute <file> <url>...         push one document to many "
      "peers\n"
      "  recalibrate <trace> --out <file>   re-fit the model from a "
      "recorded trace\n"
      "      [--model <file>]               incumbent (default: "
      "built-in)\n"
      "      [--holdout N] [--epsilon E]    gate knobs\n"
      "  artifact-info <file>               describe a cswitch-model-v2 "
      "artifact\n"
      "common: [--timeout MS] [--retries N]\n");
  return 2;
}

struct Args {
  std::vector<std::string> Positional;
  std::string Out;
  std::string Model;
  double Decay = 0.5;
  uint64_t Holdout = 4;
  double Epsilon = 0.05;
  fleet::FleetSyncOptions Sync;
};

bool parseArgs(int Argc, char **Argv, Args &Out) {
  for (int I = 2; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](std::string &Slot) {
      if (I + 1 == Argc)
        return false;
      Slot = Argv[++I];
      return true;
    };
    std::string V;
    if (Arg == "--out") {
      if (!Value(Out.Out))
        return false;
    } else if (Arg == "--model") {
      if (!Value(Out.Model))
        return false;
    } else if (Arg == "--decay") {
      if (!Value(V))
        return false;
      Out.Decay = std::atof(V.c_str());
    } else if (Arg == "--holdout") {
      if (!Value(V))
        return false;
      Out.Holdout = std::strtoull(V.c_str(), nullptr, 10);
    } else if (Arg == "--epsilon") {
      if (!Value(V))
        return false;
      Out.Epsilon = std::atof(V.c_str());
    } else if (Arg == "--timeout") {
      if (!Value(V))
        return false;
      Out.Sync.RequestTimeout = std::chrono::milliseconds(std::atol(V.c_str()));
    } else if (Arg == "--retries") {
      if (!Value(V))
        return false;
      Out.Sync.MaxRetries = static_cast<unsigned>(std::atol(V.c_str()));
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Out.Positional.push_back(Arg);
    }
  }
  return true;
}

int cmdPull(const Args &A) {
  if (A.Positional.size() != 1 || A.Out.empty())
    return usage();
  std::vector<StoreSite> Sites;
  std::string Error;
  if (!fleet::pullStore(A.Positional[0], Sites, A.Sync, &Error)) {
    std::fprintf(stderr, "error: pull failed: %s\n", Error.c_str());
    return 1;
  }
  if (!writeStoreToFile(A.Out, Sites, &Error)) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", A.Out.c_str(),
                 Error.c_str());
    return 1;
  }
  std::printf("pulled %zu sites from %s -> %s\n", Sites.size(),
              A.Positional[0].c_str(), A.Out.c_str());
  return 0;
}

int cmdPush(const Args &A) {
  if (A.Positional.size() != 2)
    return usage();
  std::vector<StoreSite> Sites;
  std::string Error;
  if (!readStoreFromFile(A.Positional[1], Sites, &Error)) {
    std::fprintf(stderr, "error: cannot read %s: %s\n",
                 A.Positional[1].c_str(), Error.c_str());
    return 1;
  }
  if (!fleet::pushStore(A.Positional[0], Sites, A.Sync, &Error)) {
    std::fprintf(stderr, "error: push failed: %s\n", Error.c_str());
    return 1;
  }
  std::printf("pushed %zu sites to %s\n", Sites.size(),
              A.Positional[0].c_str());
  return 0;
}

int cmdAggregate(const Args &A) {
  if (A.Positional.empty() || A.Out.empty())
    return usage();
  // The aggregate document is built through the same flock-merge the
  // engine uses, so decay and decision arbitration match exactly what a
  // replica would compute merging the peers one by one.
  SelectionStore Store(StoreOptions{}.decayFactor(A.Decay));
  Store.load(A.Out); // Missing file = start empty (normal).
  size_t Failures = 0;
  for (const std::string &Url : A.Positional) {
    std::vector<StoreSite> Sites;
    std::string Error;
    if (!fleet::pullStore(Url, Sites, A.Sync, &Error)) {
      std::fprintf(stderr, "warning: skipping %s: %s\n", Url.c_str(),
                   Error.c_str());
      ++Failures;
      continue;
    }
    uint64_t Merged = 0;
    if (!Store.mergeRemote(A.Out, Sites, &Error, &Merged)) {
      std::fprintf(stderr, "error: merge into %s failed: %s\n",
                   A.Out.c_str(), Error.c_str());
      return 1;
    }
    std::printf("merged %llu sites from %s\n",
                static_cast<unsigned long long>(Merged), Url.c_str());
  }
  if (Failures == A.Positional.size()) {
    std::fprintf(stderr, "error: every peer failed\n");
    return 1;
  }
  std::printf("aggregate: %zu sites in %s\n", Store.siteCount(),
              A.Out.c_str());
  return 0;
}

int cmdDistribute(const Args &A) {
  if (A.Positional.size() < 2)
    return usage();
  std::vector<StoreSite> Sites;
  std::string Error;
  if (!readStoreFromFile(A.Positional[0], Sites, &Error)) {
    std::fprintf(stderr, "error: cannot read %s: %s\n",
                 A.Positional[0].c_str(), Error.c_str());
    return 1;
  }
  size_t Failures = 0;
  for (size_t I = 1; I != A.Positional.size(); ++I) {
    if (!fleet::pushStore(A.Positional[I], Sites, A.Sync, &Error)) {
      std::fprintf(stderr, "warning: push to %s failed: %s\n",
                   A.Positional[I].c_str(), Error.c_str());
      ++Failures;
      continue;
    }
    std::printf("pushed %zu sites to %s\n", Sites.size(),
                A.Positional[I].c_str());
  }
  return Failures == A.Positional.size() - 1 ? 1 : 0;
}

int cmdRecalibrate(const Args &A) {
  if (A.Positional.size() != 1 || A.Out.empty())
    return usage();
  auto Incumbent = std::make_shared<PerformanceModel>();
  if (!A.Model.empty()) {
    std::string Error;
    if (!Incumbent->loadFromFile(A.Model, &Error)) {
      std::fprintf(stderr, "error: cannot load model %s: %s\n",
                   A.Model.c_str(), Error.c_str());
      return 1;
    }
    augmentConcurrentCoverage(*Incumbent);
  } else {
    *Incumbent = defaultPerformanceModel();
  }
  std::string Error;
  fleet::RecalibrationResult Result = fleet::recalibrateFromTraceFile(
      A.Positional[0], Incumbent, A.Out,
      fleet::RecalibrationOptions{}
          .holdoutModulus(A.Holdout)
          .promotionEpsilon(A.Epsilon),
      &Error);
  std::printf("recalibrate: %zu cells, %zu variants re-fitted, "
              "incumbent residual %.4f, candidate residual %.4f\n",
              Result.CellsMeasured, Result.VariantsRecalibrated,
              Result.IncumbentResidual, Result.CandidateResidual);
  if (!Result.Promoted) {
    std::fprintf(stderr, "rejected: %s%s%s\n", Result.Reason.c_str(),
                 Error.empty() ? "" : ": ", Error.c_str());
    return 1;
  }
  std::printf("promoted -> %s (fingerprint %s)\n", A.Out.c_str(),
              Result.Artifact.HostFingerprint.c_str());
  return 0;
}

int cmdArtifactInfo(const Args &A) {
  if (A.Positional.size() != 1)
    return usage();
  fleet::ModelArtifact Artifact;
  std::string Error;
  if (!fleet::readModelArtifactFromFile(A.Positional[0], Artifact, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", A.Positional[0].c_str(),
                 Error.c_str());
    return 1;
  }
  std::printf("cswitch-model-v2 artifact %s\n", A.Positional[0].c_str());
  std::printf("  host fingerprint : %s\n", Artifact.HostFingerprint.c_str());
  std::printf("  fit timestamp    : %llu\n",
              static_cast<unsigned long long>(Artifact.FitTimestamp));
  std::printf("  holdout residual : %.6f\n", Artifact.HoldoutResidual);
  std::printf("  rows             : %zu\n", Artifact.Rows.size());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Command = Argv[1];
  Args A;
  if (!parseArgs(Argc, Argv, A))
    return usage();
  if (Command == "pull")
    return cmdPull(A);
  if (Command == "push")
    return cmdPush(A);
  if (Command == "aggregate")
    return cmdAggregate(A);
  if (Command == "distribute")
    return cmdDistribute(A);
  if (Command == "recalibrate")
    return cmdRecalibrate(A);
  if (Command == "artifact-info")
    return cmdArtifactInfo(A);
  std::fprintf(stderr, "error: unknown command '%s'\n", Command.c_str());
  return usage();
}
