//===- cswitch_explain.cpp - Decision provenance explainer ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Companion CLI of the decision provenance ledger (DESIGN.md §14):
//
//   cswitch_explain live [--url http://127.0.0.1:9100]
//       Fetches /explain.json and prints a one-row-per-site summary:
//       abstraction, selection rule, lifetime decisions, and the latest
//       retained outcome with its margin.
//
//   cswitch_explain dump [--url ...] [--out explain.json]
//       Fetches the raw cswitch-explain-v1 document and writes it to
//       --out (default cswitch_explain.json; `-` for stdout), after
//       validating it parses.
//
//   cswitch_explain why <site> [--url ...]
//       The full story of one allocation site: every retained decision
//       with its adaptive-gate evidence, thread estimate, criterion
//       thresholds, and a ranked per-candidate cost table (per-dimension
//       totals, pre-fold components, criterion ratios, margins).
//
// The target process must run with CSWITCH_EXPLAIN=1 (or call
// obs::ProvenanceRegistry::setEnabled(true)) for the ledger to contain
// records; the endpoint itself is always served.
//
//===----------------------------------------------------------------------===//

#include "obs/Provenance.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

using namespace cswitch;

namespace {

struct ParsedUrl {
  std::string Host = "127.0.0.1";
  std::string Port = "9100";
  std::string BasePath; // without trailing slash
};

/// Parses http://host:port[/base]; returns false on anything else.
bool parseUrl(const std::string &Url, ParsedUrl &Out) {
  const std::string Scheme = "http://";
  if (Url.rfind(Scheme, 0) != 0)
    return false;
  std::string Rest = Url.substr(Scheme.size());
  size_t Slash = Rest.find('/');
  std::string HostPort = Rest.substr(0, Slash);
  if (Slash != std::string::npos) {
    Out.BasePath = Rest.substr(Slash);
    while (!Out.BasePath.empty() && Out.BasePath.back() == '/')
      Out.BasePath.pop_back();
  }
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos) {
    Out.Host = HostPort;
    Out.Port = "80";
  } else {
    Out.Host = HostPort.substr(0, Colon);
    Out.Port = HostPort.substr(Colon + 1);
  }
  return !Out.Host.empty() && !Out.Port.empty();
}

/// Blocking HTTP GET; fills \p Body with the response body. Returns
/// false on connection/protocol failure (message on stderr).
bool httpGet(const ParsedUrl &Url, const std::string &Path,
             std::string &Body) {
  addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  if (int Err = ::getaddrinfo(Url.Host.c_str(), Url.Port.c_str(), &Hints,
                              &Res)) {
    std::fprintf(stderr, "cswitch_explain: cannot resolve %s:%s: %s\n",
                 Url.Host.c_str(), Url.Port.c_str(), ::gai_strerror(Err));
    return false;
  }
  int Fd = -1;
  for (addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    std::fprintf(stderr, "cswitch_explain: cannot connect to %s:%s\n",
                 Url.Host.c_str(), Url.Port.c_str());
    return false;
  }

  std::string Request = "GET " + Url.BasePath + Path +
                        " HTTP/1.0\r\nHost: " + Url.Host +
                        "\r\nConnection: close\r\n\r\n";
  size_t Sent = 0;
  while (Sent < Request.size()) {
    ssize_t N = ::send(Fd, Request.data() + Sent, Request.size() - Sent, 0);
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }

  std::string Response;
  char Buf[4096];
  for (ssize_t N; (N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0;)
    Response.append(Buf, static_cast<size_t>(N));
  ::close(Fd);

  size_t HeaderEnd = Response.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos) {
    std::fprintf(stderr, "cswitch_explain: malformed HTTP response\n");
    return false;
  }
  if (Response.rfind("HTTP/", 0) != 0 ||
      Response.find(" 200 ") == std::string::npos ||
      Response.find(" 200 ") > Response.find("\r\n")) {
    std::fprintf(stderr, "cswitch_explain: %s\n",
                 Response.substr(0, Response.find("\r\n")).c_str());
    return false;
  }
  Body = Response.substr(HeaderEnd + 4);
  return true;
}

/// Fetches and parses /explain.json from \p Url. Returns false (with a
/// diagnostic) on fetch or decode failure. \p Raw receives the
/// untouched document for `dump`.
bool fetchExplain(const std::string &Url, obs::ExplainDocument &Doc,
                  std::string *Raw = nullptr) {
  ParsedUrl Parsed;
  if (!parseUrl(Url, Parsed)) {
    std::fprintf(stderr, "cswitch_explain: bad --url %s\n", Url.c_str());
    return false;
  }
  std::string Body;
  if (!httpGet(Parsed, "/explain.json", Body))
    return false;
  std::string Error;
  if (!obs::parseExplainDocument(Body, Doc, &Error)) {
    std::fprintf(stderr, "cswitch_explain: bad explain document: %s\n",
                 Error.c_str());
    return false;
  }
  if (Raw)
    *Raw = std::move(Body);
  return true;
}

/// Candidate display name: the ledger's variant list by index, else the
/// bare index.
std::string variantName(const obs::SiteLedgerSnapshot &Site, int Index) {
  if (Index < 0)
    return "-";
  if (static_cast<size_t>(Index) < Site.Variants.size())
    return Site.Variants[static_cast<size_t>(Index)];
  std::string Name("#");
  Name += std::to_string(Index);
  return Name;
}

void printProvenance(const obs::ExplainDocument &Doc) {
  const obs::ExplainProvenance &P = Doc.Provenance;
  std::printf("ledger: %s\n", Doc.Enabled ? "enabled" : "disabled");
  if (P.ModelInstalls > 0) {
    std::printf("model:  %s", P.ModelSource.c_str());
    if (!P.ModelFingerprint.empty())
      std::printf(" [%s]", P.ModelFingerprint.c_str());
    if (P.ModelFitTimestamp != 0)
      std::printf(" fit@%llu",
                  static_cast<unsigned long long>(P.ModelFitTimestamp));
    if (P.ModelHoldoutResidual != 0.0)
      std::printf(" holdout %.4g", P.ModelHoldoutResidual);
    std::printf("\n");
  }
  if (P.TuningLoads > 0) {
    std::printf("tuning: %s", P.TuningSource.c_str());
    if (!P.TuningFingerprint.empty())
      std::printf(" [%s]", P.TuningFingerprint.c_str());
    if (!P.TuningCorpusDigest.empty())
      std::printf(" corpus %s", P.TuningCorpusDigest.c_str());
    std::printf("\n");
  }
  if (!P.StorePath.empty())
    std::printf("store:  %s (loads %llu, warm starts %llu)\n",
                P.StorePath.c_str(),
                static_cast<unsigned long long>(P.StoreLoads),
                static_cast<unsigned long long>(P.StoreWarmStarts));
}

int runLive(const std::string &Url) {
  obs::ExplainDocument Doc;
  if (!fetchExplain(Url, Doc))
    return 1;
  printProvenance(Doc);
  std::printf("\n%-32s %-6s %-24s %9s  %-18s %10s\n", "SITE", "KIND", "RULE",
              "DECISIONS", "LAST OUTCOME", "MARGIN");
  for (const obs::SiteLedgerSnapshot &Site : Doc.Sites) {
    const char *Outcome = "-";
    double Margin = 0.0;
    if (!Site.Records.empty()) {
      const obs::DecisionRecord &Last = Site.Records.back();
      Outcome = obs::decisionOutcomeName(Last.Outcome);
      Margin = Last.Margin;
    }
    std::printf("%-32.32s %-6.6s %-24.24s %9llu  %-18s %10.4f\n",
                Site.Name.c_str(), Site.Abstraction.c_str(),
                Site.Rule.c_str(),
                static_cast<unsigned long long>(Site.Decisions), Outcome,
                Margin);
  }
  if (Doc.Sites.empty())
    std::printf("(no recorded decisions%s)\n",
                Doc.Enabled ? "" : " — run the target with CSWITCH_EXPLAIN=1");
  return 0;
}

int runDump(const std::string &Url, const std::string &OutPath) {
  obs::ExplainDocument Doc;
  std::string Raw;
  if (!fetchExplain(Url, Doc, &Raw))
    return 1;
  if (OutPath == "-") {
    std::fwrite(Raw.data(), 1, Raw.size(), stdout);
    return 0;
  }
  std::FILE *F = std::fopen(OutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cswitch_explain: cannot write %s\n",
                 OutPath.c_str());
    return 1;
  }
  size_t Written = std::fwrite(Raw.data(), 1, Raw.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Raw.size();
  if (!Ok) {
    std::fprintf(stderr, "cswitch_explain: short write to %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu bytes (%zu sites) to %s\n", Raw.size(),
               Doc.Sites.size(), OutPath.c_str());
  return 0;
}

void printRecord(const obs::SiteLedgerSnapshot &Site,
                 const obs::DecisionRecord &R) {
  std::printf("decision #%llu — %s (round %u)\n",
              static_cast<unsigned long long>(R.Sequence),
              obs::decisionOutcomeName(R.Outcome), R.Round);
  std::printf("  current %s -> chosen %s   margin %.4f   keep streak %u\n",
              variantName(Site, R.CurrentVariant).c_str(),
              variantName(Site, R.ChosenVariant).c_str(), R.Margin,
              R.ConsecutiveKeeps);
  std::printf("  threads %.2f%s   adaptive: threshold %.0f, sizes "
              "[%.0f, %.0f]%s%s\n",
              R.ContendedThreads,
              R.ContentionFolded ? " (contention folded into time)" : "",
              R.AdaptiveThreshold, R.MinMaxSize, R.MaxMaxSize,
              R.AdaptiveStraddles ? ", straddles" : "",
              R.AdaptiveWide ? ", wide" : "");
  if (R.Outcome == obs::DecisionOutcome::WarmStartSkipped) {
    std::printf("  (seeded from the selection store; no analysis ran)\n\n");
    return;
  }
  std::printf("  criteria:");
  for (size_t C = 0; C != R.NumCriteria; ++C)
    std::printf(" %s<=%.3g",
                obs::explainDimensionName(R.Criteria[C].Dimension),
                R.Criteria[C].Threshold);
  std::printf("\n");

  // Rank candidates by their first-criterion total (the rule's primary
  // axis), eligible candidates first.
  size_t Dim = R.NumCriteria != 0 ? R.Criteria[0].Dimension : 0;
  if (Dim >= obs::ExplainNumDimensions)
    Dim = 0;
  std::vector<size_t> Order;
  for (size_t I = 0; I != R.NumCandidates; ++I)
    Order.push_back(I);
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const obs::CandidateExplanation &CA = R.Candidates[A];
    const obs::CandidateExplanation &CB = R.Candidates[B];
    if (CA.Eligible != CB.Eligible)
      return CA.Eligible;
    return CA.Total[Dim] < CB.Total[Dim];
  });
  std::printf("  %-20s %-9s %12s %12s %12s %12s %8s\n", "CANDIDATE", "STATE",
              "TIME", "ALLOC", "ENERGY", "CONTENTION", "RATIO");
  for (size_t I : Order) {
    const obs::CandidateExplanation &C = R.Candidates[I];
    const char *State = !C.Covered    ? "uncov"
                        : !C.Eligible ? "inelig"
                        : C.Qualified ? "QUALIF"
                                      : "elig";
    char Marker = static_cast<int16_t>(I) == R.ChosenVariant    ? '*'
                  : static_cast<int16_t>(I) == R.CurrentVariant ? '=' : ' ';
    std::printf(" %c%-20.20s %-9s %12.4g %12.4g %12.4g %12.4g", Marker,
                variantName(Site, static_cast<int>(I)).c_str(), State,
                C.Total[0], C.Total[1], C.Total[2], C.Total[3]);
    if (R.NumCriteria != 0 && C.Ratio[0] >= 0.0)
      std::printf(" %8.4f", C.Ratio[0]);
    else
      std::printf(" %8s", "-");
    std::printf("\n");
    if (R.ContentionFolded && C.Eligible)
      std::printf("  %-20s %-9s %12.4g %12s %12s %12.4g (pre-fold)\n", "",
                  "", C.PreFold[0], "", "", C.PreFold[3]);
  }
  std::printf("  (* chosen, = current)\n\n");
}

int runWhy(const std::string &Url, const std::string &SiteName) {
  obs::ExplainDocument Doc;
  if (!fetchExplain(Url, Doc))
    return 1;
  const obs::SiteLedgerSnapshot *Site = nullptr;
  for (const obs::SiteLedgerSnapshot &S : Doc.Sites)
    if (S.Name == SiteName)
      Site = &S;
  if (!Site) {
    std::fprintf(stderr,
                 "cswitch_explain: no ledger for site '%s' (%zu sites "
                 "recorded%s)\n",
                 SiteName.c_str(), Doc.Sites.size(),
                 Doc.Enabled ? "" : "; ledger disabled — set "
                                    "CSWITCH_EXPLAIN=1 on the target");
    return 1;
  }
  printProvenance(Doc);
  std::printf("\nsite %s (%s, rule %s) — %llu decisions, %zu retained\n\n",
              Site->Name.c_str(), Site->Abstraction.c_str(),
              Site->Rule.c_str(),
              static_cast<unsigned long long>(Site->Decisions),
              Site->Records.size());
  for (const obs::DecisionRecord &R : Site->Records)
    printRecord(*Site, R);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cswitch_explain live [--url http://127.0.0.1:9100]\n"
      "  cswitch_explain dump [--url ...] [--out explain.json]\n"
      "  cswitch_explain why <site> [--url ...]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Mode = Argv[1];
  std::string Url = "http://127.0.0.1:9100";
  std::string OutPath = "cswitch_explain.json";
  std::string SiteName;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--url" && I + 1 < Argc)
      Url = Argv[++I];
    else if (Arg == "--out" && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!Arg.empty() && Arg[0] != '-' && SiteName.empty())
      SiteName = Arg;
    else
      return usage();
  }
  if (Mode == "live")
    return runLive(Url);
  if (Mode == "dump")
    return runDump(Url, OutPath);
  if (Mode == "why") {
    if (SiteName.empty())
      return usage();
    return runWhy(Url, SiteName);
  }
  return usage();
}
