//===- cswitch_tune.cpp - Offline autotuner CLI ---------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Front-end of the src/tuner/ subsystem (DESIGN.md §13): search tuned
// selection-machinery parameters over a recorded trace corpus, inspect
// the resulting `cswitch-tuning-v1` artifacts, and exercise the runtime
// load path.
//
//   cswitch_tune tune --out tuned.cstune trace1.optrace trace2.optrace
//   cswitch_tune tune --population 8 --generations 4 --out t.cstune t.optrace
//   cswitch_tune info tuned.cstune             # provenance + parameters
//   cswitch_tune apply tuned.cstune            # validate the runtime path
//   cswitch_tune diff tuned.cstune             # vs paper defaults
//   cswitch_tune diff old.cstune new.cstune    # artifact vs artifact
//
// A trace path of - reads the binary trace from stdin.
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "model/DefaultModel.h"
#include "support/MetricsExport.h"
#include "tuner/Tuner.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace cswitch;
using namespace cswitch::tuner;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: cswitch_tune <subcommand> [options]\n"
      "\n"
      "subcommands:\n"
      "  tune   search tuned parameters over a trace corpus\n"
      "  info   describe a cswitch-tuning-v1 artifact\n"
      "  apply  load an artifact through the runtime path (exit 0 = ok)\n"
      "  diff   compare an artifact against the paper defaults (or a\n"
      "         second artifact)\n"
      "\n"
      "tune options:\n"
      "  --out <file>          artifact to write (required)\n"
      "  --model <file>        performance model (default: built-in)\n"
      "  --seed <n>            search seed (default 0x1905)\n"
      "  --population <n>      genomes per generation (default 24)\n"
      "  --generations <n>     maximum generations (default 12)\n"
      "  --threads <n>         evaluation workers; any value gives\n"
      "                        bit-identical results (default 1)\n"
      "  --time-weight <w>     fitness weight of the time ratio (1.0)\n"
      "  --alloc-weight <w>    fitness weight of the alloc ratio (0.25)\n"
      "  --switch-penalty <w>  penalty per switch per instance (0)\n"
      "  --json <file|->       machine-readable search report\n"
      "  <trace ...>           recorded .optrace corpus (- = stdin)\n");
  return 2;
}

bool loadTraceArg(const std::string &Path, OpTrace &Out) {
  std::string Error;
  bool Ok = Path == "-" ? readTrace(std::cin, Out, &Error)
                        : readTraceFromFile(Path, Out, &Error);
  if (!Ok)
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Error.empty() ? "cannot read trace" : Error.c_str());
  return Ok;
}

bool emitOutput(const std::string &Path, const std::string &Content) {
  if (Path == "-") {
    std::fwrite(Content.data(), 1, Content.size(), stdout);
    return true;
  }
  if (!writeTextFile(Path, Content)) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  std::printf("[wrote %s]\n", Path.c_str());
  return true;
}

bool loadArtifactArg(const std::string &Path, TuningArtifact &Out) {
  std::string Error;
  if (!readTuningArtifactFromFile(Path, Out, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }
  return true;
}

/// Renders a parameter value with integer parameters shown as integers.
std::string formatValue(const ParamInfo &Info, double Value) {
  char Buf[48];
  if (Info.Integer)
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(Value));
  else
    std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return Buf;
}

std::string tuneReportJson(const TunerResult &Result,
                           const TuningArtifact &Artifact) {
  std::ostringstream OS;
  char Buf[48];
  auto Num = [&](double V) {
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    return std::string(Buf);
  };
  OS << "{\n  \"schema\": \"cswitch-tune-v1\",\n"
     << "  \"seed\": " << Artifact.Seed
     << ",\n  \"population\": " << Artifact.Population
     << ",\n  \"generations_run\": " << Result.GenerationsRun
     << ",\n  \"evaluations\": " << Result.Evaluations
     << ",\n  \"corpus_digest\": \"" << Artifact.CorpusDigest
     << "\",\n  \"baseline_fitness\": " << Num(Result.BaselineFitness)
     << ",\n  \"best_fitness\": " << Num(Result.BestFitness)
     << ",\n  \"history\": [";
  for (size_t I = 0; I != Result.History.size(); ++I)
    OS << (I ? ", " : "") << Num(Result.History[I]);
  OS << "],\n  \"parameters\": {";
  const auto &Space = parameterSpace();
  for (size_t I = 0; I != Space.size(); ++I)
    OS << (I ? ", " : "") << "\"" << Space[I].Name
       << "\": " << Num(Result.Best.get(Space[I].Id));
  OS << "}\n}\n";
  return OS.str();
}

int runTune(const std::vector<std::string> &Args) {
  TunerOptions Options;
  std::string ModelPath, OutPath, JsonPath;
  std::vector<std::string> TracePaths;
  for (size_t I = 0; I != Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto Next = [&]() -> const std::string * {
      return I + 1 != Args.size() ? &Args[++I] : nullptr;
    };
    const std::string *V = nullptr;
    if (Arg == "--out") {
      if (!(V = Next()))
        return usage();
      OutPath = *V;
    } else if (Arg == "--model") {
      if (!(V = Next()))
        return usage();
      ModelPath = *V;
    } else if (Arg == "--json") {
      if (!(V = Next()))
        return usage();
      JsonPath = *V;
    } else if (Arg == "--seed") {
      if (!(V = Next()))
        return usage();
      Options.Seed = std::stoull(*V, nullptr, 0);
    } else if (Arg == "--population") {
      if (!(V = Next()))
        return usage();
      Options.Population = static_cast<unsigned>(std::stoul(*V));
    } else if (Arg == "--generations") {
      if (!(V = Next()))
        return usage();
      Options.Generations = static_cast<unsigned>(std::stoul(*V));
    } else if (Arg == "--threads") {
      if (!(V = Next()))
        return usage();
      Options.Threads = static_cast<unsigned>(std::stoul(*V));
    } else if (Arg == "--time-weight") {
      if (!(V = Next()))
        return usage();
      Options.TimeWeight = std::stod(*V);
    } else if (Arg == "--alloc-weight") {
      if (!(V = Next()))
        return usage();
      Options.AllocWeight = std::stod(*V);
    } else if (Arg == "--switch-penalty") {
      if (!(V = Next()))
        return usage();
      Options.SwitchPenalty = std::stod(*V);
    } else {
      TracePaths.push_back(Arg);
    }
  }
  if (OutPath.empty() || TracePaths.empty())
    return usage();

  auto Model = std::make_shared<PerformanceModel>();
  if (!ModelPath.empty()) {
    if (!Model->loadFromFile(ModelPath)) {
      std::fprintf(stderr, "error: cannot load model %s\n",
                   ModelPath.c_str());
      return 1;
    }
  } else {
    *Model = defaultPerformanceModel();
  }

  Tuner Search(std::move(Model), Options);
  for (const std::string &Path : TracePaths) {
    OpTrace Trace;
    if (!loadTraceArg(Path, Trace))
      return 1;
    Search.addTrace(std::move(Trace));
  }

  std::printf("tuning over %zu trace(s), corpus %s\n", Search.traceCount(),
              Search.corpusDigest().c_str());
  TunerResult Result = Search.run();
  TuningArtifact Artifact = Search.makeArtifact(Result);

  std::printf("search: %u generation(s), %llu evaluation(s)\n",
              Result.GenerationsRun,
              static_cast<unsigned long long>(Result.Evaluations));
  std::printf("fitness: baseline %.6f -> best %.6f (%.2f%% better)\n",
              Result.BaselineFitness, Result.BestFitness,
              Result.BaselineFitness > 0.0
                  ? (1.0 - Result.BestFitness / Result.BaselineFitness) *
                        100.0
                  : 0.0);
  ParameterSet Defaults;
  for (const ParamInfo &Info : parameterSpace()) {
    double Tuned = Result.Best.get(Info.Id);
    if (Tuned != Defaults.get(Info.Id))
      std::printf("  %-26s %s (default %s)\n", Info.Name,
                  formatValue(Info, Tuned).c_str(),
                  formatValue(Info, Info.Default).c_str());
  }

  std::string Error;
  if (!writeTuningArtifactToFile(OutPath, Artifact, &Error)) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", OutPath.c_str(),
                 Error.c_str());
    return 1;
  }
  std::printf("[wrote %s]\n", OutPath.c_str());

  if (!JsonPath.empty() &&
      !emitOutput(JsonPath, tuneReportJson(Result, Artifact)))
    return 1;
  return 0;
}

int runInfo(const std::vector<std::string> &Args) {
  if (Args.size() != 1)
    return usage();
  TuningArtifact Artifact;
  if (!loadArtifactArg(Args[0], Artifact))
    return 1;
  std::printf("artifact: %s (cswitch-tuning-v1)\n", Args[0].c_str());
  std::printf("  host: %s\n", Artifact.HostFingerprint.c_str());
  std::printf("  corpus: %s\n", Artifact.CorpusDigest.c_str());
  std::printf("  search: seed 0x%llx, %llu generation(s), population "
              "%llu, %llu evaluation(s)\n",
              static_cast<unsigned long long>(Artifact.Seed),
              static_cast<unsigned long long>(Artifact.Generations),
              static_cast<unsigned long long>(Artifact.Population),
              static_cast<unsigned long long>(Artifact.Evaluations));
  std::printf("  objective: time %.3g, alloc %.3g\n", Artifact.TimeWeight,
              Artifact.AllocWeight);
  std::printf("  fitness: baseline %.6f -> winner %.6f\n",
              Artifact.BaselineFitness, Artifact.WinnerFitness);
  for (const TuningArtifact::Row &Row : Artifact.Rows) {
    const ParamInfo *Info = findParam(Row.Name);
    std::printf("  %-26s %s\n", Row.Name.c_str(),
                Info ? formatValue(*Info, Row.Value).c_str() : "?");
  }
  return 0;
}

int runApply(const std::vector<std::string> &Args) {
  if (Args.size() != 1)
    return usage();
  std::string Error;
  if (!Switch::applyTuning(Args[0], &Error))
    return 1;
  TuningStats Stats = Switch::telemetry().Tuning;
  std::printf("applied %s: %llu parameter(s) installed\n", Args[0].c_str(),
              static_cast<unsigned long long>(Stats.Parameters));
  ContextOptions Defaults = Switch::defaultContextOptions();
  std::printf("  context defaults: window %zu, finished ratio %.3g, "
              "wide-range %.3g, warm-window %.3g\n",
              Defaults.WindowSize, Defaults.FinishedRatio,
              Defaults.WideRangeFactor, Defaults.WarmWindowFactor);
  AdaptiveThresholds T = AdaptiveConfig::global().thresholds();
  std::printf("  adaptive thresholds: list %zu, set %zu, map %zu\n", T.List,
              T.Set, T.Map);
  return 0;
}

int runDiff(const std::vector<std::string> &Args) {
  if (Args.empty() || Args.size() > 2)
    return usage();
  TuningArtifact After;
  if (!loadArtifactArg(Args.back(), After))
    return 1;
  ParameterSet BaseParams;
  std::string BaseName = "paper defaults";
  if (Args.size() == 2) {
    TuningArtifact Before;
    if (!loadArtifactArg(Args[0], Before))
      return 1;
    std::string Error;
    if (!paramsFromArtifact(Before, BaseParams, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Args[0].c_str(),
                   Error.c_str());
      return 1;
    }
    BaseName = Args[0];
  }
  ParameterSet AfterParams;
  std::string Error;
  if (!paramsFromArtifact(After, AfterParams, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Args.back().c_str(),
                 Error.c_str());
    return 1;
  }
  std::printf("%s -> %s\n", BaseName.c_str(), Args.back().c_str());
  size_t Changed = 0;
  for (const ParamInfo &Info : parameterSpace()) {
    double From = BaseParams.get(Info.Id);
    double To = AfterParams.get(Info.Id);
    if (From == To)
      continue;
    ++Changed;
    std::printf("  %-26s %s -> %s\n", Info.Name,
                formatValue(Info, From).c_str(),
                formatValue(Info, To).c_str());
  }
  if (!Changed)
    std::printf("  (no differences)\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Subcommand = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);
  if (Subcommand == "tune")
    return runTune(Args);
  if (Subcommand == "info")
    return runInfo(Args);
  if (Subcommand == "apply")
    return runApply(Args);
  if (Subcommand == "diff")
    return runDiff(Args);
  return usage();
}
