//===- cswitch_replay.cpp - Trace replay & what-if CLI --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Front-end of the src/replay/ subsystem: inspect recorded operation
// traces, re-execute them deterministically, and sweep selection
// policies over them. Traces are recorded by the app harness
// (`table5_dacapo --record out.optrace`).
//
//   cswitch_replay info trace.optrace                 # describe a trace
//   cswitch_replay info --profile-trace - trace.optrace | cswitch_advisor -
//   cswitch_replay replay trace.optrace               # engine-mode replay
//   cswitch_replay replay --mode fixed --list arraylist trace.optrace
//   cswitch_replay replay --decision-log log.txt --seed 7 trace.optrace
//   cswitch_replay simulate trace1.optrace trace2.optrace
//
// Every subcommand accepts `-` as a trace path to read the binary trace
// from stdin.
//
//===----------------------------------------------------------------------===//

#include "model/DefaultModel.h"
#include "replay/PolicySimulator.h"
#include "replay/Replayer.h"
#include "support/MetricsExport.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace cswitch;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: cswitch_replay <subcommand> [options] <trace ...>\n"
      "\n"
      "subcommands:\n"
      "  info      describe a trace (sites, ops, recorder loss)\n"
      "  replay    re-execute a trace deterministically\n"
      "  simulate  sweep selection policies over a trace corpus\n"
      "\n"
      "common options:\n"
      "  --model <file>        performance model (default: built-in)\n"
      "  --seed <n>            operand-synthesis seed (default 0x1905)\n"
      "  --threads <n>         replay worker threads (default 1)\n"
      "  --json <file|->       machine-readable report\n"
      "\n"
      "replay options:\n"
      "  --mode engine|fixed   full decision pipeline or pinned variants\n"
      "  --rule rtime|ralloc|renergy|impossible\n"
      "  --eval-every <n>      context evaluation cadence in ops (256)\n"
      "  --window <n>          monitoring window size (100)\n"
      "  --list/--set/--map <variant>   fixed-mode variant overrides\n"
      "  --decision-log <file|->        dump the decision log\n"
      "\n"
      "info options:\n"
      "  --profile-trace <file|->  export as cswitch-profile-trace v1\n"
      "                            (pipes into cswitch_advisor -)\n"
      "\n"
      "a trace path of - reads the binary trace from stdin\n");
  return 2;
}

bool loadTraceArg(const std::string &Path, OpTrace &Out) {
  std::string Error;
  bool Ok = Path == "-" ? readTrace(std::cin, Out, &Error)
                        : readTraceFromFile(Path, Out, &Error);
  if (!Ok)
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Error.empty() ? "cannot read trace" : Error.c_str());
  return Ok;
}

bool emitOutput(const std::string &Path, const std::string &Content) {
  if (Path == "-") {
    std::fwrite(Content.data(), 1, Content.size(), stdout);
    return true;
  }
  if (!writeTextFile(Path, Content)) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  std::printf("[wrote %s]\n", Path.c_str());
  return true;
}

bool parseRule(const std::string &Name, SelectionRule &Out) {
  if (Name == "rtime")
    Out = SelectionRule::timeRule();
  else if (Name == "ralloc")
    Out = SelectionRule::allocRule();
  else if (Name == "renergy")
    Out = SelectionRule::energyRule();
  else if (Name == "impossible")
    Out = SelectionRule::impossibleRule();
  else
    return false;
  return true;
}

/// Renders the trace's aggregate form as a cswitch-profile-trace v1
/// document, the lingua franca of the offline pipeline (cswitch_advisor
/// consumes it).
std::string toProfileTraceText(const OpTrace &Trace) {
  std::ostringstream OS;
  OS << "cswitch-profile-trace v1\n";
  for (const SiteProfile &Site : aggregateTrace(Trace)) {
    OS << "site " << abstractionKindName(Site.Kind) << ' '
       << VariantId{Site.Kind, Site.DeclaredVariantIndex}.name() << ' '
       << Site.Name << '\n';
    for (const WorkloadProfile &P : Site.Profiles) {
      OS << "profile " << P.MaxSize;
      for (OperationKind Op : AllOperationKinds)
        OS << ' ' << P.count(Op);
      OS << '\n';
    }
  }
  return OS.str();
}

int runInfo(const std::vector<std::string> &Args) {
  std::string ProfileTracePath;
  std::string TracePath;
  for (size_t I = 0; I != Args.size(); ++I) {
    if (Args[I] == "--profile-trace" && I + 1 != Args.size())
      ProfileTracePath = Args[++I];
    else
      TracePath = Args[I];
  }
  if (TracePath.empty())
    return usage();

  OpTrace Trace;
  if (!loadTraceArg(TracePath, Trace))
    return 1;

  // When the profile-trace export goes to stdout, the human-readable
  // summary moves to stderr so pipelines stay parseable.
  std::FILE *Info = ProfileTracePath == "-" ? stderr : stdout;
  std::fprintf(Info, "trace: %s (cswitch-optrace-v1)\n", TracePath.c_str());
  std::fprintf(Info, "  sites: %zu  ops: %zu  duration: %.3f ms\n",
               Trace.Sites.size(), Trace.Ops.size(),
               static_cast<double>(Trace.durationNanos()) / 1e6);
  std::fprintf(Info,
               "  instances: %llu sampled, %llu skipped;  ops dropped: "
               "%llu\n",
               static_cast<unsigned long long>(Trace.InstancesSampled),
               static_cast<unsigned long long>(Trace.InstancesSkipped),
               static_cast<unsigned long long>(Trace.OpsDropped));
  std::vector<uint64_t> OpsPerSite(Trace.Sites.size(), 0);
  for (const TraceOp &Op : Trace.Ops)
    if (Op.Site < OpsPerSite.size())
      ++OpsPerSite[Op.Site];
  for (size_t I = 0; I != Trace.Sites.size(); ++I) {
    const TraceSite &Site = Trace.Sites[I];
    std::fprintf(Info, "  site %zu: %s (%s, declared %s): %llu ops\n", I,
                 Site.Name.c_str(), abstractionKindName(Site.Kind),
                 VariantId{Site.Kind, Site.DeclaredVariantIndex}
                     .name()
                     .c_str(),
                 static_cast<unsigned long long>(OpsPerSite[I]));
  }

  if (!ProfileTracePath.empty() &&
      !emitOutput(ProfileTracePath, toProfileTraceText(Trace)))
    return 1;
  return 0;
}

std::string replayResultToJson(const ReplayResult &Result,
                               const ReplayOptions &Options) {
  std::ostringstream OS;
  OS << "{\n  \"schema\": \"cswitch-replay-v1\",\n"
     << "  \"mode\": \""
     << (Options.Mode == ReplayMode::Engine ? "engine" : "fixed")
     << "\",\n  \"seed\": " << Options.Seed
     << ",\n  \"threads\": " << Options.Threads
     << ",\n  \"ops_executed\": " << Result.OpsExecuted
     << ",\n  \"instances_replayed\": " << Result.InstancesReplayed
     << ",\n  \"size_mismatches\": " << Result.SizeMismatches
     << ",\n  \"evaluations\": " << Result.Evaluations
     << ",\n  \"switches\": " << Result.Switches
     << ",\n  \"elapsed_nanos\": " << Result.ElapsedNanos
     << ",\n  \"allocated_bytes\": " << Result.AllocatedBytes
     << ",\n  \"sites\": [\n";
  for (size_t I = 0; I != Result.Sites.size(); ++I) {
    const SiteReplayResult &Site = Result.Sites[I];
    OS << "    {\"name\": \"" << jsonEscape(Site.Name)
       << "\", \"initial\": \""
       << jsonEscape(VariantId{Site.Kind, Site.InitialVariantIndex}.name())
       << "\", \"final\": \""
       << jsonEscape(VariantId{Site.Kind, Site.FinalVariantIndex}.name())
       << "\", \"ops\": " << Site.OpsExecuted
       << ", \"switches\": " << Site.Switches << "}"
       << (I + 1 == Result.Sites.size() ? "\n" : ",\n");
  }
  OS << "  ]\n}\n";
  return OS.str();
}

int runReplay(const std::vector<std::string> &Args) {
  ReplayOptions Options;
  std::string ModelPath, JsonPath, DecisionLogPath, TracePath;
  for (size_t I = 0; I != Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto Next = [&]() -> const std::string * {
      return I + 1 != Args.size() ? &Args[++I] : nullptr;
    };
    if (Arg == "--mode") {
      const std::string *V = Next();
      if (!V || (*V != "engine" && *V != "fixed"))
        return usage();
      Options.Mode =
          *V == "engine" ? ReplayMode::Engine : ReplayMode::Fixed;
    } else if (Arg == "--rule") {
      const std::string *V = Next();
      if (!V || !parseRule(*V, Options.Rule))
        return usage();
    } else if (Arg == "--model") {
      const std::string *V = Next();
      if (!V)
        return usage();
      ModelPath = *V;
    } else if (Arg == "--seed") {
      const std::string *V = Next();
      if (!V)
        return usage();
      Options.Seed = std::stoull(*V, nullptr, 0);
    } else if (Arg == "--threads") {
      const std::string *V = Next();
      if (!V)
        return usage();
      Options.Threads = static_cast<unsigned>(std::stoul(*V));
    } else if (Arg == "--eval-every") {
      const std::string *V = Next();
      if (!V)
        return usage();
      Options.EvalEveryOps = std::stoull(*V);
    } else if (Arg == "--window") {
      const std::string *V = Next();
      if (!V)
        return usage();
      Options.Context.WindowSize = std::stoul(*V);
    } else if (Arg == "--list") {
      const std::string *V = Next();
      ListVariant Variant;
      if (!V || !parseListVariant(*V, Variant))
        return usage();
      Options.FixedList = static_cast<unsigned>(Variant);
    } else if (Arg == "--set") {
      const std::string *V = Next();
      SetVariant Variant;
      if (!V || !parseSetVariant(*V, Variant))
        return usage();
      Options.FixedSet = static_cast<unsigned>(Variant);
    } else if (Arg == "--map") {
      const std::string *V = Next();
      MapVariant Variant;
      if (!V || !parseMapVariant(*V, Variant))
        return usage();
      Options.FixedMap = static_cast<unsigned>(Variant);
    } else if (Arg == "--decision-log") {
      const std::string *V = Next();
      if (!V)
        return usage();
      DecisionLogPath = *V;
    } else if (Arg == "--json") {
      const std::string *V = Next();
      if (!V)
        return usage();
      JsonPath = *V;
    } else {
      TracePath = Arg;
    }
  }
  if (TracePath.empty())
    return usage();

  OpTrace Trace;
  if (!loadTraceArg(TracePath, Trace))
    return 1;

  if (Options.Mode == ReplayMode::Engine) {
    auto Model = std::make_shared<PerformanceModel>();
    if (!ModelPath.empty()) {
      if (!Model->loadFromFile(ModelPath)) {
        std::fprintf(stderr, "error: cannot load model %s\n",
                     ModelPath.c_str());
        return 1;
      }
    } else {
      *Model = defaultPerformanceModel();
    }
    Options.Model = std::move(Model);
  }

  Replayer Replay(std::move(Trace), Options);
  ReplayResult Result = Replay.run();

  std::printf("replayed %llu ops, %llu instances in %.3f ms "
              "(%.1f Mops/s), %.2f MB allocated\n",
              static_cast<unsigned long long>(Result.OpsExecuted),
              static_cast<unsigned long long>(Result.InstancesReplayed),
              static_cast<double>(Result.ElapsedNanos) / 1e6,
              Result.ElapsedNanos
                  ? static_cast<double>(Result.OpsExecuted) * 1e3 /
                        static_cast<double>(Result.ElapsedNanos)
                  : 0.0,
              static_cast<double>(Result.AllocatedBytes) /
                  (1024.0 * 1024.0));
  std::printf("  evaluations: %llu  switches: %llu  size mismatches: "
              "%llu\n",
              static_cast<unsigned long long>(Result.Evaluations),
              static_cast<unsigned long long>(Result.Switches),
              static_cast<unsigned long long>(Result.SizeMismatches));
  for (const SiteReplayResult &Site : Result.Sites)
    std::printf("  %s: %s -> %s (%llu ops, %llu switches)\n",
                Site.Name.c_str(),
                VariantId{Site.Kind, Site.InitialVariantIndex}
                    .name()
                    .c_str(),
                VariantId{Site.Kind, Site.FinalVariantIndex}
                    .name()
                    .c_str(),
                static_cast<unsigned long long>(Site.OpsExecuted),
                static_cast<unsigned long long>(Site.Switches));

  if (!DecisionLogPath.empty() &&
      !emitOutput(DecisionLogPath, Result.DecisionLog))
    return 1;
  if (!JsonPath.empty() &&
      !emitOutput(JsonPath, replayResultToJson(Result, Replay.options())))
    return 1;
  return 0;
}

int runSimulate(const std::vector<std::string> &Args) {
  std::string ModelPath, JsonPath;
  uint64_t Seed = 0x1905;
  unsigned Threads = 1;
  std::vector<std::string> TracePaths;
  for (size_t I = 0; I != Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--model" && I + 1 != Args.size())
      ModelPath = Args[++I];
    else if (Arg == "--json" && I + 1 != Args.size())
      JsonPath = Args[++I];
    else if (Arg == "--seed" && I + 1 != Args.size())
      Seed = std::stoull(Args[++I], nullptr, 0);
    else if (Arg == "--threads" && I + 1 != Args.size())
      Threads = static_cast<unsigned>(std::stoul(Args[++I]));
    else
      TracePaths.push_back(Arg);
  }
  if (TracePaths.empty())
    return usage();

  auto Model = std::make_shared<PerformanceModel>();
  if (!ModelPath.empty()) {
    if (!Model->loadFromFile(ModelPath)) {
      std::fprintf(stderr, "error: cannot load model %s\n",
                   ModelPath.c_str());
      return 1;
    }
  } else {
    *Model = defaultPerformanceModel();
  }

  PolicySimulator Simulator(std::move(Model));
  for (const std::string &Path : TracePaths) {
    OpTrace Trace;
    if (!loadTraceArg(Path, Trace))
      return 1;
    Simulator.addTrace(std::move(Trace));
  }
  Simulator.addDefaultPolicies();

  SimulationReport Report = Simulator.run(Seed, Threads);
  std::fputs(Report.render().c_str(), stdout);
  if (!JsonPath.empty() && !emitOutput(JsonPath, Report.toJson()))
    return 1;
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Subcommand = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);
  if (Subcommand == "info")
    return runInfo(Args);
  if (Subcommand == "replay")
    return runReplay(Args);
  if (Subcommand == "simulate")
    return runSimulate(Args);
  return usage();
}
