//===- cswitch_advisor.cpp - Offline recommendation tool ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The offline-selection workflow of the tools the paper positions itself
// against (§6, Chameleon/Brainy): read a workload trace recorded by a
// profiling run (core/ProfileTrace.h), evaluate it against a performance
// model, and print a per-site recommendation report.
//
//   cswitch_advisor trace.txt                       # Rtime, built-in model
//   cswitch_advisor --rule ralloc trace.txt
//   cswitch_advisor --model cswitch_model.txt trace.txt
//
//===----------------------------------------------------------------------===//

#include "core/ProfileTrace.h"
#include "model/DefaultModel.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace cswitch;

int main(int Argc, char **Argv) {
  std::string RuleName = "rtime";
  std::string ModelPath;
  const char *TracePath = nullptr;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--rule") == 0 && I + 1 != Argc)
      RuleName = Argv[++I];
    else if (std::strcmp(Argv[I], "--model") == 0 && I + 1 != Argc)
      ModelPath = Argv[++I];
    else
      TracePath = Argv[I];
  }
  if (!TracePath) {
    std::fprintf(stderr, "usage: cswitch_advisor [--rule "
                         "rtime|ralloc|renergy] [--model <file>] "
                         "<trace-file>\n");
    return 2;
  }

  SelectionRule Rule = SelectionRule::timeRule();
  if (RuleName == "ralloc")
    Rule = SelectionRule::allocRule();
  else if (RuleName == "renergy")
    Rule = SelectionRule::energyRule();
  else if (RuleName != "rtime") {
    std::fprintf(stderr, "error: unknown rule '%s'\n", RuleName.c_str());
    return 2;
  }

  PerformanceModel Model;
  if (!ModelPath.empty()) {
    if (!Model.loadFromFile(ModelPath)) {
      std::fprintf(stderr, "error: cannot load model %s\n",
                   ModelPath.c_str());
      return 1;
    }
  } else {
    Model = defaultPerformanceModel();
  }

  std::vector<SiteTrace> Sites;
  if (!loadTraceFromFile(TracePath, Sites)) {
    std::fprintf(stderr, "error: cannot parse trace %s\n", TracePath);
    return 1;
  }

  std::vector<SiteRecommendation> Report =
      adviseOffline(Sites, Model, Rule);
  std::printf("offline recommendations (%s, %zu sites):\n",
              Rule.Name.c_str(), Report.size());
  for (const SiteRecommendation &Rec : Report)
    std::printf("  %s\n", Rec.toString().c_str());
  return 0;
}
