//===- cswitch_advisor.cpp - Offline recommendation tool ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The offline-selection workflow of the tools the paper positions itself
// against (§6, Chameleon/Brainy): read a workload trace recorded by a
// profiling run (core/ProfileTrace.h), evaluate it against a performance
// model, and print a per-site recommendation report.
//
//   cswitch_advisor trace.txt                       # Rtime, built-in model
//   cswitch_advisor --rule ralloc trace.txt
//   cswitch_advisor --model data/cswitch_model.txt trace.txt
//   cswitch_advisor --json report.json trace.txt    # machine-readable copy
//   ... | cswitch_advisor -                         # trace from stdin
//
// When `--model` is absent the `CSWITCH_MODEL` environment variable is
// consulted; only when neither names a file does the built-in default
// model apply.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileTrace.h"
#include "model/DefaultModel.h"
#include "support/MetricsExport.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace cswitch;

namespace {

/// Machine-readable twin of the printed report.
std::string reportToJson(const SelectionRule &Rule,
                         const std::vector<SiteRecommendation> &Report) {
  std::string Out = "{\n  \"schema\": \"cswitch-advisor-v1\",\n  \"rule\": \"" +
                    jsonEscape(Rule.Name) + "\",\n  \"sites\": [\n";
  for (size_t I = 0; I != Report.size(); ++I) {
    const SiteRecommendation &Rec = Report[I];
    Out += "    {\"site\": \"" + jsonEscape(Rec.Site) + "\", \"declared\": \"" +
           jsonEscape(VariantId{Rec.Kind, Rec.DeclaredVariantIndex}.name()) +
           "\", ";
    if (Rec.RecommendedVariantIndex)
      Out += "\"recommended\": \"" +
             jsonEscape(
                 VariantId{Rec.Kind, *Rec.RecommendedVariantIndex}.name()) +
             "\", ";
    else
      Out += "\"recommended\": null, ";
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "\"instances\": %zu, \"time_ratio\": %.4f, "
                  "\"alloc_ratio\": %.4f}",
                  Rec.InstancesProfiled,
                  Rec.improvementRatio(CostDimension::Time),
                  Rec.improvementRatio(CostDimension::Alloc));
    Out += Buf;
    Out += I + 1 == Report.size() ? "\n" : ",\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string RuleName = "rtime";
  std::string ModelPath;
  std::string JsonPath;
  const char *TracePath = nullptr;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--rule") == 0 && I + 1 != Argc)
      RuleName = Argv[++I];
    else if (std::strcmp(Argv[I], "--model") == 0 && I + 1 != Argc)
      ModelPath = Argv[++I];
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 != Argc)
      JsonPath = Argv[++I];
    else
      TracePath = Argv[I];
  }
  if (!TracePath) {
    std::fprintf(stderr, "usage: cswitch_advisor [--rule "
                         "rtime|ralloc|renergy] [--model <file>] "
                         "[--json <file>] <trace-file | ->\n");
    return 2;
  }

  SelectionRule Rule = SelectionRule::timeRule();
  if (RuleName == "ralloc")
    Rule = SelectionRule::allocRule();
  else if (RuleName == "renergy")
    Rule = SelectionRule::energyRule();
  else if (RuleName != "rtime") {
    std::fprintf(stderr, "error: unknown rule '%s'\n", RuleName.c_str());
    return 2;
  }

  if (ModelPath.empty()) {
    const char *EnvPath = std::getenv("CSWITCH_MODEL");
    if (EnvPath && EnvPath[0])
      ModelPath = EnvPath;
  }
  PerformanceModel Model;
  if (!ModelPath.empty()) {
    std::string ModelError;
    if (!Model.loadFromFile(ModelPath, &ModelError)) {
      std::fprintf(stderr, "error: cannot load model %s (%s)\n",
                   ModelPath.c_str(), ModelError.c_str());
      return 1;
    }
  } else {
    Model = defaultPerformanceModel();
  }

  // `-` reads the trace from stdin so recorders/exporters can pipe
  // straight in. A parse failure must exit non-zero even when the
  // document is well-formed but empty (a broken upstream stage usually
  // produces just the header): CI pipelines gate on the exit status.
  std::vector<SiteTrace> Sites;
  bool Parsed = std::strcmp(TracePath, "-") == 0
                    ? loadTrace(std::cin, Sites)
                    : loadTraceFromFile(TracePath, Sites);
  if (!Parsed) {
    std::fprintf(stderr, "error: cannot parse trace %s\n", TracePath);
    return 1;
  }
  if (Sites.empty()) {
    std::fprintf(stderr, "error: trace %s contains no sites\n", TracePath);
    return 1;
  }

  std::vector<SiteRecommendation> Report =
      adviseOffline(Sites, Model, Rule);
  std::printf("offline recommendations (%s, %zu sites):\n",
              Rule.Name.c_str(), Report.size());
  for (const SiteRecommendation &Rec : Report)
    std::printf("  %s\n", Rec.toString().c_str());
  if (!JsonPath.empty()) {
    if (!writeTextFile(JsonPath, reportToJson(Rule, Report))) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("[wrote %s]\n", JsonPath.c_str());
  }
  return 0;
}
