//===- cswitch_store.cpp - Selection-store inspection tool ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Offline management of `cswitch-store-v1` selection-store files:
//
//   cswitch_store info  store.cswitchstore [--json]
//   cswitch_store export store.cswitchstore           # text to stdout
//   cswitch_store merge -o out.cswitchstore a b ...   # inputs binary or text
//   cswitch_store prune -o out.cswitchstore [--min-runs N]
//                       [--min-instances N] store.cswitchstore
//
// `export` emits the line-oriented `cswitch-store-text-v1` form; `merge`
// accepts both forms (sniffed) and `-` for stdin, so a store round-trips
// byte-identically through `cswitch_store export X | cswitch_store merge
// -o Y -` — the canonical encoder makes equality structural.
//
//===----------------------------------------------------------------------===//

#include "collections/Variants.h"
#include "store/StoreFormat.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace cswitch;

namespace {

constexpr char TextMagic[] = "cswitch-store-text-v1";

const char *variantName(AbstractionKind Kind, unsigned Index) {
  switch (Kind) {
  case AbstractionKind::List:
    return listVariantName(static_cast<ListVariant>(Index));
  case AbstractionKind::Set:
    return setVariantName(static_cast<SetVariant>(Index));
  case AbstractionKind::Map:
    return mapVariantName(static_cast<MapVariant>(Index));
  }
  return "?";
}

bool parseVariant(AbstractionKind Kind, const std::string &Name,
                  unsigned &Out) {
  switch (Kind) {
  case AbstractionKind::List: {
    ListVariant V;
    if (!parseListVariant(Name, V))
      return false;
    Out = static_cast<unsigned>(V);
    return true;
  }
  case AbstractionKind::Set: {
    SetVariant V;
    if (!parseSetVariant(Name, V))
      return false;
    Out = static_cast<unsigned>(V);
    return true;
  }
  case AbstractionKind::Map: {
    MapVariant V;
    if (!parseMapVariant(Name, V))
      return false;
    Out = static_cast<unsigned>(V);
    return true;
  }
  }
  return false;
}

bool parseKind(const std::string &Name, AbstractionKind &Out) {
  for (unsigned K = 0; K != NumAbstractionKinds; ++K) {
    auto Kind = static_cast<AbstractionKind>(K);
    if (Name == abstractionKindName(Kind)) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

/// Quotes \p Text for the text format (backslash escapes; names may
/// contain anything, including spaces and quotes).
std::string quoted(const std::string &Text) {
  std::string Out = "\"";
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

/// Parses one quoted string starting at \p Pos in \p Line (which must
/// point at the opening quote); advances \p Pos past the closing quote.
bool parseQuoted(const std::string &Line, size_t &Pos, std::string &Out) {
  if (Pos >= Line.size() || Line[Pos] != '"')
    return false;
  Out.clear();
  for (++Pos; Pos < Line.size(); ++Pos) {
    char C = Line[Pos];
    if (C == '"') {
      ++Pos;
      return true;
    }
    if (C == '\\') {
      if (++Pos >= Line.size())
        return false;
      char E = Line[Pos];
      Out += E == 'n' ? '\n' : E;
      continue;
    }
    Out += C;
  }
  return false; // unterminated
}

std::string exportText(const std::vector<StoreSite> &Sites) {
  // Canonical order so export is deterministic for any input order.
  std::vector<const StoreSite *> Order;
  Order.reserve(Sites.size());
  for (const StoreSite &S : Sites)
    Order.push_back(&S);
  std::sort(Order.begin(), Order.end(),
            [](const StoreSite *A, const StoreSite *B) {
              return StoreSite::orderedBefore(*A, *B);
            });
  std::string Out = TextMagic;
  Out += '\n';
  for (const StoreSite *S : Order) {
    Out += "site " + quoted(S->Name) + ' ' + quoted(S->Rule) + ' ';
    Out += abstractionKindName(S->Kind);
    Out += ' ';
    Out += variantName(S->Kind, S->Decision);
    Out += ' ' + std::to_string(S->Runs) + ' ' +
           std::to_string(S->Instances) + ' ' + std::to_string(S->MaxSize);
    for (uint64_t Count : S->Counts)
      Out += ' ' + std::to_string(Count);
    Out += '\n';
  }
  return Out;
}

bool parseText(std::istream &IS, std::vector<StoreSite> &Out,
               std::string &Error) {
  Out.clear();
  std::string Line;
  if (!std::getline(IS, Line) || Line != TextMagic) {
    Error = "not a cswitch-store-text document (bad header)";
    return false;
  }
  size_t LineNo = 1;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    auto failLine = [&](const char *Message) {
      Error = "line " + std::to_string(LineNo) + ": " + Message;
      Out.clear();
      return false;
    };
    if (Line.rfind("site ", 0) != 0)
      return failLine("expected a `site` record");
    size_t Pos = 5;
    StoreSite Site;
    if (!parseQuoted(Line, Pos, Site.Name))
      return failLine("bad site name");
    if (Pos >= Line.size() || Line[Pos++] != ' ' ||
        !parseQuoted(Line, Pos, Site.Rule))
      return failLine("bad rule name");
    std::istringstream Rest(Line.substr(Pos));
    std::string KindName, VariantName;
    if (!(Rest >> KindName) || !parseKind(KindName, Site.Kind))
      return failLine("bad abstraction kind");
    unsigned Decision = 0;
    if (!(Rest >> VariantName) ||
        !parseVariant(Site.Kind, VariantName, Decision))
      return failLine("bad variant name");
    Site.Decision = Decision;
    if (!(Rest >> Site.Runs >> Site.Instances >> Site.MaxSize))
      return failLine("bad site counters");
    for (uint64_t &Count : Site.Counts)
      if (!(Rest >> Count))
        return failLine("bad operation counts");
    std::string Trailing;
    if (Rest >> Trailing)
      return failLine("trailing fields");
    Out.push_back(std::move(Site));
  }
  return true;
}

/// Reads \p Path (or stdin for "-") in either the binary or the text
/// form, sniffing by prefix.
bool readAnyStore(const std::string &Path, std::vector<StoreSite> &Out,
                  std::string &Error) {
  std::string Bytes;
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Bytes = Buffer.str();
  } else {
    std::ifstream IS(Path, std::ios::binary);
    if (!IS) {
      Error = "cannot open " + Path;
      return false;
    }
    std::ostringstream Buffer;
    Buffer << IS.rdbuf();
    Bytes = Buffer.str();
  }
  if (Bytes.rfind(TextMagic, 0) == 0) {
    std::istringstream IS(Bytes);
    return parseText(IS, Out, Error);
  }
  return decodeStore(Bytes, Out, &Error);
}

int fail(const std::string &Message) {
  std::fprintf(stderr, "error: %s\n", Message.c_str());
  return 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: cswitch_store <command> ...\n"
      "  info  <store> [--json]           summarize a store file\n"
      "  export <store>                   print the text form to stdout\n"
      "  merge -o <out> <input...>        merge stores (binary or text, -"
      " = stdin)\n"
      "  prune -o <out> [--min-runs N] [--min-instances N] <store>\n");
  return 2;
}

int cmdInfo(const std::vector<std::string> &Args) {
  std::string Path;
  bool Json = false;
  for (const std::string &A : Args) {
    if (A == "--json")
      Json = true;
    else
      Path = A;
  }
  if (Path.empty())
    return usage();
  std::vector<StoreSite> Sites;
  std::string Error;
  if (!readAnyStore(Path, Sites, Error))
    return fail(Error);
  uint64_t Instances = 0, MaxRuns = 0;
  for (const StoreSite &S : Sites) {
    Instances += S.Instances;
    MaxRuns = std::max(MaxRuns, S.Runs);
  }
  if (Json) {
    std::string Out = "{\n  \"schema\": \"cswitch-store-info-v1\",\n";
    Out += "  \"sites\": " + std::to_string(Sites.size()) + ",\n";
    Out += "  \"instances\": " + std::to_string(Instances) + ",\n";
    Out += "  \"max_runs\": " + std::to_string(MaxRuns) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return 0;
  }
  std::printf("%s: %zu sites, %llu instances, up to %llu runs\n",
              Path.c_str(), Sites.size(),
              static_cast<unsigned long long>(Instances),
              static_cast<unsigned long long>(MaxRuns));
  for (const StoreSite &S : Sites)
    std::printf("  %-32s %-8s %-6s -> %-18s runs=%llu instances=%llu "
                "maxsize=%llu\n",
                S.Name.c_str(), S.Rule.c_str(),
                abstractionKindName(S.Kind), variantName(S.Kind, S.Decision),
                static_cast<unsigned long long>(S.Runs),
                static_cast<unsigned long long>(S.Instances),
                static_cast<unsigned long long>(S.MaxSize));
  return 0;
}

int cmdExport(const std::vector<std::string> &Args) {
  if (Args.size() != 1)
    return usage();
  std::vector<StoreSite> Sites;
  std::string Error;
  if (!readAnyStore(Args[0], Sites, Error))
    return fail(Error);
  std::string Text = exportText(Sites);
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  return 0;
}

int cmdMerge(const std::vector<std::string> &Args) {
  std::string OutPath;
  std::vector<std::string> Inputs;
  for (size_t I = 0; I != Args.size(); ++I) {
    if (Args[I] == "-o" && I + 1 != Args.size())
      OutPath = Args[++I];
    else
      Inputs.push_back(Args[I]);
  }
  if (OutPath.empty() || Inputs.empty())
    return usage();
  // Sum counters across inputs; the decision follows the input whose
  // site has seen the most runs (later inputs win ties, so merging one
  // input reproduces it exactly).
  std::map<std::tuple<std::string, std::string, unsigned>, StoreSite> Merged;
  for (const std::string &Input : Inputs) {
    std::vector<StoreSite> Sites;
    std::string Error;
    if (!readAnyStore(Input, Sites, Error))
      return fail(Input + ": " + Error);
    for (StoreSite &S : Sites) {
      auto Key = std::make_tuple(S.Name, S.Rule,
                                 static_cast<unsigned>(S.Kind));
      auto [It, Fresh] = Merged.try_emplace(Key, S);
      if (Fresh)
        continue;
      StoreSite &E = It->second;
      if (S.Runs >= E.Runs)
        E.Decision = S.Decision;
      E.Runs += S.Runs;
      E.Instances += S.Instances;
      E.MaxSize = std::max(E.MaxSize, S.MaxSize);
      for (size_t Op = 0; Op != NumOperationKinds; ++Op)
        E.Counts[Op] += S.Counts[Op];
    }
  }
  std::vector<StoreSite> Out;
  Out.reserve(Merged.size());
  for (auto &[Key, Site] : Merged)
    Out.push_back(std::move(Site));
  std::string Error;
  if (!writeStoreToFile(OutPath, Out, &Error))
    return fail(OutPath + ": " + Error);
  std::fprintf(stderr, "[wrote %s: %zu sites]\n", OutPath.c_str(),
               Out.size());
  return 0;
}

int cmdPrune(const std::vector<std::string> &Args) {
  std::string OutPath, InPath;
  uint64_t MinRuns = 0, MinInstances = 0;
  for (size_t I = 0; I != Args.size(); ++I) {
    if (Args[I] == "-o" && I + 1 != Args.size())
      OutPath = Args[++I];
    else if (Args[I] == "--min-runs" && I + 1 != Args.size())
      MinRuns = std::strtoull(Args[++I].c_str(), nullptr, 10);
    else if (Args[I] == "--min-instances" && I + 1 != Args.size())
      MinInstances = std::strtoull(Args[++I].c_str(), nullptr, 10);
    else
      InPath = Args[I];
  }
  if (OutPath.empty() || InPath.empty())
    return usage();
  std::vector<StoreSite> Sites;
  std::string Error;
  if (!readAnyStore(InPath, Sites, Error))
    return fail(Error);
  size_t Before = Sites.size();
  Sites.erase(std::remove_if(Sites.begin(), Sites.end(),
                             [&](const StoreSite &S) {
                               return S.Runs < MinRuns ||
                                      S.Instances < MinInstances;
                             }),
              Sites.end());
  if (!writeStoreToFile(OutPath, Sites, &Error))
    return fail(OutPath + ": " + Error);
  std::fprintf(stderr, "[wrote %s: kept %zu of %zu sites]\n",
               OutPath.c_str(), Sites.size(), Before);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Command = Argv[1];
  std::vector<std::string> Args(Argv + 2, Argv + Argc);
  if (Command == "info")
    return cmdInfo(Args);
  if (Command == "export")
    return cmdExport(Args);
  if (Command == "merge")
    return cmdMerge(Args);
  if (Command == "prune")
    return cmdPrune(Args);
  return usage();
}
