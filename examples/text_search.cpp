//===- text_search.cpp - Inverted-index search with CollectionSwitch ------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// A lusearch-flavoured example (the paper's headline win, §5.2): a tiny
// search engine whose per-query score maps are small — the workload where
// a general-purpose chained hash map wastes both time and memory, and
// where CollectionSwitch discovers array/adaptive maps at runtime.
//
// The example runs the same queries twice: once with fixed ChainedHashMap
// (what a developer writes by default) and once through allocation
// contexts under the Ralloc rule, and prints time and allocated bytes.
//
// Run it: ./text_search
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "support/MemoryTracker.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cswitch;

namespace {

constexpr size_t TermUniverse = 256;
constexpr size_t DocCount = 2048;
constexpr size_t QueryCount = 20000;

/// A trivial inverted index: term -> documents containing it.
struct InvertedIndex {
  std::vector<std::vector<int64_t>> Postings;

  explicit InvertedIndex(SplitMix64 &Rng) {
    Postings.resize(TermUniverse);
    for (auto &P : Postings) {
      size_t N = 4 + Rng.nextBelow(40);
      for (size_t I = 0; I != N; ++I)
        P.push_back(static_cast<int64_t>(Rng.nextBelow(DocCount)));
    }
  }
};

/// Scores one query; the per-query score map comes from \p MakeMap.
template <typename MakeMapFn>
uint64_t runQueries(const InvertedIndex &Index, MakeMapFn &&MakeMap) {
  SplitMix64 Rng(42);
  uint64_t Result = 0;
  for (size_t Q = 0; Q != QueryCount; ++Q) {
    Map<int64_t, int64_t> Scores = MakeMap();
    size_t Terms = 2 + Rng.nextBelow(5);
    for (size_t T = 0; T != Terms; ++T) {
      size_t Term = Rng.nextBelow(TermUniverse);
      for (int64_t Doc : Index.Postings[Term]) {
        if (int64_t *S = Scores.getMutable(Doc))
          ++*S;
        else
          Scores.put(Doc, 1);
      }
    }
    // Read out the best-scoring document (order-independent).
    uint64_t Best = 0;
    Scores.forEach([&Best](const int64_t &Doc, const int64_t &Score) {
      uint64_t Packed = static_cast<uint64_t>(Score) << 32 |
                        static_cast<uint64_t>(Doc);
      if (Packed > Best)
        Best = Packed;
    });
    Result ^= Best;
  }
  return Result;
}

} // namespace

int main() {
  SplitMix64 Rng(7);
  InvertedIndex Index(Rng);

  // Pass 1: the developer's default — a chained hash map everywhere.
  AllocationScope FixedAlloc;
  Timer FixedClock;
  uint64_t FixedResult = runQueries(Index, [] {
    return Map<int64_t, int64_t>(
        makeMapImpl<int64_t, int64_t>(MapVariant::ChainedHashMap));
  });
  double FixedMs = FixedClock.elapsedSeconds() * 1e3;
  double FixedMB = static_cast<double>(FixedAlloc.allocatedInScope()) / 1e6;

  // Pass 2: the same code through an allocation context (Ralloc).
  auto Ctx = Switch::makeContext<Map<int64_t, int64_t>>(
      "text_search:scores", MapVariant::ChainedHashMap,
      SelectionRule::allocRule());
  SwitchEngine::global().start(); // production setup: 50 ms analyzer.
  AllocationScope SwitchAlloc;
  Timer SwitchClock;
  uint64_t SwitchResult = runQueries(Index, [&Ctx] {
    return Ctx->createMap();
  });
  double SwitchMs = SwitchClock.elapsedSeconds() * 1e3;
  double SwitchMB =
      static_cast<double>(SwitchAlloc.allocatedInScope()) / 1e6;
  SwitchEngine::global().stop();

  std::printf("results identical: %s\n",
              FixedResult == SwitchResult ? "yes" : "NO (bug!)");
  std::printf("%-18s %10s %14s\n", "", "time (ms)", "allocated (MB)");
  std::printf("%-18s %10.1f %14.1f\n", "ChainedHashMap", FixedMs, FixedMB);
  std::printf("%-18s %10.1f %14.1f\n", "CollectionSwitch", SwitchMs,
              SwitchMB);
  std::printf("selected variant: %s (%llu transitions)\n",
              Ctx->currentVariant().name().c_str(),
              static_cast<unsigned long long>(Ctx->switchCount()));
  return 0;
}
