//===- adaptive_tour.cpp - Instance-level adaptivity tour -----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// A tour of the instance-level machinery (paper §3.2): adaptive
// collections that migrate array -> hash when they outgrow their
// threshold, the threshold analysis that derives those thresholds from a
// performance model, and the footprint difference that motivates it all.
//
// Run it: ./adaptive_tour
//
//===----------------------------------------------------------------------===//

#include "collections/Factory.h"
#include "model/DefaultModel.h"
#include "model/ModelBuilder.h"
#include "model/ThresholdAnalyzer.h"

#include <cstdio>

using namespace cswitch;

int main() {
  // 1. Watch an AdaptiveSet migrate.
  AdaptiveSetImpl<int64_t> Watchlist; // process-wide threshold (40).
  std::printf("AdaptiveSet threshold: %zu elements\n",
              Watchlist.threshold());
  for (int64_t I = 0; I != 64; ++I) {
    bool Before = Watchlist.hasMigrated();
    Watchlist.add(I);
    if (!Before && Watchlist.hasMigrated())
      std::printf("  migrated array -> openhash at size %zu\n",
                  Watchlist.size());
  }

  // 2. The footprint trade-off the migration navigates.
  auto ArrayRep = makeSetImpl<int64_t>(SetVariant::ArraySet);
  auto HashRep = makeSetImpl<int64_t>(SetVariant::OpenHashSet);
  for (int64_t I = 0; I != 32; ++I) {
    ArrayRep->add(I);
    HashRep->add(I);
  }
  std::printf("\nfootprint at 32 elements: array %zu B, open hash %zu B\n",
              ArrayRep->memoryFootprint(), HashRep->memoryFootprint());

  // 3. Derive thresholds from a freshly measured model (paper Fig. 3).
  std::printf("\nmeasuring a quick performance model...\n");
  ModelBuilder Builder(ModelBuildOptions::quick());
  PerformanceModel Measured = Builder.build();
  ThresholdAnalyzer Analyzer(Measured);
  AdaptiveThresholds T = Analyzer.computeAll();
  std::printf("thresholds on THIS machine: list=%zu set=%zu map=%zu\n",
              T.List, T.Set, T.Map);
  std::printf("(paper Table 1 on their i7-2760QM: 80/40/50)\n");

  // 4. Install them: every adaptive collection created from now on uses
  //    the measured thresholds.
  AdaptiveConfig::global().setThresholds(T);
  AdaptiveMapImpl<int64_t, int64_t> Tuned;
  std::printf("new AdaptiveMap instances migrate at %zu entries\n",
              Tuned.threshold());

  std::printf("\nmigrations recorded this run: %llu\n",
              static_cast<unsigned long long>(
                  AdaptiveConfig::global().migrationCount()));
  return 0;
}
