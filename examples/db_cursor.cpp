//===- db_cursor.cpp - Database cursor lists with CollectionSwitch --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// An h2-flavoured example (paper §2.1): one hot allocation site creates
// hundreds of thousands of short-lived row-id lists ("index cursors"),
// each probed by a join filter. The example contrasts three deployments:
//
//   1. fixed ArrayList          (the developer's default),
//   2. always AdaptiveList      (instance-level adaptivity only — the
//                                strategy that cost H2 12% in the paper),
//   3. a CollectionSwitch context (allocation-site adaptivity).
//
// Run it: ./db_cursor
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>
#include <functional>

using namespace cswitch;

namespace {

constexpr size_t Cursors = 60000;

uint64_t scanWorkload(const std::function<List<int64_t>()> &MakeCursor) {
  SplitMix64 Rng(11);
  uint64_t Hits = 0;
  for (size_t C = 0; C != Cursors; ++C) {
    // Most cursors match a handful of rows; some scans return big ranges
    // (the wide distribution that makes adaptive variants worthwhile).
    size_t Matches = Rng.nextBelow(20) == 0 ? 200 + Rng.nextBelow(400)
                                            : 4 + Rng.nextBelow(28);
    List<int64_t> Cursor = MakeCursor();
    for (size_t I = 0; I != Matches; ++I)
      Cursor.add(static_cast<int64_t>(Rng.nextBelow(Matches * 4)));
    // Join filter: probe the cursor for rows of the other relation.
    for (size_t Probe = 0; Probe != Matches * 3; ++Probe)
      Hits += Cursor.contains(
          static_cast<int64_t>(Rng.nextBelow(Matches * 4)));
  }
  return Hits;
}

double timeIt(const char *Label, uint64_t &Checksum,
              const std::function<List<int64_t>()> &MakeCursor) {
  Timer Clock;
  uint64_t Hits = scanWorkload(MakeCursor);
  double Ms = Clock.elapsedSeconds() * 1e3;
  if (Checksum == 0)
    Checksum = Hits;
  std::printf("%-24s %8.1f ms%s\n", Label, Ms,
              Hits == Checksum ? "" : "  [CHECKSUM MISMATCH]");
  return Ms;
}

} // namespace

int main() {
  std::printf("db_cursor: %zu short-lived cursors, join-filter probes\n\n",
              Cursors);
  uint64_t Checksum = 0;

  timeIt("fixed ArrayList", Checksum, [] {
    return List<int64_t>(makeListImpl<int64_t>(ListVariant::ArrayList));
  });

  timeIt("always AdaptiveList", Checksum, [] {
    return List<int64_t>(makeListImpl<int64_t>(ListVariant::AdaptiveList));
  });

  auto Ctx = Switch::makeContext<List<int64_t>>(
      "db_cursor:IndexCursor", ListVariant::ArrayList,
      SelectionRule::timeRule());
  SwitchEngine::global().start();
  timeIt("CollectionSwitch", Checksum, [&Ctx] {
    return Ctx->createList();
  });
  SwitchEngine::global().stop();

  std::printf("\ncontext: %llu instances, %llu monitored, %llu "
              "evaluations, %llu switches, now %s\n",
              static_cast<unsigned long long>(Ctx->instancesCreated()),
              static_cast<unsigned long long>(Ctx->instancesMonitored()),
              static_cast<unsigned long long>(Ctx->evaluationCount()),
              static_cast<unsigned long long>(Ctx->switchCount()),
              Ctx->currentVariant().name().c_str());
  return 0;
}
