//===- quickstart.cpp - CollectionSwitch in five minutes ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The minimal adoption path (paper Fig. 4): replace
//
//     std::vector<int64_t> List;              // or new ArrayList<>()
//
// with an allocation context and let the framework pick the variant from
// the observed workload:
//
//     static auto Ctx = Switch::makeContext<List<int64_t>>(...);
//     auto List = Ctx->createList();
//
// Run it: ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"

#include <cstdio>

using namespace cswitch;

int main() {
  // One context per allocation site; static in real code (paper §4.3).
  auto Ctx = Switch::makeContext<List<int64_t>>(
      "quickstart.cpp:main", ListVariant::ArrayList,
      SelectionRule::timeRule());

  std::printf("initial variant: %s\n", Ctx->currentVariant().name().c_str());

  // A lookup-heavy workload: each iteration builds a list of 500
  // elements and then performs 2000 membership tests. With a plain
  // ArrayList every test is a linear scan.
  for (int Round = 0; Round != 3; ++Round) {
    for (int Instance = 0; Instance != 120; ++Instance) {
      List<int64_t> L = Ctx->createList();
      for (int64_t I = 0; I != 500; ++I)
        L.add(I * 7);
      uint64_t Hits = 0;
      for (int64_t I = 0; I != 2000; ++I)
        Hits += L.contains(I);
      (void)Hits;
    }
    // In production the SwitchEngine background thread does this every
    // 50 ms (SwitchEngine::global().start()); a manual evaluation keeps
    // the example deterministic.
    SwitchEngine::global().evaluateAll();
    std::printf("after round %d: variant = %s, switches = %llu\n", Round,
                Ctx->currentVariant().name().c_str(),
                static_cast<unsigned long long>(Ctx->switchCount()));
  }

  std::printf("instances created: %llu, monitored: %llu\n",
              static_cast<unsigned long long>(Ctx->instancesCreated()),
              static_cast<unsigned long long>(Ctx->instancesMonitored()));
  return 0;
}
