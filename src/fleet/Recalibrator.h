//===- Recalibrator.h - On-device cost-model recalibration ------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-device recalibration of the performance model (DESIGN.md §12): a
/// replica re-fits the cost polynomials it actually decides with against
/// measurements of its own recorded workload, instead of trusting the
/// shipped model forever.
///
/// The pipeline replays a recorded `cswitch-optrace-v1` corpus through
/// the Replayer's fixed mode — one isolated, never-started engine per
/// measurement, so the running application is never perturbed — and
/// compares measured time/allocation against the incumbent model's
/// predictions:
///
///  1. The trace's instances are split by instance id into a fit slice
///     and a held-out validation slice (instance % HoldoutModulus == 0
///     is held out).
///  2. The fit slice is partitioned into measurement cells: one
///     (abstraction, sequential variant, log2-size bucket) sub-trace
///     each. Every cell is replayed pinned to its variant and yields a
///     (predicted, measured) pair per cost dimension.
///  3. Per (variant, dimension ∈ {Time, Alloc}) a multiplicative
///     correction alpha = Σ measured·predicted / Σ predicted² (least
///     squares through the origin) scales the incumbent's polynomials
///     into the candidate model. Energy and Contention rows — derived
///     and analytic-only (DESIGN.md §11) — are carried over verbatim,
///     as are concurrent-tier variants.
///  4. The candidate is validated on the held-out slice: it is promoted
///     only when its mean relative prediction error does not regress
///     past the incumbent's by more than PromotionEpsilon. A promoted
///     model is installed as a versioned `cswitch-model-v2` artifact
///     (atomic replace), never silently swapped in-process.
///
/// Measurement is injectable (RecalibrationOptions::Measure) so tests
/// drive the promotion gate deterministically; the default measures by
/// fixed-mode replay. BackgroundRecalibrator spreads the same work over
/// the engine's reporter ticks — one cell per report — so recalibration
/// rides the existing background thread at low priority.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_FLEET_RECALIBRATOR_H
#define CSWITCH_FLEET_RECALIBRATOR_H

#include "core/SwitchEngine.h"
#include "fleet/ModelArtifact.h"
#include "replay/TraceFormat.h"

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace cswitch {
namespace fleet {

/// What one measurement cell costs when actually executed.
struct CellMeasurement {
  uint64_t ElapsedNanos = 0;
  uint64_t AllocatedBytes = 0;
};

/// Tuning knobs of a recalibration run.
struct RecalibrationOptions {
  /// Instances with id % HoldoutModulus == 0 form the held-out
  /// validation slice (never fitted). Must be >= 2 so both slices are
  /// non-empty on real corpora.
  uint64_t HoldoutModulus = 4;
  /// Root seed of the deterministic replay measurements.
  uint64_t Seed = 0x1905;
  /// The candidate is promoted when its held-out mean relative error
  /// does not exceed the incumbent's by more than this.
  double PromotionEpsilon = 0.05;
  /// Cells whose sub-trace carries fewer executable ops than this are
  /// dropped (too noisy to fit).
  uint64_t MinCellOps = 16;
  /// Measures one cell: replay \p Slice pinned to \p Variant of
  /// \p Kind. Defaults to Replayer fixed mode; tests inject synthetic
  /// measurements to drive the promotion gate both ways.
  std::function<CellMeasurement(AbstractionKind Kind, unsigned Variant,
                                const OpTrace &Slice)>
      Measure;

  RecalibrationOptions &holdoutModulus(uint64_t Value) {
    HoldoutModulus = Value;
    return *this;
  }
  RecalibrationOptions &seed(uint64_t Value) {
    Seed = Value;
    return *this;
  }
  RecalibrationOptions &promotionEpsilon(double Value) {
    PromotionEpsilon = Value;
    return *this;
  }
  RecalibrationOptions &minCellOps(uint64_t Value) {
    MinCellOps = Value;
    return *this;
  }
};

/// Outcome of a recalibration run.
struct RecalibrationResult {
  /// True when the candidate passed the held-out gate (and, via
  /// recalibrate-and-install paths, was written to disk).
  bool Promoted = false;
  /// Mean relative prediction error on the held-out slice.
  double IncumbentResidual = 0.0;
  double CandidateResidual = 0.0;
  /// Cells measured (fit + holdout) and variants whose rows were
  /// rescaled.
  size_t CellsMeasured = 0;
  size_t VariantsRecalibrated = 0;
  /// Why the candidate was not promoted (empty when Promoted).
  std::string Reason;
  /// The candidate artifact (header filled; promoted or not, so
  /// rejected fits remain inspectable).
  ModelArtifact Artifact;
};

/// Incremental recalibration of one trace corpus against an incumbent
/// model. step() measures one cell at a time (the unit of background
/// work); finish() fits, validates and builds the artifact. Not
/// thread-safe — callers serialize (BackgroundRecalibrator runs on the
/// single reporter thread).
class Recalibrator {
public:
  Recalibrator(OpTrace Trace,
               std::shared_ptr<const PerformanceModel> Incumbent,
               RecalibrationOptions Options = {});

  /// Total measurement cells this corpus produced.
  size_t cellCount() const { return Cells.size(); }

  /// Cells measured so far.
  size_t cellsMeasured() const { return NextCell; }

  /// True once every cell is measured.
  bool measured() const { return NextCell == Cells.size(); }

  /// Measures the next cell. Returns false when none remain.
  bool step();

  /// Measures every remaining cell.
  void measureAll() {
    while (step()) {
    }
  }

  /// Fits the candidate, validates it on the held-out slice and builds
  /// the artifact (FitTimestamp taken as \p FitTimestamp — pass unix
  /// seconds; the library never reads the clock so runs stay
  /// reproducible). Requires measured().
  RecalibrationResult finish(uint64_t FitTimestamp) const;

  /// measureAll() + finish().
  RecalibrationResult run(uint64_t FitTimestamp) {
    measureAll();
    return finish(FitTimestamp);
  }

private:
  /// One measurement cell: the instances of one (abstraction, variant,
  /// log2-size bucket) on one slice.
  struct Cell {
    AbstractionKind Kind = AbstractionKind::List;
    unsigned Variant = 0;
    unsigned Bucket = 0;
    bool Holdout = false;
    /// Shared across the variants measured on one (bucket, slice)
    /// group — the sub-trace is variant-independent.
    std::shared_ptr<const OpTrace> Slice;
    /// Incumbent-model prediction per dimension of interest.
    double PredictedTime = 0.0;
    double PredictedAlloc = 0.0;
    /// Filled by step().
    CellMeasurement Measured;
    bool Done = false;
  };

  std::shared_ptr<const PerformanceModel> Incumbent;
  RecalibrationOptions Options;
  std::vector<Cell> Cells;
  size_t NextCell = 0;
};

/// Loads the trace at \p TracePath, recalibrates against \p Incumbent
/// and — only when the candidate passes the held-out gate — atomically
/// installs the artifact at \p ArtifactPath (conventionally beside the
/// selection store, e.g. `<store>.model`). Fleet telemetry counters
/// (Recalibrations, Promotions, PromotionsRejected) are recorded either
/// way.
RecalibrationResult
recalibrateFromTraceFile(const std::string &TracePath,
                         std::shared_ptr<const PerformanceModel> Incumbent,
                         const std::string &ArtifactPath,
                         RecalibrationOptions Options = {},
                         std::string *Error = nullptr);

/// Background recalibration riding the engine's reporter thread: one
/// measurement cell per report tick, then one fit/validate/install at
/// the end — the whole corpus is spread across ticks so no single tick
/// stalls the background thread for long. Wrap the application's sink
/// (or {}) with sink() and install the result via
/// SwitchEngine::setReporter / Switch::setReporter.
class BackgroundRecalibrator {
public:
  BackgroundRecalibrator(OpTrace Trace,
                         std::shared_ptr<const PerformanceModel> Incumbent,
                         std::string ArtifactPath,
                         RecalibrationOptions Options = {});

  /// A reporter sink that chains to \p Inner (may be empty) and then
  /// advances the recalibration by one cell. The returned callable
  /// shares this object's state — keep the BackgroundRecalibrator alive
  /// while the reporter is installed.
  std::function<void(const TelemetrySnapshot &)>
  sink(std::function<void(const TelemetrySnapshot &)> Inner = {});

  /// True once the run finished (promoted or not).
  bool finished() const;

  /// The outcome, once finished.
  std::optional<RecalibrationResult> result() const;

private:
  void tick();

  mutable std::mutex Mutex;
  Recalibrator Work;
  std::string ArtifactPath;
  std::optional<RecalibrationResult> Outcome;
};

} // namespace fleet
} // namespace cswitch

#endif // CSWITCH_FLEET_RECALIBRATOR_H
