//===- FleetSync.cpp - Store push/pull over HTTP --------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetSync.h"

#include "support/Telemetry.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace cswitch;
using namespace cswitch::fleet;

namespace {

bool fail(std::string *Error, std::string Message) {
  if (Error)
    *Error = std::move(Message);
  return false;
}

struct ParsedUrl {
  std::string Host;
  std::string Port;
  std::string Path;
};

/// Parses `http://host[:port][/path]`. HTTPS is out of scope by design
/// (the endpoint binds loopback; fleet topologies that need transport
/// security front it with a local proxy).
bool parseUrl(const std::string &Url, ParsedUrl &Out, std::string *Error) {
  constexpr std::string_view Scheme = "http://";
  if (Url.compare(0, Scheme.size(), Scheme) != 0)
    return fail(Error, "unsupported URL (expected http://): " + Url);
  std::string Rest = Url.substr(Scheme.size());
  size_t Slash = Rest.find('/');
  std::string HostPort =
      Slash == std::string::npos ? Rest : Rest.substr(0, Slash);
  Out.Path = Slash == std::string::npos ? "/" : Rest.substr(Slash);
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos) {
    Out.Host = HostPort;
    Out.Port = "80";
  } else {
    Out.Host = HostPort.substr(0, Colon);
    Out.Port = HostPort.substr(Colon + 1);
  }
  if (Out.Host.empty() || Out.Port.empty())
    return fail(Error, "malformed URL: " + Url);
  return true;
}

/// SplitMix64 — the deterministic jitter source of the backoff.
uint64_t splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void setSocketTimeouts(int Fd, std::chrono::milliseconds Timeout) {
  timeval Tv = {};
  Tv.tv_sec = static_cast<time_t>(Timeout.count() / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((Timeout.count() % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

/// Connects with a bounded wait (non-blocking connect + poll) so a
/// black-holed peer costs RequestTimeout, not the kernel's minutes-long
/// default.
int connectWithTimeout(const ParsedUrl &Url,
                       std::chrono::milliseconds Timeout,
                       std::string *Error) {
  addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Resolved = nullptr;
  int Rc = ::getaddrinfo(Url.Host.c_str(), Url.Port.c_str(), &Hints,
                         &Resolved);
  if (Rc != 0) {
    fail(Error, "cannot resolve " + Url.Host + ": " + gai_strerror(Rc));
    return -1;
  }
  int Fd = -1;
  for (addrinfo *Ai = Resolved; Ai; Ai = Ai->ai_next) {
    Fd = ::socket(Ai->ai_family, Ai->ai_socktype | SOCK_CLOEXEC,
                  Ai->ai_protocol);
    if (Fd < 0)
      continue;
    int Flags = ::fcntl(Fd, F_GETFL, 0);
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
    if (::connect(Fd, Ai->ai_addr, Ai->ai_addrlen) == 0)
      break;
    if (errno == EINPROGRESS) {
      pollfd Pfd = {Fd, POLLOUT, 0};
      int Ready = ::poll(&Pfd, 1, static_cast<int>(Timeout.count()));
      int SoError = 0;
      socklen_t Len = sizeof(SoError);
      if (Ready == 1 &&
          ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoError, &Len) == 0 &&
          SoError == 0)
        break;
    }
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Resolved);
  if (Fd < 0) {
    fail(Error, "cannot connect to " + Url.Host + ":" + Url.Port);
    return -1;
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags & ~O_NONBLOCK);
  setSocketTimeouts(Fd, Timeout);
  return Fd;
}

bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// One request attempt: connect, send, read to EOF (HTTP/1.0 with
/// Connection: close), parse status + body. Size-capped while reading.
bool requestOnce(const ParsedUrl &Url, const std::string &Request,
                 size_t MaxResponseBytes,
                 std::chrono::milliseconds Timeout, HttpResponse &Out,
                 bool &Oversize, std::string *Error) {
  Oversize = false;
  int Fd = connectWithTimeout(Url, Timeout, Error);
  if (Fd < 0)
    return false;
  if (!sendAll(Fd, Request.data(), Request.size())) {
    ::close(Fd);
    return fail(Error, "send failed: " + std::string(std::strerror(errno)));
  }
  std::string Response;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      break;
    if (N < 0) {
      ::close(Fd);
      return fail(Error,
                  "receive failed: " + std::string(std::strerror(errno)));
    }
    if (Response.size() + static_cast<size_t>(N) > MaxResponseBytes) {
      ::close(Fd);
      Oversize = true;
      return fail(Error, "response exceeds size limit");
    }
    Response.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);

  // "HTTP/1.x NNN reason\r\n headers \r\n\r\n body"
  if (Response.compare(0, 5, "HTTP/") != 0)
    return fail(Error, "malformed response (no status line)");
  size_t Space = Response.find(' ');
  if (Space == std::string::npos || Space + 4 > Response.size())
    return fail(Error, "malformed response (no status code)");
  int Status = 0;
  for (size_t I = Space + 1; I != Space + 4; ++I) {
    char C = Response[I];
    if (C < '0' || C > '9')
      return fail(Error, "malformed response (bad status code)");
    Status = Status * 10 + (C - '0');
  }
  size_t BodyStart;
  if (size_t P = Response.find("\r\n\r\n"); P != std::string::npos)
    BodyStart = P + 4;
  else if (size_t Q = Response.find("\n\n"); Q != std::string::npos)
    BodyStart = Q + 2;
  else
    return fail(Error, "malformed response (no header terminator)");
  Out.Status = Status;
  Out.Body = Response.substr(BodyStart);
  return true;
}

/// Runs one request with the retry/backoff policy. Only transport
/// failures retry; any parsed response (any status) is final.
bool requestWithRetries(const ParsedUrl &Url, const std::string &Request,
                        const FleetSyncOptions &Options, HttpResponse &Out,
                        bool &Oversize, std::string *Error) {
  uint64_t Jitter = Options.JitterSeed;
  for (unsigned Attempt = 0;; ++Attempt) {
    if (requestOnce(Url, Request, Options.MaxResponseBytes,
                    Options.RequestTimeout, Out, Oversize, Error))
      return true;
    if (Oversize || Attempt == Options.MaxRetries)
      return false; // Oversize is a policy rejection, not flakiness.
    FleetStats Delta;
    Delta.Retries = 1;
    FleetRegistry::global().record(Delta);
    // Jittered exponential backoff: Base * 2^Attempt * uniform[0.5, 1.5).
    double Uniform =
        0.5 + static_cast<double>(splitMix64(Jitter) >> 11) /
                  static_cast<double>(1ull << 53);
    auto Sleep = std::chrono::duration_cast<std::chrono::milliseconds>(
        Options.BackoffBase * (1u << std::min(Attempt, 10u)) * Uniform);
    std::this_thread::sleep_for(Sleep);
  }
}

std::string buildRequest(const char *Method, const ParsedUrl &Url,
                         std::string_view Body) {
  std::string Request = Method;
  Request += " ";
  Request += Url.Path;
  Request += " HTTP/1.0\r\nHost: ";
  Request += Url.Host;
  Request += "\r\nConnection: close\r\n";
  if (Body.data() != nullptr) {
    Request += "Content-Type: application/octet-stream\r\n";
    Request += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  }
  Request += "\r\n";
  Request.append(Body.data() ? Body.data() : "", Body.size());
  return Request;
}

} // namespace

bool cswitch::fleet::httpGet(const std::string &Url, HttpResponse &Out,
                             const FleetSyncOptions &Options,
                             std::string *Error) {
  ParsedUrl Parsed;
  if (!parseUrl(Url, Parsed, Error))
    return false;
  bool Oversize = false;
  return requestWithRetries(Parsed, buildRequest("GET", Parsed, {}), Options,
                            Out, Oversize, Error);
}

bool cswitch::fleet::httpPost(const std::string &Url, std::string_view Body,
                              HttpResponse &Out,
                              const FleetSyncOptions &Options,
                              std::string *Error) {
  ParsedUrl Parsed;
  if (!parseUrl(Url, Parsed, Error))
    return false;
  bool Oversize = false;
  return requestWithRetries(Parsed, buildRequest("POST", Parsed, Body),
                            Options, Out, Oversize, Error);
}

bool cswitch::fleet::pullStore(const std::string &Url,
                               std::vector<StoreSite> &Out,
                               const FleetSyncOptions &Options,
                               std::string *Error) {
  Out.clear();
  ParsedUrl Parsed;
  FleetStats Delta;
  std::string LocalError;
  std::string *Err = Error ? Error : &LocalError;
  bool Ok = false;
  bool Oversize = false;
  HttpResponse Response;
  if (parseUrl(Url, Parsed, Err) &&
      requestWithRetries(Parsed, buildRequest("GET", Parsed, {}), Options,
                         Response, Oversize, Err)) {
    if (Response.Status != 200) {
      *Err = "peer answered " + std::to_string(Response.Status) + ": " +
             Response.Body;
    } else if (decodeStore(Response.Body, Out, Err)) {
      Ok = true;
    } else {
      // Version skew is incompatibility (an upgraded peer), everything
      // else is a malformed document.
      if (Err->find("unsupported cswitch-store version") !=
          std::string::npos)
        Delta.RejectedIncompatible = 1;
      else
        Delta.RejectedMalformed = 1;
    }
  } else if (Oversize) {
    Delta.RejectedOversize = 1;
  }
  if (Ok)
    Delta.Pulls = 1;
  else
    Delta.PullFailures = 1;
  FleetRegistry::global().record(Delta);
  return Ok;
}

bool cswitch::fleet::pushStore(const std::string &Url,
                               const std::vector<StoreSite> &Sites,
                               const FleetSyncOptions &Options,
                               std::string *Error) {
  std::string LocalError;
  std::string *Err = Error ? Error : &LocalError;
  FleetStats Delta;
  HttpResponse Response;
  bool Ok = httpPost(Url, encodeStore(Sites), Response, Options, Err);
  if (Ok && Response.Status != 200) {
    *Err = "peer answered " + std::to_string(Response.Status) + ": " +
           Response.Body;
    Ok = false;
  }
  if (Ok)
    Delta.Pushes = 1;
  else
    Delta.PushFailures = 1;
  FleetRegistry::global().record(Delta);
  return Ok;
}
