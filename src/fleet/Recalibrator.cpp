//===- Recalibrator.cpp - On-device cost-model recalibration --------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "fleet/Recalibrator.h"

#include "replay/Replayer.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

using namespace cswitch;
using namespace cswitch::fleet;

namespace {

/// Correction factors are clamped to this range: a fit asking for more
/// than a 64x rescale says the measurement or the trace is broken, not
/// that the shipped model is off by that much.
constexpr double MinAlpha = 1.0 / 64.0;
constexpr double MaxAlpha = 64.0;

unsigned bucketOf(uint64_t MaxSize) {
  unsigned Bucket = 0;
  while (MaxSize != 0) {
    ++Bucket;
    MaxSize >>= 1;
  }
  return Bucket; // floor(log2(size)) + 1; 0 for empty collections.
}

/// Relative prediction error of one (predicted, measured) pair.
double relativeError(double Predicted, double Measured) {
  return std::abs(Predicted - Measured) / std::max(Measured, 1.0);
}

CellMeasurement measureByReplay(uint64_t Seed, AbstractionKind Kind,
                                unsigned Variant, const OpTrace &Slice) {
  ReplayOptions Opts;
  Opts.Mode = ReplayMode::Fixed;
  Opts.Seed = Seed;
  Opts.Threads = 1;
  switch (Kind) {
  case AbstractionKind::List:
    Opts.FixedList = Variant;
    break;
  case AbstractionKind::Set:
    Opts.FixedSet = Variant;
    break;
  case AbstractionKind::Map:
    Opts.FixedMap = Variant;
    break;
  }
  ReplayResult Result = Replayer(Slice, Opts).run();
  return {Result.ElapsedNanos, Result.AllocatedBytes};
}

} // namespace

Recalibrator::Recalibrator(OpTrace Trace,
                           std::shared_ptr<const PerformanceModel> Incumbent,
                           RecalibrationOptions Options)
    : Incumbent(std::move(Incumbent)), Options(std::move(Options)) {
  if (this->Options.HoldoutModulus < 2)
    this->Options.HoldoutModulus = 2;

  // Pass 1: per recorded instance, its site, max size and op count.
  struct InstanceInfo {
    uint64_t MaxSize = 0;
    uint64_t Ops = 0;
  };
  std::map<std::pair<uint32_t, uint32_t>, InstanceInfo> Instances;
  for (const TraceOp &Op : Trace.Ops) {
    InstanceInfo &Info = Instances[{Op.Site, Op.Instance}];
    ++Info.Ops;
    Info.MaxSize = std::max<uint64_t>(Info.MaxSize, Op.Size);
  }

  // Pass 2: group instances into (abstraction, log2-size bucket, slice)
  // sub-traces.
  struct GroupKey {
    AbstractionKind Kind;
    unsigned Bucket;
    bool Holdout;
    bool operator<(const GroupKey &Other) const {
      return std::tie(Kind, Bucket, Holdout) <
             std::tie(Other.Kind, Other.Bucket, Other.Holdout);
    }
  };
  std::map<GroupKey, std::set<std::pair<uint32_t, uint32_t>>> Groups;
  for (const auto &[Key, Info] : Instances) {
    if (Key.first >= Trace.Sites.size())
      continue; // Malformed reference; the decoder rejects these anyway.
    GroupKey Group{Trace.Sites[Key.first].Kind, bucketOf(Info.MaxSize),
                   Key.second % this->Options.HoldoutModulus == 0};
    Groups[Group].insert(Key);
  }

  // Pass 3: one shared sub-trace per group, one cell per sequential
  // variant of the group's abstraction (the concurrent tier is
  // analytic-only, DESIGN.md §11 — never re-fitted from replay).
  for (const auto &[Group, Members] : Groups) {
    auto Slice = std::make_shared<OpTrace>();
    Slice->Sites = Trace.Sites;
    for (const TraceOp &Op : Trace.Ops)
      if (Members.count({Op.Site, Op.Instance}))
        Slice->Ops.push_back(Op);
    if (Slice->Ops.size() < this->Options.MinCellOps)
      continue;
    Slice->InstancesSampled = Members.size();

    // The incumbent's prediction of this slice is variant-dependent but
    // shares the per-instance profiles; aggregate once.
    std::vector<SiteProfile> Profiles = aggregateTrace(*Slice);
    for (unsigned Variant = 0;
         Variant != firstConcurrentVariant(Group.Kind); ++Variant) {
      Cell C;
      C.Kind = Group.Kind;
      C.Variant = Variant;
      C.Bucket = Group.Bucket;
      C.Holdout = Group.Holdout;
      C.Slice = Slice;
      for (const SiteProfile &Site : Profiles) {
        if (Site.Kind != Group.Kind)
          continue;
        for (const WorkloadProfile &Profile : Site.Profiles) {
          C.PredictedTime += this->Incumbent->totalCost(
              {Group.Kind, Variant}, Profile, CostDimension::Time);
          C.PredictedAlloc += this->Incumbent->totalCost(
              {Group.Kind, Variant}, Profile, CostDimension::Alloc);
        }
      }
      Cells.push_back(std::move(C));
    }
  }
}

bool Recalibrator::step() {
  if (NextCell == Cells.size())
    return false;
  Cell &C = Cells[NextCell++];
  C.Measured = Options.Measure
                   ? Options.Measure(C.Kind, C.Variant, *C.Slice)
                   : measureByReplay(Options.Seed, C.Kind, C.Variant,
                                     *C.Slice);
  C.Done = true;
  return true;
}

RecalibrationResult Recalibrator::finish(uint64_t FitTimestamp) const {
  RecalibrationResult Result;
  Result.CellsMeasured = NextCell;

  // Least squares through the origin per (variant, dimension): the
  // incumbent's predictions p_i against the measurements m_i of the fit
  // cells give the multiplicative correction alpha = Σ m·p / Σ p².
  struct VariantFit {
    double SumMPTime = 0.0, SumPPTime = 0.0, SumMMTime = 0.0;
    double SumMPAlloc = 0.0, SumPPAlloc = 0.0, SumMMAlloc = 0.0;
    double AlphaTime = 1.0, AlphaAlloc = 1.0;
    double ResidualTime = 0.0, ResidualAlloc = 0.0;
    bool Fitted = false;
  };
  std::map<std::pair<unsigned, unsigned>, VariantFit> Fits;
  for (const Cell &C : Cells) {
    if (!C.Done || C.Holdout)
      continue;
    VariantFit &Fit =
        Fits[{static_cast<unsigned>(C.Kind), C.Variant}];
    double MTime = static_cast<double>(C.Measured.ElapsedNanos);
    double MAlloc = static_cast<double>(C.Measured.AllocatedBytes);
    Fit.SumMPTime += MTime * C.PredictedTime;
    Fit.SumPPTime += C.PredictedTime * C.PredictedTime;
    Fit.SumMMTime += MTime * MTime;
    Fit.SumMPAlloc += MAlloc * C.PredictedAlloc;
    Fit.SumPPAlloc += C.PredictedAlloc * C.PredictedAlloc;
    Fit.SumMMAlloc += MAlloc * MAlloc;
  }
  for (auto &[Key, Fit] : Fits) {
    if (Fit.SumPPTime <= 0.0 && Fit.SumPPAlloc <= 0.0)
      continue;
    auto Clamped = [](double Alpha) {
      if (!std::isfinite(Alpha) || Alpha <= 0.0)
        return 1.0;
      return std::clamp(Alpha, MinAlpha, MaxAlpha);
    };
    Fit.AlphaTime =
        Fit.SumPPTime > 0.0 ? Clamped(Fit.SumMPTime / Fit.SumPPTime) : 1.0;
    Fit.AlphaAlloc =
        Fit.SumPPAlloc > 0.0 ? Clamped(Fit.SumMPAlloc / Fit.SumPPAlloc)
                             : 1.0;
    Fit.Fitted = true;
    ++Result.VariantsRecalibrated;
  }
  // Post-fit relative RMS residual per (variant, dimension), attached to
  // the rescaled artifact rows.
  for (const Cell &C : Cells) {
    if (!C.Done || C.Holdout)
      continue;
    auto It = Fits.find({static_cast<unsigned>(C.Kind), C.Variant});
    if (It == Fits.end() || !It->second.Fitted)
      continue;
    VariantFit &Fit = It->second;
    double ETime = static_cast<double>(C.Measured.ElapsedNanos) -
                   Fit.AlphaTime * C.PredictedTime;
    double EAlloc = static_cast<double>(C.Measured.AllocatedBytes) -
                    Fit.AlphaAlloc * C.PredictedAlloc;
    Fit.ResidualTime += ETime * ETime;
    Fit.ResidualAlloc += EAlloc * EAlloc;
  }
  for (auto &[Key, Fit] : Fits) {
    if (!Fit.Fitted)
      continue;
    Fit.ResidualTime = std::sqrt(Fit.ResidualTime /
                                 std::max(Fit.SumMMTime, 1.0));
    Fit.ResidualAlloc = std::sqrt(Fit.ResidualAlloc /
                                  std::max(Fit.SumMMAlloc, 1.0));
  }

  // Candidate model: the incumbent with Time/Alloc rows of fitted
  // sequential variants rescaled; Energy, Contention and everything
  // unfitted carried over verbatim.
  ModelArtifact Candidate = artifactFromModel(*Incumbent);
  for (ModelArtifact::Row &Row : Candidate.Rows) {
    auto It = Fits.find({static_cast<unsigned>(Row.Kind), Row.Variant});
    if (It == Fits.end() || !It->second.Fitted ||
        isConcurrentVariant(Row.Kind, Row.Variant))
      continue;
    if (Row.Dim == CostDimension::Time) {
      Row.Cost = Row.Cost.scaled(It->second.AlphaTime);
      Row.Residual = It->second.ResidualTime;
    } else if (Row.Dim == CostDimension::Alloc) {
      Row.Cost = Row.Cost.scaled(It->second.AlphaAlloc);
      Row.Residual = It->second.ResidualAlloc;
    }
  }

  // Held-out validation: mean relative prediction error of incumbent
  // vs. candidate on the cells neither ever fitted. The candidate's
  // prediction is the incumbent's scaled by the variant's alpha.
  double IncumbentSum = 0.0, CandidateSum = 0.0;
  size_t HoldoutTerms = 0;
  for (const Cell &C : Cells) {
    if (!C.Done || !C.Holdout)
      continue;
    double AlphaTime = 1.0, AlphaAlloc = 1.0;
    auto It = Fits.find({static_cast<unsigned>(C.Kind), C.Variant});
    if (It != Fits.end() && It->second.Fitted) {
      AlphaTime = It->second.AlphaTime;
      AlphaAlloc = It->second.AlphaAlloc;
    }
    double MTime = static_cast<double>(C.Measured.ElapsedNanos);
    double MAlloc = static_cast<double>(C.Measured.AllocatedBytes);
    IncumbentSum += relativeError(C.PredictedTime, MTime);
    IncumbentSum += relativeError(C.PredictedAlloc, MAlloc);
    CandidateSum += relativeError(AlphaTime * C.PredictedTime, MTime);
    CandidateSum += relativeError(AlphaAlloc * C.PredictedAlloc, MAlloc);
    HoldoutTerms += 2;
  }

  Candidate.HostFingerprint = hostFingerprint();
  Candidate.FitTimestamp = FitTimestamp;
  Result.Artifact = std::move(Candidate);

  if (Result.VariantsRecalibrated == 0) {
    Result.Reason = "no variant had enough fit measurements";
    return Result;
  }
  if (HoldoutTerms == 0) {
    Result.Reason = "no held-out cells to validate against";
    return Result;
  }
  Result.IncumbentResidual = IncumbentSum / HoldoutTerms;
  Result.CandidateResidual = CandidateSum / HoldoutTerms;
  Result.Artifact.HoldoutResidual = Result.CandidateResidual;
  if (Result.CandidateResidual >
      Result.IncumbentResidual + Options.PromotionEpsilon) {
    Result.Reason = "held-out residual regressed past the incumbent";
    return Result;
  }
  Result.Promoted = true;
  return Result;
}

namespace {

void recordRecalibration(const RecalibrationResult &Result) {
  FleetStats Delta;
  Delta.Recalibrations = 1;
  if (Result.Promoted)
    Delta.Promotions = 1;
  else
    Delta.PromotionsRejected = 1;
  FleetRegistry::global().record(Delta);
}

uint64_t nowUnixSeconds() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                   std::chrono::system_clock::now()
                                       .time_since_epoch())
                                   .count());
}

} // namespace

RecalibrationResult cswitch::fleet::recalibrateFromTraceFile(
    const std::string &TracePath,
    std::shared_ptr<const PerformanceModel> Incumbent,
    const std::string &ArtifactPath, RecalibrationOptions Options,
    std::string *Error) {
  RecalibrationResult Result;
  OpTrace Trace;
  if (!readTraceFromFile(TracePath, Trace, Error)) {
    Result.Reason = "cannot read trace";
    return Result;
  }
  Recalibrator Work(std::move(Trace), std::move(Incumbent),
                    std::move(Options));
  Result = Work.run(nowUnixSeconds());
  if (Result.Promoted &&
      !writeModelArtifactToFile(ArtifactPath, Result.Artifact, Error)) {
    Result.Promoted = false;
    Result.Reason = "cannot install artifact";
  }
  recordRecalibration(Result);
  return Result;
}

BackgroundRecalibrator::BackgroundRecalibrator(
    OpTrace Trace, std::shared_ptr<const PerformanceModel> Incumbent,
    std::string ArtifactPath, RecalibrationOptions Options)
    : Work(std::move(Trace), std::move(Incumbent), std::move(Options)),
      ArtifactPath(std::move(ArtifactPath)) {}

std::function<void(const TelemetrySnapshot &)> BackgroundRecalibrator::sink(
    std::function<void(const TelemetrySnapshot &)> Inner) {
  return [this, Inner = std::move(Inner)](const TelemetrySnapshot &Snapshot) {
    if (Inner)
      Inner(Snapshot);
    tick();
  };
}

void BackgroundRecalibrator::tick() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Outcome)
    return;
  if (Work.step())
    return; // One cell per tick: low-priority background progress.
  RecalibrationResult Result = Work.finish(nowUnixSeconds());
  std::string Error;
  if (Result.Promoted &&
      !writeModelArtifactToFile(ArtifactPath, Result.Artifact, &Error)) {
    Result.Promoted = false;
    Result.Reason = "cannot install artifact: " + Error;
  }
  recordRecalibration(Result);
  Outcome = std::move(Result);
}

bool BackgroundRecalibrator::finished() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Outcome.has_value();
}

std::optional<RecalibrationResult> BackgroundRecalibrator::result() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Outcome;
}
