//===- ModelArtifact.cpp - Versioned recalibrated-model artifact ----------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "fleet/ModelArtifact.h"

#include "store/StoreFormat.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/utsname.h>
#include <unistd.h>
#define CSWITCH_FLEET_POSIX 1
#endif

using namespace cswitch;
using namespace cswitch::fleet;

namespace {

constexpr char Magic[] = "cswitch-model-v2"; // 16 bytes, no terminator.
constexpr size_t MagicSize = 16;
constexpr uint64_t FormatVersion = 2;

/// Pre-allocation guard while decoding untrusted counts (same policy as
/// the store format): growth beyond this must be paid for by input
/// bytes.
constexpr size_t MaxReserve = 1 << 16;

void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out += static_cast<char>((Value & 0x7f) | 0x80);
    Value >>= 7;
  }
  Out += static_cast<char>(Value);
}

void putDouble(std::string &Out, double Value) {
  uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  for (int Byte = 0; Byte != 8; ++Byte)
    Out += static_cast<char>((Bits >> (8 * Byte)) & 0xFFu);
}

void putCrc(std::string &Out, std::string_view Payload) {
  uint32_t Crc = storeCrc32(Payload);
  for (int Byte = 0; Byte != 4; ++Byte)
    Out += static_cast<char>((Crc >> (8 * Byte)) & 0xFFu);
}

/// Bounded byte reader (the store format's Reader, plus doubles).
class Reader {
public:
  Reader(std::string_view Bytes) : Cur(Bytes.data()), End(Cur + Bytes.size()) {}

  bool varint(uint64_t &Out) {
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Cur == End)
        return false;
      uint8_t Byte = static_cast<uint8_t>(*Cur++);
      Out |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return true;
    }
    return false; // More than 10 continuation bytes: corrupt.
  }

  bool bytes(size_t N, std::string &Out) {
    if (static_cast<size_t>(End - Cur) < N)
      return false;
    Out.assign(Cur, N);
    Cur += N;
    return true;
  }

  bool view(size_t N, std::string_view &Out) {
    if (static_cast<size_t>(End - Cur) < N)
      return false;
    Out = std::string_view(Cur, N);
    Cur += N;
    return true;
  }

  bool byte(uint8_t &Out) {
    if (Cur == End)
      return false;
    Out = static_cast<uint8_t>(*Cur++);
    return true;
  }

  bool f64(double &Out) {
    if (static_cast<size_t>(End - Cur) < 8)
      return false;
    uint64_t Bits = 0;
    for (int Byte = 0; Byte != 8; ++Byte)
      Bits |= static_cast<uint64_t>(static_cast<uint8_t>(Cur[Byte]))
              << (8 * Byte);
    Cur += 8;
    std::memcpy(&Out, &Bits, sizeof(Out));
    return true;
  }

  bool crcOf(std::string_view Payload) {
    uint32_t Stored = 0;
    for (int Byte = 0; Byte != 4; ++Byte) {
      uint8_t B = 0;
      if (!byte(B))
        return false;
      Stored |= static_cast<uint32_t>(B) << (8 * Byte);
    }
    return Stored == storeCrc32(Payload);
  }

  bool atEnd() const { return Cur == End; }

private:
  const char *Cur;
  const char *End;
};

bool fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return false;
}

std::string encodeHeaderPayload(const ModelArtifact &Artifact) {
  std::string Out;
  putVarint(Out, Artifact.HostFingerprint.size());
  Out += Artifact.HostFingerprint;
  for (int Byte = 0; Byte != 8; ++Byte)
    Out += static_cast<char>((Artifact.FitTimestamp >> (8 * Byte)) & 0xFFu);
  putDouble(Out, Artifact.HoldoutResidual);
  return Out;
}

std::string encodeRowPayload(const ModelArtifact::Row &Row) {
  std::string Out;
  Out += static_cast<char>(static_cast<unsigned>(Row.Kind));
  putVarint(Out, Row.Variant);
  putVarint(Out, static_cast<uint64_t>(Row.Op));
  Out += static_cast<char>(static_cast<unsigned>(Row.Dim));
  const std::vector<double> &Coeffs = Row.Cost.coefficients();
  putVarint(Out, Coeffs.size());
  for (double Coeff : Coeffs)
    putDouble(Out, Coeff);
  putDouble(Out, Row.Residual);
  return Out;
}

bool decodeHeaderPayload(std::string_view Payload, ModelArtifact &Out,
                         std::string *Error) {
  Reader In(Payload);
  uint64_t FingerprintLen = 0;
  if (!In.varint(FingerprintLen) ||
      !In.bytes(FingerprintLen, Out.HostFingerprint))
    return fail(Error, "truncated host fingerprint");
  Out.FitTimestamp = 0;
  for (int Byte = 0; Byte != 8; ++Byte) {
    uint8_t B = 0;
    if (!In.byte(B))
      return fail(Error, "truncated fit timestamp");
    Out.FitTimestamp |= static_cast<uint64_t>(B) << (8 * Byte);
  }
  if (!In.f64(Out.HoldoutResidual))
    return fail(Error, "truncated holdout residual");
  if (!std::isfinite(Out.HoldoutResidual) || Out.HoldoutResidual < 0.0)
    return fail(Error, "non-finite holdout residual");
  if (!In.atEnd())
    return fail(Error, "oversized header payload");
  return true;
}

bool decodeRowPayload(std::string_view Payload, ModelArtifact::Row &Row,
                      std::string *Error) {
  Reader In(Payload);
  uint8_t Kind = 0;
  if (!In.byte(Kind) || Kind >= NumAbstractionKinds)
    return fail(Error, "bad abstraction kind");
  Row.Kind = static_cast<AbstractionKind>(Kind);
  uint64_t Variant = 0;
  if (!In.varint(Variant) || Variant >= numVariantsOf(Row.Kind))
    return fail(Error, "bad variant index");
  Row.Variant = static_cast<unsigned>(Variant);
  uint64_t Op = 0;
  if (!In.varint(Op) || Op >= NumOperationKinds)
    return fail(Error, "bad operation kind");
  Row.Op = static_cast<OperationKind>(Op);
  uint8_t Dim = 0;
  if (!In.byte(Dim) || Dim >= NumCostDimensions)
    return fail(Error, "bad cost dimension");
  Row.Dim = static_cast<CostDimension>(Dim);
  uint64_t CoeffCount = 0;
  if (!In.varint(CoeffCount))
    return fail(Error, "truncated coefficient count");
  if (CoeffCount > MaxArtifactCoefficients)
    return fail(Error, "oversized polynomial");
  std::vector<double> Coeffs(CoeffCount);
  for (double &Coeff : Coeffs) {
    if (!In.f64(Coeff))
      return fail(Error, "truncated coefficients");
    if (!std::isfinite(Coeff))
      return fail(Error, "non-finite coefficient");
  }
  Row.Cost = Polynomial(std::move(Coeffs));
  if (!In.f64(Row.Residual))
    return fail(Error, "truncated row residual");
  if (!std::isfinite(Row.Residual) || Row.Residual < 0.0)
    return fail(Error, "non-finite row residual");
  if (!In.atEnd())
    return fail(Error, "oversized row payload");
  return true;
}

} // namespace

bool ModelArtifact::Row::orderedBefore(const Row &A, const Row &B) {
  if (A.Kind != B.Kind)
    return A.Kind < B.Kind;
  if (A.Variant != B.Variant)
    return A.Variant < B.Variant;
  if (A.Op != B.Op)
    return A.Op < B.Op;
  return A.Dim < B.Dim;
}

std::string cswitch::fleet::hostFingerprint() {
  std::string Node = "unknown";
  std::string Arch = "unknown";
#ifdef CSWITCH_FLEET_POSIX
  utsname Uts = {};
  if (::uname(&Uts) == 0) {
    Node = Uts.nodename;
    Arch = Uts.machine;
  }
#endif
  unsigned Cores = std::thread::hardware_concurrency();
  return Node + "/" + Arch + "/c" + std::to_string(Cores ? Cores : 1);
}

std::string cswitch::fleet::encodeModelArtifact(const ModelArtifact &Artifact) {
  // Canonical order regardless of the caller's: encode a sorted view.
  std::vector<size_t> Order(Artifact.Rows.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::sort(Order.begin(), Order.end(), [&Artifact](size_t A, size_t B) {
    return ModelArtifact::Row::orderedBefore(Artifact.Rows[A],
                                             Artifact.Rows[B]);
  });

  std::string Out;
  Out.reserve(MagicSize + 32 + Artifact.Rows.size() * 56);
  Out.append(Magic, MagicSize);
  putVarint(Out, FormatVersion);
  std::string Header = encodeHeaderPayload(Artifact);
  putVarint(Out, Header.size());
  Out += Header;
  putCrc(Out, Header);
  putVarint(Out, Artifact.Rows.size());
  for (size_t I : Order) {
    std::string Payload = encodeRowPayload(Artifact.Rows[I]);
    putVarint(Out, Payload.size());
    Out += Payload;
    putCrc(Out, Payload);
  }
  return Out;
}

bool cswitch::fleet::decodeModelArtifact(std::string_view Bytes,
                                         ModelArtifact &Out,
                                         std::string *Error) {
  Out = ModelArtifact();
  if (Bytes.size() < MagicSize ||
      std::memcmp(Bytes.data(), Magic, MagicSize) != 0)
    return fail(Error, "not a cswitch-model document (bad magic)");
  Reader In(Bytes.substr(MagicSize));

  uint64_t Version = 0;
  if (!In.varint(Version))
    return fail(Error, "truncated version");
  if (Version != FormatVersion) {
    if (Error)
      *Error = "unsupported cswitch-model version " +
               std::to_string(Version) + " (expected " +
               std::to_string(FormatVersion) + ")";
    return false;
  }

  uint64_t HeaderLen = 0;
  std::string_view Header;
  if (!In.varint(HeaderLen) || !In.view(HeaderLen, Header))
    return fail(Error, "truncated header record");
  if (!In.crcOf(Header))
    return fail(Error, "header crc mismatch");
  if (!decodeHeaderPayload(Header, Out, Error)) {
    Out = ModelArtifact();
    return false;
  }

  uint64_t RowCount = 0;
  if (!In.varint(RowCount)) {
    Out = ModelArtifact();
    return fail(Error, "truncated row count");
  }
  Out.Rows.reserve(std::min<uint64_t>(RowCount, MaxReserve));
  for (uint64_t I = 0; I != RowCount; ++I) {
    uint64_t PayloadLen = 0;
    std::string_view Payload;
    if (!In.varint(PayloadLen) || !In.view(PayloadLen, Payload)) {
      Out = ModelArtifact();
      return fail(Error, "truncated row record");
    }
    if (!In.crcOf(Payload)) {
      Out = ModelArtifact();
      return fail(Error, "row crc mismatch");
    }
    ModelArtifact::Row Row;
    if (!decodeRowPayload(Payload, Row, Error)) {
      Out = ModelArtifact();
      return false;
    }
    if (!Out.Rows.empty() &&
        !ModelArtifact::Row::orderedBefore(Out.Rows.back(), Row)) {
      Out = ModelArtifact();
      return fail(Error, "rows out of canonical order");
    }
    Out.Rows.push_back(std::move(Row));
  }

  if (!In.atEnd()) {
    Out = ModelArtifact();
    return fail(Error, "trailing bytes after row records");
  }
  return true;
}

bool cswitch::fleet::writeModelArtifactToFile(const std::string &Path,
                                              const ModelArtifact &Artifact,
                                              std::string *Error) {
  std::string Bytes = encodeModelArtifact(Artifact);
  std::string TmpPath = Path + ".tmp";
#ifdef CSWITCH_FLEET_POSIX
  // Crash-safe replace, mirroring writeStoreToFile: a reader (or a
  // restarting process pointing CSWITCH_MODEL here) observes either the
  // complete old artifact or the complete new one, never a torn write.
  int Fd = ::open(TmpPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    return fail(Error, "cannot create model temp file");
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      return fail(Error, "short write to model temp file");
    }
    Off += static_cast<size_t>(N);
  }
  bool Flushed = ::fsync(Fd) == 0;
  bool Closed = ::close(Fd) == 0;
  if (!Flushed || !Closed ||
      std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    return fail(Error, "cannot replace model file");
  }
  return true;
#else
  {
    std::ofstream OS(TmpPath, std::ios::binary | std::ios::trunc);
    if (!OS)
      return fail(Error, "cannot create model temp file");
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!OS) {
      std::remove(TmpPath.c_str());
      return fail(Error, "short write to model temp file");
    }
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return fail(Error, "cannot replace model file");
  }
  return true;
#endif
}

bool cswitch::fleet::readModelArtifactFromFile(const std::string &Path,
                                               ModelArtifact &Out,
                                               std::string *Error) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    Out = ModelArtifact();
    return fail(Error, "cannot open model file");
  }
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  if (IS.bad()) {
    Out = ModelArtifact();
    return fail(Error, "I/O error reading model file");
  }
  return decodeModelArtifact(Buffer.str(), Out, Error);
}

ModelArtifact cswitch::fleet::artifactFromModel(const PerformanceModel &Model) {
  ModelArtifact Artifact;
  for (unsigned Kind = 0; Kind != NumAbstractionKinds; ++Kind) {
    AbstractionKind Abstraction = static_cast<AbstractionKind>(Kind);
    for (unsigned Variant = 0; Variant != numVariantsOf(Abstraction);
         ++Variant) {
      VariantId Id{Abstraction, Variant};
      for (OperationKind Op : AllOperationKinds)
        for (CostDimension Dim : AllCostDimensions) {
          const Polynomial &Cost = Model.cost(Id, Op, Dim);
          if (Cost.coefficients().empty())
            continue;
          Artifact.Rows.push_back({Abstraction, Variant, Op, Dim, Cost, 0.0});
        }
    }
  }
  return Artifact;
}

PerformanceModel
cswitch::fleet::modelFromArtifact(const ModelArtifact &Artifact) {
  PerformanceModel Model;
  for (const ModelArtifact::Row &Row : Artifact.Rows)
    Model.setCost({Row.Kind, Row.Variant}, Row.Op, Row.Dim, Row.Cost);
  // Artifact fit metadata feeds the decision provenance header
  // (/explain.json, cswitch_top): record which recalibrated model is
  // about to drive selections.
  ModelStats Provenance;
  Provenance.Source = "cswitch-model-v2";
  Provenance.Fingerprint = Artifact.HostFingerprint;
  Provenance.FitTimestamp = Artifact.FitTimestamp;
  Provenance.HoldoutResidual = Artifact.HoldoutResidual;
  ModelRegistry::global().recordInstall(Provenance);
  return Model;
}
