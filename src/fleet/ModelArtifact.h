//===- ModelArtifact.h - Versioned recalibrated-model artifact --*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cswitch-model-v2` binary artifact a fleet replica produces when
/// it recalibrates its performance model on device (DESIGN.md §12): the
/// full set of cost polynomials plus the provenance a consumer needs to
/// decide whether the artifact applies to it — which host fitted it,
/// when, and how well it predicted the held-out trace slice.
///
/// Document layout (LEB128 varints and per-record CRC32 exactly like
/// `cswitch-store-v1`; doubles are 8-byte little-endian IEEE 754):
///
///   magic "cswitch-model-v2" (16 bytes)
///   varint version (2)
///   varint header payload length | header bytes | CRC32 (4 bytes LE)
///     varint fingerprint length | fingerprint bytes
///     8 bytes fit timestamp (unix seconds)
///     8 bytes holdout residual (double)
///   varint row count
///   per row: varint payload length | payload bytes | CRC32 (4 bytes LE)
///     1 byte abstraction kind
///     varint variant index
///     varint operation kind
///     1 byte cost dimension
///     varint coefficient count | coefficients (8 bytes each)
///     8 bytes per-row residual (double)
///
/// The encoding is canonical — rows ordered strictly ascending by
/// (Kind, Variant, Op, Dim) — and the decoder is total: truncation at
/// any offset, bad magic, unknown versions, CRC mismatches, out-of-range
/// enums, non-finite doubles, oversized polynomials, disordered or
/// duplicate rows, and trailing bytes are all rejected with the output
/// left empty. Network peers and the recalibrator's promotion gate both
/// depend on that totality.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_FLEET_MODELARTIFACT_H
#define CSWITCH_FLEET_MODELARTIFACT_H

#include "model/CostModel.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cswitch {
namespace fleet {

/// Largest coefficient vector a row may carry. The model builder fits
/// cubics (4 coefficients); 16 leaves room for growth while keeping a
/// malicious row from forcing large allocations.
constexpr size_t MaxArtifactCoefficients = 16;

/// A recalibrated performance model plus its provenance header.
struct ModelArtifact {
  /// One (variant, operation, dimension) cost polynomial with the
  /// root-mean-square residual of its fit (0 when carried over from the
  /// incumbent unmeasured).
  struct Row {
    AbstractionKind Kind = AbstractionKind::List;
    unsigned Variant = 0;
    OperationKind Op = OperationKind::Populate;
    CostDimension Dim = CostDimension::Time;
    Polynomial Cost;
    double Residual = 0.0;

    /// Canonical document order: ascending (Kind, Variant, Op, Dim).
    static bool orderedBefore(const Row &A, const Row &B);

    bool operator==(const Row &Other) const = default;
  };

  /// Host the fit ran on (see hostFingerprint()); consumers refuse
  /// artifacts fitted elsewhere.
  std::string HostFingerprint;
  /// Unix seconds of the fit (caller-provided — the artifact layer
  /// never reads the clock itself).
  uint64_t FitTimestamp = 0;
  /// Mean relative prediction error of the candidate model on the
  /// held-out trace slice at promotion time.
  double HoldoutResidual = 0.0;
  std::vector<Row> Rows;

  bool operator==(const ModelArtifact &Other) const = default;
};

/// Identity of this host for artifact provenance: node name, machine
/// architecture and hardware concurrency ("node/x86_64/c32"). Stable
/// across runs on one machine; distinct machines (or core-count
/// changes) produce distinct fingerprints.
std::string hostFingerprint();

/// Serializes \p Artifact into the canonical `cswitch-model-v2`
/// encoding (rows are sorted; duplicate (Kind, Variant, Op, Dim) keys
/// are a caller bug and produce a document the decoder rejects).
std::string encodeModelArtifact(const ModelArtifact &Artifact);

/// Parses a `cswitch-model-v2` document. \returns true on success;
/// false on any malformation, with \p Out cleared and \p Error (when
/// non-null) describing the first problem found.
bool decodeModelArtifact(std::string_view Bytes, ModelArtifact &Out,
                         std::string *Error = nullptr);

/// Atomically replaces \p Path with the encoding of \p Artifact
/// (temporary sibling + fsync + rename, like writeStoreToFile) so a
/// crash mid-install never leaves a torn model beside the store.
bool writeModelArtifactToFile(const std::string &Path,
                              const ModelArtifact &Artifact,
                              std::string *Error = nullptr);

/// Reads the artifact at \p Path.
bool readModelArtifactFromFile(const std::string &Path, ModelArtifact &Out,
                               std::string *Error = nullptr);

/// Snapshots every non-empty polynomial of \p Model into artifact rows
/// (residuals zero; header fields left for the caller to fill).
ModelArtifact artifactFromModel(const PerformanceModel &Model);

/// Materializes the artifact's rows as a PerformanceModel.
PerformanceModel modelFromArtifact(const ModelArtifact &Artifact);

} // namespace fleet
} // namespace cswitch

#endif // CSWITCH_FLEET_MODELARTIFACT_H
