//===- FleetSync.h - Store push/pull over HTTP ------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet side of the selection-store sync (DESIGN.md §12): a tiny
/// HTTP/1.0 client that pulls a peer's serialized `cswitch-store-v1`
/// document from its /store endpoint and pushes local documents back,
/// so replicas of one service converge on shared selection knowledge
/// instead of each paying the cold observation ramp alone.
///
/// Robustness is the point, not an afterthought — every network input
/// is untrusted:
///  - per-request connect/send/receive timeouts,
///  - bounded retries with jittered exponential backoff (transport
///    failures only; an HTTP error status is answered by a live peer
///    and never retried),
///  - a hard cap on response size, enforced while reading,
///  - total decoding of pulled documents (decodeStore rejects
///    truncation, CRC mismatches and version skew),
///  - a FleetStats telemetry counter for every failure class.
///
/// The server half lives in Switch::serveMetrics (enable with
/// SwitchConfig::Fleet.ServeStore); `tools/cswitch_fleet` fronts both
/// halves on the command line.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_FLEET_FLEETSYNC_H
#define CSWITCH_FLEET_FLEETSYNC_H

#include "store/StoreFormat.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cswitch {
namespace fleet {

/// Transport knobs of the fleet HTTP client.
struct FleetSyncOptions {
  /// Per-request socket timeout (applied to connect, send and receive
  /// independently).
  std::chrono::milliseconds RequestTimeout{2000};
  /// Transport-failure retries after the first attempt. HTTP error
  /// statuses are not retried (the peer answered; asking again cannot
  /// help).
  unsigned MaxRetries = 2;
  /// Base of the jittered exponential backoff between retries (attempt
  /// N sleeps ~ Base * 2^N * uniform[0.5, 1.5)).
  std::chrono::milliseconds BackoffBase{100};
  /// Hard cap on a response (status line + headers + body), enforced
  /// while reading so an unbounded peer cannot balloon memory.
  size_t MaxResponseBytes = 4u << 20;
  /// Seed of the deterministic backoff jitter (so tests replay exact
  /// schedules).
  uint64_t JitterSeed = 0x9e3779b97f4a7c15ull;

  FleetSyncOptions &requestTimeout(std::chrono::milliseconds Value) {
    RequestTimeout = Value;
    return *this;
  }
  FleetSyncOptions &maxRetries(unsigned Value) {
    MaxRetries = Value;
    return *this;
  }
  FleetSyncOptions &backoffBase(std::chrono::milliseconds Value) {
    BackoffBase = Value;
    return *this;
  }
  FleetSyncOptions &maxResponseBytes(size_t Value) {
    MaxResponseBytes = Value;
    return *this;
  }
};

/// One parsed HTTP response.
struct HttpResponse {
  int Status = 0;
  std::string Body;
};

/// Issues one GET \p Url (an `http://host:port/path` URL) with the
/// options' timeout/retry/size policy. \returns true when a response —
/// any status — was received and parsed; transport failure after all
/// retries returns false with \p Error set.
bool httpGet(const std::string &Url, HttpResponse &Out,
             const FleetSyncOptions &Options = {},
             std::string *Error = nullptr);

/// Issues one POST \p Url with \p Body. Same semantics as httpGet.
bool httpPost(const std::string &Url, std::string_view Body,
              HttpResponse &Out, const FleetSyncOptions &Options = {},
              std::string *Error = nullptr);

/// Pulls and decodes a peer's store document from \p Url (conventionally
/// `http://127.0.0.1:<port>/store`). Counts Pulls/PullFailures plus the
/// failure class (RejectedOversize, RejectedMalformed,
/// RejectedIncompatible for version skew) in the fleet telemetry.
bool pullStore(const std::string &Url, std::vector<StoreSite> &Out,
               const FleetSyncOptions &Options = {},
               std::string *Error = nullptr);

/// Encodes \p Sites and pushes the document to \p Url. A non-200 answer
/// fails with the peer's diagnostic in \p Error. Counts
/// Pushes/PushFailures.
bool pushStore(const std::string &Url, const std::vector<StoreSite> &Sites,
               const FleetSyncOptions &Options = {},
               std::string *Error = nullptr);

} // namespace fleet
} // namespace cswitch

#endif // CSWITCH_FLEET_FLEETSYNC_H
