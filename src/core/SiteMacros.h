//===- SiteMacros.h - One-line allocation-site instrumentation -*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-line instrumentation of an allocation site with a *static*
/// context — the deployment mode the paper recommends (§4.3: "a static
/// context is created as soon as the class is loaded ... usage of static
/// context greatly reduces the potential overhead") and the exact shape
/// its automated parser emits. Replace
///
///   std::vector<int64_t> Rows;
///
/// with
///
///   auto Rows = CSWITCH_LIST(int64_t, cswitch::ListVariant::ArrayList);
///
/// and the site is adaptive: the macro creates one function-local static
/// ListContext named after `file:line` (thread-safe since C++11) and
/// hands out facades from it. CSWITCH_SET / CSWITCH_MAP are the set and
/// map counterparts.
///
/// Macros are used here — against the usual preference for functions —
/// because only a macro can capture the caller's `__FILE__:__LINE__` as
/// the site identity and materialize a distinct static context per
/// occurrence.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_SITEMACROS_H
#define CSWITCH_CORE_SITEMACROS_H

#include "core/Switch.h"

#define CSWITCH_DETAIL_STRINGIFY_IMPL(x) #x
#define CSWITCH_DETAIL_STRINGIFY(x) CSWITCH_DETAIL_STRINGIFY_IMPL(x)

/// "file.cpp:42" for the expansion point.
#define CSWITCH_SITE_NAME __FILE__ ":" CSWITCH_DETAIL_STRINGIFY(__LINE__)

/// Creates a cswitch::List<T> from this site's static adaptive context.
#define CSWITCH_LIST(T, InitialVariant)                                    \
  ([]() {                                                                  \
    static auto CswitchSiteCtx =                                           \
        ::cswitch::Switch::makeContext<::cswitch::List<T>>(                \
            CSWITCH_SITE_NAME, InitialVariant);                            \
    return CswitchSiteCtx->createList();                                   \
  }())

/// Creates a cswitch::Set<T> from this site's static adaptive context.
#define CSWITCH_SET(T, InitialVariant)                                     \
  ([]() {                                                                  \
    static auto CswitchSiteCtx =                                           \
        ::cswitch::Switch::makeContext<::cswitch::Set<T>>(                 \
            CSWITCH_SITE_NAME, InitialVariant);                            \
    return CswitchSiteCtx->createSet();                                    \
  }())

/// Creates a cswitch::Map<K, V> from this site's static adaptive context.
#define CSWITCH_MAP(K, V, InitialVariant)                                  \
  ([]() {                                                                  \
    static auto CswitchSiteCtx =                                           \
        ::cswitch::Switch::makeContext<::cswitch::Map<K, V>>(              \
            CSWITCH_SITE_NAME, InitialVariant);                            \
    return CswitchSiteCtx->createMap();                                    \
  }())

#endif // CSWITCH_CORE_SITEMACROS_H
