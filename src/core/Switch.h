//===- Switch.h - Top-level CollectionSwitch API -----------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level convenience API mirroring the paper's usage (Fig. 4):
///
/// \code
///   static auto Ctx = Switch::makeContext<List<int>>(
///       "MyFile.cpp:42", ListVariant::ArrayList);
///   auto MyList = Ctx->createList();
/// \endcode
///
/// makeContext<Collection>() is the single generic entry point for every
/// abstraction (List<T>, Set<T>, Map<K, V>), used together with the
/// fluent ContextOptions builder:
///
/// \code
///   auto Ctx = Switch::makeContext<Map<int, int>>(
///       "cache", MapVariant::ChainedHashMap, SelectionRule::allocRule(),
///       ContextOptions{}.windowSize(50).finishedRatio(0.5)
///                       .concurrency(Concurrency::Auto));
/// \endcode
///
/// Process-wide configuration flows through one call: configure() takes
/// a SwitchConfig bundling the EngineOptions (worker pool, NUMA
/// pinning) with the ContextOptions every subsequent makeContext()
/// defaults to — including the monitoring rate startEngine() paces the
/// background thread at. There is no second configuration path.
///
/// Contexts created here share the process-wide performance model (the
/// built-in default until setModel() installs a measured one), default to
/// the Rtime rule, and are automatically registered with — and on
/// destruction unregistered from — the global SwitchEngine.
///
/// Observability: the facade also fronts the telemetry subsystem —
/// stats() for the aggregate counters, telemetry() for the full
/// engine-wide snapshot (serializable via support/MetricsExport.h),
/// drainEvents() for consuming the framework event log, and
/// setReporter() for periodic background reports.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_SWITCH_H
#define CSWITCH_CORE_SWITCH_H

#include "core/AllocationContext.h"
#include "core/SwitchEngine.h"
#include "support/EventLog.h"

#include <memory>
#include <optional>
#include <string>

namespace cswitch {

/// Fleet-sync knobs of the metrics endpoint (DESIGN.md §12): whether
/// serveMetrics() additionally exposes the selection store to peers,
/// and how large a pushed store document may be.
struct FleetOptions {
  /// When true, serveMetrics() registers /store:
  ///   GET  — the installed store's current knowledge as a serialized
  ///          `cswitch-store-v1` document,
  ///   POST — flock-merge of a peer's document into the local store.
  /// Off by default: a replica only joins the fleet when asked to.
  bool ServeStore = false;
  /// Upper bound on a pushed document; larger bodies are refused with
  /// 413 before being read.
  size_t MaxPushBytes = 4u << 20;

  FleetOptions &serveStore(bool Value = true) {
    ServeStore = Value;
    return *this;
  }
  FleetOptions &maxPushBytes(size_t Value) {
    MaxPushBytes = Value;
    return *this;
  }
};

/// The one process-wide configuration bundle: engine-level options plus
/// the context defaults every makeContext() call falls back to when no
/// explicit ContextOptions is passed (see Switch::configure).
struct SwitchConfig {
  /// Worker-pool size and NUMA pinning of periodic evaluation
  /// (DESIGN.md §10).
  EngineOptions Engine;
  /// Defaults for contexts created without explicit options — window
  /// geometry, concurrency mode, and the monitoring rate startEngine()
  /// paces the background thread at.
  ContextOptions Context;
  /// Fleet store-sync exposure of the metrics endpoint (DESIGN.md §12).
  FleetOptions Fleet;
  /// Optional path to a `cswitch-tuning-v1` artifact (produced by the
  /// offline autotuner, DESIGN.md §13) applied on top of the rest of
  /// the configuration: tuned adaptive/contention thresholds install
  /// into AdaptiveConfig, tuned window geometry overlays the context
  /// defaults. An unreadable or invalid artifact is counted in
  /// telemetry and warned about — it never wedges startup. Empty =
  /// none (the `CSWITCH_TUNING` environment variable, checked once per
  /// process, fills the same role for unmodified binaries).
  std::string Tuning;
};

/// Deleter that unregisters a context from the global engine before
/// destroying it, so `Switch::makeContext` handles compose safely.
struct UnregisteringDeleter {
  void operator()(AllocationContextBase *Context) const {
    if (!Context)
      return;
    SwitchEngine::global().unregisterContext(Context);
    delete Context;
  }
};

/// Owning handle for an engine-registered context.
template <typename ContextT>
using ContextHandle = std::unique_ptr<ContextT, UnregisteringDeleter>;

/// Maps a collection facade type (List<T>, Set<T>, Map<K, V>) — or the
/// context type itself — to its allocation-context machinery. The trait
/// behind Switch::makeContext<>; specialize it to plug custom
/// abstractions into the generic factory.
template <typename Collection> struct ContextTraits;

template <typename T> struct ContextTraits<List<T>> {
  using Context = ListContext<T>;
  using Variant = ListVariant;
};
template <typename T> struct ContextTraits<Set<T>> {
  using Context = SetContext<T>;
  using Variant = SetVariant;
};
template <typename K, typename V> struct ContextTraits<Map<K, V>> {
  using Context = MapContext<K, V>;
  using Variant = MapVariant;
};
// Context types name themselves, so makeContext<ListContext<T>> also
// works.
template <typename T>
struct ContextTraits<ListContext<T>> : ContextTraits<List<T>> {};
template <typename T>
struct ContextTraits<SetContext<T>> : ContextTraits<Set<T>> {};
template <typename K, typename V>
struct ContextTraits<MapContext<K, V>> : ContextTraits<Map<K, V>> {};

/// Facade over the process-wide CollectionSwitch runtime.
class Switch {
public:
  /// The process-wide performance model consulted by contexts created
  /// through this facade. Defaults to the built-in analytic model.
  static std::shared_ptr<const PerformanceModel> model();

  /// Installs \p Model as the process-wide model (e.g. one measured by
  /// the ModelBuilder for this machine). Existing contexts keep the
  /// model they were created with.
  static void setModel(std::shared_ptr<const PerformanceModel> Model);

  /// Sets the parallelism of periodic context evaluation (see
  /// SwitchEngine::setEvaluationThreads): 0/1 = deterministic
  /// sequential evaluation (default), N > 1 = worker pool.
  static void setEvaluationThreads(size_t Threads) {
    SwitchEngine::global().setEvaluationThreads(Threads);
  }

  /// Current evaluateAll() parallelism of the global engine.
  static size_t evaluationThreads() {
    return SwitchEngine::global().evaluationThreads();
  }

  /// Applies \p Config process-wide: the engine options take effect on
  /// the global engine immediately, and the context options become the
  /// defaults of every subsequent makeContext() call that passes none —
  /// the single configuration path for engine and contexts alike.
  static void configure(const SwitchConfig &Config);

  /// The ContextOptions makeContext() currently defaults to (the
  /// built-in defaults until configure() installs others).
  static ContextOptions defaultContextOptions();

  /// Applies the `cswitch-tuning-v1` artifact at \p Path process-wide:
  /// adaptive and contention thresholds install into the global
  /// AdaptiveConfig (validated — see setThresholdsChecked), window
  /// geometry overlays the makeContext() context defaults, and the
  /// artifact's provenance lands in telemetry (TelemetrySnapshot::
  /// Tuning). Returns false — with \p Error describing why, and the
  /// failure counted — when the file is unreadable or the decoder or
  /// validators reject it; the running configuration is unchanged in
  /// that case.
  static bool applyTuning(const std::string &Path,
                          std::string *Error = nullptr);

  /// Starts the global engine's background evaluation/reporter thread
  /// at \p MonitoringRate (paper §4.3). No-op when already running.
  static void startEngine(std::chrono::milliseconds MonitoringRate) {
    SwitchEngine::global().start(MonitoringRate);
  }

  /// Starts the background thread at the configured default rate
  /// (ContextOptions::MonitoringRate of the installed SwitchConfig;
  /// 50 ms out of the box).
  static void startEngine() {
    SwitchEngine::global().start(defaultContextOptions().MonitoringRate);
  }

  /// Stops the background thread (persisting the store and flushing a
  /// final telemetry report; see SwitchEngine::stop).
  static void stopEngine() { SwitchEngine::global().stop(); }

  //===--------------------------------------------------------------===//
  // Pull-based introspection endpoint (src/obs/)
  //===--------------------------------------------------------------===//

  /// Starts the opt-in metrics endpoint on 127.0.0.1:\p Port (0 picks
  /// an ephemeral port). Serves
  ///   /metrics        OpenMetrics text (per-site latency summaries,
  ///                   monitoring counters) — curl/Prometheus/
  ///                   `cswitch_top watch` scrape this,
  ///   /snapshot.json  the MetricsExport JSON telemetry document,
  ///   /trace.json     the Perfetto decision-timeline trace,
  ///   /explain.json   the decision provenance ledger (schema
  ///                   cswitch-explain-v1, DESIGN.md §14): per-site
  ///                   decision records with per-dimension cost
  ///                   breakdowns, threshold margins and artifact
  ///                   provenance — `cswitch_explain` consumes this,
  ///   /store          (only with SwitchConfig::Fleet.ServeStore) the
  ///                   selection store for fleet peers — GET serves the
  ///                   serialized document, POST merges a pushed one.
  /// \returns the bound port, or 0 when the endpoint could not start
  /// (port in use, or already serving). One endpoint per process.
  static uint16_t serveMetrics(uint16_t Port = 9100);

  /// Stops the metrics endpoint (no-op when not serving).
  static void stopMetricsServer();

  /// Port the endpoint is bound to, or 0 when not serving.
  static uint16_t metricsPort();

  /// Aggregate monitoring counters over every registered context: the
  /// runtime's own report of how much work the always-on monitoring
  /// pipeline performed (paper §5.3's overhead discussion). Bracket a
  /// workload with two calls and subtract (EngineStats operator-) for
  /// interval behaviour.
  static EngineStats stats() { return SwitchEngine::global().stats(); }

  /// Full engine-wide observability snapshot (aggregate + per-context
  /// breakdown + event-log counters); serialize it with
  /// support/MetricsExport.h.
  static TelemetrySnapshot telemetry() {
    return SwitchEngine::global().telemetry();
  }

  /// Consumes and returns the framework events recorded since the last
  /// drainEvents() (or EventLog clear). This is how benchmarks harvest
  /// transition trails (Table 6) without reaching into EventLog::global().
  static std::vector<Event> drainEvents() {
    return EventLog::global().drain();
  }

  /// Installs the periodic telemetry reporter on the global engine (see
  /// SwitchEngine::setReporter; reports flow while the background
  /// thread runs).
  static void setReporter(ReporterOptions Options) {
    SwitchEngine::global().setReporter(std::move(Options));
  }

  /// Removes the periodic telemetry reporter.
  static void clearReporter() { SwitchEngine::global().clearReporter(); }

  /// Installs the persistent selection store backed by \p Path on the
  /// global engine and loads it (see SwitchEngine::loadStore). Returns
  /// false when the document was corrupt — the process degrades to cold
  /// start, it never fails.
  static bool loadStore(const std::string &Path, StoreOptions Options = {}) {
    return SwitchEngine::global().loadStore(Path, Options);
  }

  /// The installed selection store (null when none).
  static std::shared_ptr<SelectionStore> store() {
    return SwitchEngine::global().store();
  }

  /// Merges this process's contributions into the store file now.
  static bool persistStore() {
    return SwitchEngine::global().persistStore();
  }

  /// Persists (best effort) and uninstalls the selection store.
  static void closeStore() { SwitchEngine::global().closeStore(); }

  /// Serialized `cswitch-store-v1` export of the installed store's
  /// current knowledge (see SwitchEngine::exportStore). Empty when no
  /// store is installed.
  static std::string exportStore() {
    return SwitchEngine::global().exportStore();
  }

  /// Flock-merges a peer's serialized store document into the installed
  /// store (see SwitchEngine::mergeRemoteStore).
  static bool mergeRemoteStore(std::string_view Bytes,
                               std::string *Error = nullptr,
                               uint64_t *SitesMerged = nullptr) {
    return SwitchEngine::global().mergeRemoteStore(Bytes, Error, SitesMerged);
  }

  /// Creates and registers an allocation context for \p Collection
  /// (List<T>, Set<T> or Map<K, V>) — the sole public construction
  /// path. When \p Options is not passed, the context uses the defaults
  /// installed by configure().
  template <typename Collection>
  static ContextHandle<typename ContextTraits<Collection>::Context>
  makeContext(std::string Name,
              typename ContextTraits<Collection>::Variant Initial,
              SelectionRule Rule = SelectionRule::timeRule(),
              std::optional<ContextOptions> Options = std::nullopt) {
    using ContextT = typename ContextTraits<Collection>::Context;
    ContextHandle<ContextT> Ctx(new ContextT(
        std::move(Name), Initial, model(), std::move(Rule),
        Options ? *Options : defaultContextOptions()));
    SwitchEngine::global().registerContext(Ctx.get());
    return Ctx;
  }
};

} // namespace cswitch

#endif // CSWITCH_CORE_SWITCH_H
