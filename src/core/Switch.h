//===- Switch.h - Top-level CollectionSwitch API -----------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level convenience API mirroring the paper's usage (Fig. 4):
///
/// \code
///   static auto Ctx = Switch::createListContext<int>(
///       "MyFile.cpp:42", ListVariant::ArrayList);
///   auto MyList = Ctx->createList();
/// \endcode
///
/// Contexts created here share the process-wide performance model (the
/// built-in default until setModel() installs a measured one), default to
/// the Rtime rule, and are automatically registered with — and on
/// destruction unregistered from — the global SwitchEngine.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_SWITCH_H
#define CSWITCH_CORE_SWITCH_H

#include "core/AllocationContext.h"
#include "core/SwitchEngine.h"

#include <memory>

namespace cswitch {

/// Deleter that unregisters a context from the global engine before
/// destroying it, so `Switch::create*Context` handles compose safely.
struct UnregisteringDeleter {
  void operator()(AllocationContextBase *Context) const {
    if (!Context)
      return;
    SwitchEngine::global().unregisterContext(Context);
    delete Context;
  }
};

/// Owning handle for an engine-registered context.
template <typename ContextT>
using ContextHandle = std::unique_ptr<ContextT, UnregisteringDeleter>;

/// Facade over the process-wide CollectionSwitch runtime.
class Switch {
public:
  /// The process-wide performance model consulted by contexts created
  /// through this facade. Defaults to the built-in analytic model.
  static std::shared_ptr<const PerformanceModel> model();

  /// Installs \p Model as the process-wide model (e.g. one measured by
  /// the ModelBuilder for this machine). Existing contexts keep the
  /// model they were created with.
  static void setModel(std::shared_ptr<const PerformanceModel> Model);

  /// Sets the parallelism of periodic context evaluation (see
  /// SwitchEngine::setEvaluationThreads): 0/1 = deterministic
  /// sequential evaluation (default), N > 1 = worker pool.
  static void setEvaluationThreads(size_t Threads) {
    SwitchEngine::global().setEvaluationThreads(Threads);
  }

  /// Current evaluateAll() parallelism of the global engine.
  static size_t evaluationThreads() {
    return SwitchEngine::global().evaluationThreads();
  }

  /// Aggregate monitoring counters over every registered context: the
  /// runtime's own report of how much work the always-on monitoring
  /// pipeline performed (paper §5.3's overhead discussion).
  static EngineStats stats() { return SwitchEngine::global().stats(); }

  /// Creates and registers an adaptive list allocation context.
  template <typename T>
  static ContextHandle<ListContext<T>>
  createListContext(std::string Name, ListVariant Initial,
                    SelectionRule Rule = SelectionRule::timeRule(),
                    ContextOptions Options = {}) {
    ContextHandle<ListContext<T>> Ctx(new ListContext<T>(
        std::move(Name), Initial, model(), std::move(Rule), Options));
    SwitchEngine::global().registerContext(Ctx.get());
    return Ctx;
  }

  /// Creates and registers an adaptive set allocation context.
  template <typename T>
  static ContextHandle<SetContext<T>>
  createSetContext(std::string Name, SetVariant Initial,
                   SelectionRule Rule = SelectionRule::timeRule(),
                   ContextOptions Options = {}) {
    ContextHandle<SetContext<T>> Ctx(new SetContext<T>(
        std::move(Name), Initial, model(), std::move(Rule), Options));
    SwitchEngine::global().registerContext(Ctx.get());
    return Ctx;
  }

  /// Creates and registers an adaptive map allocation context.
  template <typename K, typename V>
  static ContextHandle<MapContext<K, V>>
  createMapContext(std::string Name, MapVariant Initial,
                   SelectionRule Rule = SelectionRule::timeRule(),
                   ContextOptions Options = {}) {
    ContextHandle<MapContext<K, V>> Ctx(new MapContext<K, V>(
        std::move(Name), Initial, model(), std::move(Rule), Options));
    SwitchEngine::global().registerContext(Ctx.get());
    return Ctx;
  }
};

} // namespace cswitch

#endif // CSWITCH_CORE_SWITCH_H
