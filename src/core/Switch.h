//===- Switch.h - Top-level CollectionSwitch API -----------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level convenience API mirroring the paper's usage (Fig. 4):
///
/// \code
///   static auto Ctx = Switch::makeContext<List<int>>(
///       "MyFile.cpp:42", ListVariant::ArrayList);
///   auto MyList = Ctx->createList();
/// \endcode
///
/// makeContext<Collection>() is the single generic entry point for every
/// abstraction (List<T>, Set<T>, Map<K, V>); the older per-abstraction
/// factories (createListContext / createSetContext / createMapContext)
/// are kept as thin wrappers so existing call sites compile unchanged,
/// but new code should prefer the generic spelling together with the
/// fluent ContextOptions builder:
///
/// \code
///   auto Ctx = Switch::makeContext<Map<int, int>>(
///       "cache", MapVariant::ChainedHashMap, SelectionRule::allocRule(),
///       ContextOptions{}.windowSize(50).finishedRatio(0.5)
///                       .logEvents(false));
/// \endcode
///
/// Contexts created here share the process-wide performance model (the
/// built-in default until setModel() installs a measured one), default to
/// the Rtime rule, and are automatically registered with — and on
/// destruction unregistered from — the global SwitchEngine.
///
/// Observability: the facade also fronts the telemetry subsystem —
/// stats() for the aggregate counters, telemetry() for the full
/// engine-wide snapshot (serializable via support/MetricsExport.h),
/// drainEvents() for consuming the framework event log, and
/// setReporter() for periodic background reports.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_SWITCH_H
#define CSWITCH_CORE_SWITCH_H

#include "core/AllocationContext.h"
#include "core/SwitchEngine.h"
#include "support/EventLog.h"

#include <memory>

namespace cswitch {

/// Deleter that unregisters a context from the global engine before
/// destroying it, so `Switch::create*Context` handles compose safely.
struct UnregisteringDeleter {
  void operator()(AllocationContextBase *Context) const {
    if (!Context)
      return;
    SwitchEngine::global().unregisterContext(Context);
    delete Context;
  }
};

/// Owning handle for an engine-registered context.
template <typename ContextT>
using ContextHandle = std::unique_ptr<ContextT, UnregisteringDeleter>;

/// Maps a collection facade type (List<T>, Set<T>, Map<K, V>) — or the
/// context type itself — to its allocation-context machinery. The trait
/// behind Switch::makeContext<>; specialize it to plug custom
/// abstractions into the generic factory.
template <typename Collection> struct ContextTraits;

template <typename T> struct ContextTraits<List<T>> {
  using Context = ListContext<T>;
  using Variant = ListVariant;
};
template <typename T> struct ContextTraits<Set<T>> {
  using Context = SetContext<T>;
  using Variant = SetVariant;
};
template <typename K, typename V> struct ContextTraits<Map<K, V>> {
  using Context = MapContext<K, V>;
  using Variant = MapVariant;
};
// Context types name themselves, so makeContext<ListContext<T>> also
// works.
template <typename T>
struct ContextTraits<ListContext<T>> : ContextTraits<List<T>> {};
template <typename T>
struct ContextTraits<SetContext<T>> : ContextTraits<Set<T>> {};
template <typename K, typename V>
struct ContextTraits<MapContext<K, V>> : ContextTraits<Map<K, V>> {};

/// Facade over the process-wide CollectionSwitch runtime.
class Switch {
public:
  /// The process-wide performance model consulted by contexts created
  /// through this facade. Defaults to the built-in analytic model.
  static std::shared_ptr<const PerformanceModel> model();

  /// Installs \p Model as the process-wide model (e.g. one measured by
  /// the ModelBuilder for this machine). Existing contexts keep the
  /// model they were created with.
  static void setModel(std::shared_ptr<const PerformanceModel> Model);

  /// Sets the parallelism of periodic context evaluation (see
  /// SwitchEngine::setEvaluationThreads): 0/1 = deterministic
  /// sequential evaluation (default), N > 1 = worker pool.
  static void setEvaluationThreads(size_t Threads) {
    SwitchEngine::global().setEvaluationThreads(Threads);
  }

  /// Current evaluateAll() parallelism of the global engine.
  static size_t evaluationThreads() {
    return SwitchEngine::global().evaluationThreads();
  }

  /// Applies an EngineOptions bundle to the global engine (worker-pool
  /// size, NUMA pinning of evaluation workers; see DESIGN.md §10).
  static void configureEngine(const EngineOptions &Options) {
    SwitchEngine::global().configure(Options);
  }

  /// Starts the global engine's background evaluation/reporter thread
  /// at \p MonitoringRate (paper §4.3, default 50 ms). No-op when
  /// already running.
  static void startEngine(std::chrono::milliseconds MonitoringRate =
                              std::chrono::milliseconds(50)) {
    SwitchEngine::global().start(MonitoringRate);
  }

  /// Overload taking the rate from ContextOptions::MonitoringRate, so
  /// one options object configures contexts and engine pacing alike.
  static void startEngine(const ContextOptions &Options) {
    SwitchEngine::global().start(Options.MonitoringRate);
  }

  /// Stops the background thread (persisting the store and flushing a
  /// final telemetry report; see SwitchEngine::stop).
  static void stopEngine() { SwitchEngine::global().stop(); }

  //===--------------------------------------------------------------===//
  // Pull-based introspection endpoint (src/obs/)
  //===--------------------------------------------------------------===//

  /// Starts the opt-in metrics endpoint on 127.0.0.1:\p Port (0 picks
  /// an ephemeral port). Serves
  ///   /metrics        OpenMetrics text (per-site latency summaries,
  ///                   monitoring counters) — curl/Prometheus/
  ///                   `cswitch_top watch` scrape this,
  ///   /snapshot.json  the MetricsExport JSON telemetry document,
  ///   /trace.json     the Perfetto decision-timeline trace.
  /// \returns the bound port, or 0 when the endpoint could not start
  /// (port in use, or already serving). One endpoint per process.
  static uint16_t serveMetrics(uint16_t Port = 9100);

  /// Stops the metrics endpoint (no-op when not serving).
  static void stopMetricsServer();

  /// Port the endpoint is bound to, or 0 when not serving.
  static uint16_t metricsPort();

  /// Aggregate monitoring counters over every registered context: the
  /// runtime's own report of how much work the always-on monitoring
  /// pipeline performed (paper §5.3's overhead discussion). Bracket a
  /// workload with two calls and subtract (EngineStats operator-) for
  /// interval behaviour.
  static EngineStats stats() { return SwitchEngine::global().stats(); }

  /// Full engine-wide observability snapshot (aggregate + per-context
  /// breakdown + event-log counters); serialize it with
  /// support/MetricsExport.h.
  static TelemetrySnapshot telemetry() {
    return SwitchEngine::global().telemetry();
  }

  /// Consumes and returns the framework events recorded since the last
  /// drainEvents() (or EventLog clear). This is how benchmarks harvest
  /// transition trails (Table 6) without reaching into EventLog::global().
  static std::vector<Event> drainEvents() {
    return EventLog::global().drain();
  }

  /// Installs the periodic telemetry reporter on the global engine (see
  /// SwitchEngine::setReporter; reports flow while the background
  /// thread runs).
  static void setReporter(ReporterOptions Options) {
    SwitchEngine::global().setReporter(std::move(Options));
  }

  /// Removes the periodic telemetry reporter.
  static void clearReporter() { SwitchEngine::global().clearReporter(); }

  /// Installs the persistent selection store backed by \p Path on the
  /// global engine and loads it (see SwitchEngine::loadStore). Returns
  /// false when the document was corrupt — the process degrades to cold
  /// start, it never fails.
  static bool loadStore(const std::string &Path, StoreOptions Options = {}) {
    return SwitchEngine::global().loadStore(Path, Options);
  }

  /// The installed selection store (null when none).
  static std::shared_ptr<SelectionStore> store() {
    return SwitchEngine::global().store();
  }

  /// Merges this process's contributions into the store file now.
  static bool persistStore() {
    return SwitchEngine::global().persistStore();
  }

  /// Persists (best effort) and uninstalls the selection store.
  static void closeStore() { SwitchEngine::global().closeStore(); }

  /// Creates and registers an allocation context for \p Collection
  /// (List<T>, Set<T> or Map<K, V>) — the single generic factory all
  /// abstraction-specific spellings forward to.
  template <typename Collection>
  static ContextHandle<typename ContextTraits<Collection>::Context>
  makeContext(std::string Name,
              typename ContextTraits<Collection>::Variant Initial,
              SelectionRule Rule = SelectionRule::timeRule(),
              ContextOptions Options = {}) {
    using ContextT = typename ContextTraits<Collection>::Context;
    ContextHandle<ContextT> Ctx(new ContextT(
        std::move(Name), Initial, model(), std::move(Rule), Options));
    SwitchEngine::global().registerContext(Ctx.get());
    return Ctx;
  }

  /// Creates and registers an adaptive list allocation context.
  /// (Deprecated spelling of makeContext<List<T>>; kept so existing
  /// call sites compile unchanged.)
  template <typename T>
  static ContextHandle<ListContext<T>>
  createListContext(std::string Name, ListVariant Initial,
                    SelectionRule Rule = SelectionRule::timeRule(),
                    ContextOptions Options = {}) {
    return makeContext<List<T>>(std::move(Name), Initial, std::move(Rule),
                                Options);
  }

  /// Creates and registers an adaptive set allocation context.
  /// (Deprecated spelling of makeContext<Set<T>>.)
  template <typename T>
  static ContextHandle<SetContext<T>>
  createSetContext(std::string Name, SetVariant Initial,
                   SelectionRule Rule = SelectionRule::timeRule(),
                   ContextOptions Options = {}) {
    return makeContext<Set<T>>(std::move(Name), Initial, std::move(Rule),
                               Options);
  }

  /// Creates and registers an adaptive map allocation context.
  /// (Deprecated spelling of makeContext<Map<K, V>>.)
  template <typename K, typename V>
  static ContextHandle<MapContext<K, V>>
  createMapContext(std::string Name, MapVariant Initial,
                   SelectionRule Rule = SelectionRule::timeRule(),
                   ContextOptions Options = {}) {
    return makeContext<Map<K, V>>(std::move(Name), Initial,
                                  std::move(Rule), Options);
  }
};

} // namespace cswitch

#endif // CSWITCH_CORE_SWITCH_H
