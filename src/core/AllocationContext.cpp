//===- AllocationContext.cpp - Adaptive allocation contexts --------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/AllocationContext.h"

#include "core/SwitchEngine.h"
#include "store/SelectionStore.h"
#include "support/EventLog.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>

using namespace cswitch;

static_assert(NumCostDimensions == obs::ExplainNumDimensions,
              "the provenance ledger's dimension layout mirrors "
              "CostDimension; update obs::ExplainNumDimensions and "
              "explainDimensionName together with the enum");

namespace {

/// Saturating narrowing for the compact window-slot profiles.
uint32_t saturate32(uint64_t Value) {
  return Value > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(Value);
}

/// Bounded-wait helper for the analyzer: a claimer or finisher is
/// between its RoundState CAS and the matching slot-state store, which
/// is a handful of instructions away (or a descheduled thread).
void relaxSpin(unsigned &Spins) {
  if (++Spins < 64)
    return;
  std::this_thread::yield();
}

} // namespace

AllocationContextBase::AllocationContextBase(
    std::string Name, AbstractionKind Kind, unsigned InitialVariantIndex,
    std::shared_ptr<const PerformanceModel> Model, SelectionRule Rule,
    ContextOptions Options)
    : Name(std::move(Name)), Kind(Kind), Model(std::move(Model)),
      Rule(std::move(Rule)), Options(Options),
      Current(InitialVariantIndex) {
  assert(this->Model && "context requires a performance model");
  assert(InitialVariantIndex < numVariantsOf(Kind) &&
         "initial variant out of range");
  assert(this->Options.WindowSize > 0 && "window size must be positive");
  assert(this->Options.WindowSize < UINT32_MAX &&
         "window size must fit the packed assigned counter");
  // Interned in the global registry: same-named sites share one profile
  // across context lifetimes, and the histograms stay out of this
  // context's memory footprint.
  Prof = obs::ProfilingRegistry::global().profile(this->Name);
  // Warm start runs before the window buffers are sized: a hit both
  // seeds Current and shrinks Options.WindowSize.
  applyWarmStart();
  // Concurrent tier: the initial variant (requested or warm-started,
  // possibly from a store written by a sequential run) is coerced into
  // the tier, and the contention sketch is allocated.
  Concurrency Mode = this->Options.ConcurrencyMode;
  if (Mode != Concurrency::None) {
    uint32_t TierMask = concurrencyCandidateMask(Kind, Mode);
    if (!((TierMask >> currentVariantIndex()) & 1u))
      Current.store(concurrentInitialVariant(Kind, Mode),
                    std::memory_order_relaxed);
    if (AdaptiveConfig::global().contention().Enabled)
      Sketch = std::make_unique<ContentionSketch>();
  }
  CandidateMask = concurrencyCandidateMask(Kind, Mode) |
                  (1u << currentVariantIndex());
  Slots = std::make_unique<WindowSlot[]>(2 * this->Options.WindowSize);
  FinishedState[0].Value.store(0, std::memory_order_relaxed);
  FinishedState[1].Value.store(uint64_t(1) << 32,
                              std::memory_order_relaxed);
  for (const Criterion &C : this->Rule.Criteria)
    UsedDimensions[static_cast<size_t>(C.Dimension)] = true;
  // The model is immutable for the lifetime of the context: precompute
  // coverage and the adaptive-variant index so analysis rounds never
  // re-scan polynomials (hasVariant is itself O(1), but the per-round
  // loop disappears entirely).
  size_t NumVariants = numVariantsOf(Kind);
  for (unsigned V = 0; V != NumVariants; ++V) {
    if (this->Model->hasVariant({Kind, V}))
      CoverageMask |= 1u << V;
    if (isAdaptiveVariant(Kind, V))
      AdaptiveIndex = static_cast<int>(V);
  }
  if (this->Options.LogEvents) {
    // Intern once here so every later record() on the evaluation path
    // is allocation-free: events carry these ids, never strings.
    EventLog &Log = EventLog::global();
    LogNameId = Log.intern(this->Name);
    VariantNameIds.reserve(NumVariants);
    for (unsigned V = 0; V != NumVariants; ++V)
      VariantNameIds.push_back(Log.intern(VariantId{Kind, V}.name()));
    // currentVariantIndex(), not InitialVariantIndex: a warm start may
    // already have seeded a different variant.
    Log.record(EventKind::ContextCreated, LogNameId,
               VariantNameIds[currentVariantIndex()]);
  }
  if (this->Options.Recorder)
    RecorderSite = this->Options.Recorder->registerSite(
        this->Name, Kind, currentVariantIndex());
}

AllocationContextBase::~AllocationContextBase() = default;

void AllocationContextBase::applyWarmStart() {
  if (!Options.WarmStart)
    return;
  SelectionStore *Store = Options.Store;
  std::shared_ptr<SelectionStore> EngineStore;
  if (!Store) {
    EngineStore = SwitchEngine::global().store();
    Store = EngineStore.get();
  }
  if (!Store)
    return;
  std::optional<StoreSite> Hit = Store->lookup(Name, Rule.Name, Kind);
  if (!Hit || Hit->Instances == 0)
    return;
  // The store decoder validated Decision against the variant count, so
  // the seed is always instantiable.
  Current.store(Hit->Decision, std::memory_order_relaxed);
  double Factor = std::clamp(Options.WarmWindowFactor, 0.0, 1.0);
  Options.WindowSize = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(Factor * static_cast<double>(Options.WindowSize))));
  WarmStarted = true;
  Store->noteWarmStart();
  if (Options.LogEvents)
    EventLog::global().record(EventKind::WarmStart, Name,
                              VariantId{Kind, Hit->Decision}.name());
  if (obs::ProvenanceRegistry::enabled()) {
    // The warm start skipped the whole pre-convergence analysis: the
    // ledger records the seeded variant so the skip is explainable.
    resolveLedger();
    obs::DecisionRecord Record;
    Record.TimestampNanos = obs::nowNanos();
    Record.Outcome = obs::DecisionOutcome::WarmStartSkipped;
    Record.CurrentVariant = static_cast<int16_t>(Hit->Decision);
    Record.ChosenVariant = static_cast<int16_t>(Hit->Decision);
    Ledger->record(Record);
  }
}

void AllocationContextBase::resolveLedger() {
  if (Ledger)
    return;
  size_t NumVariants = numVariantsOf(Kind);
  std::vector<std::string> Names;
  Names.reserve(NumVariants);
  for (unsigned V = 0; V != NumVariants; ++V)
    Names.push_back(VariantId{Kind, V}.name());
  Ledger = obs::ProvenanceRegistry::global().site(
      Name, abstractionKindName(Kind), Rule.Name, std::move(Names));
  PendingDecision = std::make_unique<obs::DecisionRecord>();
}

WorkloadProfile
AllocationContextBase::aggregateProfile(uint64_t &Instances) const {
  std::lock_guard<std::mutex> Lock(EvalMutex);
  Instances = LifetimeInstances;
  return Lifetime;
}

size_t AllocationContextBase::acquireMonitorSlot() {
  // Continuous profiling is sampled 1-in-64 per thread: the unsampled
  // common case adds a single thread_local decrement to this path.
  const bool Sampled = obs::shouldSampleRecord();
  const uint64_t Start = Sampled ? obs::nowNanos() : 0;

  Hot.add(CreatedIdx);
  size_t Out = NoSlot;
  uint64_t State = RoundState.load(std::memory_order_acquire);
  for (;;) {
    uint32_t Assigned = static_cast<uint32_t>(State);
    // Lock-free fast path: the window of this round is already full —
    // the common steady-state case is a single atomic load.
    if (Assigned >= Options.WindowSize)
      break;
    // Claim slot `Assigned` of the current round. The CAS covers the
    // round bits too: if evaluate() rotates concurrently, the claim
    // retries against the new round instead of landing in a retired
    // window.
    if (RoundState.compare_exchange_weak(State, State + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      uint32_t Round = static_cast<uint32_t>(State >> 32);
      uint32_t Index = static_cast<uint32_t>(State);
      // The claim store publishes slot ownership to the finisher and the
      // analyzer (which spins briefly if it wins the race to this line).
      bufferOf(Round)[Index].State.store(
          slotState(Round, SlotStatus::Claimed), std::memory_order_release);
      Hot.add(MonitoredIdx);
      Out = (static_cast<size_t>(Round) << 32) | Index;
      break;
    }
  }

  if (Sampled)
    Prof->Record.record(obs::nowNanos() - Start, obs::RecordSampleEvery);
  return Out;
}

void AllocationContextBase::onInstanceFinished(
    size_t Slot, const WorkloadProfile &Profile) {
  // Publication is the other half of the monitoring fast path; it
  // shares the Record histogram (and the 1-in-64 sampling) with slot
  // acquisition.
  const bool Sampled = obs::shouldSampleRecord();
  const uint64_t Start = Sampled ? obs::nowNanos() : 0;

  auto Round = static_cast<uint32_t>(Slot >> 32);
  auto Index = static_cast<uint32_t>(Slot & 0xffffffffu);
  assert(Index < Options.WindowSize && "slot out of range");
  WindowSlot &Entry = bufferOf(Round)[Index];

  // Acquire exclusive write access to the slot. Failure means the round
  // was retired and the analyzer closed the slot (or a later round owns
  // it): the profile belongs to an already-analyzed (or abandoned)
  // round and is discarded.
  uint64_t Expected = slotState(Round, SlotStatus::Claimed);
  if (!Entry.State.compare_exchange_strong(
          Expected, slotState(Round, SlotStatus::Writing),
          std::memory_order_acq_rel, std::memory_order_relaxed)) {
    Hot.add(DiscardedIdx);
  } else {
    for (size_t I = 0; I != NumOperationKinds; ++I)
      Entry.Counts[I] = saturate32(Profile.Counts[I]);
    Entry.MaxSize = saturate32(Profile.MaxSize);
    // Release-publish: the analyzer's acquire load of Finished orders the
    // profile write before its reads.
    Entry.State.store(slotState(Round, SlotStatus::Finished),
                      std::memory_order_release);
    Hot.add(FinishedIdx);

    // Count the publication toward this round's finished-ratio gate. The
    // round tag in the counter word makes a stale increment (the round
    // rotated after the publication above) fail and drop out harmlessly.
    std::atomic<uint64_t> &Counter = FinishedState[Round & 1].Value;
    uint64_t Count = Counter.load(std::memory_order_relaxed);
    while (static_cast<uint32_t>(Count >> 32) == Round &&
           !Counter.compare_exchange_weak(Count, Count + 1,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
    }
  }

  if (Sampled)
    Prof->Record.record(obs::nowNanos() - Start, obs::RecordSampleEvery);
}

bool AllocationContextBase::isAdaptiveVariant(AbstractionKind Kind,
                                              unsigned Index) {
  switch (Kind) {
  case AbstractionKind::List:
    return static_cast<ListVariant>(Index) == ListVariant::AdaptiveList;
  case AbstractionKind::Set:
    return static_cast<SetVariant>(Index) == SetVariant::AdaptiveSet;
  case AbstractionKind::Map:
    return static_cast<MapVariant>(Index) == MapVariant::AdaptiveMap;
  }
  return false;
}

size_t
AllocationContextBase::adaptiveThresholdFor(AbstractionKind Kind) const {
  AdaptiveThresholds T = Options.AdaptiveOverride
                             ? *Options.AdaptiveOverride
                             : AdaptiveConfig::global().thresholds();
  switch (Kind) {
  case AbstractionKind::List:
    return T.List;
  case AbstractionKind::Set:
    return T.Set;
  case AbstractionKind::Map:
    return T.Map;
  }
  return 0;
}

std::optional<unsigned> AllocationContextBase::analyzeRound(uint32_t Round,
                                                            size_t Assigned) {
  // Drain the retired buffer: consume published profiles, lock stale
  // stragglers out of unfinished slots, and merge the profiles of
  // instances that peaked at the same maximum size. Sizes repeat
  // heavily in practice (the paper's workloads allocate thousands of
  // same-shaped collections per site), so the merge is what makes cost
  // evaluation O(groups) instead of O(instances).
  Groups.clear();
  GroupIndex.clear();
  WindowSlot *Buffer = bufferOf(Round);
  size_t Consumed = 0;
  for (size_t I = 0; I != Assigned; ++I) {
    WindowSlot &Entry = Buffer[I];
    unsigned Spins = 0;
    bool Consume = false;
    for (;;) {
      uint64_t State = Entry.State.load(std::memory_order_acquire);
      if (State == slotState(Round, SlotStatus::Finished)) {
        Consume = true;
        break;
      }
      if (State == slotState(Round, SlotStatus::Writing)) {
        // A finisher is mid-publication; it completes in a bounded
        // number of instructions.
        relaxSpin(Spins);
        continue;
      }
      if (State == slotState(Round, SlotStatus::Claimed)) {
        // Still alive: close the slot so a late publication is
        // discarded instead of racing with the next reuse.
        if (Entry.State.compare_exchange_strong(
                State, slotState(Round, SlotStatus::Closed),
                std::memory_order_acq_rel, std::memory_order_relaxed))
          break;
        continue;
      }
      if (State == slotState(Round, SlotStatus::Closed))
        break;
      // The slot was claimed via the RoundState CAS but the claim store
      // has not propagated yet; it is at most a context switch away.
      relaxSpin(Spins);
    }
    if (!Consume)
      continue;
    ++Consumed;
    auto [It, Inserted] = GroupIndex.try_emplace(Entry.MaxSize, Groups.size());
    if (Inserted) {
      Groups.emplace_back();
      Groups.back().MaxSize = Entry.MaxSize;
    }
    MergedGroup &Group = Groups[It->second];
    for (size_t Op = 0; Op != NumOperationKinds; ++Op)
      Group.Counts[Op] += Entry.Counts[Op];
  }
  GroupIndex.clear();
  // Fold this round into the lifetime aggregate the selection store
  // persists (EvalMutex is held by evaluate()).
  for (const MergedGroup &G : Groups) {
    for (size_t Op = 0; Op != NumOperationKinds; ++Op)
      Lifetime.Counts[Op] += G.Counts[Op];
    Lifetime.recordSize(G.MaxSize);
  }
  LifetimeInstances += Consumed;
  if (Groups.empty())
    return std::nullopt;

  // Deterministic accumulation order regardless of instance finish
  // order (floating-point sums are order-sensitive).
  std::sort(Groups.begin(), Groups.end(),
            [](const MergedGroup &A, const MergedGroup &B) {
              return A.MaxSize < B.MaxSize;
            });
  uint64_t MinMaxSize = Groups.front().MaxSize;
  uint64_t MaxMaxSize = Groups.back().MaxSize;

  // Memoized total costs: every cost_op,V(s) polynomial is evaluated
  // once per (variant, op, dimension, distinct size) — not once per
  // instance. Variants without model coverage are skipped outright:
  // their total cost would read as zero and they must not compete.
  size_t NumVariants = numVariantsOf(Kind);
  // Contention penalty (DESIGN.md §11): the per-operation extra
  // nanoseconds of each variant's contention polynomial evaluated at
  // the estimated thread count, folded into the time dimension. ~0 at
  // one thread (or before the sketch has a confident estimate).
  double Threads = ContendedThreads.load(std::memory_order_relaxed);
  bool Contended = Sketch != nullptr && Threads > 1.0;
  std::vector<VariantCosts> Costs(NumVariants);
  for (unsigned V = 0; V != NumVariants; ++V) {
    if (!(CoverageMask & CandidateMask & (1u << V))) {
      Costs[V].Eligible = false;
      continue;
    }
    VariantId Id{Kind, V};
    for (CostDimension Dim : AllCostDimensions) {
      if (!UsedDimensions[static_cast<size_t>(Dim)])
        continue;
      double Total = 0.0;
      for (const MergedGroup &G : Groups) {
        double Size = static_cast<double>(G.MaxSize);
        for (OperationKind Op : AllOperationKinds) {
          uint64_t N = G.Counts[static_cast<size_t>(Op)];
          if (N == 0)
            continue;
          double PerOp = Model->operationCost(Id, Op, Dim, Size);
          if (Contended && Dim == CostDimension::Time)
            PerOp += Model->operationCost(
                Id, Op, CostDimension::Contention, Threads);
          Total += static_cast<double>(N) * PerOp;
        }
      }
      Costs[V].Total[static_cast<size_t>(Dim)] = Total;
    }
  }

  // Adaptive-variant gate (§3.2): only a candidate when the observed
  // maximum sizes ranged widely — straddling the adaptive threshold, or
  // spread by at least the configured factor.
  if (AdaptiveIndex >= 0 && Costs[AdaptiveIndex].Eligible) {
    size_t Threshold = adaptiveThresholdFor(Kind);
    bool Straddles = MinMaxSize <= Threshold && MaxMaxSize > Threshold;
    bool WideSpread =
        static_cast<double>(MaxMaxSize) >=
        Options.WideRangeFactor *
            std::max<double>(1.0, static_cast<double>(MinMaxSize));
    Costs[AdaptiveIndex].Eligible = Straddles || WideSpread;
  }

  std::optional<unsigned> Choice = selectVariant(
      Costs, Current.load(std::memory_order_relaxed), Rule);
  if (Ledger)
    capturePendingDecision(Round, Costs, Choice, Threads, Contended,
                           MinMaxSize, MaxMaxSize);
  return Choice;
}

void AllocationContextBase::capturePendingDecision(
    uint32_t Round, const std::vector<VariantCosts> &Costs,
    const std::optional<unsigned> &Choice, double Threads, bool Contended,
    uint64_t MinMaxSize, uint64_t MaxMaxSize) {
  obs::DecisionRecord &R = *PendingDecision;
  R = obs::DecisionRecord();
  R.TimestampNanos = obs::nowNanos();
  R.Round = Round;
  unsigned Cur = Current.load(std::memory_order_relaxed);
  R.CurrentVariant = static_cast<int16_t>(Cur);
  R.ChosenVariant = Choice ? static_cast<int16_t>(*Choice) : int16_t(-1);
  size_t NumCandidates =
      std::min<size_t>(Costs.size(), obs::ExplainMaxCandidates);
  R.NumCandidates = static_cast<uint8_t>(NumCandidates);
  size_t NumCriteria =
      std::min<size_t>(Rule.Criteria.size(), obs::ExplainMaxCriteria);
  R.NumCriteria = static_cast<uint8_t>(NumCriteria);
  for (size_t C = 0; C != NumCriteria; ++C) {
    R.Criteria[C].Dimension =
        static_cast<uint8_t>(Rule.Criteria[C].Dimension);
    R.Criteria[C].Threshold = Rule.Criteria[C].Threshold;
  }
  R.ContendedThreads = Threads;
  R.ContentionFolded = Contended;
  R.AdaptiveIndex = static_cast<int16_t>(AdaptiveIndex);
  size_t Threshold = adaptiveThresholdFor(Kind);
  R.AdaptiveThreshold = static_cast<double>(Threshold);
  R.WideRangeFactor = Options.WideRangeFactor;
  R.MinMaxSize = static_cast<double>(MinMaxSize);
  R.MaxMaxSize = static_cast<double>(MaxMaxSize);
  R.AdaptiveStraddles = MinMaxSize <= Threshold && MaxMaxSize > Threshold;
  R.AdaptiveWide =
      static_cast<double>(MaxMaxSize) >=
      Options.WideRangeFactor *
          std::max<double>(1.0, static_cast<double>(MinMaxSize));

  // Per-candidate breakdowns via a second model pass. Deliberately NOT
  // threaded through the analysis accumulation above: that loop's
  // floating-point order (and its skip of unused dimensions) must stay
  // bit-identical whether or not the ledger is on, so selection
  // decisions cannot shift when an operator flips CSWITCH_EXPLAIN.
  const VariantCosts &CurrentCosts = Costs[Cur];
  WorkloadProfile GroupProfile;
  for (size_t V = 0; V != NumCandidates; ++V) {
    obs::CandidateExplanation &Cand = R.Candidates[V];
    Cand.Covered = (CoverageMask >> V) & 1u;
    Cand.Eligible = Costs[V].Eligible;
    for (size_t D = 0; D != NumCostDimensions; ++D)
      Cand.Total[D] = Costs[V].Total[D];
    Cand.Ratio.fill(-1.0);
    if (!Cand.Covered)
      continue;
    VariantId Id{Kind, static_cast<unsigned>(V)};
    CostVector Sum;
    for (const MergedGroup &G : Groups) {
      GroupProfile.Counts = G.Counts;
      GroupProfile.MaxSize = G.MaxSize;
      CostVector GroupCosts =
          Model->totalCostVector(Id, GroupProfile, Threads);
      for (size_t D = 0; D != NumCostDimensions; ++D)
        Sum.Components[D] += GroupCosts.Components[D];
    }
    for (size_t D = 0; D != NumCostDimensions; ++D)
      Cand.PreFold[D] = Sum.Components[D];
    // Dimensions the rule never accumulated read as zero in the
    // analysis totals; backfill them from the breakdown pass (with the
    // contention fold applied to time, matching the analysis folding)
    // so the recorded totals are complete for every dimension.
    for (size_t D = 0; D != NumCostDimensions; ++D) {
      if (UsedDimensions[D])
        continue;
      double Total = Sum.Components[D];
      if (Contended && D == static_cast<size_t>(CostDimension::Time))
        Total += Sum.Components[
            static_cast<size_t>(CostDimension::Contention)];
      Cand.Total[D] = Total;
    }
  }

  // Criterion ratios, qualification, and the threshold margin: the
  // same arithmetic selectVariant applied, replayed per candidate so
  // the ledger can show *why* each one passed or failed.
  double DecidedMargin = 0.0;
  bool HaveDecidedMargin = false;
  double ClosestKeptMargin = 0.0;
  bool HaveKeptMargin = false;
  for (size_t V = 0; V != NumCandidates; ++V) {
    obs::CandidateExplanation &Cand = R.Candidates[V];
    if (!Cand.Covered)
      continue;
    bool Satisfied = true;
    double Margin = 0.0;
    bool HaveMargin = false;
    for (size_t C = 0; C != NumCriteria; ++C) {
      const Criterion &Crit = Rule.Criteria[C];
      double CurCost = CurrentCosts.of(Crit.Dimension);
      double CandCost = Costs[V].of(Crit.Dimension);
      if (CurCost <= 0.0) {
        // selectVariant's zero-cost rule; no finite ratio exists, so
        // the sentinel -1 stays in place.
        if (Crit.Threshold < 1.0 || CandCost > 0.0)
          Satisfied = false;
        continue;
      }
      double Ratio = CandCost / CurCost;
      Cand.Ratio[C] = Ratio;
      double Slack = Crit.Threshold - Ratio;
      if (!HaveMargin || Slack < Margin) {
        Margin = Slack;
        HaveMargin = true;
      }
      if (Ratio > Crit.Threshold)
        Satisfied = false;
    }
    Cand.Qualified =
        V != Cur && Cand.Eligible && Satisfied && NumCriteria != 0;
    if (Choice && V == *Choice && HaveMargin) {
      DecidedMargin = Margin;
      HaveDecidedMargin = true;
    }
    if (!Choice && V != Cur && Cand.Eligible && HaveMargin &&
        (!HaveKeptMargin || Margin > ClosestKeptMargin)) {
      // Kept: report how close the nearest candidate came to
      // displacing the current variant (negative = missed by that
      // much on its worst criterion).
      ClosestKeptMargin = Margin;
      HaveKeptMargin = true;
    }
  }
  R.Margin = HaveDecidedMargin
                 ? DecidedMargin
                 : (HaveKeptMargin ? ClosestKeptMargin : 0.0);
  PendingCaptured = true;
}

void AllocationContextBase::recordPendingDecision(bool Switched) {
  if (!Ledger || !PendingCaptured)
    return;
  PendingCaptured = false;
  obs::DecisionRecord &R = *PendingDecision;
  if (Switched) {
    KeepStreak = 0;
    R.Outcome = obs::DecisionOutcome::Switched;
  } else {
    ++KeepStreak;
    R.Outcome = KeepStreak >= ConvergedKeepStreak
                    ? obs::DecisionOutcome::Converged
                    : obs::DecisionOutcome::Kept;
  }
  R.ConsecutiveKeeps = KeepStreak;
  Ledger->record(R);
}

bool AllocationContextBase::evaluate() {
  std::lock_guard<std::mutex> Lock(EvalMutex);
  uint64_t State = RoundState.load(std::memory_order_acquire);
  auto Round = static_cast<uint32_t>(State >> 32);
  if (static_cast<uint32_t>(State) == 0)
    return false;
  auto Needed = static_cast<size_t>(
      std::ceil(Options.FinishedRatio *
                static_cast<double>(Options.WindowSize)));
  uint64_t FinishedWord =
      FinishedState[Round & 1].Value.load(std::memory_order_acquire);
  size_t FinishedInRound =
      static_cast<uint32_t>(FinishedWord >> 32) == Round
          ? static_cast<uint32_t>(FinishedWord)
          : 0;
  if (FinishedInRound < std::max<size_t>(Needed, 1))
    return false;

  // Refresh the contention estimate once per analysis round: EWMA over
  // the sketch's linear-counting estimate, gated on a minimum operation
  // volume so a nearly idle round cannot collapse the signal.
  if (Sketch) {
    ContentionPolicy Policy = AdaptiveConfig::global().contention();
    if (Sketch->operations() >= Policy.MinOps) {
      double Estimate = Sketch->estimateThreads();
      double Previous = ContendedThreads.load(std::memory_order_relaxed);
      double Alpha = std::clamp(Policy.Smoothing, 0.0, 1.0);
      double Next = Previous == 0.0
                        ? Estimate
                        : Previous + Alpha * (Estimate - Previous);
      ContendedThreads.store(Next, std::memory_order_relaxed);
      Sketch->reset();
    }
  }

  // Resolve the provenance ledger once a round is actually going to be
  // analyzed; when the ledger is disabled (the default) this is a
  // single relaxed atomic load and nothing below touches it.
  if (obs::ProvenanceRegistry::enabled())
    resolveLedger();

  // Analysis rounds are rare (paced by the monitoring rate), so every
  // one is timed — no sampling on this path.
  const bool Profiled = obs::ProfilingRegistry::enabled();
  const uint64_t AnalysisStart = Profiled ? obs::nowNanos() : 0;

  // Rotate: prime the inactive buffer's publication counter for the
  // next round, then swap rounds with one CAS. Creation immediately
  // continues into the fresh buffer while the retired one is analyzed
  // below, off the hot path. (Stale-round increments on the counter
  // fail their round-tag check, so the plain store cannot be corrupted.)
  uint32_t NextRound = Round + 1;
  FinishedState[NextRound & 1].Value.store(
      static_cast<uint64_t>(NextRound) << 32, std::memory_order_relaxed);
  uint64_t Rotated = static_cast<uint64_t>(NextRound) << 32;
  while (!RoundState.compare_exchange_weak(State, Rotated,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    // Only the assigned count can move under us (rotation is serialized
    // by EvalMutex); retry with the refreshed claim count.
  }
  size_t Assigned = static_cast<uint32_t>(State);

  std::optional<unsigned> Choice = analyzeRound(Round, Assigned);
  Evaluations.fetch_add(1, std::memory_order_relaxed);
  if (Options.LogEvents) {
    EventLog &Log = EventLog::global();
    Log.record(EventKind::Evaluation, LogNameId,
               VariantNameIds[currentVariantIndex()]);
    // §3.1: "after switching ... a fraction of the instances is
    // monitored to allow a continuous adaptation process".
    Log.record(EventKind::MonitoringRound, LogNameId);
  }
  if (Profiled)
    Prof->Evaluate.record(obs::nowNanos() - AnalysisStart);

  unsigned Cur = Current.load(std::memory_order_relaxed);
  bool Switched = Choice && *Choice != Cur;
  if (Switched) {
    const uint64_t SwitchStart = Profiled ? obs::nowNanos() : 0;
    Current.store(*Choice, std::memory_order_relaxed);
    Switches.fetch_add(1, std::memory_order_relaxed);
    if (Options.LogEvents) {
      // Transitions are rare (bounded by the variant pool in steady
      // state); building + interning the detail string here keeps the
      // common no-switch evaluation completely allocation-free.
      std::string Detail = VariantId{Kind, Cur}.name() + " -> " +
                           VariantId{Kind, *Choice}.name();
      EventLog &Log = EventLog::global();
      Log.record(EventKind::Transition, LogNameId, Log.intern(Detail));
    }
    if (Profiled)
      Prof->Switch.record(obs::nowNanos() - SwitchStart);
  }
  // Publish the captured explanation (outcome now known); no-op when
  // the ledger is off or the round produced no analyzable groups.
  recordPendingDecision(Switched);
  return Switched;
}

size_t AllocationContextBase::memoryFootprint() const {
  // Groups is analysis scratch that evaluate() may be growing on the
  // background thread; its capacity is only stable under EvalMutex.
  std::lock_guard<std::mutex> Lock(EvalMutex);
  return sizeof(*this) + 2 * Options.WindowSize * sizeof(WindowSlot) +
         Hot.memoryBytes() + Name.capacity() +
         Groups.capacity() * sizeof(MergedGroup) +
         VariantNameIds.capacity() * sizeof(uint32_t);
}
