//===- AllocationContext.cpp - Adaptive allocation contexts --------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/AllocationContext.h"

#include "support/EventLog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cswitch;

AllocationContextBase::AllocationContextBase(
    std::string Name, AbstractionKind Kind, unsigned InitialVariantIndex,
    std::shared_ptr<const PerformanceModel> Model, SelectionRule Rule,
    ContextOptions Options)
    : Name(std::move(Name)), Kind(Kind), Model(std::move(Model)),
      Rule(std::move(Rule)), Options(Options),
      Current(InitialVariantIndex) {
  assert(this->Model && "context requires a performance model");
  assert(InitialVariantIndex < numVariantsOf(Kind) &&
         "initial variant out of range");
  assert(this->Options.WindowSize > 0 && "window size must be positive");
  Window.resize(this->Options.WindowSize);
  for (const Criterion &C : this->Rule.Criteria)
    UsedDimensions[static_cast<size_t>(C.Dimension)] = true;
  if (this->Options.LogEvents)
    EventLog::global().record(EventKind::ContextCreated, this->Name,
                              currentVariant().name());
}

AllocationContextBase::~AllocationContextBase() = default;

size_t AllocationContextBase::acquireMonitorSlot() {
  Created.fetch_add(1, std::memory_order_relaxed);
  // Lock-free fast path: the window of this round is already full.
  if (AssignedInRound.load(std::memory_order_acquire) >=
      Options.WindowSize)
    return NoSlot;

  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Assigned = AssignedInRound.load(std::memory_order_relaxed);
  if (Assigned >= Options.WindowSize)
    return NoSlot;
  Window[Assigned] = WindowEntry();
  AssignedInRound.store(Assigned + 1, std::memory_order_release);
  Monitored.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<size_t>(Round) << 32) | Assigned;
}

void AllocationContextBase::onInstanceFinished(
    size_t Slot, const WorkloadProfile &Profile) {
  auto SlotRound = static_cast<uint32_t>(Slot >> 32);
  size_t Index = Slot & 0xffffffffu;

  std::lock_guard<std::mutex> Lock(Mutex);
  // Instances created in a previous round report after the window was
  // recycled; their profiles belong to an already-analyzed (or
  // abandoned) round and are discarded.
  if (SlotRound != Round)
    return;
  assert(Index < Window.size() && "slot out of range");
  WindowEntry &Entry = Window[Index];
  if (Entry.Finished)
    return;
  Entry.Profile = Profile;
  Entry.Finished = true;
  ++FinishedInRound;
}

bool AllocationContextBase::isAdaptiveVariant(AbstractionKind Kind,
                                              unsigned Index) {
  switch (Kind) {
  case AbstractionKind::List:
    return static_cast<ListVariant>(Index) == ListVariant::AdaptiveList;
  case AbstractionKind::Set:
    return static_cast<SetVariant>(Index) == SetVariant::AdaptiveSet;
  case AbstractionKind::Map:
    return static_cast<MapVariant>(Index) == MapVariant::AdaptiveMap;
  }
  return false;
}

size_t
AllocationContextBase::adaptiveThresholdFor(AbstractionKind Kind) const {
  AdaptiveThresholds T = AdaptiveConfig::global().thresholds();
  switch (Kind) {
  case AbstractionKind::List:
    return T.List;
  case AbstractionKind::Set:
    return T.Set;
  case AbstractionKind::Map:
    return T.Map;
  }
  return 0;
}

std::optional<unsigned> AllocationContextBase::analyzeLocked() {
  // Gather the finished profiles of this round.
  size_t Assigned = AssignedInRound.load(std::memory_order_relaxed);
  uint64_t MinMaxSize = UINT64_MAX;
  uint64_t MaxMaxSize = 0;

  size_t NumVariants = numVariantsOf(Kind);
  std::vector<VariantCosts> Costs(NumVariants);
  size_t Used = 0;
  for (size_t I = 0; I != Assigned; ++I) {
    const WindowEntry &Entry = Window[I];
    if (!Entry.Finished)
      continue;
    ++Used;
    MinMaxSize = std::min(MinMaxSize, Entry.Profile.MaxSize);
    MaxMaxSize = std::max(MaxMaxSize, Entry.Profile.MaxSize);
    for (unsigned V = 0; V != NumVariants; ++V) {
      VariantId Id{Kind, V};
      for (CostDimension Dim : AllCostDimensions) {
        if (!UsedDimensions[static_cast<size_t>(Dim)])
          continue;
        Costs[V].Total[static_cast<size_t>(Dim)] +=
            Model->totalCost(Id, Entry.Profile, Dim);
      }
    }
  }
  if (Used == 0)
    return std::nullopt;

  // Variants without performance-model coverage must not compete: their
  // total cost would read as zero and they would win every rule.
  for (unsigned V = 0; V != NumVariants; ++V)
    if (!Model->hasVariant({Kind, V}))
      Costs[V].Eligible = false;

  // Adaptive-variant gate (§3.2): only a candidate when the observed
  // maximum sizes ranged widely — straddling the adaptive threshold, or
  // spread by at least the configured factor.
  size_t Threshold = adaptiveThresholdFor(Kind);
  bool Straddles =
      MinMaxSize <= Threshold && MaxMaxSize > Threshold;
  bool WideSpread = static_cast<double>(MaxMaxSize) >=
                    Options.WideRangeFactor *
                        std::max<double>(1.0, static_cast<double>(MinMaxSize));
  bool AdaptiveEligible = Straddles || WideSpread;
  for (unsigned V = 0; V != NumVariants; ++V)
    if (isAdaptiveVariant(Kind, V))
      Costs[V].Eligible = AdaptiveEligible;

  return selectVariant(Costs, Current.load(std::memory_order_relaxed),
                       Rule);
}

bool AllocationContextBase::evaluate() {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Assigned = AssignedInRound.load(std::memory_order_relaxed);
  if (Assigned == 0)
    return false;
  auto Needed = static_cast<size_t>(
      std::ceil(Options.FinishedRatio *
                static_cast<double>(Options.WindowSize)));
  if (FinishedInRound < std::max<size_t>(Needed, 1))
    return false;

  std::optional<unsigned> Choice = analyzeLocked();
  Evaluations.fetch_add(1, std::memory_order_relaxed);
  if (Options.LogEvents)
    EventLog::global().record(EventKind::Evaluation, Name,
                              currentVariant().name());

  // Start a new monitoring round regardless of the outcome, so the
  // context keeps adapting to workload drift (§3.1: "after switching ...
  // a fraction of the instances is monitored to allow a continuous
  // adaptation process").
  ++Round;
  FinishedInRound = 0;
  AssignedInRound.store(0, std::memory_order_release);
  if (Options.LogEvents)
    EventLog::global().record(EventKind::MonitoringRound, Name, "");

  unsigned Cur = Current.load(std::memory_order_relaxed);
  if (!Choice || *Choice == Cur)
    return false;

  std::string Detail = VariantId{Kind, Cur}.name() + " -> " +
                       VariantId{Kind, *Choice}.name();
  Current.store(*Choice, std::memory_order_relaxed);
  Switches.fetch_add(1, std::memory_order_relaxed);
  if (Options.LogEvents)
    EventLog::global().record(EventKind::Transition, Name, Detail);
  return true;
}

size_t AllocationContextBase::memoryFootprint() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return sizeof(*this) + Window.capacity() * sizeof(WindowEntry) +
         Name.capacity();
}
