//===- VariantSelection.cpp - The variant selection algorithm ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/VariantSelection.h"

#include <cassert>

using namespace cswitch;

std::optional<unsigned>
cswitch::selectVariant(const std::vector<VariantCosts> &Costs,
                       unsigned Current, const SelectionRule &Rule) {
  assert(Current < Costs.size() && "current variant out of range");
  assert(!Rule.Criteria.empty() && "rule without criteria");

  const VariantCosts &CurrentCosts = Costs[Current];
  CostDimension Primary = Rule.primaryDimension();

  std::optional<unsigned> Best;
  double BestPrimary = 0.0;
  for (unsigned V = 0, E = static_cast<unsigned>(Costs.size()); V != E;
       ++V) {
    if (V == Current || !Costs[V].Eligible)
      continue;

    bool Satisfied = true;
    for (const Criterion &C : Rule.Criteria) {
      double Cur = CurrentCosts.of(C.Dimension);
      double Cand = Costs[V].of(C.Dimension);
      if (Cur <= 0.0) {
        // Nothing to improve on: a strict-improvement criterion
        // (threshold < 1) can never hold; a penalty cap holds only for
        // candidates that are also cost-free.
        if (C.Threshold < 1.0 || Cand > 0.0) {
          Satisfied = false;
          break;
        }
        continue;
      }
      if (Cand / Cur > C.Threshold) {
        Satisfied = false;
        break;
      }
    }
    if (!Satisfied)
      continue;

    double Primal = Costs[V].of(Primary);
    if (!Best || Primal < BestPrimary) {
      Best = V;
      BestPrimary = Primal;
    }
  }
  return Best;
}
