//===- ProfileTrace.cpp - Persisted workload traces -----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/ProfileTrace.h"

#include <fstream>
#include <memory>
#include <sstream>

using namespace cswitch;

namespace {

constexpr const char *TraceHeader = "cswitch-profile-trace v1";

bool parseAbstractionKind(const std::string &Name, AbstractionKind &Out) {
  for (AbstractionKind Kind :
       {AbstractionKind::List, AbstractionKind::Set, AbstractionKind::Map}) {
    if (Name == abstractionKindName(Kind)) {
      Out = Kind;
      return true;
    }
  }
  return false;
}

bool parseVariantOf(AbstractionKind Kind, const std::string &Name,
                    unsigned &Out) {
  switch (Kind) {
  case AbstractionKind::List: {
    ListVariant V;
    if (!parseListVariant(Name, V))
      return false;
    Out = static_cast<unsigned>(V);
    return true;
  }
  case AbstractionKind::Set: {
    SetVariant V;
    if (!parseSetVariant(Name, V))
      return false;
    Out = static_cast<unsigned>(V);
    return true;
  }
  case AbstractionKind::Map: {
    MapVariant V;
    if (!parseMapVariant(Name, V))
      return false;
    Out = static_cast<unsigned>(V);
    return true;
  }
  }
  return false;
}

void writeSite(std::ostream &OS, const std::string &Site,
               AbstractionKind Kind, unsigned Declared,
               const std::vector<WorkloadProfile> &Profiles) {
  OS << "site " << abstractionKindName(Kind) << ' '
     << VariantId{Kind, Declared}.name() << ' ' << Site << '\n';
  for (const WorkloadProfile &P : Profiles) {
    OS << "profile " << P.MaxSize;
    for (OperationKind Op : AllOperationKinds)
      OS << ' ' << P.count(Op);
    OS << '\n';
  }
}

} // namespace

void cswitch::saveTrace(
    std::ostream &OS, const std::vector<const ProfileAggregator *> &Sites) {
  OS << TraceHeader << '\n';
  for (const ProfileAggregator *Site : Sites)
    writeSite(OS, Site->site(), Site->abstraction(),
              Site->declaredVariantIndex(), Site->profiles());
}

bool cswitch::loadTrace(std::istream &IS, std::vector<SiteTrace> &Out) {
  std::string Line;
  if (!std::getline(IS, Line) || Line != TraceHeader)
    return false;

  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Keyword;
    LS >> Keyword;
    if (Keyword == "site") {
      std::string KindName, VariantName;
      if (!(LS >> KindName >> VariantName))
        return false;
      SiteTrace Trace;
      if (!parseAbstractionKind(KindName, Trace.Kind))
        return false;
      if (!parseVariantOf(Trace.Kind, VariantName,
                          Trace.DeclaredVariantIndex))
        return false;
      std::getline(LS, Trace.Site);
      // Strip the single separating space.
      if (!Trace.Site.empty() && Trace.Site.front() == ' ')
        Trace.Site.erase(Trace.Site.begin());
      if (Trace.Site.empty())
        return false;
      Out.push_back(std::move(Trace));
    } else if (Keyword == "profile") {
      if (Out.empty())
        return false; // profile before any site line.
      WorkloadProfile P;
      if (!(LS >> P.MaxSize))
        return false;
      for (OperationKind Op : AllOperationKinds) {
        uint64_t Count;
        if (!(LS >> Count))
          return false;
        P.record(Op, Count);
      }
      Out.back().Profiles.push_back(P);
    } else {
      return false;
    }
  }
  return true;
}

bool cswitch::saveTraceToFile(
    const std::string &Path,
    const std::vector<const ProfileAggregator *> &Sites) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  saveTrace(OS, Sites);
  return static_cast<bool>(OS);
}

bool cswitch::loadTraceFromFile(const std::string &Path,
                                std::vector<SiteTrace> &Out) {
  std::ifstream IS(Path);
  if (!IS)
    return false;
  return loadTrace(IS, Out);
}

std::vector<SiteRecommendation>
cswitch::adviseOffline(const std::vector<SiteTrace> &Sites,
                       const PerformanceModel &Model,
                       const SelectionRule &Rule, double WideRangeFactor) {
  // Rehydrate aggregators and reuse the aggregator-based advisor so the
  // two paths can never diverge.
  std::vector<std::unique_ptr<ProfileAggregator>> Owned;
  std::vector<const ProfileAggregator *> Pointers;
  Owned.reserve(Sites.size());
  for (const SiteTrace &Trace : Sites) {
    auto Agg = std::make_unique<ProfileAggregator>(
        Trace.Site, Trace.Kind, Trace.DeclaredVariantIndex);
    for (const WorkloadProfile &P : Trace.Profiles)
      Agg->onInstanceFinished(0, P);
    Pointers.push_back(Agg.get());
    Owned.push_back(std::move(Agg));
  }
  return adviseOffline(Pointers, Model, Rule, WideRangeFactor);
}
