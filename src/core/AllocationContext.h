//===- AllocationContext.h - Adaptive allocation contexts -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive allocation context (paper §3.1, §4.3): the instrumented
/// form of a collection allocation site. A context
///
///   1. instantiates collections of its current variant,
///   2. monitors a window of created instances (window size, paper: 100),
///   3. once enough monitored instances finished their life-cycle
///      (finished ratio, paper: 0.6), aggregates their workload profiles
///      into total costs TC_D(V) for every candidate variant using the
///      performance model, and
///   4. switches the variant used for future instantiations when the
///      selection rule finds a better candidate, then starts a new
///      monitoring round.
///
/// AllocationContextBase holds all abstraction-independent machinery;
/// ListContext<T> / SetContext<T> / MapContext<K, V> add the typed
/// create*() factory the application calls instead of a constructor
/// (paper Fig. 4: `ctx.createList()`).
///
/// Lifetime: a context must outlive every collection it created — the
/// paper's recommendation of static (per-site) contexts gives exactly
/// that. Instance death is detected by the collection facade destructor
/// reporting the workload profile back (DESIGN.md §1 discusses this
/// substitution for Java's WeakReference polling).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_ALLOCATIONCONTEXT_H
#define CSWITCH_CORE_ALLOCATIONCONTEXT_H

#include "collections/Factory.h"
#include "core/SelectionRule.h"
#include "core/VariantSelection.h"
#include "model/CostModel.h"
#include "profile/WorkloadProfile.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cswitch {

/// Tuning knobs of an allocation context (defaults follow the paper §5).
struct ContextOptions {
  /// Number of instances monitored per round (paper: 100).
  size_t WindowSize = 100;
  /// Fraction of the window that must have finished before the round is
  /// analyzed (paper: 0.6).
  double FinishedRatio = 0.6;
  /// Record transition/evaluation events in the global EventLog.
  bool LogEvents = true;
  /// Minimum max-size spread (max/min ratio) for adaptive variants to be
  /// considered "widely ranging" (§3.2); they also qualify whenever the
  /// observed sizes straddle the adaptive threshold.
  double WideRangeFactor = 4.0;
};

/// Abstraction-independent allocation-context machinery.
///
/// Thread-safe: instances may be created, finish, and be evaluated from
/// different threads concurrently. The unmonitored creation fast path is
/// lock-free.
class AllocationContextBase : public ProfileSink {
public:
  AllocationContextBase(std::string Name, AbstractionKind Kind,
                        unsigned InitialVariantIndex,
                        std::shared_ptr<const PerformanceModel> Model,
                        SelectionRule Rule, ContextOptions Options);

  ~AllocationContextBase() override;

  AllocationContextBase(const AllocationContextBase &) = delete;
  AllocationContextBase &operator=(const AllocationContextBase &) = delete;

  /// Analyzes the current monitoring round if the finished ratio has been
  /// reached; may switch the current variant. \returns true if a
  /// transition happened. Called periodically by the SwitchEngine, or
  /// manually for deterministic tests.
  bool evaluate();

  // ProfileSink: called by dying monitored collection facades.
  void onInstanceFinished(size_t Slot,
                          const WorkloadProfile &Profile) override;

  /// Site name used in logs and reports.
  const std::string &name() const { return Name; }

  /// The abstraction this site allocates.
  AbstractionKind abstraction() const { return Kind; }

  /// Index of the variant future instantiations will use.
  unsigned currentVariantIndex() const {
    return Current.load(std::memory_order_relaxed);
  }

  /// Tagged id of the current variant.
  VariantId currentVariant() const {
    return {Kind, currentVariantIndex()};
  }

  /// Total collections created through this context.
  uint64_t instancesCreated() const {
    return Created.load(std::memory_order_relaxed);
  }

  /// Total instances that were monitored (assigned a window slot).
  uint64_t instancesMonitored() const {
    return Monitored.load(std::memory_order_relaxed);
  }

  /// Completed analysis rounds.
  uint64_t evaluationCount() const {
    return Evaluations.load(std::memory_order_relaxed);
  }

  /// Variant transitions performed.
  uint64_t switchCount() const {
    return Switches.load(std::memory_order_relaxed);
  }

  /// Approximate bytes of memory this context occupies (the paper
  /// reports ~1 KB per context, §5.3).
  size_t memoryFootprint() const;

  /// The rule this context selects by.
  const SelectionRule &rule() const { return Rule; }

  /// The options this context runs with.
  const ContextOptions &options() const { return Options; }

protected:
  /// Sentinel: instance is not monitored.
  static constexpr size_t NoSlot = SIZE_MAX;

  /// Reserves a monitoring slot in the current round, or NoSlot when the
  /// window is full. Also counts the creation. Slots encode the round in
  /// their upper 32 bits so that stale instances finishing after a round
  /// reset are discarded rather than polluting the next round.
  size_t acquireMonitorSlot();

private:
  struct WindowEntry {
    WorkloadProfile Profile;
    bool Finished = false;
  };

  static bool isAdaptiveVariant(AbstractionKind Kind, unsigned Index);
  size_t adaptiveThresholdFor(AbstractionKind Kind) const;

  /// Analysis of a completed round; Mutex must be held.
  std::optional<unsigned> analyzeLocked();

  const std::string Name;
  const AbstractionKind Kind;
  const std::shared_ptr<const PerformanceModel> Model;
  const SelectionRule Rule;
  const ContextOptions Options;
  /// Dimensions referenced by the rule's criteria; analysis only
  /// accumulates these (evaluating unused cost polynomials would only
  /// inflate the §5.3 overhead).
  std::array<bool, NumCostDimensions> UsedDimensions = {};

  std::atomic<unsigned> Current;
  std::atomic<uint64_t> Created{0};
  std::atomic<uint64_t> Monitored{0};
  std::atomic<uint64_t> Evaluations{0};
  std::atomic<uint64_t> Switches{0};

  mutable std::mutex Mutex;
  std::vector<WindowEntry> Window;       ///< Guarded by Mutex.
  std::atomic<size_t> AssignedInRound{0};
  size_t FinishedInRound = 0;            ///< Guarded by Mutex.
  uint32_t Round = 0;                    ///< Guarded by Mutex.
};

/// Allocation context for list sites.
template <typename T> class ListContext : public AllocationContextBase {
public:
  ListContext(std::string Name, ListVariant Initial,
              std::shared_ptr<const PerformanceModel> Model,
              SelectionRule Rule, ContextOptions Options = {})
      : AllocationContextBase(std::move(Name), AbstractionKind::List,
                              static_cast<unsigned>(Initial),
                              std::move(Model), std::move(Rule),
                              Options) {}

  /// Creates a list of the context's current variant; a sample of
  /// created instances is monitored.
  List<T> createList() {
    auto Variant = static_cast<ListVariant>(currentVariantIndex());
    size_t Slot = acquireMonitorSlot();
    if (Slot == NoSlot)
      return List<T>(makeListImpl<T>(Variant));
    return List<T>(makeListImpl<T>(Variant), this, Slot);
  }
};

/// Allocation context for set sites.
template <typename T> class SetContext : public AllocationContextBase {
public:
  SetContext(std::string Name, SetVariant Initial,
             std::shared_ptr<const PerformanceModel> Model,
             SelectionRule Rule, ContextOptions Options = {})
      : AllocationContextBase(std::move(Name), AbstractionKind::Set,
                              static_cast<unsigned>(Initial),
                              std::move(Model), std::move(Rule),
                              Options) {}

  /// Creates a set of the context's current variant.
  Set<T> createSet() {
    auto Variant = static_cast<SetVariant>(currentVariantIndex());
    size_t Slot = acquireMonitorSlot();
    if (Slot == NoSlot)
      return Set<T>(makeSetImpl<T>(Variant));
    return Set<T>(makeSetImpl<T>(Variant), this, Slot);
  }
};

/// Allocation context for map sites.
template <typename K, typename V>
class MapContext : public AllocationContextBase {
public:
  MapContext(std::string Name, MapVariant Initial,
             std::shared_ptr<const PerformanceModel> Model,
             SelectionRule Rule, ContextOptions Options = {})
      : AllocationContextBase(std::move(Name), AbstractionKind::Map,
                              static_cast<unsigned>(Initial),
                              std::move(Model), std::move(Rule),
                              Options) {}

  /// Creates a map of the context's current variant.
  Map<K, V> createMap() {
    auto Variant = static_cast<MapVariant>(currentVariantIndex());
    size_t Slot = acquireMonitorSlot();
    if (Slot == NoSlot)
      return Map<K, V>(makeMapImpl<K, V>(Variant));
    return Map<K, V>(makeMapImpl<K, V>(Variant), this, Slot);
  }
};

} // namespace cswitch

#endif // CSWITCH_CORE_ALLOCATIONCONTEXT_H
