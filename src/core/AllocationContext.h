//===- AllocationContext.h - Adaptive allocation contexts -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive allocation context (paper §3.1, §4.3): the instrumented
/// form of a collection allocation site. A context
///
///   1. instantiates collections of its current variant,
///   2. monitors a window of created instances (window size, paper: 100),
///   3. once enough monitored instances finished their life-cycle
///      (finished ratio, paper: 0.6), aggregates their workload profiles
///      into total costs TC_D(V) for every candidate variant using the
///      performance model, and
///   4. switches the variant used for future instantiations when the
///      selection rule finds a better candidate, then starts a new
///      monitoring round.
///
/// AllocationContextBase holds all abstraction-independent machinery;
/// ListContext<T> / SetContext<T> / MapContext<K, V> add the typed
/// create*() factory the application calls instead of a constructor
/// (paper Fig. 4: `ctx.createList()`).
///
/// Lifetime: a context must outlive every collection it created — the
/// paper's recommendation of static (per-site) contexts gives exactly
/// that. Instance death is detected by the collection facade destructor
/// reporting the workload profile back (DESIGN.md §1 discusses this
/// substitution for Java's WeakReference polling).
///
/// Concurrency (DESIGN.md §4, "lock-free monitoring window"): both
/// per-instance paths — slot acquisition at creation and profile
/// publication at destruction — are lock-free. The monitoring window is
/// double-buffered; rounds rotate with a single CAS on a packed
/// (round, assigned) word and the retired buffer is analyzed off the
/// hot path. Only evaluate() takes a mutex, and only to serialize
/// analysis with other evaluators.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_ALLOCATIONCONTEXT_H
#define CSWITCH_CORE_ALLOCATIONCONTEXT_H

#include "collections/Factory.h"
#include "core/SelectionRule.h"
#include "core/VariantSelection.h"
#include "model/CostModel.h"
#include "obs/Profiling.h"
#include "obs/Provenance.h"
#include "profile/ContentionSketch.h"
#include "profile/WorkloadProfile.h"
#include "replay/TraceRecorder.h"
#include "support/Telemetry.h"
#include "support/Topology.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cswitch {

class SelectionStore;

/// Tuning knobs of an allocation context (defaults follow the paper §5).
///
/// Plain aggregate with a fluent builder spelling on top; both styles
/// configure the same fields:
/// \code
///   ContextOptions O;
///   O.WindowSize = 50;                     // aggregate style
///   auto P = ContextOptions{}.windowSize(50).finishedRatio(0.5)
///                            .logEvents(false);  // fluent style
/// \endcode
struct ContextOptions {
  /// Number of instances monitored per round (paper: 100).
  size_t WindowSize = 100;
  /// Fraction of the window that must have finished before the round is
  /// analyzed (paper: 0.6).
  double FinishedRatio = 0.6;
  /// Record transition/evaluation events in the global EventLog.
  bool LogEvents = true;
  /// Minimum max-size spread (max/min ratio) for adaptive variants to be
  /// considered "widely ranging" (§3.2); they also qualify whenever the
  /// observed sizes straddle the adaptive threshold.
  double WideRangeFactor = 4.0;
  /// Operation-trace recorder (src/replay/); when set, the context
  /// registers its site and instances sampled by the recorder trace
  /// every operation. Not owned; must outlive the context and every
  /// collection it creates.
  TraceRecorder *Recorder = nullptr;
  /// Seed the initial variant from the persistent selection store when
  /// the site has a stored decision (src/store/): the context starts on
  /// the converged variant of previous runs and shrinks its first
  /// observation window by WarmWindowFactor. A miss (or a corrupt /
  /// absent store) leaves the context exactly cold.
  bool WarmStart = false;
  /// Window-size multiplier applied on a warm start (clamped to [0, 1];
  /// the result never shrinks below one slot). Warm contexts keep
  /// monitoring — the paper's continuous adaptation — just with a
  /// cheaper ramp.
  double WarmWindowFactor = 0.25;
  /// Selection store consulted for warm starts. When null, the engine's
  /// installed store (SwitchEngine::loadStore) is used. Not owned; must
  /// outlive the context.
  SelectionStore *Store = nullptr;
  /// Period of the engine's background evaluation/reporter thread
  /// (paper §4.3 "monitoring rate", default 50 ms). Consumed by
  /// Switch::startEngine() via the Switch::configure defaults — a
  /// per-process knob carried here so one options object can configure
  /// a whole deployment; contexts themselves ignore it.
  std::chrono::milliseconds MonitoringRate{50};
  /// Per-context override of the adaptive-collection transition
  /// thresholds (paper §3.2, Table 1). When set, adaptive variants
  /// created by this context — and the context's own wide-range /
  /// straddle analysis — use these thresholds instead of the
  /// process-wide AdaptiveConfig. This is how tuned configurations and
  /// the offline tuner's candidate genomes apply thresholds without
  /// touching global state (race-free under parallel evaluation).
  std::optional<AdaptiveThresholds> AdaptiveOverride;
  /// Synchronization tier of the site (DESIGN.md §11). None (default)
  /// selects among the sequential variants only — collections must stay
  /// single-owner. Mutex / Sharded pin the corresponding concurrent
  /// strategy; Auto lets the contention signal choose among the
  /// concurrent strategies. Any mode but None makes created facades
  /// thread-safe to operate on from multiple threads (the underlying
  /// variant synchronizes, and profiling switches to the NUMA-striped
  /// SharedProfile).
  Concurrency ConcurrencyMode = Concurrency::None;

  ContextOptions &windowSize(size_t Value) {
    WindowSize = Value;
    return *this;
  }
  ContextOptions &finishedRatio(double Value) {
    FinishedRatio = Value;
    return *this;
  }
  ContextOptions &logEvents(bool Value) {
    LogEvents = Value;
    return *this;
  }
  ContextOptions &wideRangeFactor(double Value) {
    WideRangeFactor = Value;
    return *this;
  }
  ContextOptions &recorder(TraceRecorder *Value) {
    Recorder = Value;
    return *this;
  }
  ContextOptions &warmStart(bool Value) {
    WarmStart = Value;
    return *this;
  }
  ContextOptions &warmWindowFactor(double Value) {
    WarmWindowFactor = Value;
    return *this;
  }
  ContextOptions &store(SelectionStore *Value) {
    Store = Value;
    return *this;
  }
  ContextOptions &monitoringRate(std::chrono::milliseconds Value) {
    MonitoringRate = Value;
    return *this;
  }
  ContextOptions &adaptiveThresholds(const AdaptiveThresholds &Value) {
    AdaptiveOverride = Value;
    return *this;
  }
  ContextOptions &concurrency(Concurrency Value) {
    ConcurrencyMode = Value;
    return *this;
  }
};

/// Abstraction-independent allocation-context machinery.
///
/// Thread-safe: instances may be created, finish, and be evaluated from
/// different threads concurrently. Creation and destruction of monitored
/// instances are lock-free (one CAS each); unmonitored creation while
/// the window is full is a single atomic load.
class AllocationContextBase : public ProfileSink {
  /// Indices into the NUMA-striped hot-counter block (DESIGN.md §10).
  /// These four are bumped on every instance creation/destruction, so
  /// they live in per-node stripes: writers of different nodes touch
  /// different cache lines and readers sum the stripes. Evaluations and
  /// Switches are monitoring-rate-paced and stay plain atomics.
  enum HotCounter : size_t {
    CreatedIdx = 0,
    MonitoredIdx,
    FinishedIdx,
    DiscardedIdx,
    NumHotCounters
  };

public:
  AllocationContextBase(std::string Name, AbstractionKind Kind,
                        unsigned InitialVariantIndex,
                        std::shared_ptr<const PerformanceModel> Model,
                        SelectionRule Rule, ContextOptions Options);

  ~AllocationContextBase() override;

  AllocationContextBase(const AllocationContextBase &) = delete;
  AllocationContextBase &operator=(const AllocationContextBase &) = delete;

  /// Analyzes the current monitoring round if the finished ratio has been
  /// reached; may switch the current variant. \returns true if a
  /// transition happened. Called periodically by the SwitchEngine, or
  /// manually for deterministic tests. Serialized internally; safe to
  /// call concurrently with instance creation and destruction.
  bool evaluate();

  // ProfileSink: called by dying monitored collection facades. Lock-free.
  void onInstanceFinished(size_t Slot,
                          const WorkloadProfile &Profile) override;

  /// Site name used in logs and reports.
  const std::string &name() const { return Name; }

  /// The abstraction this site allocates.
  AbstractionKind abstraction() const { return Kind; }

  /// Index of the variant future instantiations will use.
  unsigned currentVariantIndex() const {
    return Current.load(std::memory_order_relaxed);
  }

  /// Tagged id of the current variant.
  VariantId currentVariant() const {
    return {Kind, currentVariantIndex()};
  }

  /// Total collections created through this context.
  uint64_t instancesCreated() const { return Hot.sum(CreatedIdx); }

  /// Total instances that were monitored (assigned a window slot).
  uint64_t instancesMonitored() const { return Hot.sum(MonitoredIdx); }

  /// Total monitored instances whose profile was published into a window
  /// (finished while their round was still live).
  uint64_t instancesFinished() const { return Hot.sum(FinishedIdx); }

  /// Total monitored instances whose profile was discarded because they
  /// outlived their monitoring round (stale stragglers).
  uint64_t profilesDiscarded() const { return Hot.sum(DiscardedIdx); }

  /// Completed analysis rounds.
  uint64_t evaluationCount() const {
    return Evaluations.load(std::memory_order_relaxed);
  }

  /// Variant transitions performed.
  uint64_t switchCount() const {
    return Switches.load(std::memory_order_relaxed);
  }

  /// All monitoring counters batched into one value (the unit the
  /// telemetry layer snapshots; each individual accessor above reads the
  /// same atomics).
  ContextStats stats() const {
    ContextStats S;
    S.InstancesCreated = Hot.sum(CreatedIdx);
    S.InstancesMonitored = Hot.sum(MonitoredIdx);
    S.ProfilesPublished = Hot.sum(FinishedIdx);
    S.ProfilesDiscarded = Hot.sum(DiscardedIdx);
    S.Evaluations = Evaluations.load(std::memory_order_relaxed);
    S.Switches = Switches.load(std::memory_order_relaxed);
    return S;
  }

  /// Approximate bytes of memory this context occupies, including both
  /// monitoring window buffers (the paper reports ~1 KB per context,
  /// §5.3; window slots here store compact fixed-width profiles to keep
  /// the doubled window within the same budget as the single-buffered
  /// design). Lock-free.
  size_t memoryFootprint() const;

  /// The rule this context selects by.
  const SelectionRule &rule() const { return Rule; }

  /// The options this context runs with (reflecting any warm-start
  /// window shrink applied at construction).
  const ContextOptions &options() const { return Options; }

  /// True when this context seeded its initial variant from the
  /// selection store.
  bool warmStarted() const { return WarmStarted; }

  /// Synchronization tier of this site (ContextOptions::ConcurrencyMode).
  Concurrency concurrencyMode() const { return Options.ConcurrencyMode; }

  /// Smoothed estimate of the distinct threads operating on this
  /// context's collections (0 until the first analysis round with
  /// enough operations; see ContentionPolicy). This is the argument of
  /// the contention cost polynomials.
  double contendedThreads() const {
    return ContendedThreads.load(std::memory_order_relaxed);
  }

  /// The context's contention sketch; null for sequential contexts (and
  /// when ContentionPolicy::Enabled is off).
  ContentionSketch *contentionSketch() const { return Sketch.get(); }

  /// Bitmap of variants this context may select among: model coverage
  /// intersected with the concurrency tier, plus the (possibly pinned)
  /// initial variant.
  uint32_t candidateMask() const { return CandidateMask; }

  /// Lifetime workload aggregate over every analyzed instance (the
  /// merge of all consumed window slots since construction); \p
  /// Instances receives how many instances it covers. This is what the
  /// selection store persists for this site.
  WorkloadProfile aggregateProfile(uint64_t &Instances) const;

  /// This site's continuous-profiling entry (interned in the global
  /// ProfilingRegistry, so it aggregates across context lifetimes).
  /// Never null.
  const obs::SiteProfile *siteProfile() const { return Prof; }

  /// Registry-shard bookkeeping owned by SwitchEngine: registerContext
  /// remembers which (node-affine) shard it filed this context under so
  /// unregisterContext finds it again even from a thread on a different
  /// node. UINT32_MAX = never registered.
  void setEngineShardHint(uint32_t Shard) {
    EngineShardHint.store(Shard, std::memory_order_relaxed);
  }
  uint32_t engineShardHint() const {
    return EngineShardHint.load(std::memory_order_relaxed);
  }

protected:
  /// Sentinel: instance is not monitored.
  static constexpr size_t NoSlot = SIZE_MAX;

  /// Reserves a monitoring slot in the current round, or NoSlot when the
  /// window is full. Also counts the creation. Slots encode the round in
  /// their upper 32 bits so that stale instances finishing after a round
  /// rotation are discarded rather than polluting a later round.
  /// Lock-free: one CAS on the packed (round, assigned) word plus one
  /// release-store claiming the slot. 1-in-64 calls per thread are timed
  /// into the site's Record histogram (obs::shouldSampleRecord).
  size_t acquireMonitorSlot();

  /// The operation-trace recorder this context records into (nullptr
  /// when tracing is off) and this site's index in its site table.
  TraceRecorder *recorder() const { return Options.Recorder; }
  uint32_t recorderSite() const { return RecorderSite; }

  /// The context's adaptive-threshold override, or nullptr when it uses
  /// the process-wide AdaptiveConfig (ContextOptions::AdaptiveOverride).
  const AdaptiveThresholds *adaptiveOverride() const {
    return Options.AdaptiveOverride ? &*Options.AdaptiveOverride : nullptr;
  }

private:
  /// Life-cycle of one window slot within a round R. Transitions:
  ///   Idle/stale --store--> Claimed(R)      [creator, after winning CAS
  ///                                          on the RoundState word]
  ///   Claimed(R) --CAS--> Writing(R)        [finisher; grants exclusive
  ///                                          write access to the slot
  ///                                          profile]
  ///   Writing(R) --store--> Finished(R)     [finisher; release-publishes
  ///                                          the profile]
  ///   Claimed(R) --CAS--> Closed(R)         [analyzer; locks stale
  ///                                          stragglers out of the slot]
  /// The analyzer consumes Finished(R) slots and briefly spins on
  /// Writing(R) slots (a finisher is mid-publication); a finisher whose
  /// Claimed->Writing CAS fails discards its profile.
  enum class SlotStatus : uint64_t {
    Claimed = 0,
    Writing = 1,
    Finished = 2,
    Closed = 3,
  };

  /// Slot state never taken by any live round (rounds are 32-bit).
  static constexpr uint64_t IdleSlotState = UINT64_MAX;

  static constexpr uint64_t slotState(uint32_t Round, SlotStatus Status) {
    return (static_cast<uint64_t>(Round) << 2) |
           static_cast<uint64_t>(Status);
  }

  /// One monitoring slot. The profile is stored compactly (saturating
  /// 32-bit counters) so the double-buffered window stays within the
  /// §5.3 per-context memory budget.
  struct WindowSlot {
    std::atomic<uint64_t> State{IdleSlotState};
    std::array<uint32_t, NumOperationKinds> Counts = {};
    uint32_t MaxSize = 0;
  };

  /// A group of finished profiles sharing one maximum size; the unit of
  /// memoized cost evaluation (each cost polynomial is evaluated once
  /// per group instead of once per instance).
  struct MergedGroup {
    uint32_t MaxSize = 0;
    std::array<uint64_t, NumOperationKinds> Counts = {};
  };

  static bool isAdaptiveVariant(AbstractionKind Kind, unsigned Index);
  size_t adaptiveThresholdFor(AbstractionKind Kind) const;

  /// First slot of the buffer used by \p Round.
  WindowSlot *bufferOf(uint32_t Round) {
    return Slots.get() + (Round & 1) * Options.WindowSize;
  }

  /// Analysis of the retired round \p Round with \p Assigned claimed
  /// slots; EvalMutex must be held. Consumes finished slots, closes
  /// unfinished ones, merges profiles per distinct maximum size and
  /// evaluates the memoized total costs.
  std::optional<unsigned> analyzeRound(uint32_t Round, size_t Assigned);

  /// Seeds Current (and shrinks Options.WindowSize) from the selection
  /// store when Options.WarmStart hits a stored decision; called from
  /// the constructor before the window buffers are sized.
  void applyWarmStart();

  /// Keep streak after which a kept decision records as converged in
  /// the provenance ledger (DESIGN.md §14).
  static constexpr uint32_t ConvergedKeepStreak = 3;

  /// Interns this site's provenance ledger (and allocates the pending
  /// decision scratch) on first call; EvalMutex must be held (or the
  /// context still under construction). Only called when the
  /// provenance registry is enabled.
  void resolveLedger();

  /// Fills PendingDecision with the full explanation of one analysis
  /// round — per-dimension breakdowns of every candidate, criterion
  /// ratios, adaptive-gate evidence — via a separate model pass that
  /// leaves the analysis accumulation untouched. EvalMutex held.
  void capturePendingDecision(uint32_t Round,
                              const std::vector<VariantCosts> &Costs,
                              const std::optional<unsigned> &Choice,
                              double Threads, bool Contended,
                              uint64_t MinMaxSize, uint64_t MaxMaxSize);

  /// Finalizes the captured decision (outcome + keep streak) and
  /// publishes it into the ledger. No-op when nothing was captured
  /// this round. EvalMutex held.
  void recordPendingDecision(bool Switched);

  const std::string Name;
  const AbstractionKind Kind;
  const std::shared_ptr<const PerformanceModel> Model;
  const SelectionRule Rule;
  /// Non-const only for the constructor-time warm-start window shrink;
  /// immutable afterwards.
  ContextOptions Options;
  /// Dimensions referenced by the rule's criteria; analysis only
  /// accumulates these (evaluating unused cost polynomials would only
  /// inflate the §5.3 overhead).
  std::array<bool, NumCostDimensions> UsedDimensions = {};
  /// Bit V set iff the model covers variant V of this abstraction;
  /// precomputed once (the model is immutable) so analysis never
  /// re-scans polynomials.
  uint32_t CoverageMask = 0;
  /// Bit V set iff variant V is in this context's concurrency tier (or
  /// is the explicitly requested initial variant); analysis only lets
  /// variants in CoverageMask & CandidateMask compete.
  uint32_t CandidateMask = 0;
  /// Index of this abstraction's adaptive variant, or -1.
  int AdaptiveIndex = -1;
  /// Interned EventLog id of Name, and of each variant's display name
  /// (index = variant index); populated only when Options.LogEvents so
  /// the evaluation-path record() calls pass ids instead of building
  /// strings.
  uint32_t LogNameId = 0;
  std::vector<uint32_t> VariantNameIds;
  /// Index of this site in the recorder's site table (meaningful only
  /// when Options.Recorder is set; registered in the constructor).
  uint32_t RecorderSite = 0;
  /// This site's latency histograms, resolved once from the global
  /// ProfilingRegistry (a pointer, not a member: the histograms outlive
  /// the context and stay out of its §5.3 memory footprint).
  obs::SiteProfile *Prof = nullptr;

  std::atomic<unsigned> Current;
  /// Thread-cardinality sketch feeding the contention dimension; created
  /// only for concurrent contexts (see contentionSketch()).
  std::unique_ptr<ContentionSketch> Sketch;
  /// EWMA of the sketch's estimate, refreshed once per analysis round
  /// (ContentionPolicy::Smoothing / MinOps).
  std::atomic<double> ContendedThreads{0.0};
  /// Shard index SwitchEngine filed this context under (see
  /// setEngineShardHint). Written at register time only.
  std::atomic<uint32_t> EngineShardHint{UINT32_MAX};
  /// Per-instance counters (created/monitored/finished/discarded),
  /// NUMA-striped; see HotCounter. The stripes live on the heap, so the
  /// context object itself carries no per-instance fetch_add targets.
  StripedCounters<NumHotCounters> Hot;
  std::atomic<uint64_t> Evaluations{0};
  std::atomic<uint64_t> Switches{0};

  /// Packed (round << 32 | assigned) word: the single point of
  /// contention on the creation path. Claimed by CAS; rotated by
  /// evaluate() with a CAS that resets the assigned count. On its own
  /// cache line: every instance creation CASes here, and false sharing
  /// with the read-mostly fields above showed up in the contended
  /// sweep (EXPERIMENTS.md, false-sharing audit).
  alignas(CacheLineBytes) std::atomic<uint64_t> RoundState{0};
  /// Packed (round << 32 | finished) publication counters, one per
  /// window buffer. The round tag makes stale increments from stragglers
  /// fail their CAS instead of corrupting a later round's count. Each
  /// on its own line: buffer (round & 1) is CAS-hammered by finishers
  /// while the other is read by the analyzer.
  struct alignas(CacheLineBytes) PaddedWord {
    std::atomic<uint64_t> Value{0};
  };
  std::array<PaddedWord, 2> FinishedState;
  /// Double-buffered window: buffer (round & 1) is live, the other one
  /// is being analyzed or idle. 2 * WindowSize slots.
  std::unique_ptr<WindowSlot[]> Slots;

  /// Serializes evaluate() (round rotation + analysis) with itself and
  /// with memoryFootprint()'s read of the scratch capacity; the
  /// per-instance paths never touch it.
  mutable std::mutex EvalMutex;
  /// Analysis scratch, guarded by EvalMutex; reused across rounds so
  /// steady-state analysis does not allocate.
  std::vector<MergedGroup> Groups;
  /// MaxSize -> index into Groups, cleared after every analysis.
  std::unordered_map<uint32_t, size_t> GroupIndex;
  /// Lifetime merge of every consumed window slot plus how many
  /// instances it covers; what the selection store persists. Guarded by
  /// EvalMutex.
  WorkloadProfile Lifetime;
  uint64_t LifetimeInstances = 0; ///< Guarded by EvalMutex.
  /// This site's decision provenance ledger (DESIGN.md §14), resolved
  /// lazily under EvalMutex the first time an evaluation runs with the
  /// provenance registry enabled; null (and never touched) otherwise —
  /// the disabled path costs one relaxed atomic load per evaluation
  /// and allocates nothing.
  obs::SiteLedger *Ledger = nullptr;
  /// Decision scratch reused across rounds (the record is ~1.5 KB and
  /// would dominate the evaluation stack frame); allocated once with
  /// the ledger. Guarded by EvalMutex.
  std::unique_ptr<obs::DecisionRecord> PendingDecision;
  /// True between capturePendingDecision() and recordPendingDecision()
  /// for the current round. Guarded by EvalMutex.
  bool PendingCaptured = false;
  /// Consecutive kept decisions (convergence evidence in the ledger);
  /// reset by every switch. Guarded by EvalMutex.
  uint32_t KeepStreak = 0;
  /// Set once in the constructor when the initial variant came from the
  /// selection store; never written afterwards.
  bool WarmStarted = false;
};

/// Allocation context for list sites.
template <typename T> class ListContext : public AllocationContextBase {
public:
  ListContext(std::string Name, ListVariant Initial,
              std::shared_ptr<const PerformanceModel> Model,
              SelectionRule Rule, ContextOptions Options = {})
      : AllocationContextBase(std::move(Name), AbstractionKind::List,
                              static_cast<unsigned>(Initial),
                              std::move(Model), std::move(Rule),
                              Options) {}

  /// Creates a list of the context's current variant; a sample of
  /// created instances is monitored (and traced, when the context has a
  /// recorder). In a concurrent tier (ContextOptions::concurrency) the
  /// instance profiles through the thread-safe SharedProfile and may be
  /// operated on from multiple threads; tracing stays sequential-only
  /// (the trace cursor is single-owner).
  List<T> createList() {
    auto Variant = static_cast<ListVariant>(currentVariantIndex());
    const AdaptiveThresholds *Adaptive = adaptiveOverride();
    size_t Slot = acquireMonitorSlot();
    List<T> Out =
        Slot == NoSlot
            ? List<T>(makeListImpl<T>(Variant, Adaptive))
            : List<T>(makeListImpl<T>(Variant, Adaptive), this, Slot);
    if (concurrencyMode() != Concurrency::None) {
      Out.enableSharedProfiling(contentionSketch());
      return Out;
    }
    if (TraceRecorder *Rec = recorder()) {
      uint32_t Instance;
      if (Rec->beginInstance(recorderSite(), Instance))
        Out.attachRecorder(Rec, recorderSite(), Instance);
    }
    return Out;
  }
};

/// Allocation context for set sites.
template <typename T> class SetContext : public AllocationContextBase {
public:
  SetContext(std::string Name, SetVariant Initial,
             std::shared_ptr<const PerformanceModel> Model,
             SelectionRule Rule, ContextOptions Options = {})
      : AllocationContextBase(std::move(Name), AbstractionKind::Set,
                              static_cast<unsigned>(Initial),
                              std::move(Model), std::move(Rule),
                              Options) {}

  /// Creates a set of the context's current variant (see
  /// ListContext::createList for the concurrent-tier behavior).
  Set<T> createSet() {
    auto Variant = static_cast<SetVariant>(currentVariantIndex());
    const AdaptiveThresholds *Adaptive = adaptiveOverride();
    size_t Slot = acquireMonitorSlot();
    Set<T> Out = Slot == NoSlot
                     ? Set<T>(makeSetImpl<T>(Variant, Adaptive))
                     : Set<T>(makeSetImpl<T>(Variant, Adaptive), this, Slot);
    if (concurrencyMode() != Concurrency::None) {
      Out.enableSharedProfiling(contentionSketch());
      return Out;
    }
    if (TraceRecorder *Rec = recorder()) {
      uint32_t Instance;
      if (Rec->beginInstance(recorderSite(), Instance))
        Out.attachRecorder(Rec, recorderSite(), Instance);
    }
    return Out;
  }
};

/// Allocation context for map sites.
template <typename K, typename V>
class MapContext : public AllocationContextBase {
public:
  MapContext(std::string Name, MapVariant Initial,
             std::shared_ptr<const PerformanceModel> Model,
             SelectionRule Rule, ContextOptions Options = {})
      : AllocationContextBase(std::move(Name), AbstractionKind::Map,
                              static_cast<unsigned>(Initial),
                              std::move(Model), std::move(Rule),
                              Options) {}

  /// Creates a map of the context's current variant (see
  /// ListContext::createList for the concurrent-tier behavior).
  Map<K, V> createMap() {
    auto Variant = static_cast<MapVariant>(currentVariantIndex());
    const AdaptiveThresholds *Adaptive = adaptiveOverride();
    size_t Slot = acquireMonitorSlot();
    Map<K, V> Out =
        Slot == NoSlot
            ? Map<K, V>(makeMapImpl<K, V>(Variant, Adaptive))
            : Map<K, V>(makeMapImpl<K, V>(Variant, Adaptive), this, Slot);
    if (concurrencyMode() != Concurrency::None) {
      Out.enableSharedProfiling(contentionSketch());
      return Out;
    }
    if (TraceRecorder *Rec = recorder()) {
      uint32_t Instance;
      if (Rec->beginInstance(recorderSite(), Instance))
        Out.attachRecorder(Rec, recorderSite(), Instance);
    }
    return Out;
  }
};

} // namespace cswitch

#endif // CSWITCH_CORE_ALLOCATIONCONTEXT_H
