//===- SwitchEngine.cpp - Context registry and evaluation thread ---------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/SwitchEngine.h"

#include "obs/Profiling.h"
#include "support/EventLog.h"
#include "support/Topology.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace cswitch;

SwitchEngine &SwitchEngine::global() {
  static SwitchEngine Instance;
  return Instance;
}

SwitchEngine::SwitchEngine() : Nodes(Topology::system().nodeCount()) {
  NodeShards.reserve(Nodes);
  for (unsigned N = 0; N != Nodes; ++N)
    NodeShards.push_back(std::make_unique<Shard[]>(ShardsPerNode));
}

SwitchEngine::~SwitchEngine() {
  stop();
  stopPool();
}

size_t SwitchEngine::shardOf(const AllocationContextBase *Context,
                             unsigned Node) const {
  // Fibonacci hash of the pointer; the low bits of a heap pointer are
  // alignment zeros, so shift them out first. The node picks the arena,
  // the hash picks the shard within it.
  auto Ptr = reinterpret_cast<uintptr_t>(Context);
  size_t Hash =
      ((Ptr >> 4) * 11400714819323198485ull) >> 60 & (ShardsPerNode - 1);
  return static_cast<size_t>(Node) * ShardsPerNode + Hash;
}

void SwitchEngine::registerContext(AllocationContextBase *Context) {
  // File the context under the registering thread's node so creation
  // bursts on different sockets lock different arenas. The shard index
  // is remembered on the context: unregistration (possibly from a
  // thread on another node) must find the same shard.
  size_t Index = shardOf(Context, currentStripe(Nodes));
  Shard &S = shardAt(Index);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Contexts.push_back(Context);
  Context->setEngineShardHint(static_cast<uint32_t>(Index));
}

void SwitchEngine::unregisterContext(AllocationContextBase *Context) {
  // Fold the dying context's lifetime aggregate into the store ledger
  // while the context is still alive; the next persist writes it out.
  if (std::shared_ptr<SelectionStore> St = store()) {
    uint64_t Instances = 0;
    WorkloadProfile Profile = Context->aggregateProfile(Instances);
    if (Instances > 0)
      St->recordFinished(Context->name(), Context->rule().Name,
                         Context->abstraction(),
                         Context->currentVariantIndex(), Profile, Instances);
  }
  // The hint is authoritative for the engine that registered the
  // context last. A context registered with several engines (isolated
  // replay engines, test-local engines) carries the other engine's
  // hint, so fall back to scanning every shard when the hinted one
  // misses — unregistration stays a no-op only when the context is
  // genuinely absent.
  uint32_t Hint = Context->engineShardHint();
  if (Hint < shardCount()) {
    Shard &S = shardAt(Hint);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = std::remove(S.Contexts.begin(), S.Contexts.end(), Context);
    if (It != S.Contexts.end()) {
      S.Contexts.erase(It, S.Contexts.end());
      return;
    }
  }
  for (size_t Index = 0; Index != shardCount(); ++Index) {
    Shard &S = shardAt(Index);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = std::remove(S.Contexts.begin(), S.Contexts.end(), Context);
    if (It != S.Contexts.end()) {
      S.Contexts.erase(It, S.Contexts.end());
      return;
    }
  }
}

std::vector<AllocationContextBase *> SwitchEngine::snapshotContexts() const {
  // Snapshot shard by shard: evaluation must not hold registry locks
  // (context evaluation can be slow and must not block registration
  // from other threads).
  std::vector<AllocationContextBase *> Snapshot;
  for (size_t Index = 0; Index != shardCount(); ++Index) {
    const Shard &S = shardAt(Index);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Snapshot.insert(Snapshot.end(), S.Contexts.begin(), S.Contexts.end());
  }
  return Snapshot;
}

std::vector<std::vector<AllocationContextBase *>>
SwitchEngine::snapshotContextsByNode() const {
  std::vector<std::vector<AllocationContextBase *>> PerNode(Nodes);
  for (unsigned N = 0; N != Nodes; ++N) {
    for (size_t I = 0; I != ShardsPerNode; ++I) {
      const Shard &S = NodeShards[N][I];
      std::lock_guard<std::mutex> Lock(S.Mutex);
      PerNode[N].insert(PerNode[N].end(), S.Contexts.begin(),
                        S.Contexts.end());
    }
  }
  return PerNode;
}

size_t SwitchEngine::evaluateAll() {
  size_t Threads = EvalThreads.load(std::memory_order_relaxed);
  if (Threads <= 1) {
    // Deterministic sequential mode.
    size_t Transitions = 0;
    for (AllocationContextBase *Context : snapshotContexts())
      if (Context->evaluate())
        ++Transitions;
    return Transitions;
  }

  // Node-affine parallel sweep: every worker drains its own node's
  // contexts first (each node has its own work-stealing cursor, so the
  // only cross-node cache traffic while lists are non-empty is the
  // final steal pass), then steals from the other nodes so stragglers
  // never idle a worker.
  std::vector<std::vector<AllocationContextBase *>> PerNode =
      snapshotContextsByNode();
  size_t Total = 0;
  for (const auto &List : PerNode)
    Total += List.size();
  if (Total < 2) {
    size_t Transitions = 0;
    for (const auto &List : PerNode)
      for (AllocationContextBase *Context : List)
        if (Context->evaluate())
          ++Transitions;
    return Transitions;
  }

  struct alignas(CacheLineBytes) NodeCursor {
    std::atomic<size_t> Next{0};
  };
  auto Cursors = std::make_unique<NodeCursor[]>(Nodes);
  std::atomic<size_t> Transitions{0};
  unsigned NumNodes = Nodes;
  std::function<void()> Task = [&PerNode, &Cursors, &Transitions,
                                NumNodes] {
    unsigned Home = currentStripe(NumNodes);
    size_t LocalTransitions = 0;
    for (unsigned Offset = 0; Offset != NumNodes; ++Offset) {
      unsigned Node = (Home + Offset) % NumNodes;
      const auto &List = PerNode[Node];
      for (size_t I;
           (I = Cursors[Node].Next.fetch_add(
                1, std::memory_order_relaxed)) < List.size();)
        if (List[I]->evaluate())
          ++LocalTransitions;
    }
    if (LocalTransitions)
      Transitions.fetch_add(LocalTransitions, std::memory_order_relaxed);
  };
  dispatchToPool(Task);
  return Transitions.load(std::memory_order_relaxed);
}

void SwitchEngine::dispatchToPool(const std::function<void()> &Task) {
  // Serialize dispatches: concurrent evaluateAll() calls (background
  // thread + manual driver) take turns; context evaluation itself is
  // thread-safe either way.
  std::lock_guard<std::mutex> DispatchLock(DispatchMutex);
  size_t Expected;
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    Expected = PoolThreads.size();
    ActiveTask = &Task;
    FinishedWorkers = 0;
    ++TaskGeneration;
  }
  PoolWake.notify_all();
  Task(); // the caller is the pool's final worker
  std::unique_lock<std::mutex> Lock(PoolMutex);
  PoolDone.wait(Lock, [this, Expected] {
    return FinishedWorkers == Expected;
  });
  ActiveTask = nullptr;
}

namespace {

/// Pins the calling thread to \p Node's cpu set (best effort; no-op on
/// non-Linux, on synthetic topologies, and on pinning failure — the
/// node-affine sweep still works unpinned, it just loses the locality
/// guarantee).
void pinSelfToNode(unsigned Node) {
#if defined(__linux__)
  std::vector<unsigned> Cpus = Topology::system().cpusOfNode(Node);
  if (Cpus.empty())
    return;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  for (unsigned Cpu : Cpus)
    if (Cpu < CPU_SETSIZE)
      CPU_SET(Cpu, &Set);
  pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set);
#else
  (void)Node;
#endif
}

} // namespace

void SwitchEngine::poolMain(uint64_t SeenGeneration, unsigned PinnedNode) {
  if (PinWorkers.load(std::memory_order_relaxed))
    pinSelfToNode(PinnedNode);
  std::unique_lock<std::mutex> Lock(PoolMutex);
  for (;;) {
    PoolWake.wait(Lock, [this, SeenGeneration] {
      return PoolShutdown || TaskGeneration != SeenGeneration;
    });
    if (PoolShutdown)
      return;
    SeenGeneration = TaskGeneration;
    const std::function<void()> *Task = ActiveTask;
    Lock.unlock();
    (*Task)();
    Lock.lock();
    ++FinishedWorkers;
    PoolDone.notify_all();
  }
}

void SwitchEngine::startPool(size_t Workers) {
  uint64_t Generation;
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    PoolShutdown = false;
    // No dispatch can run while the caller holds DispatchMutex, so
    // every new worker starts with the current generation as "seen".
    Generation = TaskGeneration;
  }
  for (size_t I = 0; I != Workers; ++I) {
    // Workers spread round-robin over the nodes; poolMain pins itself
    // when configure() asked for it.
    unsigned Node = static_cast<unsigned>(I) % Nodes;
    PoolThreads.emplace_back(
        [this, Generation, Node] { poolMain(Generation, Node); });
  }
}

void SwitchEngine::stopPool() {
  {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    if (PoolThreads.empty())
      return;
    PoolShutdown = true;
  }
  PoolWake.notify_all();
  for (std::thread &T : PoolThreads)
    T.join();
  PoolThreads.clear();
}

void SwitchEngine::setEvaluationThreads(size_t Threads) {
  // Hold the dispatch lock so the pool is never resized mid-dispatch.
  std::lock_guard<std::mutex> DispatchLock(DispatchMutex);
  stopPool();
  EvalThreads.store(std::max<size_t>(Threads, 1),
                    std::memory_order_relaxed);
  if (Threads > 1)
    startPool(Threads - 1);
}

void SwitchEngine::configure(const EngineOptions &Options) {
  // Order matters: the pinning flag must be set before the new pool's
  // workers start, since each worker reads it once at startup.
  PinWorkers.store(Options.PinEvaluationWorkers,
                   std::memory_order_relaxed);
  setEvaluationThreads(Options.EvaluationThreads);
}

void SwitchEngine::start(std::chrono::milliseconds MonitoringRate) {
  std::lock_guard<std::mutex> Lock(ThreadMutex);
  if (Running)
    return;
  StopRequested = false;
  Running = true;
  Worker = std::thread([this, MonitoringRate] { threadMain(MonitoringRate); });
}

void SwitchEngine::stop() {
  {
    std::lock_guard<std::mutex> Lock(ThreadMutex);
    if (!Running)
      return;
    StopRequested = true;
  }
  StopCondition.notify_all();
  Worker.join();
  {
    std::lock_guard<std::mutex> Lock(ThreadMutex);
    Running = false;
  }
  // Final merge so learned selections survive the shutdown even when
  // the periodic interval never fired, then a final report so the
  // lifetime latency distributions reach the sink before the process
  // goes quiet.
  persistStore();
  flushReport();
}

bool SwitchEngine::isRunning() const {
  std::lock_guard<std::mutex> Lock(ThreadMutex);
  return Running;
}

void SwitchEngine::threadMain(std::chrono::milliseconds Rate) {
  std::unique_lock<std::mutex> Lock(ThreadMutex);
  while (!StopRequested) {
    if (StopCondition.wait_for(Lock, Rate,
                               [this] { return StopRequested; }))
      break;
    Lock.unlock();
    evaluateAll();
    maybeReport();
    maybePersistStore();
    Lock.lock();
  }
}

void SwitchEngine::setReporter(ReporterOptions Options) {
  std::lock_guard<std::mutex> Lock(ReporterMutex);
  Reporter = std::move(Options);
  NextReport = std::chrono::steady_clock::now() + Reporter.Interval;
}

void SwitchEngine::clearReporter() {
  std::lock_guard<std::mutex> Lock(ReporterMutex);
  Reporter = ReporterOptions{};
}

void SwitchEngine::maybeReport() {
  std::function<void(const TelemetrySnapshot &)> Sink;
  {
    std::lock_guard<std::mutex> Lock(ReporterMutex);
    if (!Reporter.Sink)
      return;
    auto Now = std::chrono::steady_clock::now();
    if (Now < NextReport)
      return;
    NextReport = Now + Reporter.Interval;
    Sink = Reporter.Sink;
  }
  // The snapshot and the sink run outside every engine lock: a slow
  // sink delays at most the background thread's own next sweep.
  Sink(telemetry());
  ReportsEmitted.fetch_add(1, std::memory_order_relaxed);
}

void SwitchEngine::flushReport() {
  std::function<void(const TelemetrySnapshot &)> Sink;
  {
    std::lock_guard<std::mutex> Lock(ReporterMutex);
    if (!Reporter.Sink)
      return;
    // Restart the periodic clock so a flush does not double up with an
    // imminent scheduled report.
    NextReport = std::chrono::steady_clock::now() + Reporter.Interval;
    Sink = Reporter.Sink;
  }
  Sink(telemetry());
  ReportsEmitted.fetch_add(1, std::memory_order_relaxed);
}

bool SwitchEngine::loadStore(const std::string &Path, StoreOptions Options) {
  auto NewStore = std::make_shared<SelectionStore>(Options);
  bool Ok = NewStore->load(Path);
  std::lock_guard<std::mutex> Lock(StoreMutex);
  Store = std::move(NewStore);
  StorePath = Path;
  NextPersist = std::chrono::steady_clock::now() +
                Store->options().PersistInterval;
  return Ok;
}

std::shared_ptr<SelectionStore> SwitchEngine::store() const {
  std::lock_guard<std::mutex> Lock(StoreMutex);
  return Store;
}

bool SwitchEngine::persistStore() {
  std::shared_ptr<SelectionStore> St;
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(StoreMutex);
    St = Store;
    Path = StorePath;
  }
  if (!St)
    return false;
  // Persists are rare (interval-paced or shutdown), so every one is
  // timed — merge gathering included, since that is the cost the
  // background sweep actually pays.
  const bool Profiled = obs::ProfilingRegistry::enabled();
  const uint64_t Start = Profiled ? obs::nowNanos() : 0;
  std::vector<SelectionStore::LiveSite> Live;
  for (AllocationContextBase *Context : snapshotContexts()) {
    uint64_t Instances = 0;
    WorkloadProfile Profile = Context->aggregateProfile(Instances);
    if (Instances == 0)
      continue;
    Live.push_back({Context->name(), Context->rule().Name,
                    Context->abstraction(), Context->currentVariantIndex(),
                    std::move(Profile), Instances});
  }
  bool Ok = St->persist(Path, Live);
  if (Profiled)
    obs::ProfilingRegistry::global().persistHistogram().record(
        obs::nowNanos() - Start);
  return Ok;
}

std::string SwitchEngine::exportStore() const {
  std::shared_ptr<SelectionStore> St;
  {
    std::lock_guard<std::mutex> Lock(StoreMutex);
    St = Store;
  }
  if (!St)
    return {};
  std::vector<SelectionStore::LiveSite> Live;
  for (AllocationContextBase *Context : snapshotContexts()) {
    uint64_t Instances = 0;
    WorkloadProfile Profile = Context->aggregateProfile(Instances);
    if (Instances == 0)
      continue;
    Live.push_back({Context->name(), Context->rule().Name,
                    Context->abstraction(), Context->currentVariantIndex(),
                    std::move(Profile), Instances});
  }
  return encodeStore(St->exportSites(Live));
}

bool SwitchEngine::mergeRemoteStore(std::string_view Bytes, std::string *Error,
                                    uint64_t *SitesMerged) {
  std::shared_ptr<SelectionStore> St;
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(StoreMutex);
    St = Store;
    Path = StorePath;
  }
  if (!St) {
    if (Error)
      *Error = "no selection store installed";
    return false;
  }
  std::vector<StoreSite> Remote;
  if (!decodeStore(Bytes, Remote, Error))
    return false;
  return St->mergeRemote(Path, Remote, Error, SitesMerged);
}

void SwitchEngine::closeStore() {
  persistStore();
  // The store counters and the persist histogram just took their final
  // values; push them to the reporter sink before the store (and its
  // counters) are uninstalled.
  flushReport();
  std::lock_guard<std::mutex> Lock(StoreMutex);
  Store.reset();
  StorePath.clear();
}

void SwitchEngine::maybePersistStore() {
  {
    std::lock_guard<std::mutex> Lock(StoreMutex);
    if (!Store || Store->options().PersistInterval.count() <= 0)
      return;
    auto Now = std::chrono::steady_clock::now();
    if (Now < NextPersist)
      return;
    NextPersist = Now + Store->options().PersistInterval;
  }
  persistStore();
}

size_t SwitchEngine::contextCount() const {
  size_t Total = 0;
  for (size_t Index = 0; Index != shardCount(); ++Index) {
    const Shard &S = shardAt(Index);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Total += S.Contexts.size();
  }
  return Total;
}

uint64_t SwitchEngine::totalSwitches() const {
  uint64_t Total = 0;
  for (size_t Index = 0; Index != shardCount(); ++Index) {
    const Shard &S = shardAt(Index);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (const AllocationContextBase *Context : S.Contexts)
      Total += Context->switchCount();
  }
  return Total;
}

EngineStats SwitchEngine::stats() const {
  EngineStats Stats;
  for (size_t Index = 0; Index != shardCount(); ++Index) {
    const Shard &S = shardAt(Index);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (const AllocationContextBase *Context : S.Contexts)
      Stats += Context->stats();
  }
  return Stats;
}

TelemetrySnapshot SwitchEngine::telemetry() const {
  TelemetrySnapshot Snapshot;
  for (size_t Index = 0; Index != shardCount(); ++Index) {
    const Shard &S = shardAt(Index);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (const AllocationContextBase *Context : S.Contexts) {
      ContextSnapshot C;
      C.Name = Context->name();
      C.Abstraction = abstractionKindName(Context->abstraction());
      C.Variant = Context->currentVariant().name();
      C.Stats = Context->stats();
      C.FootprintBytes = Context->memoryFootprint();
      C.Latency = Context->siteProfile()->latencies();
      C.ContendedThreads = Context->contendedThreads();
      Snapshot.Engine += C.Stats;
      Snapshot.Contexts.push_back(std::move(C));
    }
  }
  Snapshot.Latency = obs::ProfilingRegistry::global().engineLatencies();
  const Topology &Topo = Topology::system();
  Snapshot.Topology.Nodes = Topo.nodeCount();
  Snapshot.Topology.Cpus = Topo.cpuCount();
  EventLog &Log = EventLog::global();
  Snapshot.Events.Recorded = Log.totalRecorded();
  Snapshot.Events.Dropped = Log.droppedCount();
  Snapshot.Events.NodeDropped = Log.nodeDroppedCounts();
  Snapshot.Recorder = RecorderRegistry::global().stats();
  Snapshot.Fleet = FleetRegistry::global().stats();
  Snapshot.Tuning = TuningRegistry::global().stats();
  Snapshot.Model = ModelRegistry::global().stats();
  if (std::shared_ptr<SelectionStore> St = store()) {
    Snapshot.Store = St->stats();
    std::lock_guard<std::mutex> Lock(StoreMutex);
    Snapshot.Store.Path = StorePath;
  }
  return Snapshot;
}
