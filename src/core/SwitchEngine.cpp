//===- SwitchEngine.cpp - Context registry and evaluation thread ---------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/SwitchEngine.h"

#include <algorithm>

using namespace cswitch;

SwitchEngine &SwitchEngine::global() {
  static SwitchEngine Instance;
  return Instance;
}

SwitchEngine::~SwitchEngine() { stop(); }

void SwitchEngine::registerContext(AllocationContextBase *Context) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Contexts.push_back(Context);
}

void SwitchEngine::unregisterContext(AllocationContextBase *Context) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Contexts.erase(std::remove(Contexts.begin(), Contexts.end(), Context),
                 Contexts.end());
}

size_t SwitchEngine::evaluateAll() {
  // Snapshot under the lock, evaluate outside it: context evaluation can
  // be slow and must not block registration from other threads.
  std::vector<AllocationContextBase *> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    Snapshot = Contexts;
  }
  size_t Transitions = 0;
  for (AllocationContextBase *Context : Snapshot)
    if (Context->evaluate())
      ++Transitions;
  return Transitions;
}

void SwitchEngine::start(std::chrono::milliseconds MonitoringRate) {
  std::lock_guard<std::mutex> Lock(ThreadMutex);
  if (Running)
    return;
  StopRequested = false;
  Running = true;
  Worker = std::thread([this, MonitoringRate] { threadMain(MonitoringRate); });
}

void SwitchEngine::stop() {
  {
    std::lock_guard<std::mutex> Lock(ThreadMutex);
    if (!Running)
      return;
    StopRequested = true;
  }
  StopCondition.notify_all();
  Worker.join();
  std::lock_guard<std::mutex> Lock(ThreadMutex);
  Running = false;
}

bool SwitchEngine::isRunning() const {
  std::lock_guard<std::mutex> Lock(ThreadMutex);
  return Running;
}

void SwitchEngine::threadMain(std::chrono::milliseconds Rate) {
  std::unique_lock<std::mutex> Lock(ThreadMutex);
  while (!StopRequested) {
    if (StopCondition.wait_for(Lock, Rate,
                               [this] { return StopRequested; }))
      break;
    Lock.unlock();
    evaluateAll();
    Lock.lock();
  }
}

size_t SwitchEngine::contextCount() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  return Contexts.size();
}

uint64_t SwitchEngine::totalSwitches() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  uint64_t Total = 0;
  for (const AllocationContextBase *Context : Contexts)
    Total += Context->switchCount();
  return Total;
}
