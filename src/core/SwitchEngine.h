//===- SwitchEngine.h - Context registry and evaluation thread --*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine that drives the periodic analysis of allocation contexts
/// (paper §4.3: "a periodic task is scheduled at a parametrized fixed
/// rate (monitoring rate)"). Contexts register with the engine; a
/// background thread evaluates every registered context at the monitoring
/// rate (paper default: 50 ms). evaluateAll() allows driving the same
/// analysis synchronously, which deterministic tests and single-threaded
/// harnesses use.
///
/// The registry is sharded to keep registration cheap under many
/// concurrently created sites, and evaluateAll() can fan contexts out to
/// a small worker pool (setEvaluationThreads) for processes with
/// thousands of hot sites. The default is single-threaded evaluation,
/// which is fully deterministic and what tests rely on.
///
/// Topology-aware sharding (DESIGN.md §10): each NUMA node gets its own
/// arena of registry shards, registration files a context under a shard
/// of the registering thread's node (the shard index is remembered on
/// the context so unregistration from any node finds it), and parallel
/// evaluation drains its own node's contexts before stealing from other
/// nodes. EngineOptions::PinEvaluationWorkers additionally pins pool
/// workers round-robin over the nodes' cpu sets.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_SWITCHENGINE_H
#define CSWITCH_CORE_SWITCHENGINE_H

#include "core/AllocationContext.h"
#include "store/SelectionStore.h"
#include "support/Telemetry.h"

#include <array>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cswitch {

// EngineStats (the aggregate monitoring statistics over every
// registered context — the facade-level report of the §5.3 overhead
// discussion) lives in support/Telemetry.h together with the rest of
// the telemetry schema, so exporters need no core dependency.

/// Configuration of the engine's periodic telemetry reporter. The
/// reporter piggybacks on the background evaluation thread (start()):
/// after each evaluation sweep it checks whether Interval elapsed and,
/// if so, emits an engine-wide TelemetrySnapshot to Sink.
struct ReporterOptions {
  /// Minimum time between two reports.
  std::chrono::milliseconds Interval{1000};
  /// Receives each snapshot; invoked on the background thread, outside
  /// any engine lock. Must not be empty.
  std::function<void(const TelemetrySnapshot &)> Sink;
};

/// Engine-level tuning knobs (per-process; contexts carry their own
/// options). Applied with SwitchEngine::configure.
struct EngineOptions {
  /// evaluateAll() parallelism: 0 or 1 selects the deterministic
  /// sequential mode, N > 1 keeps a pool of N - 1 workers (the caller
  /// participates as the Nth). Same semantics as setEvaluationThreads.
  size_t EvaluationThreads = 1;
  /// Pin evaluation pool workers round-robin over the NUMA nodes' cpu
  /// sets (pthread_setaffinity_np), so a worker's node-affine sweep
  /// actually runs on the node whose contexts it drains. Linux-only;
  /// silently ignored elsewhere and on synthetic (CSWITCH_NUMA_NODES)
  /// topologies, which have no real cpu map.
  bool PinEvaluationWorkers = false;

  EngineOptions &evaluationThreads(size_t Value) {
    EvaluationThreads = Value;
    return *this;
  }
  EngineOptions &pinEvaluationWorkers(bool Value) {
    PinEvaluationWorkers = Value;
    return *this;
  }
};

/// Registry of live allocation contexts plus the periodic evaluator.
class SwitchEngine {
public:
  /// Returns the process-wide engine.
  static SwitchEngine &global();

  SwitchEngine();
  ~SwitchEngine();

  SwitchEngine(const SwitchEngine &) = delete;
  SwitchEngine &operator=(const SwitchEngine &) = delete;

  /// Registers \p Context for periodic evaluation. The caller retains
  /// ownership and must call unregisterContext before destroying it.
  void registerContext(AllocationContextBase *Context);

  /// Removes \p Context from the registry (no-op if absent).
  void unregisterContext(AllocationContextBase *Context);

  /// Evaluates every registered context once; returns the number of
  /// contexts that performed a transition. With evaluationThreads() <= 1
  /// (the default) contexts are evaluated sequentially on the calling
  /// thread — the deterministic mode tests rely on; otherwise they are
  /// fanned out to the worker pool.
  size_t evaluateAll();

  /// Sets the number of threads evaluateAll() uses: 0 or 1 selects the
  /// deterministic sequential mode, N > 1 keeps a pool of N - 1 workers
  /// (the caller participates as the Nth). Safe to call at any time;
  /// blocks until an in-flight parallel evaluation finishes.
  void setEvaluationThreads(size_t Threads);

  /// Current evaluateAll() parallelism (1 = sequential).
  size_t evaluationThreads() const {
    return EvalThreads.load(std::memory_order_relaxed);
  }

  /// Applies \p Options: evaluation parallelism and worker pinning in
  /// one call. Safe at any time; like setEvaluationThreads it blocks
  /// until an in-flight parallel evaluation finishes.
  void configure(const EngineOptions &Options);

  /// True when pool workers are pinned to NUMA nodes (configure()).
  bool pinsEvaluationWorkers() const {
    return PinWorkers.load(std::memory_order_relaxed);
  }

  /// Starts the background evaluation thread at the given monitoring
  /// rate (paper default 50 ms). No-op if already running.
  void start(std::chrono::milliseconds MonitoringRate =
                 std::chrono::milliseconds(50));

  /// Stops the background thread (blocks until it exits). No-op if not
  /// running.
  void stop();

  /// True while the background thread is running.
  bool isRunning() const;

  /// Number of registered contexts.
  size_t contextCount() const;

  /// Sum of switchCount() over all registered contexts.
  uint64_t totalSwitches() const;

  /// Aggregated counters over all registered contexts.
  EngineStats stats() const;

  /// Full observability snapshot: aggregate stats, the per-context
  /// breakdown (name, abstraction, current variant, counters,
  /// footprint), and the global event-log counters. This is what the
  /// periodic reporter emits and what MetricsExport serializes.
  TelemetrySnapshot telemetry() const;

  /// Installs (or replaces) the periodic telemetry reporter. Reports
  /// are emitted from the background thread, so they only flow while
  /// the engine is running (start()). Pass an Options.Sink; an empty
  /// sink is equivalent to clearReporter().
  void setReporter(ReporterOptions Options);

  /// Removes the reporter. An in-flight report may still complete.
  void clearReporter();

  /// Emits one report to the installed sink immediately, regardless of
  /// the periodic interval (which is restarted). No-op without a sink.
  /// stop() and closeStore() call this so the final histogram snapshot
  /// and store counters reach the sink before the process goes quiet.
  void flushReport();

  //===--------------------------------------------------------------===//
  // Persistent selection store (src/store/)
  //===--------------------------------------------------------------===//

  /// Installs a selection store backed by the file at \p Path and loads
  /// it. \returns the load outcome: true for a successful load
  /// (including the normal missing-file cold start), false when the
  /// document was corrupt or version-mismatched — the store is
  /// installed either way and degrades to cold start, so contexts
  /// created with ContextOptions::warmStart simply find nothing.
  /// Replaces any previously installed store without persisting it.
  bool loadStore(const std::string &Path, StoreOptions Options = {});

  /// The installed selection store (null when none). Contexts resolve
  /// this when ContextOptions::Store is unset.
  std::shared_ptr<SelectionStore> store() const;

  /// Merges this process's contributions (finished contexts folded at
  /// unregisterContext plus the live contexts' lifetime aggregates)
  /// into the store file now. \returns false when no store is installed
  /// or the persist failed. Also runs periodically on the background
  /// thread when StoreOptions::PersistInterval is set, and once from
  /// stop().
  bool persistStore();

  /// Persists (best effort) and uninstalls the store.
  void closeStore();

  /// Serialized `cswitch-store-v1` export of the installed store's
  /// current knowledge: the loaded base document plus this process's
  /// contributions (finished contexts and the live contexts' lifetime
  /// aggregates). Pure read — nothing touches disk. Empty string when
  /// no store is installed. This is what the fleet /store GET serves.
  std::string exportStore() const;

  /// Decodes \p Bytes as a `cswitch-store-v1` document and flock-merges
  /// it into the installed store (file + in-memory base; see
  /// SelectionStore::mergeRemote). \returns false when no store is
  /// installed, the document is malformed, or the merge failed, with
  /// \p Error describing the problem. \p SitesMerged (when non-null)
  /// receives the number of remote sites folded in. This is what the
  /// fleet /store POST applies.
  bool mergeRemoteStore(std::string_view Bytes, std::string *Error = nullptr,
                        uint64_t *SitesMerged = nullptr);

  /// Snapshots emitted by the periodic reporter so far.
  uint64_t reportsEmitted() const {
    return ReportsEmitted.load(std::memory_order_relaxed);
  }

private:
  /// One registry shard (see ShardsPerNode below). Padded so the locks
  /// of one arena sit on separate cache lines.
  struct alignas(64) Shard {
    mutable std::mutex Mutex;
    std::vector<AllocationContextBase *> Contexts;
  };

  /// Emits a telemetry report if the reporter is due; called by the
  /// background thread after each evaluation sweep, without holding
  /// ThreadMutex.
  void maybeReport();
  /// Persists the store if its periodic interval elapsed; called by the
  /// background thread after each sweep, without holding ThreadMutex.
  void maybePersistStore();
  void threadMain(std::chrono::milliseconds Rate);
  std::vector<AllocationContextBase *> snapshotContexts() const;
  /// Per-node context snapshot, indexed by node (for the node-affine
  /// parallel sweep).
  std::vector<std::vector<AllocationContextBase *>>
  snapshotContextsByNode() const;
  /// Flat shard index for registering \p Context from node \p Node:
  /// the pointer hash picks a shard within the node's arena.
  size_t shardOf(const AllocationContextBase *Context,
                 unsigned Node) const;
  Shard &shardAt(size_t Index) {
    return NodeShards[Index / ShardsPerNode][Index % ShardsPerNode];
  }
  const Shard &shardAt(size_t Index) const {
    return NodeShards[Index / ShardsPerNode][Index % ShardsPerNode];
  }
  size_t shardCount() const { return Nodes * ShardsPerNode; }

  /// Runs \p Task on every pool worker plus the calling thread and
  /// waits for all of them; PoolMutex protocol in SwitchEngine.cpp.
  void dispatchToPool(const std::function<void()> &Task);
  void startPool(size_t Workers);
  void stopPool();
  void poolMain(uint64_t SeenGeneration, unsigned PinnedNode);

  /// Shards per NUMA node arena: registration/unregistration from many
  /// threads only contend within one shard, and each node's arena is a
  /// separate heap block, so one node's shard locks never share pages —
  /// let alone cache lines — with another's.
  static constexpr size_t ShardsPerNode = 16;

  unsigned Nodes; ///< NUMA node count (>= 1), fixed at construction.
  /// NodeShards[Node] is that node's arena of ShardsPerNode shards.
  std::vector<std::unique_ptr<Shard[]>> NodeShards;

  /// Worker pool for parallel evaluateAll().
  std::atomic<size_t> EvalThreads{1};
  std::atomic<bool> PinWorkers{false};
  mutable std::mutex DispatchMutex; ///< Serializes parallel dispatches.
  mutable std::mutex PoolMutex;
  std::condition_variable PoolWake;
  std::condition_variable PoolDone;
  std::vector<std::thread> PoolThreads;
  const std::function<void()> *ActiveTask = nullptr; ///< Guarded by PoolMutex.
  uint64_t TaskGeneration = 0;                       ///< Guarded by PoolMutex.
  size_t FinishedWorkers = 0;                        ///< Guarded by PoolMutex.
  bool PoolShutdown = false;                         ///< Guarded by PoolMutex.

  mutable std::mutex ThreadMutex;
  std::condition_variable StopCondition;
  std::thread Worker;
  bool Running = false;
  bool StopRequested = false;

  /// Periodic reporter state. The sink is copied out under ReporterMutex
  /// and invoked without it, so a slow sink never blocks reconfiguration
  /// for longer than one report.
  mutable std::mutex ReporterMutex;
  ReporterOptions Reporter;                         ///< Guarded by ReporterMutex.
  std::chrono::steady_clock::time_point NextReport; ///< Guarded by ReporterMutex.
  std::atomic<uint64_t> ReportsEmitted{0};

  /// Selection-store state. The shared_ptr is copied out under
  /// StoreMutex and used without it, so a slow persist (file I/O under
  /// flock) never blocks context registration or warm-start lookups.
  mutable std::mutex StoreMutex;
  std::shared_ptr<SelectionStore> Store;             ///< Guarded by StoreMutex.
  std::string StorePath;                             ///< Guarded by StoreMutex.
  std::chrono::steady_clock::time_point NextPersist; ///< Guarded by StoreMutex.
};

} // namespace cswitch

#endif // CSWITCH_CORE_SWITCHENGINE_H
