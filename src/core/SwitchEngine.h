//===- SwitchEngine.h - Context registry and evaluation thread --*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine that drives the periodic analysis of allocation contexts
/// (paper §4.3: "a periodic task is scheduled at a parametrized fixed
/// rate (monitoring rate)"). Contexts register with the engine; a
/// background thread evaluates every registered context at the monitoring
/// rate (paper default: 50 ms). evaluateAll() allows driving the same
/// analysis synchronously, which deterministic tests and single-threaded
/// harnesses use.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_SWITCHENGINE_H
#define CSWITCH_CORE_SWITCHENGINE_H

#include "core/AllocationContext.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace cswitch {

/// Registry of live allocation contexts plus the periodic evaluator.
class SwitchEngine {
public:
  /// Returns the process-wide engine.
  static SwitchEngine &global();

  SwitchEngine() = default;
  ~SwitchEngine();

  SwitchEngine(const SwitchEngine &) = delete;
  SwitchEngine &operator=(const SwitchEngine &) = delete;

  /// Registers \p Context for periodic evaluation. The caller retains
  /// ownership and must call unregisterContext before destroying it.
  void registerContext(AllocationContextBase *Context);

  /// Removes \p Context from the registry (no-op if absent).
  void unregisterContext(AllocationContextBase *Context);

  /// Evaluates every registered context once; returns the number of
  /// contexts that performed a transition.
  size_t evaluateAll();

  /// Starts the background evaluation thread at the given monitoring
  /// rate (paper default 50 ms). No-op if already running.
  void start(std::chrono::milliseconds MonitoringRate =
                 std::chrono::milliseconds(50));

  /// Stops the background thread (blocks until it exits). No-op if not
  /// running.
  void stop();

  /// True while the background thread is running.
  bool isRunning() const;

  /// Number of registered contexts.
  size_t contextCount() const;

  /// Sum of switchCount() over all registered contexts.
  uint64_t totalSwitches() const;

private:
  void threadMain(std::chrono::milliseconds Rate);

  mutable std::mutex RegistryMutex;
  std::vector<AllocationContextBase *> Contexts;

  mutable std::mutex ThreadMutex;
  std::condition_variable StopCondition;
  std::thread Worker;
  bool Running = false;
  bool StopRequested = false;
};

} // namespace cswitch

#endif // CSWITCH_CORE_SWITCHENGINE_H
