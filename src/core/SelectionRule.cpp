//===- SelectionRule.cpp - Configurable selection rules ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/SelectionRule.h"

#include <cassert>

using namespace cswitch;

SelectionRule SelectionRule::timeRule() {
  return {"Rtime", {{CostDimension::Time, 0.8}}};
}

SelectionRule SelectionRule::allocRule() {
  return {"Ralloc",
          {{CostDimension::Alloc, 0.8}, {CostDimension::Time, 1.2}}};
}

SelectionRule SelectionRule::energyRule() {
  return {"Renergy",
          {{CostDimension::Energy, 0.8}, {CostDimension::Time, 1.2}}};
}

SelectionRule SelectionRule::impossibleRule() {
  return {"Rimpossible", {{CostDimension::Time, 0.001}}};
}

CostDimension SelectionRule::primaryDimension() const {
  assert(!Criteria.empty() && "rule without criteria");
  return Criteria.front().Dimension;
}
