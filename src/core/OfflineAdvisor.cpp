//===- OfflineAdvisor.cpp - Chameleon-style offline selection -------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/OfflineAdvisor.h"

#include "collections/AdaptiveConfig.h"
#include "core/AllocationContext.h"

#include <algorithm>
#include <sstream>

using namespace cswitch;

ProfileAggregator::ProfileAggregator(std::string Site,
                                     AbstractionKind Kind,
                                     unsigned DeclaredVariantIndex)
    : Site(std::move(Site)), Kind(Kind),
      DeclaredVariant(DeclaredVariantIndex) {}

void ProfileAggregator::onInstanceFinished(size_t,
                                           const WorkloadProfile &Profile) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Instances;
  if (Profiles.size() < MaxRetainedProfiles)
    Profiles.push_back(Profile);
  else
    Profiles.back().merge(Profile);
}

std::vector<WorkloadProfile> ProfileAggregator::profiles() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Profiles;
}

size_t ProfileAggregator::instanceCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Instances;
}

double SiteRecommendation::improvementRatio(CostDimension Dim) const {
  if (!RecommendedVariantIndex)
    return 1.0;
  double Declared = DeclaredCost[static_cast<size_t>(Dim)];
  if (Declared <= 0.0)
    return 1.0;
  return RecommendedCost[static_cast<size_t>(Dim)] / Declared;
}

std::string SiteRecommendation::toString() const {
  std::ostringstream OS;
  OS << Site << ": " << VariantId{Kind, DeclaredVariantIndex}.name();
  if (!RecommendedVariantIndex) {
    OS << " (keep; " << InstancesProfiled << " instances)";
    return OS.str();
  }
  OS << " -> " << VariantId{Kind, *RecommendedVariantIndex}.name() << " (";
  bool First = true;
  for (CostDimension Dim : AllCostDimensions) {
    if (!First)
      OS << ", ";
    OS << costDimensionName(Dim) << " x";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f", improvementRatio(Dim));
    OS << Buf;
    First = false;
  }
  OS << "; " << InstancesProfiled << " instances)";
  return OS.str();
}

namespace {

bool isAdaptiveIndex(AbstractionKind Kind, unsigned Index) {
  switch (Kind) {
  case AbstractionKind::List:
    return static_cast<ListVariant>(Index) == ListVariant::AdaptiveList;
  case AbstractionKind::Set:
    return static_cast<SetVariant>(Index) == SetVariant::AdaptiveSet;
  case AbstractionKind::Map:
    return static_cast<MapVariant>(Index) == MapVariant::AdaptiveMap;
  }
  return false;
}

size_t adaptiveThresholdOf(AbstractionKind Kind) {
  AdaptiveThresholds T = AdaptiveConfig::global().thresholds();
  switch (Kind) {
  case AbstractionKind::List:
    return T.List;
  case AbstractionKind::Set:
    return T.Set;
  case AbstractionKind::Map:
    return T.Map;
  }
  return 0;
}

} // namespace

std::vector<SiteRecommendation>
cswitch::adviseOffline(const std::vector<const ProfileAggregator *> &Sites,
                       const PerformanceModel &Model,
                       const SelectionRule &Rule,
                       double WideRangeFactor) {
  std::vector<SiteRecommendation> Report;
  Report.reserve(Sites.size());

  for (const ProfileAggregator *Site : Sites) {
    SiteRecommendation Rec;
    Rec.Site = Site->site();
    Rec.Kind = Site->abstraction();
    Rec.DeclaredVariantIndex = Site->declaredVariantIndex();
    Rec.InstancesProfiled = Site->instanceCount();

    std::vector<WorkloadProfile> Profiles = Site->profiles();
    size_t NumVariants = numVariantsOf(Rec.Kind);
    std::vector<VariantCosts> Costs(NumVariants);
    uint64_t MinMaxSize = UINT64_MAX;
    uint64_t MaxMaxSize = 0;
    for (const WorkloadProfile &Profile : Profiles) {
      MinMaxSize = std::min(MinMaxSize, Profile.MaxSize);
      MaxMaxSize = std::max(MaxMaxSize, Profile.MaxSize);
      for (unsigned V = 0; V != NumVariants; ++V) {
        VariantId Id{Rec.Kind, V};
        for (CostDimension Dim : AllCostDimensions)
          Costs[V].Total[static_cast<size_t>(Dim)] +=
              Model.totalCost(Id, Profile, Dim);
      }
    }
    for (unsigned V = 0; V != NumVariants; ++V)
      if (!Model.hasVariant({Rec.Kind, V}))
        Costs[V].Eligible = false;

    // The same adaptive-variant gate the online contexts apply (§3.2).
    if (!Profiles.empty()) {
      size_t Threshold = adaptiveThresholdOf(Rec.Kind);
      bool Straddles = MinMaxSize <= Threshold && MaxMaxSize > Threshold;
      bool WideSpread =
          static_cast<double>(MaxMaxSize) >=
          WideRangeFactor *
              std::max<double>(1.0, static_cast<double>(MinMaxSize));
      if (!Straddles && !WideSpread)
        for (unsigned V = 0; V != NumVariants; ++V)
          if (isAdaptiveIndex(Rec.Kind, V))
            Costs[V].Eligible = false;
    }

    Rec.DeclaredCost = Costs[Rec.DeclaredVariantIndex].Total;
    Rec.RecommendedCost = Rec.DeclaredCost;
    if (!Profiles.empty()) {
      std::optional<unsigned> Choice =
          selectVariant(Costs, Rec.DeclaredVariantIndex, Rule);
      if (Choice) {
        Rec.RecommendedVariantIndex = Choice;
        Rec.RecommendedCost = Costs[*Choice].Total;
      }
    }
    Report.push_back(std::move(Rec));
  }
  return Report;
}
