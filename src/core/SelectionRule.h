//===- SelectionRule.h - Configurable selection rules -----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configurable selection rules (paper §3.1.2): a rule is a conjunction of
/// criteria, each bounding the ratio TC_D(Vnew)/TC_D(Vcur) of a candidate
/// variant's total cost to the current variant's total cost in one
/// dimension. A threshold below 1 demands an improvement; at or above 1 it
/// caps the allowed penalty. The presets reproduce the paper's Table 4:
///
///   Rtime : time ratio < 0.8
///   Ralloc: alloc ratio < 0.8  and  time ratio < 1.2
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_SELECTIONRULE_H
#define CSWITCH_CORE_SELECTIONRULE_H

#include "model/CostModel.h"

#include <string>
#include <vector>

namespace cswitch {

/// One criterion: TC_Dimension(Vnew) / TC_Dimension(Vcur) <= Threshold.
struct Criterion {
  CostDimension Dimension;
  double Threshold;
};

/// A named conjunction of criteria. The first criterion is the
/// improvement dimension: when several candidates satisfy every
/// criterion, the one with the largest improvement on it wins (§3.1.2).
struct SelectionRule {
  std::string Name;
  std::vector<Criterion> Criteria;

  /// The paper's Rtime rule: time cost < 0.8 (Table 4).
  static SelectionRule timeRule();

  /// The paper's Ralloc rule: alloc cost < 0.8, time penalty < 1.2
  /// (Table 4).
  static SelectionRule allocRule();

  /// The energy rule of the paper's future-work dimension (§7):
  /// energy cost < 0.8, time penalty < 1.2 (mirrors Ralloc's shape).
  static SelectionRule energyRule();

  /// The overhead-measurement rule (paper §5.3): requires a 1000x
  /// improvement, so no transition ever fires while all monitoring and
  /// analysis machinery stays active.
  static SelectionRule impossibleRule();

  /// The improvement dimension (dimension of the first criterion).
  CostDimension primaryDimension() const;
};

} // namespace cswitch

#endif // CSWITCH_CORE_SELECTIONRULE_H
