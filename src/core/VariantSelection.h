//===- VariantSelection.h - The variant selection algorithm -----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The selection algorithm of §3.1.1–3.1.2, factored out of the templated
/// allocation contexts so it is testable in isolation: given the total
/// costs TC_D(V) of every candidate variant in every cost dimension and a
/// selection rule, pick the replacement variant (if any).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_VARIANTSELECTION_H
#define CSWITCH_CORE_VARIANTSELECTION_H

#include "core/SelectionRule.h"

#include <array>
#include <optional>
#include <vector>

namespace cswitch {

/// Total costs of one candidate variant, indexed by CostDimension.
struct VariantCosts {
  std::array<double, NumCostDimensions> Total = {};
  /// False excludes the variant from selection (e.g. an adaptive variant
  /// gated out because instance sizes were not widely ranging, §3.2).
  bool Eligible = true;

  double of(CostDimension Dim) const {
    return Total[static_cast<size_t>(Dim)];
  }
};

/// Selects a replacement variant.
///
/// \p Costs is indexed by variant (enum order); \p Current is the index
/// of the variant currently instantiated. A candidate qualifies if it is
/// eligible and every criterion ratio TC_D(cand)/TC_D(current) is within
/// the rule's threshold; among qualifying candidates the one with the
/// lowest cost in the rule's primary dimension wins (§3.1.2: "largest
/// improvement on the first criterion"). \returns the winning variant
/// index, or std::nullopt to keep the current variant.
///
/// Zero current cost in a criterion dimension means nothing can improve
/// on it; such criteria only pass for candidates that are also free in
/// that dimension when the threshold permits no penalty.
std::optional<unsigned> selectVariant(const std::vector<VariantCosts> &Costs,
                                      unsigned Current,
                                      const SelectionRule &Rule);

} // namespace cswitch

#endif // CSWITCH_CORE_VARIANTSELECTION_H
