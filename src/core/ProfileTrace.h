//===- ProfileTrace.h - Persisted workload traces ---------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A text format for persisting per-site workload profiles, completing
/// the offline-selection workflow (§6): run the application once with
/// ProfileAggregators attached, save the trace, and advise later —
/// possibly on another machine with that machine's performance model —
/// via the cswitch_advisor tool.
///
/// Format (line-oriented):
///
///   cswitch-profile-trace v1
///   site <abstraction> <declared-variant> <site-name>
///   profile <maxsize> <populate> <contains> <iterate> <index> <middle> <remove>
///   ...
///
/// Every `profile` line belongs to the most recent `site` line.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_PROFILETRACE_H
#define CSWITCH_CORE_PROFILETRACE_H

#include "core/OfflineAdvisor.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace cswitch {

/// One allocation site's recorded trace, as loaded from a trace file.
struct SiteTrace {
  std::string Site;
  AbstractionKind Kind = AbstractionKind::List;
  unsigned DeclaredVariantIndex = 0;
  std::vector<WorkloadProfile> Profiles;
};

/// Writes the sites' collected profiles as a trace document.
void saveTrace(std::ostream &OS,
               const std::vector<const ProfileAggregator *> &Sites);

/// Parses a trace document produced by saveTrace. \returns false on
/// malformed input (leaving \p Out partially filled).
bool loadTrace(std::istream &IS, std::vector<SiteTrace> &Out);

/// File wrappers; return false on I/O or parse failure.
bool saveTraceToFile(const std::string &Path,
                     const std::vector<const ProfileAggregator *> &Sites);
bool loadTraceFromFile(const std::string &Path,
                       std::vector<SiteTrace> &Out);

/// Offline advice over loaded traces (same semantics as the aggregator
/// overload in OfflineAdvisor.h).
std::vector<SiteRecommendation>
adviseOffline(const std::vector<SiteTrace> &Sites,
              const PerformanceModel &Model, const SelectionRule &Rule,
              double WideRangeFactor = 4.0);

} // namespace cswitch

#endif // CSWITCH_CORE_PROFILETRACE_H
