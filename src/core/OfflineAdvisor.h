//===- OfflineAdvisor.h - Chameleon-style offline selection -----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline-selection baseline the paper positions itself against
/// (§6, Offline Collection Selection — Chameleon, Brainy, Perflint):
/// record workload profiles during a profiling run, then report a
/// per-site recommendation the developer applies by hand. Unlike the
/// online framework, the recommendation is one static choice per site —
/// it cannot follow phase changes, which is precisely the gap
/// CollectionSwitch's runtime adaptation closes (§1).
///
/// Usage: attach a ProfileAggregator as the sink of the collections of
/// one allocation site (or run the site's AllocationContext and export
/// its aggregates), then ask adviseOffline() for the report.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_CORE_OFFLINEADVISOR_H
#define CSWITCH_CORE_OFFLINEADVISOR_H

#include "core/SelectionRule.h"
#include "core/VariantSelection.h"
#include "profile/WorkloadProfile.h"

#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace cswitch {

/// Collects every finished-instance profile of one allocation site
/// during a profiling run. Thread-safe.
class ProfileAggregator : public ProfileSink {
public:
  ProfileAggregator(std::string Site, AbstractionKind Kind,
                    unsigned DeclaredVariantIndex);

  void onInstanceFinished(size_t Slot,
                          const WorkloadProfile &Profile) override;

  const std::string &site() const { return Site; }
  AbstractionKind abstraction() const { return Kind; }
  unsigned declaredVariantIndex() const { return DeclaredVariant; }

  /// Snapshot of the collected profiles.
  std::vector<WorkloadProfile> profiles() const;

  /// Number of finished instances recorded.
  size_t instanceCount() const;

  /// Caps retained profiles; further instances merge into the last
  /// bucket so unbounded runs cannot exhaust memory.
  static constexpr size_t MaxRetainedProfiles = 65536;

private:
  const std::string Site;
  const AbstractionKind Kind;
  const unsigned DeclaredVariant;

  mutable std::mutex Mutex;
  std::vector<WorkloadProfile> Profiles;
  size_t Instances = 0;
};

/// One line of the offline report.
struct SiteRecommendation {
  std::string Site;
  AbstractionKind Kind = AbstractionKind::List;
  unsigned DeclaredVariantIndex = 0;
  /// Recommended replacement; empty when the declared variant is already
  /// the rule-best choice (or no profile data was collected).
  std::optional<unsigned> RecommendedVariantIndex;
  /// Predicted total cost of the declared variant, per dimension.
  std::array<double, NumCostDimensions> DeclaredCost = {};
  /// Predicted total cost of the recommendation (== DeclaredCost when
  /// there is none).
  std::array<double, NumCostDimensions> RecommendedCost = {};
  size_t InstancesProfiled = 0;

  /// Predicted improvement ratio on \p Dim (1.0 when no recommendation).
  double improvementRatio(CostDimension Dim) const;

  /// "Site: Declared -> Recommended (time x0.42)" style line.
  std::string toString() const;
};

/// Computes per-site recommendations from recorded profiles, using the
/// same total-cost machinery, selection rule and adaptive-variant gate
/// the online framework uses (so offline and online agree whenever the
/// workload is stable — the property the offline/online comparison
/// rests on). \p WideRangeFactor matches ContextOptions::WideRangeFactor.
std::vector<SiteRecommendation>
adviseOffline(const std::vector<const ProfileAggregator *> &Sites,
              const PerformanceModel &Model, const SelectionRule &Rule,
              double WideRangeFactor = 4.0);

} // namespace cswitch

#endif // CSWITCH_CORE_OFFLINEADVISOR_H
