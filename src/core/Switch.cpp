//===- Switch.cpp - Top-level CollectionSwitch API ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"

#include "model/DefaultModel.h"

using namespace cswitch;

namespace {

std::mutex &modelMutex() {
  static std::mutex Mutex;
  return Mutex;
}

std::shared_ptr<const PerformanceModel> &modelSlot() {
  static std::shared_ptr<const PerformanceModel> Slot;
  return Slot;
}

} // namespace

std::shared_ptr<const PerformanceModel> Switch::model() {
  std::lock_guard<std::mutex> Lock(modelMutex());
  std::shared_ptr<const PerformanceModel> &Slot = modelSlot();
  if (!Slot)
    Slot = std::make_shared<const PerformanceModel>(
        defaultPerformanceModel());
  return Slot;
}

void Switch::setModel(std::shared_ptr<const PerformanceModel> Model) {
  std::lock_guard<std::mutex> Lock(modelMutex());
  modelSlot() = std::move(Model);
}
