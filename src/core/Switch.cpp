//===- Switch.cpp - Top-level CollectionSwitch API ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"

#include "collections/AdaptiveConfig.h"
#include "model/DefaultModel.h"
#include "obs/MetricsHttp.h"
#include "obs/OpenMetrics.h"
#include "obs/PerfettoExport.h"
#include "obs/Provenance.h"
#include "support/MetricsExport.h"
#include "support/Telemetry.h"
#include "tuner/ParameterSpace.h"
#include "tuner/TuningArtifact.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace cswitch;

namespace {

std::mutex &modelMutex() {
  static std::mutex Mutex;
  return Mutex;
}

std::shared_ptr<const PerformanceModel> &modelSlot() {
  static std::shared_ptr<const PerformanceModel> Slot;
  return Slot;
}

std::mutex &configMutex() {
  static std::mutex Mutex;
  return Mutex;
}

ContextOptions &contextDefaultsSlot() {
  static ContextOptions Slot;
  return Slot;
}

FleetOptions &fleetOptionsSlot() {
  static FleetOptions Slot;
  return Slot;
}

std::mutex &serverMutex() {
  static std::mutex Mutex;
  return Mutex;
}

std::unique_ptr<obs::MetricsServer> &serverSlot() {
  static std::unique_ptr<obs::MetricsServer> Slot;
  return Slot;
}

// Applies a decoded tuning artifact process-wide. Takes configMutex()
// itself for the context-defaults overlay — callers must not hold it.
bool applyTuningArtifact(const tuner::TuningArtifact &Artifact,
                         const std::string &Source, std::string *Error) {
  auto Fail = [&](const std::string &Reason) {
    TuningRegistry::global().recordFailure();
    std::fprintf(stderr, "cswitch: tuning artifact %s rejected: %s\n",
                 Source.c_str(), Reason.c_str());
    if (Error)
      *Error = Reason;
    return false;
  };
  tuner::ParameterSet Params;
  std::string Reason;
  if (!tuner::paramsFromArtifact(Artifact, Params, &Reason))
    return Fail(Reason);
  // Validate both threshold bundles before installing either, so a
  // rejected artifact leaves the running configuration untouched.
  if (!validateThresholds(Params.thresholds(), &Reason))
    return Fail(Reason);
  if (!validateContention(Params.contention(), &Reason))
    return Fail(Reason);
  AdaptiveConfig::global().setThresholdsChecked(Params.thresholds());
  AdaptiveConfig::global().setContentionChecked(Params.contention());
  {
    std::lock_guard<std::mutex> Lock(configMutex());
    ContextOptions &Defaults = contextDefaultsSlot();
    Defaults.WindowSize = Params.windowSize();
    Defaults.FinishedRatio = Params.finishedRatio();
    Defaults.WideRangeFactor = Params.wideRangeFactor();
    Defaults.WarmWindowFactor = Params.warmWindowFactor();
  }
  TuningStats Provenance;
  Provenance.Source = Source;
  Provenance.Fingerprint = Artifact.HostFingerprint;
  Provenance.CorpusDigest = Artifact.CorpusDigest;
  Provenance.Seed = Artifact.Seed;
  Provenance.Generations = Artifact.Generations;
  Provenance.Population = Artifact.Population;
  Provenance.Evaluations = Artifact.Evaluations;
  Provenance.Parameters = Artifact.Rows.size();
  Provenance.WinnerFitness = Artifact.WinnerFitness;
  Provenance.BaselineFitness = Artifact.BaselineFitness;
  TuningRegistry::global().recordLoad(Provenance);
  return true;
}

bool applyTuningFile(const std::string &Path, std::string *Error) {
  tuner::TuningArtifact Artifact;
  std::string Reason;
  if (!tuner::readTuningArtifactFromFile(Path, Artifact, &Reason)) {
    TuningRegistry::global().recordFailure();
    std::fprintf(stderr, "cswitch: tuning artifact %s rejected: %s\n",
                 Path.c_str(), Reason.c_str());
    if (Error)
      *Error = Reason;
    return false;
  }
  return applyTuningArtifact(Artifact, Path, Error);
}

// CSWITCH_TUNING: the zero-code-change path to a tuned configuration,
// mirroring how fleet hosts pick up pushed artifacts. Checked once per
// process, before any explicit SwitchConfig::Tuning application.
void maybeApplyEnvTuning() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Path = std::getenv("CSWITCH_TUNING");
    if (Path && *Path)
      applyTuningFile(Path, nullptr);
  });
}

} // namespace

std::shared_ptr<const PerformanceModel> Switch::model() {
  std::lock_guard<std::mutex> Lock(modelMutex());
  std::shared_ptr<const PerformanceModel> &Slot = modelSlot();
  if (!Slot) {
    Slot = std::make_shared<const PerformanceModel>(
        defaultPerformanceModel());
    // Provenance for the explain header: decisions are driven by the
    // shipped default model until something better is installed.
    ModelStats Provenance;
    Provenance.Source = "<builtin>";
    ModelRegistry::global().recordInstall(Provenance);
  }
  return Slot;
}

void Switch::setModel(std::shared_ptr<const PerformanceModel> Model) {
  std::lock_guard<std::mutex> Lock(modelMutex());
  modelSlot() = std::move(Model);
}

void Switch::configure(const SwitchConfig &Config) {
  SwitchEngine::global().configure(Config.Engine);
  {
    std::lock_guard<std::mutex> Lock(configMutex());
    contextDefaultsSlot() = Config.Context;
    fleetOptionsSlot() = Config.Fleet;
  }
  // Environment-provided tuning first, then the explicit artifact (the
  // configuration the caller named wins over ambient state).
  maybeApplyEnvTuning();
  if (!Config.Tuning.empty())
    applyTuningFile(Config.Tuning, nullptr);
}

ContextOptions Switch::defaultContextOptions() {
  maybeApplyEnvTuning();
  std::lock_guard<std::mutex> Lock(configMutex());
  return contextDefaultsSlot();
}

bool Switch::applyTuning(const std::string &Path, std::string *Error) {
  return applyTuningFile(Path, Error);
}

uint16_t Switch::serveMetrics(uint16_t Port) {
  std::lock_guard<std::mutex> Lock(serverMutex());
  std::unique_ptr<obs::MetricsServer> &Slot = serverSlot();
  if (Slot && Slot->running())
    return 0;
  auto Server = std::make_unique<obs::MetricsServer>();
  // Each route renders a fresh snapshot per request; the snapshot
  // machinery is safe against the running application, so the server
  // thread needs no coordination with it.
  Server->handle(
      "/metrics",
      "application/openmetrics-text; version=1.0.0; charset=utf-8",
      [] { return obs::renderOpenMetrics(SwitchEngine::global().telemetry()); });
  Server->handle("/snapshot.json", "application/json", [] {
    return toJson(SwitchEngine::global().telemetry());
  });
  Server->handle("/trace.json", "application/json",
                 [] { return obs::renderPerfettoTrace(); });
  // Decision provenance (DESIGN.md §14): the full explanation of every
  // retained selection decision. Served whether or not the ledger is
  // enabled — a disabled ledger renders "enabled":false with no sites,
  // so operators can tell "off" apart from "no decisions yet".
  Server->handle("/explain.json", "application/json", [] {
    return obs::renderExplainJson(
        obs::makeExplainHeader(SwitchEngine::global().telemetry()),
        obs::ProvenanceRegistry::global().snapshotSites(),
        obs::ProvenanceRegistry::enabled());
  });
  FleetOptions Fleet;
  {
    std::lock_guard<std::mutex> ConfigLock(configMutex());
    Fleet = fleetOptionsSlot();
  }
  if (Fleet.ServeStore) {
    // Fleet store sync (DESIGN.md §12). GET serves the replica's current
    // knowledge; POST flock-merges a peer's pushed document. Both paths
    // feed the fleet telemetry counters so every failure class is
    // observable.
    Server->handle("/store", "application/octet-stream", [] {
      FleetStats Delta;
      Delta.StoreGets = 1;
      FleetRegistry::global().record(Delta);
      return SwitchEngine::global().exportStore();
    });
    Server->handlePost(
        "/store", Fleet.MaxPushBytes,
        [](std::string_view Body) -> obs::MetricsServer::PostResult {
          std::string Error;
          uint64_t SitesMerged = 0;
          FleetStats Delta;
          if (!SwitchEngine::global().mergeRemoteStore(Body, &Error,
                                                       &SitesMerged)) {
            Delta.RejectedMalformed = 1;
            FleetRegistry::global().record(Delta);
            return {400, "merge failed: " + Error + "\n"};
          }
          Delta.MergesApplied = 1;
          Delta.SitesMerged = SitesMerged;
          FleetRegistry::global().record(Delta);
          return {200, "merged " + std::to_string(SitesMerged) + " sites\n"};
        });
  }
  if (!Server->start(Port))
    return 0;
  Slot = std::move(Server);
  return Slot->port();
}

void Switch::stopMetricsServer() {
  std::lock_guard<std::mutex> Lock(serverMutex());
  serverSlot().reset();
}

uint16_t Switch::metricsPort() {
  std::lock_guard<std::mutex> Lock(serverMutex());
  std::unique_ptr<obs::MetricsServer> &Slot = serverSlot();
  return Slot ? Slot->port() : 0;
}
