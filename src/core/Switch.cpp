//===- Switch.cpp - Top-level CollectionSwitch API ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "core/Switch.h"

#include "model/DefaultModel.h"
#include "obs/MetricsHttp.h"
#include "obs/OpenMetrics.h"
#include "obs/PerfettoExport.h"
#include "support/MetricsExport.h"

using namespace cswitch;

namespace {

std::mutex &modelMutex() {
  static std::mutex Mutex;
  return Mutex;
}

std::shared_ptr<const PerformanceModel> &modelSlot() {
  static std::shared_ptr<const PerformanceModel> Slot;
  return Slot;
}

std::mutex &configMutex() {
  static std::mutex Mutex;
  return Mutex;
}

ContextOptions &contextDefaultsSlot() {
  static ContextOptions Slot;
  return Slot;
}

std::mutex &serverMutex() {
  static std::mutex Mutex;
  return Mutex;
}

std::unique_ptr<obs::MetricsServer> &serverSlot() {
  static std::unique_ptr<obs::MetricsServer> Slot;
  return Slot;
}

} // namespace

std::shared_ptr<const PerformanceModel> Switch::model() {
  std::lock_guard<std::mutex> Lock(modelMutex());
  std::shared_ptr<const PerformanceModel> &Slot = modelSlot();
  if (!Slot)
    Slot = std::make_shared<const PerformanceModel>(
        defaultPerformanceModel());
  return Slot;
}

void Switch::setModel(std::shared_ptr<const PerformanceModel> Model) {
  std::lock_guard<std::mutex> Lock(modelMutex());
  modelSlot() = std::move(Model);
}

void Switch::configure(const SwitchConfig &Config) {
  SwitchEngine::global().configure(Config.Engine);
  std::lock_guard<std::mutex> Lock(configMutex());
  contextDefaultsSlot() = Config.Context;
}

ContextOptions Switch::defaultContextOptions() {
  std::lock_guard<std::mutex> Lock(configMutex());
  return contextDefaultsSlot();
}

uint16_t Switch::serveMetrics(uint16_t Port) {
  std::lock_guard<std::mutex> Lock(serverMutex());
  std::unique_ptr<obs::MetricsServer> &Slot = serverSlot();
  if (Slot && Slot->running())
    return 0;
  auto Server = std::make_unique<obs::MetricsServer>();
  // Each route renders a fresh snapshot per request; the snapshot
  // machinery is safe against the running application, so the server
  // thread needs no coordination with it.
  Server->handle(
      "/metrics",
      "application/openmetrics-text; version=1.0.0; charset=utf-8",
      [] { return obs::renderOpenMetrics(SwitchEngine::global().telemetry()); });
  Server->handle("/snapshot.json", "application/json", [] {
    return toJson(SwitchEngine::global().telemetry());
  });
  Server->handle("/trace.json", "application/json",
                 [] { return obs::renderPerfettoTrace(); });
  if (!Server->start(Port))
    return 0;
  Slot = std::move(Server);
  return Slot->port();
}

void Switch::stopMetricsServer() {
  std::lock_guard<std::mutex> Lock(serverMutex());
  serverSlot().reset();
}

uint16_t Switch::metricsPort() {
  std::lock_guard<std::mutex> Lock(serverMutex());
  std::unique_ptr<obs::MetricsServer> &Slot = serverSlot();
  return Slot ? Slot->port() : 0;
}
