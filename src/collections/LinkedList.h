//===- LinkedList.h - Doubly-linked list variant ----------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The doubly-linked list variant: O(1) append and end removal, O(n)
/// positional access (walking from the nearer end, as JDK LinkedList
/// does), per-node allocation overhead. Analogue of JDK LinkedList in the
/// paper's Table 2. Its niche is interior insert/remove once the position
/// is reached; its pathology is index access — exactly the trade-offs the
/// multi-phase experiment (Fig. 6) exercises.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_LINKEDLIST_H
#define CSWITCH_COLLECTIONS_LINKEDLIST_H

#include "collections/ListInterface.h"
#include "support/MemoryTracker.h"

#include <cassert>

namespace cswitch {

/// Doubly-linked ListImpl.
template <typename T> class LinkedListImpl final : public ListImpl<T> {
  struct Node {
    T Value;
    Node *Prev;
    Node *Next;
  };

public:
  LinkedListImpl() = default;

  LinkedListImpl(const LinkedListImpl &) = delete;
  LinkedListImpl &operator=(const LinkedListImpl &) = delete;

  ~LinkedListImpl() override { clear(); }

  void push_back(const T &Value) override {
    Node *N = newCounted<Node>(Node{Value, Tail, nullptr});
    if (Tail)
      Tail->Next = N;
    else
      Head = N;
    Tail = N;
    ++Count;
  }

  void insertAt(size_t Index, const T &Value) override {
    assert(Index <= Count && "insert index out of range");
    if (Index == Count) {
      push_back(Value);
      return;
    }
    Node *At = nodeAt(Index);
    Node *N = newCounted<Node>(Node{Value, At->Prev, At});
    if (At->Prev)
      At->Prev->Next = N;
    else
      Head = N;
    At->Prev = N;
    ++Count;
  }

  void removeAt(size_t Index) override {
    assert(Index < Count && "remove index out of range");
    unlink(nodeAt(Index));
  }

  bool removeValue(const T &Value) override {
    for (Node *N = Head; N; N = N->Next) {
      if (N->Value == Value) {
        unlink(N);
        return true;
      }
    }
    return false;
  }

  const T &at(size_t Index) const override {
    assert(Index < Count && "index out of range");
    return nodeAt(Index)->Value;
  }

  void set(size_t Index, const T &Value) override {
    assert(Index < Count && "index out of range");
    nodeAt(Index)->Value = Value;
  }

  bool contains(const T &Value) const override {
    for (const Node *N = Head; N; N = N->Next)
      if (N->Value == Value)
        return true;
    return false;
  }

  size_t size() const override { return Count; }

  void clear() override {
    Node *N = Head;
    while (N) {
      Node *Next = N->Next;
      deleteCounted(N);
      N = Next;
    }
    Head = Tail = nullptr;
    Count = 0;
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const Node *N = Head; N; N = N->Next)
      Fn(N->Value);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Count * sizeof(Node);
  }

  ListVariant variant() const override { return ListVariant::LinkedList; }

  std::unique_ptr<ListImpl<T>> cloneEmpty() const override {
    return std::make_unique<LinkedListImpl<T>>();
  }

private:
  /// Walks to \p Index from whichever end is closer (JDK-style).
  Node *nodeAt(size_t Index) const {
    assert(Index < Count && "index out of range");
    if (Index < Count / 2) {
      Node *N = Head;
      for (size_t I = 0; I != Index; ++I)
        N = N->Next;
      return N;
    }
    Node *N = Tail;
    for (size_t I = Count - 1; I != Index; --I)
      N = N->Prev;
    return N;
  }

  void unlink(Node *N) {
    if (N->Prev)
      N->Prev->Next = N->Next;
    else
      Head = N->Next;
    if (N->Next)
      N->Next->Prev = N->Prev;
    else
      Tail = N->Prev;
    deleteCounted(N);
    --Count;
  }

  Node *Head = nullptr;
  Node *Tail = nullptr;
  size_t Count = 0;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_LINKEDLIST_H
