//===- ChainedHashSet.h - Chained hash set variant ---------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chained (separate chaining) hash set variant, analogue of JDK
/// HashSet: per-element node allocation with a cached hash, 0.75 maximum
/// load factor. O(1) expected operations but pointer-chasing lookups and
/// the highest per-element memory overhead of the hash variants — the
/// profile that makes open-addressing and adaptive variants attractive
/// replacements in the paper's DaCapo results (Table 6).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CHAINEDHASHSET_H
#define CSWITCH_COLLECTIONS_CHAINEDHASHSET_H

#include "collections/SetInterface.h"
#include "support/Hashing.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <vector>

namespace cswitch {

/// Separate-chaining SetImpl.
template <typename T, typename Hash = DefaultHash<T>>
class ChainedHashSetImpl final : public SetImpl<T> {
  struct Node {
    T Value;
    uint64_t HashValue; ///< Cached so rehash never re-hashes elements.
    Node *Next;
  };

public:
  ChainedHashSetImpl() = default;

  ChainedHashSetImpl(const ChainedHashSetImpl &) = delete;
  ChainedHashSetImpl &operator=(const ChainedHashSetImpl &) = delete;

  ~ChainedHashSetImpl() override { clear(); }

  bool add(const T &Value) override {
    if (Buckets.empty())
      rehash(InitialBuckets);
    uint64_t H = Hash{}(Value);
    size_t Index = H & (Buckets.size() - 1);
    for (Node *N = Buckets[Index]; N; N = N->Next)
      if (N->HashValue == H && N->Value == Value)
        return false;
    Buckets[Index] = newCounted<Node>(Node{Value, H, Buckets[Index]});
    ++Count;
    if (Count * 4 > Buckets.size() * 3)
      rehash(Buckets.size() * 2);
    return true;
  }

  bool contains(const T &Value) const override {
    if (Buckets.empty())
      return false;
    uint64_t H = Hash{}(Value);
    for (const Node *N = Buckets[H & (Buckets.size() - 1)]; N; N = N->Next)
      if (N->HashValue == H && N->Value == Value)
        return true;
    return false;
  }

  bool remove(const T &Value) override {
    if (Buckets.empty())
      return false;
    uint64_t H = Hash{}(Value);
    Node **Link = &Buckets[H & (Buckets.size() - 1)];
    while (Node *N = *Link) {
      if (N->HashValue == H && N->Value == Value) {
        *Link = N->Next;
        deleteCounted(N);
        --Count;
        return true;
      }
      Link = &N->Next;
    }
    return false;
  }

  size_t size() const override { return Count; }

  void clear() override {
    for (Node *Head : Buckets) {
      while (Head) {
        Node *Next = Head->Next;
        deleteCounted(Head);
        Head = Next;
      }
    }
    Buckets.clear();
    Buckets.shrink_to_fit();
    Count = 0;
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const Node *Head : Buckets)
      for (const Node *N = Head; N; N = N->Next)
        Fn(N->Value);
  }

  void reserve(size_t N) override {
    size_t Needed = nextPowerOfTwo((N * 4 + 2) / 3);
    if (Needed > Buckets.size())
      rehash(Needed);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Buckets.capacity() * sizeof(Node *) +
           Count * sizeof(Node);
  }

  SetVariant variant() const override { return SetVariant::ChainedHashSet; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<ChainedHashSetImpl<T, Hash>>();
  }

private:
  static constexpr size_t InitialBuckets = 16;

  void rehash(size_t NewBucketCount) {
    assert((NewBucketCount & (NewBucketCount - 1)) == 0 &&
           "bucket count must be a power of two");
    std::vector<Node *, CountingAllocator<Node *>> Old(std::move(Buckets));
    Buckets.assign(NewBucketCount, nullptr);
    for (Node *Head : Old) {
      while (Head) {
        Node *Next = Head->Next;
        size_t Index = Head->HashValue & (NewBucketCount - 1);
        Head->Next = Buckets[Index];
        Buckets[Index] = Head;
        Head = Next;
      }
    }
  }

  std::vector<Node *, CountingAllocator<Node *>> Buckets;
  size_t Count = 0;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CHAINEDHASHSET_H
