//===- AdaptiveConfig.cpp - Adaptive-collection transition policy --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "collections/AdaptiveConfig.h"

using namespace cswitch;

namespace {

bool failCheck(std::string *Error, const std::string &Message) {
  if (Error) {
    if (!Error->empty())
      *Error += "; ";
    *Error += Message;
  }
  return false;
}

} // namespace

bool cswitch::validateThresholds(const AdaptiveThresholds &T,
                                 std::string *Error) {
  bool Ok = true;
  auto Check = [&](const char *Field, size_t Value) {
    if (Value == 0)
      Ok = failCheck(Error, std::string("adaptive threshold ") + Field +
                                " is 0 (must be >= 1)");
    else if (Value > MaxAdaptiveThreshold)
      Ok = failCheck(Error, std::string("adaptive threshold ") + Field +
                                " = " + std::to_string(Value) +
                                " exceeds the maximum " +
                                std::to_string(MaxAdaptiveThreshold));
  };
  Check("List", T.List);
  Check("Set", T.Set);
  Check("Map", T.Map);
  return Ok;
}

bool cswitch::validateContention(const ContentionPolicy &P,
                                 std::string *Error) {
  bool Ok = true;
  if (!(P.Smoothing > 0.0) || P.Smoothing > 1.0)
    Ok = failCheck(Error, "contention smoothing " +
                              std::to_string(P.Smoothing) +
                              " outside (0, 1]");
  if (P.Shards > 4096)
    Ok = failCheck(Error, "contention shards " + std::to_string(P.Shards) +
                              " exceeds the maximum 4096");
  if (P.MinOps > (uint64_t(1) << 30))
    Ok = failCheck(Error, "contention min-ops " + std::to_string(P.MinOps) +
                              " exceeds the maximum 2^30");
  return Ok;
}

AdaptiveConfig &AdaptiveConfig::global() {
  static AdaptiveConfig Instance;
  return Instance;
}
