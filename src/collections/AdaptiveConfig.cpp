//===- AdaptiveConfig.cpp - Adaptive-collection transition policy --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "collections/AdaptiveConfig.h"

using namespace cswitch;

AdaptiveConfig &AdaptiveConfig::global() {
  static AdaptiveConfig Instance;
  return Instance;
}
