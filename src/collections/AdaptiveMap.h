//===- AdaptiveMap.h - Size-adaptive map variant ------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AdaptiveMap variant (paper §3.2, Table 1: array → openhash at size
/// 50): parallel key/value arrays while small, migrating to an
/// open-addressing table once the size crosses the threshold. This is
/// the variant behind the paper's headline lusearch result (§5.2), where
/// most HashMap instances held under 20 elements.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_ADAPTIVEMAP_H
#define CSWITCH_COLLECTIONS_ADAPTIVEMAP_H

#include "collections/AdaptiveConfig.h"
#include "collections/MapInterface.h"
#include "collections/detail/OpenHashTable.h"
#include "support/MemoryTracker.h"

#include <vector>

namespace cswitch {

/// Size-adaptive MapImpl (parallel arrays, then open-addressing hash).
template <typename K, typename V>
class AdaptiveMapImpl final : public MapImpl<K, V> {
public:
  /// Uses the process-wide threshold by default.
  AdaptiveMapImpl() : Threshold(AdaptiveConfig::global().thresholds().Map) {}

  explicit AdaptiveMapImpl(size_t Threshold) : Threshold(Threshold) {}

  bool put(const K &Key, const V &Value) override {
    if (Migrated)
      return Table.insertOrAssign(Key, Value);
    for (size_t I = 0, E = SmallKeys.size(); I != E; ++I) {
      if (SmallKeys[I] == Key) {
        SmallVals[I] = Value;
        return false;
      }
    }
    if (SmallKeys.capacity() == 0) {
      SmallKeys.reserve(8);
      SmallVals.reserve(8);
    }
    SmallKeys.push_back(Key);
    SmallVals.push_back(Value);
    if (SmallKeys.size() > Threshold)
      migrate();
    return true;
  }

  const V *get(const K &Key) const override {
    if (Migrated)
      return Table.find(Key);
    for (size_t I = 0, E = SmallKeys.size(); I != E; ++I)
      if (SmallKeys[I] == Key)
        return &SmallVals[I];
    return nullptr;
  }

  V *getMutable(const K &Key) override {
    return const_cast<V *>(
        static_cast<const AdaptiveMapImpl *>(this)->get(Key));
  }

  bool containsKey(const K &Key) const override {
    return get(Key) != nullptr;
  }

  bool remove(const K &Key) override {
    if (Migrated)
      return Table.erase(Key);
    for (size_t I = 0, E = SmallKeys.size(); I != E; ++I) {
      if (SmallKeys[I] == Key) {
        SmallKeys.erase(SmallKeys.begin() + static_cast<ptrdiff_t>(I));
        SmallVals.erase(SmallVals.begin() + static_cast<ptrdiff_t>(I));
        return true;
      }
    }
    return false;
  }

  size_t size() const override {
    return Migrated ? Table.size() : SmallKeys.size();
  }

  void clear() override {
    SmallKeys.clear();
    SmallKeys.shrink_to_fit();
    SmallVals.clear();
    SmallVals.shrink_to_fit();
    Table.clear();
    Migrated = false;
  }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    if (Migrated) {
      Table.forEach(Fn);
      return;
    }
    for (size_t I = 0, E = SmallKeys.size(); I != E; ++I)
      Fn(SmallKeys[I], SmallVals[I]);
  }

  void reserve(size_t N) override {
    if (Migrated) {
      Table.reserve(N);
    } else if (N <= Threshold) {
      SmallKeys.reserve(N);
      SmallVals.reserve(N);
    }
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + SmallKeys.capacity() * sizeof(K) +
           SmallVals.capacity() * sizeof(V) + Table.memoryFootprint();
  }

  MapVariant variant() const override { return MapVariant::AdaptiveMap; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<AdaptiveMapImpl<K, V>>(Threshold);
  }

  /// True once the hash representation is active.
  bool hasMigrated() const { return Migrated; }

  /// The transition threshold of this instance.
  size_t threshold() const { return Threshold; }

private:
  void migrate() {
    Table.reserve(SmallKeys.size() * 2);
    for (size_t I = 0, E = SmallKeys.size(); I != E; ++I)
      Table.insertOrAssign(SmallKeys[I], SmallVals[I]);
    SmallKeys.clear();
    SmallKeys.shrink_to_fit();
    SmallVals.clear();
    SmallVals.shrink_to_fit();
    Migrated = true;
    AdaptiveConfig::global().recordMigration();
  }

  std::vector<K, CountingAllocator<K>> SmallKeys;
  std::vector<V, CountingAllocator<V>> SmallVals;
  detail::OpenHashMapTable<K, V, 1, 2> Table;
  size_t Threshold;
  bool Migrated = false;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_ADAPTIVEMAP_H
