//===- ArraySet.h - Array-backed set variant ---------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The array-backed set variant, analogue of the ArraySet implementations
/// the paper draws from Google HTTP Client, Stanford NLP and FastUtil:
/// a plain insertion-ordered array with linear membership tests. The
/// paper's "narrow best-case scenario" variant — minimal footprint and
/// the fastest choice for very small sets thanks to cache locality, but
/// linear everything.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_ARRAYSET_H
#define CSWITCH_COLLECTIONS_ARRAYSET_H

#include "collections/SetInterface.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <vector>

namespace cswitch {

/// Array-backed SetImpl with insertion-ordered iteration.
template <typename T> class ArraySetImpl final : public SetImpl<T> {
public:
  ArraySetImpl() = default;

  bool add(const T &Value) override {
    if (contains(Value))
      return false;
    // Like the Java array sets' default capacity: avoid tiny-growth churn.
    if (Data.capacity() == 0)
      Data.reserve(InitialCapacity);
    Data.push_back(Value);
    return true;
  }

  bool contains(const T &Value) const override {
    return std::find(Data.begin(), Data.end(), Value) != Data.end();
  }

  bool remove(const T &Value) override {
    auto It = std::find(Data.begin(), Data.end(), Value);
    if (It == Data.end())
      return false;
    Data.erase(It);
    return true;
  }

  size_t size() const override { return Data.size(); }

  void clear() override { Data.clear(); }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const T &V : Data)
      Fn(V);
  }

  void reserve(size_t N) override { Data.reserve(N); }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Data.capacity() * sizeof(T);
  }

  SetVariant variant() const override { return SetVariant::ArraySet; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<ArraySetImpl<T>>();
  }

private:
  static constexpr size_t InitialCapacity = 8;

  std::vector<T, CountingAllocator<T>> Data;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_ARRAYSET_H
