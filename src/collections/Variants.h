//===- Variants.h - Collection variant identities --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identities of the collection variants considered by the framework —
/// the C++ equivalents of the paper's Table 2 candidate set. Variant ids
/// are the currency of the whole system: the performance model is indexed
/// by them, allocation contexts select among them, and the transition log
/// names them.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_VARIANTS_H
#define CSWITCH_COLLECTIONS_VARIANTS_H

#include <array>
#include <cstddef>
#include <string>

namespace cswitch {

/// Which abstract data type a variant implements.
enum class AbstractionKind : unsigned { List, Set, Map };

/// Number of AbstractionKind values.
constexpr size_t NumAbstractionKinds = 3;

/// Returns "list", "set" or "map".
const char *abstractionKindName(AbstractionKind Kind);

/// List implementation variants (paper Table 2, Lists rows, plus the
/// concurrent tier — DESIGN.md §11).
enum class ListVariant : unsigned {
  ArrayList,     ///< Array-backed list (JDK ArrayList analogue).
  LinkedList,    ///< Doubly-linked list (JDK LinkedList analogue).
  HashArrayList, ///< Array + hash bag for O(1) lookups (Switch variant).
  AdaptiveList,  ///< Array on small sizes, hash-array above threshold.
  MutexList,     ///< Mutex-serialized array list (concurrent tier).
  SnapshotList,  ///< Copy-on-write, snapshot-on-iterate (concurrent tier).
};

constexpr size_t NumListVariants = 6;
constexpr std::array<ListVariant, NumListVariants> AllListVariants = {
    ListVariant::ArrayList,    ListVariant::LinkedList,
    ListVariant::HashArrayList, ListVariant::AdaptiveList,
    ListVariant::MutexList,    ListVariant::SnapshotList};

/// Set implementation variants (paper Table 2, Sets rows).
enum class SetVariant : unsigned {
  ChainedHashSet, ///< Chained hash table (JDK HashSet analogue).
  OpenHashSet,    ///< Open addressing, low load factor (Koloboke-like).
  LinkedHashSet,  ///< Chained hash + insertion order (JDK analogue).
  ArraySet,       ///< Plain array, linear search (Google/NLP analogue).
  CompactHashSet, ///< Open addressing, high load factor (compact).
  AdaptiveSet,    ///< Array on small sizes, open hash above threshold.
  TreeSet,        ///< AVL tree, sorted iteration (JDK TreeSet analogue).
  SortedArraySet, ///< Sorted array, binary-search lookups.
  MutexHashSet,   ///< Mutex-serialized open hash (concurrent tier).
  StripedHashSet, ///< Per-shard mutex striping (concurrent tier).
};

constexpr size_t NumSetVariants = 10;
constexpr std::array<SetVariant, NumSetVariants> AllSetVariants = {
    SetVariant::ChainedHashSet, SetVariant::OpenHashSet,
    SetVariant::LinkedHashSet,  SetVariant::ArraySet,
    SetVariant::CompactHashSet, SetVariant::AdaptiveSet,
    SetVariant::TreeSet,        SetVariant::SortedArraySet,
    SetVariant::MutexHashSet,   SetVariant::StripedHashSet};

/// Map implementation variants (paper Table 2, Maps rows).
enum class MapVariant : unsigned {
  ChainedHashMap, ///< Chained hash table (JDK HashMap analogue).
  OpenHashMap,    ///< Open addressing, low load factor (Koloboke-like).
  LinkedHashMap,  ///< Chained hash + insertion order (JDK analogue).
  ArrayMap,       ///< Parallel key/value arrays, linear search.
  CompactHashMap, ///< Open addressing, high load factor (compact).
  AdaptiveMap,    ///< Array on small sizes, open hash above threshold.
  TreeMap,        ///< AVL tree, sorted iteration (JDK TreeMap analogue).
  SortedArrayMap, ///< Parallel sorted arrays, binary-search lookups.
  MutexHashMap,   ///< Mutex-serialized open hash (concurrent tier).
  ShardedHashMap, ///< Per-shard mutex striping (concurrent tier).
};

constexpr size_t NumMapVariants = 10;
constexpr std::array<MapVariant, NumMapVariants> AllMapVariants = {
    MapVariant::ChainedHashMap, MapVariant::OpenHashMap,
    MapVariant::LinkedHashMap,  MapVariant::ArrayMap,
    MapVariant::CompactHashMap, MapVariant::AdaptiveMap,
    MapVariant::TreeMap,        MapVariant::SortedArrayMap,
    MapVariant::MutexHashMap,   MapVariant::ShardedHashMap};

/// Returns the stable name of a variant (e.g. "ArrayList").
const char *listVariantName(ListVariant V);
const char *setVariantName(SetVariant V);
const char *mapVariantName(MapVariant V);

/// Parses a variant name; returns false if unknown.
bool parseListVariant(const std::string &Name, ListVariant &Out);
bool parseSetVariant(const std::string &Name, SetVariant &Out);
bool parseMapVariant(const std::string &Name, MapVariant &Out);

/// An abstraction-tagged variant id, usable as a key across abstractions
/// (the performance model and the transition log are indexed by these).
struct VariantId {
  AbstractionKind Abstraction;
  unsigned Index; ///< Value of the abstraction-specific enum.

  static VariantId of(ListVariant V) {
    return {AbstractionKind::List, static_cast<unsigned>(V)};
  }
  static VariantId of(SetVariant V) {
    return {AbstractionKind::Set, static_cast<unsigned>(V)};
  }
  static VariantId of(MapVariant V) {
    return {AbstractionKind::Map, static_cast<unsigned>(V)};
  }

  bool operator==(const VariantId &Other) const = default;

  /// Stable name of the variant this id denotes.
  std::string name() const;
};

/// Number of variants of \p Kind.
size_t numVariantsOf(AbstractionKind Kind);

//===----------------------------------------------------------------------===//
// The concurrent tier (DESIGN.md §11)
//===----------------------------------------------------------------------===//

/// Synchronization strategy a context selects within (the concurrency
/// analogue of the variant pool):
///  - None: the sequential tier only — single-owner instances, the
///    paper's original candidate set. The default.
///  - Mutex: pin to the mutex-serialized concurrent variant.
///  - Sharded: pin to the lock-striped / copy-on-write concurrent
///    variant.
///  - Auto: the whole concurrent tier; the engine switches between
///    synchronization strategies as the observed contention changes.
enum class Concurrency : unsigned { None, Mutex, Sharded, Auto };

/// Returns "none", "mutex", "sharded" or "auto".
const char *concurrencyName(Concurrency Mode);

/// Parses a concurrency-mode name; returns false if unknown.
bool parseConcurrency(const std::string &Name, Concurrency &Out);

/// Index of the first concurrent variant of \p Kind (every index below
/// it is a sequential variant).
unsigned firstConcurrentVariant(AbstractionKind Kind);

/// True if variant \p Index of \p Kind belongs to the concurrent tier
/// (safe to share one instance across threads).
bool isConcurrentVariant(AbstractionKind Kind, unsigned Index);

/// Bitmap of the variants of \p Kind that compete under \p Mode: the
/// sequential pool for None, the pinned strategy's single bit for
/// Mutex/Sharded, and the whole concurrent tier for Auto.
uint32_t concurrencyCandidateMask(AbstractionKind Kind, Concurrency Mode);

/// The variant a context starts on under concurrent \p Mode (Mutex/Auto
/// start mutex-serialized — the cheapest strategy at low contention —
/// and Sharded starts striped). \p Mode must not be None.
unsigned concurrentInitialVariant(AbstractionKind Kind, Concurrency Mode);

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_VARIANTS_H
