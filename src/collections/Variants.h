//===- Variants.h - Collection variant identities --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identities of the collection variants considered by the framework —
/// the C++ equivalents of the paper's Table 2 candidate set. Variant ids
/// are the currency of the whole system: the performance model is indexed
/// by them, allocation contexts select among them, and the transition log
/// names them.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_VARIANTS_H
#define CSWITCH_COLLECTIONS_VARIANTS_H

#include <array>
#include <cstddef>
#include <string>

namespace cswitch {

/// Which abstract data type a variant implements.
enum class AbstractionKind : unsigned { List, Set, Map };

/// Number of AbstractionKind values.
constexpr size_t NumAbstractionKinds = 3;

/// Returns "list", "set" or "map".
const char *abstractionKindName(AbstractionKind Kind);

/// List implementation variants (paper Table 2, Lists rows).
enum class ListVariant : unsigned {
  ArrayList,     ///< Array-backed list (JDK ArrayList analogue).
  LinkedList,    ///< Doubly-linked list (JDK LinkedList analogue).
  HashArrayList, ///< Array + hash bag for O(1) lookups (Switch variant).
  AdaptiveList,  ///< Array on small sizes, hash-array above threshold.
};

constexpr size_t NumListVariants = 4;
constexpr std::array<ListVariant, NumListVariants> AllListVariants = {
    ListVariant::ArrayList, ListVariant::LinkedList,
    ListVariant::HashArrayList, ListVariant::AdaptiveList};

/// Set implementation variants (paper Table 2, Sets rows).
enum class SetVariant : unsigned {
  ChainedHashSet, ///< Chained hash table (JDK HashSet analogue).
  OpenHashSet,    ///< Open addressing, low load factor (Koloboke-like).
  LinkedHashSet,  ///< Chained hash + insertion order (JDK analogue).
  ArraySet,       ///< Plain array, linear search (Google/NLP analogue).
  CompactHashSet, ///< Open addressing, high load factor (compact).
  AdaptiveSet,    ///< Array on small sizes, open hash above threshold.
  TreeSet,        ///< AVL tree, sorted iteration (JDK TreeSet analogue).
  SortedArraySet, ///< Sorted array, binary-search lookups.
};

constexpr size_t NumSetVariants = 8;
constexpr std::array<SetVariant, NumSetVariants> AllSetVariants = {
    SetVariant::ChainedHashSet, SetVariant::OpenHashSet,
    SetVariant::LinkedHashSet,  SetVariant::ArraySet,
    SetVariant::CompactHashSet, SetVariant::AdaptiveSet,
    SetVariant::TreeSet,        SetVariant::SortedArraySet};

/// Map implementation variants (paper Table 2, Maps rows).
enum class MapVariant : unsigned {
  ChainedHashMap, ///< Chained hash table (JDK HashMap analogue).
  OpenHashMap,    ///< Open addressing, low load factor (Koloboke-like).
  LinkedHashMap,  ///< Chained hash + insertion order (JDK analogue).
  ArrayMap,       ///< Parallel key/value arrays, linear search.
  CompactHashMap, ///< Open addressing, high load factor (compact).
  AdaptiveMap,    ///< Array on small sizes, open hash above threshold.
  TreeMap,        ///< AVL tree, sorted iteration (JDK TreeMap analogue).
  SortedArrayMap, ///< Parallel sorted arrays, binary-search lookups.
};

constexpr size_t NumMapVariants = 8;
constexpr std::array<MapVariant, NumMapVariants> AllMapVariants = {
    MapVariant::ChainedHashMap, MapVariant::OpenHashMap,
    MapVariant::LinkedHashMap,  MapVariant::ArrayMap,
    MapVariant::CompactHashMap, MapVariant::AdaptiveMap,
    MapVariant::TreeMap,        MapVariant::SortedArrayMap};

/// Returns the stable name of a variant (e.g. "ArrayList").
const char *listVariantName(ListVariant V);
const char *setVariantName(SetVariant V);
const char *mapVariantName(MapVariant V);

/// Parses a variant name; returns false if unknown.
bool parseListVariant(const std::string &Name, ListVariant &Out);
bool parseSetVariant(const std::string &Name, SetVariant &Out);
bool parseMapVariant(const std::string &Name, MapVariant &Out);

/// An abstraction-tagged variant id, usable as a key across abstractions
/// (the performance model and the transition log are indexed by these).
struct VariantId {
  AbstractionKind Abstraction;
  unsigned Index; ///< Value of the abstraction-specific enum.

  static VariantId of(ListVariant V) {
    return {AbstractionKind::List, static_cast<unsigned>(V)};
  }
  static VariantId of(SetVariant V) {
    return {AbstractionKind::Set, static_cast<unsigned>(V)};
  }
  static VariantId of(MapVariant V) {
    return {AbstractionKind::Map, static_cast<unsigned>(V)};
  }

  bool operator==(const VariantId &Other) const = default;

  /// Stable name of the variant this id denotes.
  std::string name() const;
};

/// Number of variants of \p Kind.
size_t numVariantsOf(AbstractionKind Kind);

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_VARIANTS_H
