//===- OpenHashMap.h - Open-addressing map variants --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The open-addressing map variants: OpenHashMap probes a half-empty
/// table (Koloboke-like), CompactHashMap a 7/8-full one (memory-
/// efficient). See OpenHashSet.h for the role these play in the
/// candidate pool.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_OPENHASHMAP_H
#define CSWITCH_COLLECTIONS_OPENHASHMAP_H

#include "collections/MapInterface.h"
#include "collections/detail/OpenHashTable.h"

namespace cswitch {

/// Open-addressing MapImpl shared by the fast and compact variants.
template <typename K, typename V, MapVariant Variant, unsigned LoadNum,
          unsigned LoadDen>
class OpenAddressingMapImpl final : public MapImpl<K, V> {
public:
  OpenAddressingMapImpl() = default;

  bool put(const K &Key, const V &Value) override {
    return Table.insertOrAssign(Key, Value);
  }

  const V *get(const K &Key) const override { return Table.find(Key); }

  V *getMutable(const K &Key) override { return Table.findMutable(Key); }

  bool containsKey(const K &Key) const override {
    return Table.find(Key) != nullptr;
  }

  bool remove(const K &Key) override { return Table.erase(Key); }

  size_t size() const override { return Table.size(); }

  void clear() override { Table.clear(); }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    Table.forEach(Fn);
  }

  void reserve(size_t N) override { Table.reserve(N); }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Table.memoryFootprint();
  }

  MapVariant variant() const override { return Variant; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<OpenAddressingMapImpl>();
  }

private:
  detail::OpenHashMapTable<K, V, LoadNum, LoadDen> Table;
};

/// Fast open-addressing map: maximum load factor 1/2.
template <typename K, typename V>
using OpenHashMapImpl =
    OpenAddressingMapImpl<K, V, MapVariant::OpenHashMap, 1, 2>;

/// Compact open-addressing map: maximum load factor 7/8.
template <typename K, typename V>
using CompactHashMapImpl =
    OpenAddressingMapImpl<K, V, MapVariant::CompactHashMap, 7, 8>;

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_OPENHASHMAP_H
