//===- MapInterface.h - Uniform map interface + facade ----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform map interface every map variant implements, and the
/// value-semantic Map<K, V> facade. See ListInterface.h for the design
/// rationale; the contract here is a key-to-value association with
/// distinct keys.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_MAPINTERFACE_H
#define CSWITCH_COLLECTIONS_MAPINTERFACE_H

#include "collections/Variants.h"
#include "profile/SharedProfile.h"
#include "profile/WorkloadProfile.h"
#include "replay/TraceRecorder.h"
#include "support/FunctionRef.h"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace cswitch {

/// Abstract map implementation (one subclass per MapVariant).
template <typename K, typename V> class MapImpl {
public:
  virtual ~MapImpl() = default;

  /// Associates \p Key with \p Value; returns true if the key was new,
  /// false if an existing mapping was overwritten.
  virtual bool put(const K &Key, const V &Value) = 0;
  /// Returns the value mapped to \p Key, or nullptr if absent. The
  /// pointer is invalidated by any mutation.
  virtual const V *get(const K &Key) const = 0;
  /// Returns a mutable pointer to the value of \p Key, or nullptr.
  virtual V *getMutable(const K &Key) = 0;
  /// Copies the value of \p Key into \p Out; returns false if absent.
  /// Unlike get(), concurrent variants perform the copy under their
  /// lock, so this is the race-free read of the concurrent tier.
  virtual bool lookup(const K &Key, V &Out) const {
    const V *Found = get(Key);
    if (!Found)
      return false;
    Out = *Found;
    return true;
  }
  /// Returns true if \p Key has a mapping.
  virtual bool containsKey(const K &Key) const = 0;
  /// Removes the mapping of \p Key; returns false if it was absent.
  virtual bool remove(const K &Key) = 0;
  /// Number of mappings.
  virtual size_t size() const = 0;
  /// Removes all mappings.
  virtual void clear() = 0;
  /// Calls \p Fn on each mapping (order is variant-specific).
  virtual void forEach(FunctionRef<void(const K &, const V &)> Fn) const = 0;
  /// Capacity hint; variants without capacity ignore it.
  virtual void reserve(size_t) {}
  /// Bytes of memory currently owned by this collection.
  virtual size_t memoryFootprint() const = 0;
  /// Which variant this is.
  virtual MapVariant variant() const = 0;
  /// Creates an empty map of the same variant.
  virtual std::unique_ptr<MapImpl<K, V>> cloneEmpty() const = 0;

  bool empty() const { return size() == 0; }
};

/// Value-semantic map handle; see List<T> for the monitoring contract.
template <typename K, typename V> class Map {
public:
  explicit Map(std::unique_ptr<MapImpl<K, V>> Impl)
      : Impl(std::move(Impl)) {}

  Map(std::unique_ptr<MapImpl<K, V>> Impl, ProfileSink *Sink, size_t Slot)
      : Impl(std::move(Impl)), Sink(Sink), Slot(Slot) {}

  Map(Map &&Other) noexcept
      : Impl(std::move(Other.Impl)), Profile(Other.Profile),
        Shared(std::move(Other.Shared)), Sink(Other.Sink),
        Slot(Other.Slot), Rec(std::move(Other.Rec)) {
    Other.Sink = nullptr;
  }

  Map &operator=(Map &&Other) noexcept {
    if (this == &Other)
      return *this;
    reportIfMonitored();
    finishTrace();
    Impl = std::move(Other.Impl);
    Profile = Other.Profile;
    Shared = std::move(Other.Shared);
    Sink = Other.Sink;
    Slot = Other.Slot;
    Rec = std::move(Other.Rec);
    Other.Sink = nullptr;
    return *this;
  }

  Map(const Map &) = delete;
  Map &operator=(const Map &) = delete;

  ~Map() {
    reportIfMonitored();
    finishTrace();
  }

  /// Inserts or overwrites a mapping (profiled as populate).
  bool put(const K &Key, const V &Value) {
    note(OperationKind::Populate);
    bool Inserted = Impl->put(Key, Value);
    noteSize(Impl->size());
    recordOp(TraceOpKind::Populate,
             Inserted ? OpClass::None : OpClass::Hit);
    return Inserted;
  }

  /// Lookup (profiled as contains; nullptr if absent).
  const V *get(const K &Key) const {
    note(OperationKind::Contains);
    const V *Found = Impl->get(Key);
    recordOp(TraceOpKind::Contains, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Copying lookup (profiled as contains). The race-free read for
  /// concurrent variants: the value is copied out under the shard lock
  /// instead of returning a pointer into the table.
  bool lookup(const K &Key, V &Out) const {
    note(OperationKind::Contains);
    bool Found = Impl->lookup(Key, Out);
    recordOp(TraceOpKind::Contains, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Mutable lookup (profiled as contains; nullptr if absent).
  V *getMutable(const K &Key) {
    note(OperationKind::Contains);
    V *Found = Impl->getMutable(Key);
    recordOp(TraceOpKind::Contains, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Key membership test (profiled as contains).
  bool containsKey(const K &Key) const {
    note(OperationKind::Contains);
    bool Found = Impl->containsKey(Key);
    recordOp(TraceOpKind::Contains, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Removes a mapping (profiled as remove).
  bool remove(const K &Key) {
    note(OperationKind::Remove);
    bool Found = Impl->remove(Key);
    recordOp(TraceOpKind::RemoveValue, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Full traversal (profiled as one iterate).
  void forEach(FunctionRef<void(const K &, const V &)> Fn) const {
    note(OperationKind::Iterate);
    Impl->forEach(Fn);
    recordOp(TraceOpKind::Iterate, OpClass::None);
  }

  /// Copies the mappings into a vector of pairs (profiled as one iterate).
  std::vector<std::pair<K, V>> snapshot() const {
    std::vector<std::pair<K, V>> Out;
    Out.reserve(size());
    forEach([&Out](const K &Key, const V &Value) {
      Out.emplace_back(Key, Value);
    });
    return Out;
  }

  size_t size() const { return Impl->size(); }
  bool empty() const { return Impl->empty(); }
  void clear() {
    Impl->clear();
    recordOp(TraceOpKind::Clear, OpClass::None);
  }
  void reserve(size_t N) { Impl->reserve(N); }
  size_t memoryFootprint() const { return Impl->memoryFootprint(); }
  MapVariant variant() const { return Impl->variant(); }

  /// See List<T>::profile().
  const WorkloadProfile &profile() const {
    if (Shared)
      Profile = Shared->snapshot();
    return Profile;
  }
  bool isMonitored() const { return Sink != nullptr; }

  /// See List<T>::enableSharedProfiling().
  void enableSharedProfiling(ContentionSketch *Sketch = nullptr) {
    Shared = std::make_unique<SharedProfile>(Sketch);
  }

  /// True if profiling is multi-owner (see enableSharedProfiling).
  bool isShared() const { return Shared != nullptr; }

  /// Attaches an operation recorder (see List<T>::attachRecorder).
  void attachRecorder(TraceRecorder *Recorder, uint32_t Site,
                      uint32_t Instance) {
    Rec.attach(Recorder, Site, Instance);
  }

  /// True if this instance records into an operation trace.
  bool isTraced() const { return static_cast<bool>(Rec); }

private:
  void reportIfMonitored() {
    if (!Sink)
      return;
    if (Shared)
      Profile = Shared->snapshot();
    Sink->onInstanceFinished(Slot, Profile);
    Sink = nullptr;
  }

  void finishTrace() { Rec.finish(Impl ? Impl->size() : 0); }

  void recordOp(TraceOpKind Kind, OpClass Class) const {
    Rec.push(Kind, Class, Impl->size());
  }

  void note(OperationKind Kind) const {
    if (Shared)
      Shared->record(Kind);
    else
      Profile.record(Kind);
  }

  void noteSize(size_t Size) const {
    if (Shared)
      Shared->recordSize(Size);
    else
      Profile.recordSize(Size);
  }

  std::unique_ptr<MapImpl<K, V>> Impl;
  mutable WorkloadProfile Profile;
  mutable std::unique_ptr<SharedProfile> Shared;
  ProfileSink *Sink = nullptr;
  size_t Slot = 0;
  mutable TraceCursor Rec;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_MAPINTERFACE_H
