//===- HashArrayList.h - Array list with hash lookup index ------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HashArrayList variant (paper Table 2, "ArrayList + HashBag for
/// faster lookups"): contiguous element storage plus a hash multiset
/// index, giving O(1) contains at the price of extra memory and slower
/// mutation — every structural change maintains both structures. The
/// paper's multi-phase experiment (§5.1) calls out remove-by-value as the
/// operation where this cost bites.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_HASHARRAYLIST_H
#define CSWITCH_COLLECTIONS_HASHARRAYLIST_H

#include "collections/ListInterface.h"
#include "collections/detail/HashBag.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace cswitch {

/// Array + hash-bag ListImpl.
template <typename T> class HashArrayListImpl final : public ListImpl<T> {
public:
  HashArrayListImpl() = default;

  void push_back(const T &Value) override {
    if (Data.capacity() == 0)
      Data.reserve(8);
    Data.push_back(Value);
    Index.addOne(Value);
  }

  void insertAt(size_t Pos, const T &Value) override {
    assert(Pos <= Data.size() && "insert index out of range");
    Data.insert(Data.begin() + static_cast<ptrdiff_t>(Pos), Value);
    Index.addOne(Value);
  }

  void removeAt(size_t Pos) override {
    assert(Pos < Data.size() && "remove index out of range");
    Index.removeOne(Data[Pos]);
    Data.erase(Data.begin() + static_cast<ptrdiff_t>(Pos));
  }

  bool removeValue(const T &Value) override {
    // The bag answers "is it here" in O(1), but locating the position for
    // the array removal is still linear — the slowness the paper observed.
    if (!Index.contains(Value))
      return false;
    auto It = std::find(Data.begin(), Data.end(), Value);
    assert(It != Data.end() && "index out of sync with data");
    Index.removeOne(Value);
    Data.erase(It);
    return true;
  }

  const T &at(size_t Pos) const override {
    assert(Pos < Data.size() && "index out of range");
    return Data[Pos];
  }

  void set(size_t Pos, const T &Value) override {
    assert(Pos < Data.size() && "index out of range");
    Index.removeOne(Data[Pos]);
    Data[Pos] = Value;
    Index.addOne(Value);
  }

  bool contains(const T &Value) const override {
    return Index.contains(Value);
  }

  size_t size() const override { return Data.size(); }

  void clear() override {
    Data.clear();
    Index.clear();
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const T &V : Data)
      Fn(V);
  }

  void reserve(size_t N) override { Data.reserve(N); }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Data.capacity() * sizeof(T) +
           Index.memoryFootprint();
  }

  ListVariant variant() const override {
    return ListVariant::HashArrayList;
  }

  std::unique_ptr<ListImpl<T>> cloneEmpty() const override {
    return std::make_unique<HashArrayListImpl<T>>();
  }

private:
  std::vector<T, CountingAllocator<T>> Data;
  detail::HashBag<T> Index;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_HASHARRAYLIST_H
