//===- TreeSet.h - Sorted set variants ---------------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sorted set variants (the paper's §7 future-work item, implemented
/// here as extensions to the candidate pool):
///
///   * TreeSetImpl        — AVL-balanced tree, analogue of JDK TreeSet:
///                          O(log n) everything, per-node allocation,
///                          sorted iteration.
///   * SortedArraySetImpl — sorted contiguous array: O(log n) lookups at
///                          array footprint, O(n) inserts — the
///                          memory-optimal sorted set for read-mostly
///                          workloads.
///
/// Both iterate in ascending order (a refinement of the set contract).
/// Element types must provide operator< in addition to the pool-wide
/// hashing/equality requirements.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_TREESET_H
#define CSWITCH_COLLECTIONS_TREESET_H

#include "collections/SetInterface.h"
#include "collections/detail/AVLTree.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <vector>

namespace cswitch {

/// AVL-tree SetImpl with sorted iteration.
template <typename T> class TreeSetImpl final : public SetImpl<T> {
public:
  TreeSetImpl() = default;

  bool add(const T &Value) override {
    return Tree.insertOrAssign(Value, 0);
  }

  bool contains(const T &Value) const override {
    return Tree.find(Value) != nullptr;
  }

  bool remove(const T &Value) override { return Tree.erase(Value); }

  size_t size() const override { return Tree.size(); }

  void clear() override { Tree.clear(); }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    Tree.inorder([Fn](const T &Value, const char &) { Fn(Value); });
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Tree.memoryFootprint();
  }

  SetVariant variant() const override { return SetVariant::TreeSet; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<TreeSetImpl<T>>();
  }

private:
  detail::AVLTree<T, char> Tree;
};

/// Sorted-array SetImpl: binary-search lookups, shift-based mutation.
template <typename T> class SortedArraySetImpl final : public SetImpl<T> {
public:
  SortedArraySetImpl() = default;

  bool add(const T &Value) override {
    auto It = std::lower_bound(Data.begin(), Data.end(), Value);
    if (It != Data.end() && !(Value < *It))
      return false;
    // reserve() invalidates It; carry the position as an index.
    size_t Index = static_cast<size_t>(It - Data.begin());
    if (Data.capacity() == 0)
      Data.reserve(8);
    Data.insert(Data.begin() + static_cast<ptrdiff_t>(Index), Value);
    return true;
  }

  bool contains(const T &Value) const override {
    auto It = std::lower_bound(Data.begin(), Data.end(), Value);
    return It != Data.end() && !(Value < *It);
  }

  bool remove(const T &Value) override {
    auto It = std::lower_bound(Data.begin(), Data.end(), Value);
    if (It == Data.end() || Value < *It)
      return false;
    Data.erase(It);
    return true;
  }

  size_t size() const override { return Data.size(); }

  void clear() override { Data.clear(); }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const T &V : Data)
      Fn(V);
  }

  void reserve(size_t N) override { Data.reserve(N); }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Data.capacity() * sizeof(T);
  }

  SetVariant variant() const override {
    return SetVariant::SortedArraySet;
  }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<SortedArraySetImpl<T>>();
  }

private:
  std::vector<T, CountingAllocator<T>> Data;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_TREESET_H
