//===- Synchronized.h - Thread-safe collection decorators -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-safe decorators over any collection implementation — the
/// concurrency half of the paper's §7 future work ("a wider set of
/// candidate collections, including concurrent and sorted collections"),
/// realized in the spirit of java.util.Collections.synchronizedList/Set/
/// Map: every operation serializes on one internal mutex.
///
/// The decorators are deliberately *outside* the selection pool: the
/// performance model is calibrated single-threaded, and the monitored
/// facades' profile counters are unsynchronized by design (one instance,
/// one owner — the common case the paper optimizes). A synchronized
/// decorator is what you reach for when one collection instance must be
/// shared across threads while keeping the freedom to pick (or let a
/// context pick) its underlying variant. For sites where the *engine*
/// should select the synchronization strategy too, use the concurrent
/// tier instead (ContextOptions::concurrency, DESIGN.md §11).
///
/// Traversal goes through forEachLocked, which owns the internal mutex
/// for the whole sweep. Handing out iterators (or element references)
/// is deliberately unsupported: they would escape the lock and race
/// with concurrent mutators, the exact documented data race of
/// java.util's synchronized wrappers.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_SYNCHRONIZED_H
#define CSWITCH_COLLECTIONS_SYNCHRONIZED_H

#include "collections/ListInterface.h"
#include "collections/MapInterface.h"
#include "collections/SetInterface.h"

#include <cassert>
#include <memory>
#include <mutex>

namespace cswitch {

/// Mutex-serialized wrapper over a ListImpl.
template <typename T> class SynchronizedList {
public:
  explicit SynchronizedList(std::unique_ptr<ListImpl<T>> Impl)
      : Impl(std::move(Impl)) {
    assert(this->Impl && "decorator requires an implementation");
  }

  void add(const T &Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->push_back(Value);
  }

  void insert(size_t Index, const T &Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->insertAt(Index, Value);
  }

  void removeAt(size_t Index) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->removeAt(Index);
  }

  bool remove(const T &Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->removeValue(Value);
  }

  /// Returns a copy (a reference would escape the lock).
  T get(size_t Index) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->at(Index);
  }

  void set(size_t Index, const T &Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->set(Index, Value);
  }

  bool contains(const T &Value) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->contains(Value);
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->size();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->clear();
  }

  /// Runs \p Fn over every element while holding the lock (the
  /// java.util equivalent requires manual synchronization here; this
  /// API makes the whole traversal atomic instead).
  void forEachLocked(FunctionRef<void(const T &)> Fn) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->forEach(Fn);
  }

  size_t memoryFootprint() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return sizeof(*this) + Impl->memoryFootprint();
  }

  ListVariant variant() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->variant();
  }

private:
  mutable std::mutex Mutex;
  std::unique_ptr<ListImpl<T>> Impl;
};

/// Mutex-serialized wrapper over a SetImpl.
template <typename T> class SynchronizedSet {
public:
  explicit SynchronizedSet(std::unique_ptr<SetImpl<T>> Impl)
      : Impl(std::move(Impl)) {
    assert(this->Impl && "decorator requires an implementation");
  }

  bool add(const T &Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->add(Value);
  }

  bool contains(const T &Value) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->contains(Value);
  }

  bool remove(const T &Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->remove(Value);
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->size();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->clear();
  }

  /// Runs \p Fn over every element while holding the lock.
  void forEachLocked(FunctionRef<void(const T &)> Fn) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->forEach(Fn);
  }

  size_t memoryFootprint() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return sizeof(*this) + Impl->memoryFootprint();
  }

  SetVariant variant() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->variant();
  }

private:
  mutable std::mutex Mutex;
  std::unique_ptr<SetImpl<T>> Impl;
};

/// Mutex-serialized wrapper over a MapImpl.
template <typename K, typename V> class SynchronizedMap {
public:
  explicit SynchronizedMap(std::unique_ptr<MapImpl<K, V>> Impl)
      : Impl(std::move(Impl)) {
    assert(this->Impl && "decorator requires an implementation");
  }

  bool put(const K &Key, const V &Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->put(Key, Value);
  }

  /// Returns a copy of the value wrapped in \p Found semantics: the
  /// pointer-returning interface of MapImpl would escape the lock.
  bool get(const K &Key, V &Out) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    const V *Value = Impl->get(Key);
    if (!Value)
      return false;
    Out = *Value;
    return true;
  }

  bool containsKey(const K &Key) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->containsKey(Key);
  }

  bool remove(const K &Key) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->remove(Key);
  }

  /// Atomic read-modify-write of the value of \p Key; inserts
  /// \p Initial first when the key is absent. Returns the new value.
  /// (The java.util analogue is Map.compute.)
  V update(const K &Key, const V &Initial,
           FunctionRef<V(const V &)> Fn) {
    std::lock_guard<std::mutex> Lock(Mutex);
    V *Value = Impl->getMutable(Key);
    if (!Value) {
      V Updated = Fn(Initial);
      Impl->put(Key, Updated);
      return Updated;
    }
    *Value = Fn(*Value);
    return *Value;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->size();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->clear();
  }

  /// Runs \p Fn over every entry while holding the lock.
  void forEachLocked(FunctionRef<void(const K &, const V &)> Fn) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    Impl->forEach(Fn);
  }

  size_t memoryFootprint() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return sizeof(*this) + Impl->memoryFootprint();
  }

  MapVariant variant() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Impl->variant();
  }

private:
  mutable std::mutex Mutex;
  std::unique_ptr<MapImpl<K, V>> Impl;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_SYNCHRONIZED_H
