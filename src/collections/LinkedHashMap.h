//===- LinkedHashMap.h - Insertion-ordered hash map variant ------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The insertion-ordered chained hash map variant, analogue of JDK
/// LinkedHashMap: constant-time access plus deterministic iteration
/// order, at two extra pointers per entry (the paper's §2 example of a
/// collection combining two representations).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_LINKEDHASHMAP_H
#define CSWITCH_COLLECTIONS_LINKEDHASHMAP_H

#include "collections/MapInterface.h"
#include "support/Hashing.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <vector>

namespace cswitch {

/// Insertion-ordered separate-chaining MapImpl.
template <typename K, typename V, typename Hash = DefaultHash<K>>
class LinkedHashMapImpl final : public MapImpl<K, V> {
  struct Node {
    K Key;
    V Value;
    uint64_t HashValue;
    Node *Next;   ///< Bucket chain.
    Node *Before; ///< Insertion order.
    Node *After;  ///< Insertion order.
  };

public:
  LinkedHashMapImpl() = default;

  LinkedHashMapImpl(const LinkedHashMapImpl &) = delete;
  LinkedHashMapImpl &operator=(const LinkedHashMapImpl &) = delete;

  ~LinkedHashMapImpl() override { clear(); }

  bool put(const K &Key, const V &Value) override {
    if (Buckets.empty())
      rehash(InitialBuckets);
    uint64_t H = Hash{}(Key);
    size_t Index = H & (Buckets.size() - 1);
    for (Node *N = Buckets[Index]; N; N = N->Next) {
      if (N->HashValue == H && N->Key == Key) {
        N->Value = Value;
        return false;
      }
    }
    Node *N = newCounted<Node>(
        Node{Key, Value, H, Buckets[Index], Tail, nullptr});
    Buckets[Index] = N;
    if (Tail)
      Tail->After = N;
    else
      Head = N;
    Tail = N;
    ++Count;
    if (Count * 4 > Buckets.size() * 3)
      rehash(Buckets.size() * 2);
    return true;
  }

  const V *get(const K &Key) const override {
    if (Buckets.empty())
      return nullptr;
    uint64_t H = Hash{}(Key);
    for (const Node *N = Buckets[H & (Buckets.size() - 1)]; N; N = N->Next)
      if (N->HashValue == H && N->Key == Key)
        return &N->Value;
    return nullptr;
  }

  V *getMutable(const K &Key) override {
    return const_cast<V *>(
        static_cast<const LinkedHashMapImpl *>(this)->get(Key));
  }

  bool containsKey(const K &Key) const override {
    return get(Key) != nullptr;
  }

  bool remove(const K &Key) override {
    if (Buckets.empty())
      return false;
    uint64_t H = Hash{}(Key);
    Node **Link = &Buckets[H & (Buckets.size() - 1)];
    while (Node *N = *Link) {
      if (N->HashValue == H && N->Key == Key) {
        *Link = N->Next;
        unlinkOrder(N);
        deleteCounted(N);
        --Count;
        return true;
      }
      Link = &N->Next;
    }
    return false;
  }

  size_t size() const override { return Count; }

  void clear() override {
    Node *N = Head;
    while (N) {
      Node *Next = N->After;
      deleteCounted(N);
      N = Next;
    }
    Buckets.clear();
    Buckets.shrink_to_fit();
    Head = Tail = nullptr;
    Count = 0;
  }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    for (const Node *N = Head; N; N = N->After)
      Fn(N->Key, N->Value);
  }

  void reserve(size_t N) override {
    size_t Needed = nextPowerOfTwo((N * 4 + 2) / 3);
    if (Needed > Buckets.size())
      rehash(Needed);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Buckets.capacity() * sizeof(Node *) +
           Count * sizeof(Node);
  }

  MapVariant variant() const override { return MapVariant::LinkedHashMap; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<LinkedHashMapImpl<K, V, Hash>>();
  }

private:
  static constexpr size_t InitialBuckets = 16;

  void unlinkOrder(Node *N) {
    if (N->Before)
      N->Before->After = N->After;
    else
      Head = N->After;
    if (N->After)
      N->After->Before = N->Before;
    else
      Tail = N->Before;
  }

  void rehash(size_t NewBucketCount) {
    assert((NewBucketCount & (NewBucketCount - 1)) == 0 &&
           "bucket count must be a power of two");
    Buckets.assign(NewBucketCount, nullptr);
    for (Node *N = Head; N; N = N->After) {
      size_t Index = N->HashValue & (NewBucketCount - 1);
      N->Next = Buckets[Index];
      Buckets[Index] = N;
    }
  }

  std::vector<Node *, CountingAllocator<Node *>> Buckets;
  Node *Head = nullptr;
  Node *Tail = nullptr;
  size_t Count = 0;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_LINKEDHASHMAP_H
