//===- ArrayMap.h - Array-backed map variant ---------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The array-backed map variant (paper §3.1.2: "an ArrayMap is memory
/// efficient but has a linear time for access, as no structure is used to
/// index the keys"). Parallel key/value arrays with insertion-ordered
/// iteration; the memory-optimal choice for the many sub-20-element maps
/// real applications allocate (the lusearch finding in §5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_ARRAYMAP_H
#define CSWITCH_COLLECTIONS_ARRAYMAP_H

#include "collections/MapInterface.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <vector>

namespace cswitch {

/// Parallel-array MapImpl with insertion-ordered iteration.
template <typename K, typename V>
class ArrayMapImpl final : public MapImpl<K, V> {
public:
  ArrayMapImpl() = default;

  bool put(const K &Key, const V &Value) override {
    for (size_t I = 0, E = Keys.size(); I != E; ++I) {
      if (Keys[I] == Key) {
        Vals[I] = Value;
        return false;
      }
    }
    // Like the Java array maps' default capacity: avoid tiny-growth churn.
    if (Keys.capacity() == 0) {
      Keys.reserve(InitialCapacity);
      Vals.reserve(InitialCapacity);
    }
    Keys.push_back(Key);
    Vals.push_back(Value);
    return true;
  }

  const V *get(const K &Key) const override {
    for (size_t I = 0, E = Keys.size(); I != E; ++I)
      if (Keys[I] == Key)
        return &Vals[I];
    return nullptr;
  }

  V *getMutable(const K &Key) override {
    return const_cast<V *>(
        static_cast<const ArrayMapImpl *>(this)->get(Key));
  }

  bool containsKey(const K &Key) const override {
    return get(Key) != nullptr;
  }

  bool remove(const K &Key) override {
    for (size_t I = 0, E = Keys.size(); I != E; ++I) {
      if (Keys[I] == Key) {
        Keys.erase(Keys.begin() + static_cast<ptrdiff_t>(I));
        Vals.erase(Vals.begin() + static_cast<ptrdiff_t>(I));
        return true;
      }
    }
    return false;
  }

  size_t size() const override { return Keys.size(); }

  void clear() override {
    Keys.clear();
    Vals.clear();
  }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    for (size_t I = 0, E = Keys.size(); I != E; ++I)
      Fn(Keys[I], Vals[I]);
  }

  void reserve(size_t N) override {
    Keys.reserve(N);
    Vals.reserve(N);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Keys.capacity() * sizeof(K) +
           Vals.capacity() * sizeof(V);
  }

  MapVariant variant() const override { return MapVariant::ArrayMap; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<ArrayMapImpl<K, V>>();
  }

private:
  static constexpr size_t InitialCapacity = 8;

  std::vector<K, CountingAllocator<K>> Keys;
  std::vector<V, CountingAllocator<V>> Vals;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_ARRAYMAP_H
