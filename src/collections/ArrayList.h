//===- ArrayList.h - Array-backed list variant ------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The array-backed list variant: contiguous storage, O(1) append and
/// positional access, O(n) membership test and interior insert/remove.
/// Analogue of JDK ArrayList in the paper's Table 2, and the default
/// variant most allocation sites start from.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_ARRAYLIST_H
#define CSWITCH_COLLECTIONS_ARRAYLIST_H

#include "collections/ListInterface.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace cswitch {

/// Array-backed ListImpl.
template <typename T> class ArrayListImpl final : public ListImpl<T> {
public:
  ArrayListImpl() = default;

  void push_back(const T &Value) override {
    // Like JDK ArrayList's default capacity of 10: avoid the 1-2-4-8
    // growth churn every tiny list would otherwise pay.
    if (Data.capacity() == 0)
      Data.reserve(InitialCapacity);
    Data.push_back(Value);
  }

  void insertAt(size_t Index, const T &Value) override {
    assert(Index <= Data.size() && "insert index out of range");
    Data.insert(Data.begin() + static_cast<ptrdiff_t>(Index), Value);
  }

  void removeAt(size_t Index) override {
    assert(Index < Data.size() && "remove index out of range");
    Data.erase(Data.begin() + static_cast<ptrdiff_t>(Index));
  }

  bool removeValue(const T &Value) override {
    auto It = std::find(Data.begin(), Data.end(), Value);
    if (It == Data.end())
      return false;
    Data.erase(It);
    return true;
  }

  const T &at(size_t Index) const override {
    assert(Index < Data.size() && "index out of range");
    return Data[Index];
  }

  void set(size_t Index, const T &Value) override {
    assert(Index < Data.size() && "index out of range");
    Data[Index] = Value;
  }

  bool contains(const T &Value) const override {
    return std::find(Data.begin(), Data.end(), Value) != Data.end();
  }

  size_t size() const override { return Data.size(); }

  void clear() override { Data.clear(); }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const T &V : Data)
      Fn(V);
  }

  void reserve(size_t N) override { Data.reserve(N); }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Data.capacity() * sizeof(T);
  }

  ListVariant variant() const override { return ListVariant::ArrayList; }

  std::unique_ptr<ListImpl<T>> cloneEmpty() const override {
    return std::make_unique<ArrayListImpl<T>>();
  }

private:
  static constexpr size_t InitialCapacity = 8;

  std::vector<T, CountingAllocator<T>> Data;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_ARRAYLIST_H
