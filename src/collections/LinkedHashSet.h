//===- LinkedHashSet.h - Insertion-ordered hash set variant ------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The insertion-ordered chained hash set variant, analogue of JDK
/// LinkedHashSet: a chained hash table whose nodes are additionally
/// threaded on a doubly-linked order list. Pays two extra pointers per
/// element for deterministic iteration order — the memory-heaviest set in
/// the candidate pool, and therefore the variant the Ralloc rule most
/// eagerly replaces.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_LINKEDHASHSET_H
#define CSWITCH_COLLECTIONS_LINKEDHASHSET_H

#include "collections/SetInterface.h"
#include "support/Hashing.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <vector>

namespace cswitch {

/// Insertion-ordered separate-chaining SetImpl.
template <typename T, typename Hash = DefaultHash<T>>
class LinkedHashSetImpl final : public SetImpl<T> {
  struct Node {
    T Value;
    uint64_t HashValue;
    Node *Next;   ///< Bucket chain.
    Node *Before; ///< Insertion order.
    Node *After;  ///< Insertion order.
  };

public:
  LinkedHashSetImpl() = default;

  LinkedHashSetImpl(const LinkedHashSetImpl &) = delete;
  LinkedHashSetImpl &operator=(const LinkedHashSetImpl &) = delete;

  ~LinkedHashSetImpl() override { clear(); }

  bool add(const T &Value) override {
    if (Buckets.empty())
      rehash(InitialBuckets);
    uint64_t H = Hash{}(Value);
    size_t Index = H & (Buckets.size() - 1);
    for (Node *N = Buckets[Index]; N; N = N->Next)
      if (N->HashValue == H && N->Value == Value)
        return false;
    Node *N = newCounted<Node>(Node{Value, H, Buckets[Index], Tail, nullptr});
    Buckets[Index] = N;
    if (Tail)
      Tail->After = N;
    else
      Head = N;
    Tail = N;
    ++Count;
    if (Count * 4 > Buckets.size() * 3)
      rehash(Buckets.size() * 2);
    return true;
  }

  bool contains(const T &Value) const override {
    if (Buckets.empty())
      return false;
    uint64_t H = Hash{}(Value);
    for (const Node *N = Buckets[H & (Buckets.size() - 1)]; N; N = N->Next)
      if (N->HashValue == H && N->Value == Value)
        return true;
    return false;
  }

  bool remove(const T &Value) override {
    if (Buckets.empty())
      return false;
    uint64_t H = Hash{}(Value);
    Node **Link = &Buckets[H & (Buckets.size() - 1)];
    while (Node *N = *Link) {
      if (N->HashValue == H && N->Value == Value) {
        *Link = N->Next;
        unlinkOrder(N);
        deleteCounted(N);
        --Count;
        return true;
      }
      Link = &N->Next;
    }
    return false;
  }

  size_t size() const override { return Count; }

  void clear() override {
    Node *N = Head;
    while (N) {
      Node *Next = N->After;
      deleteCounted(N);
      N = Next;
    }
    Buckets.clear();
    Buckets.shrink_to_fit();
    Head = Tail = nullptr;
    Count = 0;
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const Node *N = Head; N; N = N->After)
      Fn(N->Value);
  }

  void reserve(size_t N) override {
    size_t Needed = nextPowerOfTwo((N * 4 + 2) / 3);
    if (Needed > Buckets.size())
      rehash(Needed);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Buckets.capacity() * sizeof(Node *) +
           Count * sizeof(Node);
  }

  SetVariant variant() const override { return SetVariant::LinkedHashSet; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<LinkedHashSetImpl<T, Hash>>();
  }

private:
  static constexpr size_t InitialBuckets = 16;

  void unlinkOrder(Node *N) {
    if (N->Before)
      N->Before->After = N->After;
    else
      Head = N->After;
    if (N->After)
      N->After->Before = N->Before;
    else
      Tail = N->Before;
  }

  void rehash(size_t NewBucketCount) {
    assert((NewBucketCount & (NewBucketCount - 1)) == 0 &&
           "bucket count must be a power of two");
    Buckets.assign(NewBucketCount, nullptr);
    // Rebuild the bucket chains by walking the order list; order links
    // are untouched.
    for (Node *N = Head; N; N = N->After) {
      size_t Index = N->HashValue & (NewBucketCount - 1);
      N->Next = Buckets[Index];
      Buckets[Index] = N;
    }
  }

  std::vector<Node *, CountingAllocator<Node *>> Buckets;
  Node *Head = nullptr;
  Node *Tail = nullptr;
  size_t Count = 0;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_LINKEDHASHSET_H
