//===- Factory.h - Variant construction -------------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructs a collection implementation from a variant id. This is the
/// one place that knows every concrete variant; allocation contexts and
/// the model builder go through it so a new variant only needs to be
/// registered here (plus its Variants.h enum entry) to join the candidate
/// pool.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_FACTORY_H
#define CSWITCH_COLLECTIONS_FACTORY_H

#include "collections/AdaptiveList.h"
#include "collections/AdaptiveMap.h"
#include "collections/AdaptiveSet.h"
#include "collections/ArrayList.h"
#include "collections/ArrayMap.h"
#include "collections/ArraySet.h"
#include "collections/ChainedHashMap.h"
#include "collections/ChainedHashSet.h"
#include "collections/HashArrayList.h"
#include "collections/LinkedHashMap.h"
#include "collections/LinkedHashSet.h"
#include "collections/LinkedList.h"
#include "collections/OpenHashMap.h"
#include "collections/OpenHashSet.h"
#include "collections/TreeMap.h"
#include "collections/TreeSet.h"
#include "collections/concurrent/MutexHashMap.h"
#include "collections/concurrent/MutexHashSet.h"
#include "collections/concurrent/MutexList.h"
#include "collections/concurrent/ShardedHashMap.h"
#include "collections/concurrent/SnapshotList.h"
#include "collections/concurrent/StripedHashSet.h"

#include <cassert>
#include <memory>

namespace cswitch {

/// Creates an empty list implementation of variant \p V. \p Adaptive,
/// when non-null, overrides the process-wide AdaptiveConfig thresholds
/// for the adaptive variant (per-context tuning; see
/// ContextOptions::AdaptiveOverride).
template <typename T>
std::unique_ptr<ListImpl<T>>
makeListImpl(ListVariant V, const AdaptiveThresholds *Adaptive = nullptr) {
  switch (V) {
  case ListVariant::ArrayList:
    return std::make_unique<ArrayListImpl<T>>();
  case ListVariant::LinkedList:
    return std::make_unique<LinkedListImpl<T>>();
  case ListVariant::HashArrayList:
    return std::make_unique<HashArrayListImpl<T>>();
  case ListVariant::AdaptiveList:
    return Adaptive ? std::make_unique<AdaptiveListImpl<T>>(Adaptive->List)
                    : std::make_unique<AdaptiveListImpl<T>>();
  case ListVariant::MutexList:
    return std::make_unique<MutexListImpl<T>>();
  case ListVariant::SnapshotList:
    return std::make_unique<SnapshotListImpl<T>>();
  }
  assert(false && "unknown list variant");
  return nullptr;
}

/// Creates an empty set implementation of variant \p V (see makeListImpl
/// for \p Adaptive).
template <typename T>
std::unique_ptr<SetImpl<T>>
makeSetImpl(SetVariant V, const AdaptiveThresholds *Adaptive = nullptr) {
  switch (V) {
  case SetVariant::ChainedHashSet:
    return std::make_unique<ChainedHashSetImpl<T>>();
  case SetVariant::OpenHashSet:
    return std::make_unique<OpenHashSetImpl<T>>();
  case SetVariant::LinkedHashSet:
    return std::make_unique<LinkedHashSetImpl<T>>();
  case SetVariant::ArraySet:
    return std::make_unique<ArraySetImpl<T>>();
  case SetVariant::CompactHashSet:
    return std::make_unique<CompactHashSetImpl<T>>();
  case SetVariant::AdaptiveSet:
    return Adaptive ? std::make_unique<AdaptiveSetImpl<T>>(Adaptive->Set)
                    : std::make_unique<AdaptiveSetImpl<T>>();
  case SetVariant::TreeSet:
    return std::make_unique<TreeSetImpl<T>>();
  case SetVariant::SortedArraySet:
    return std::make_unique<SortedArraySetImpl<T>>();
  case SetVariant::MutexHashSet:
    return std::make_unique<MutexHashSetImpl<T>>();
  case SetVariant::StripedHashSet:
    return std::make_unique<StripedHashSetImpl<T>>();
  }
  assert(false && "unknown set variant");
  return nullptr;
}

/// Creates an empty map implementation of variant \p Variant (see
/// makeListImpl for \p Adaptive).
template <typename K, typename V>
std::unique_ptr<MapImpl<K, V>>
makeMapImpl(MapVariant Variant, const AdaptiveThresholds *Adaptive = nullptr) {
  switch (Variant) {
  case MapVariant::ChainedHashMap:
    return std::make_unique<ChainedHashMapImpl<K, V>>();
  case MapVariant::OpenHashMap:
    return std::make_unique<OpenHashMapImpl<K, V>>();
  case MapVariant::LinkedHashMap:
    return std::make_unique<LinkedHashMapImpl<K, V>>();
  case MapVariant::ArrayMap:
    return std::make_unique<ArrayMapImpl<K, V>>();
  case MapVariant::CompactHashMap:
    return std::make_unique<CompactHashMapImpl<K, V>>();
  case MapVariant::AdaptiveMap:
    return Adaptive ? std::make_unique<AdaptiveMapImpl<K, V>>(Adaptive->Map)
                    : std::make_unique<AdaptiveMapImpl<K, V>>();
  case MapVariant::TreeMap:
    return std::make_unique<TreeMapImpl<K, V>>();
  case MapVariant::SortedArrayMap:
    return std::make_unique<SortedArrayMapImpl<K, V>>();
  case MapVariant::MutexHashMap:
    return std::make_unique<MutexHashMapImpl<K, V>>();
  case MapVariant::ShardedHashMap:
    return std::make_unique<ShardedHashMapImpl<K, V>>();
  }
  assert(false && "unknown map variant");
  return nullptr;
}

/// Creates an unmonitored List facade of variant \p V.
template <typename T> List<T> makeList(ListVariant V) {
  return List<T>(makeListImpl<T>(V));
}

/// Creates an unmonitored Set facade of variant \p V.
template <typename T> Set<T> makeSet(SetVariant V) {
  return Set<T>(makeSetImpl<T>(V));
}

/// Creates an unmonitored Map facade of variant \p Variant.
template <typename K, typename V> Map<K, V> makeMap(MapVariant Variant) {
  return Map<K, V>(makeMapImpl<K, V>(Variant));
}

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_FACTORY_H
