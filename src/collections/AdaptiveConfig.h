//===- AdaptiveConfig.h - Adaptive-collection transition policy -*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transition thresholds of the adaptive collections (paper §3.2,
/// Table 1): the collection size at which AdaptiveList/Set/Map replace
/// their array representation with a hash-backed one. Defaults follow the
/// paper (80 / 40 / 50); the ThresholdAnalyzer can recompute them for the
/// target machine. Also tracks migration counts for the evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_ADAPTIVECONFIG_H
#define CSWITCH_COLLECTIONS_ADAPTIVECONFIG_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace cswitch {

/// Transition thresholds of the adaptive variants, in elements.
struct AdaptiveThresholds {
  size_t List = 80; ///< AdaptiveList: array -> hash-array (paper Table 1).
  size_t Set = 40;  ///< AdaptiveSet: array -> open hash.
  size_t Map = 50;  ///< AdaptiveMap: array -> open hash.
};

/// Largest transition threshold validateThresholds accepts. Above this
/// the array representation would scan megabytes per lookup — a value
/// this size in a tuning artifact is a bug, not a configuration.
inline constexpr size_t MaxAdaptiveThreshold = size_t(1) << 20;

/// Validates \p T for installation: every threshold must be in
/// [1, MaxAdaptiveThreshold]. A zero threshold would make the adaptive
/// variants migrate on construction and never use their array form —
/// rejecting it here keeps a corrupt or hand-edited tuning artifact
/// from wedging the adaptive tier. On failure returns false and, when
/// \p Error is non-null, appends a diagnostic naming the offending
/// field and value.
bool validateThresholds(const AdaptiveThresholds &T,
                        std::string *Error = nullptr);

/// Validates a contention policy: Smoothing must be in (0, 1], Shards
/// at most 4096 (the sharded variants clamp to [1, 64] anyway; bigger
/// values signal a corrupt artifact), MinOps at most 2^30.
struct ContentionPolicy;
bool validateContention(const ContentionPolicy &P,
                        std::string *Error = nullptr);

/// Policy of the concurrent tier (DESIGN.md §11): how sharded variants
/// size their stripe arrays and how the contention signal feeds the
/// selection rules.
struct ContentionPolicy {
  /// Evaluate the contention cost dimension during analysis rounds of
  /// concurrent contexts. When false, concurrent variants compete on
  /// their single-threaded polynomials alone.
  bool Enabled = true;
  /// Shards of the lock-striped variants. 0 = auto: the hardware
  /// concurrency rounded up to a power of two, clamped to [1, 64].
  /// Explicit values are clamped and rounded the same way.
  size_t Shards = 0;
  /// Minimum operations a context's contention sketch must have seen in
  /// a round before its thread estimate is trusted (below it the round
  /// keeps the previous smoothed estimate).
  uint64_t MinOps = 256;
  /// EWMA weight of the newest per-round thread estimate, in (0, 1];
  /// 1 = no smoothing.
  double Smoothing = 0.5;
};

/// Process-wide adaptive-collection policy and statistics.
class AdaptiveConfig {
public:
  /// Returns the process-wide configuration.
  static AdaptiveConfig &global();

  /// Current thresholds (plain loads; changing thresholds while adaptive
  /// collections are live only affects instances created afterwards).
  AdaptiveThresholds thresholds() const { return Current; }

  /// Installs new thresholds (e.g. computed by ThresholdAnalyzer).
  void setThresholds(const AdaptiveThresholds &T) { Current = T; }

  /// Validated installation (the path tuning artifacts go through):
  /// rejects out-of-range thresholds via validateThresholds, leaving
  /// the current configuration untouched. \returns true when installed.
  bool setThresholdsChecked(const AdaptiveThresholds &T,
                            std::string *Error = nullptr) {
    if (!validateThresholds(T, Error))
      return false;
    Current = T;
    return true;
  }

  /// Current concurrent-tier policy (same update semantics as
  /// thresholds(): changes affect instances and analysis rounds that
  /// start afterwards).
  ContentionPolicy contention() const { return Contention; }

  /// Installs a new concurrent-tier policy.
  void setContention(const ContentionPolicy &P) { Contention = P; }

  /// Validated installation of a contention policy (see
  /// validateContention). \returns true when installed.
  bool setContentionChecked(const ContentionPolicy &P,
                            std::string *Error = nullptr) {
    if (!validateContention(P, Error))
      return false;
    Contention = P;
    return true;
  }

  /// Records one representation migration (instance-level transition).
  void recordMigration() {
    Migrations.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total representation migrations since the last resetStats().
  uint64_t migrationCount() const {
    return Migrations.load(std::memory_order_relaxed);
  }

  /// Resets the migration counter.
  void resetStats() { Migrations.store(0, std::memory_order_relaxed); }

private:
  AdaptiveThresholds Current;
  ContentionPolicy Contention;
  std::atomic<uint64_t> Migrations{0};
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_ADAPTIVECONFIG_H
