//===- ChainedHashMap.h - Chained hash map variant ---------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chained (separate chaining) hash map variant, analogue of JDK
/// HashMap: per-entry node allocation with a cached hash, 0.75 maximum
/// load factor. The default map most Java code uses — and therefore the
/// variant the paper's DaCapo experiments most often replace (Table 6:
/// HM → OpenHashMap / AdaptiveMap).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CHAINEDHASHMAP_H
#define CSWITCH_COLLECTIONS_CHAINEDHASHMAP_H

#include "collections/MapInterface.h"
#include "support/Hashing.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <vector>

namespace cswitch {

/// Separate-chaining MapImpl.
template <typename K, typename V, typename Hash = DefaultHash<K>>
class ChainedHashMapImpl final : public MapImpl<K, V> {
  struct Node {
    K Key;
    V Value;
    uint64_t HashValue;
    Node *Next;
  };

public:
  ChainedHashMapImpl() = default;

  ChainedHashMapImpl(const ChainedHashMapImpl &) = delete;
  ChainedHashMapImpl &operator=(const ChainedHashMapImpl &) = delete;

  ~ChainedHashMapImpl() override { clear(); }

  bool put(const K &Key, const V &Value) override {
    if (Buckets.empty())
      rehash(InitialBuckets);
    uint64_t H = Hash{}(Key);
    size_t Index = H & (Buckets.size() - 1);
    for (Node *N = Buckets[Index]; N; N = N->Next) {
      if (N->HashValue == H && N->Key == Key) {
        N->Value = Value;
        return false;
      }
    }
    Buckets[Index] = newCounted<Node>(Node{Key, Value, H, Buckets[Index]});
    ++Count;
    if (Count * 4 > Buckets.size() * 3)
      rehash(Buckets.size() * 2);
    return true;
  }

  const V *get(const K &Key) const override {
    if (Buckets.empty())
      return nullptr;
    uint64_t H = Hash{}(Key);
    for (const Node *N = Buckets[H & (Buckets.size() - 1)]; N; N = N->Next)
      if (N->HashValue == H && N->Key == Key)
        return &N->Value;
    return nullptr;
  }

  V *getMutable(const K &Key) override {
    return const_cast<V *>(
        static_cast<const ChainedHashMapImpl *>(this)->get(Key));
  }

  bool containsKey(const K &Key) const override {
    return get(Key) != nullptr;
  }

  bool remove(const K &Key) override {
    if (Buckets.empty())
      return false;
    uint64_t H = Hash{}(Key);
    Node **Link = &Buckets[H & (Buckets.size() - 1)];
    while (Node *N = *Link) {
      if (N->HashValue == H && N->Key == Key) {
        *Link = N->Next;
        deleteCounted(N);
        --Count;
        return true;
      }
      Link = &N->Next;
    }
    return false;
  }

  size_t size() const override { return Count; }

  void clear() override {
    for (Node *Head : Buckets) {
      while (Head) {
        Node *Next = Head->Next;
        deleteCounted(Head);
        Head = Next;
      }
    }
    Buckets.clear();
    Buckets.shrink_to_fit();
    Count = 0;
  }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    for (const Node *Head : Buckets)
      for (const Node *N = Head; N; N = N->Next)
        Fn(N->Key, N->Value);
  }

  void reserve(size_t N) override {
    size_t Needed = nextPowerOfTwo((N * 4 + 2) / 3);
    if (Needed > Buckets.size())
      rehash(Needed);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Buckets.capacity() * sizeof(Node *) +
           Count * sizeof(Node);
  }

  MapVariant variant() const override { return MapVariant::ChainedHashMap; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<ChainedHashMapImpl<K, V, Hash>>();
  }

private:
  static constexpr size_t InitialBuckets = 16;

  void rehash(size_t NewBucketCount) {
    assert((NewBucketCount & (NewBucketCount - 1)) == 0 &&
           "bucket count must be a power of two");
    std::vector<Node *, CountingAllocator<Node *>> Old(std::move(Buckets));
    Buckets.assign(NewBucketCount, nullptr);
    for (Node *Head : Old) {
      while (Head) {
        Node *Next = Head->Next;
        size_t Index = Head->HashValue & (NewBucketCount - 1);
        Head->Next = Buckets[Index];
        Buckets[Index] = Head;
        Head = Next;
      }
    }
  }

  std::vector<Node *, CountingAllocator<Node *>> Buckets;
  size_t Count = 0;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CHAINEDHASHMAP_H
