//===- AdaptiveSet.h - Size-adaptive set variant ------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AdaptiveSet variant (paper §3.2, Table 1: array → openhash at size
/// 40): a plain array while small — lowest footprint, cache-friendly
/// linear membership tests — migrating to an open-addressing hash table
/// once the size crosses the threshold. The instant transition copies all
/// elements exactly once; the transition is one-way.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_ADAPTIVESET_H
#define CSWITCH_COLLECTIONS_ADAPTIVESET_H

#include "collections/AdaptiveConfig.h"
#include "collections/SetInterface.h"
#include "collections/detail/OpenHashTable.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <vector>

namespace cswitch {

/// Size-adaptive SetImpl (array, then open-addressing hash).
template <typename T> class AdaptiveSetImpl final : public SetImpl<T> {
public:
  /// Uses the process-wide threshold by default.
  AdaptiveSetImpl() : Threshold(AdaptiveConfig::global().thresholds().Set) {}

  explicit AdaptiveSetImpl(size_t Threshold) : Threshold(Threshold) {}

  bool add(const T &Value) override {
    if (Migrated)
      return Table.insert(Value);
    if (std::find(Small.begin(), Small.end(), Value) != Small.end())
      return false;
    if (Small.capacity() == 0)
      Small.reserve(8);
    Small.push_back(Value);
    if (Small.size() > Threshold)
      migrate();
    return true;
  }

  bool contains(const T &Value) const override {
    if (Migrated)
      return Table.contains(Value);
    return std::find(Small.begin(), Small.end(), Value) != Small.end();
  }

  bool remove(const T &Value) override {
    if (Migrated)
      return Table.erase(Value);
    auto It = std::find(Small.begin(), Small.end(), Value);
    if (It == Small.end())
      return false;
    Small.erase(It);
    return true;
  }

  size_t size() const override {
    return Migrated ? Table.size() : Small.size();
  }

  void clear() override {
    Small.clear();
    Small.shrink_to_fit();
    Table.clear();
    Migrated = false;
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    if (Migrated) {
      Table.forEach(Fn);
      return;
    }
    for (const T &V : Small)
      Fn(V);
  }

  void reserve(size_t N) override {
    if (Migrated)
      Table.reserve(N);
    else if (N <= Threshold)
      Small.reserve(N);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Small.capacity() * sizeof(T) +
           Table.memoryFootprint();
  }

  SetVariant variant() const override { return SetVariant::AdaptiveSet; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<AdaptiveSetImpl<T>>(Threshold);
  }

  /// True once the hash representation is active.
  bool hasMigrated() const { return Migrated; }

  /// The transition threshold of this instance.
  size_t threshold() const { return Threshold; }

private:
  void migrate() {
    Table.reserve(Small.size() * 2);
    for (const T &V : Small)
      Table.insert(V);
    Small.clear();
    Small.shrink_to_fit();
    Migrated = true;
    AdaptiveConfig::global().recordMigration();
  }

  std::vector<T, CountingAllocator<T>> Small;
  detail::OpenHashSetTable<T, 1, 2> Table;
  size_t Threshold;
  bool Migrated = false;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_ADAPTIVESET_H
