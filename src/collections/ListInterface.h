//===- ListInterface.h - Uniform list interface + facade --------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform list interface every list variant implements, and the
/// value-semantic List<T> facade the application programs against. The
/// facade is what an allocation context hands out: it forwards every
/// operation to the current variant and counts the critical operations
/// into a WorkloadProfile, reporting it back to the context when the
/// instance finishes its life-cycle (paper §4.3, "monitor" layer).
///
/// C++ has no JCF-style uniform collection interface, so this header *is*
/// the substrate that makes runtime variant swapping possible at all —
/// see DESIGN.md §4.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_LISTINTERFACE_H
#define CSWITCH_COLLECTIONS_LISTINTERFACE_H

#include "collections/Variants.h"
#include "profile/SharedProfile.h"
#include "profile/WorkloadProfile.h"
#include "replay/TraceRecorder.h"
#include "support/FunctionRef.h"

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace cswitch {

/// Abstract list implementation (one subclass per ListVariant).
///
/// Element positions are 0-based. All variants provide the same semantic
/// contract — an ordered sequence with positional access — and differ only
/// in cost, which is exactly the property the selection framework
/// exploits.
template <typename T> class ListImpl {
public:
  virtual ~ListImpl() = default;

  /// Appends \p Value at the end.
  virtual void push_back(const T &Value) = 0;
  /// Inserts \p Value before position \p Index (Index == size() appends).
  virtual void insertAt(size_t Index, const T &Value) = 0;
  /// Removes the element at \p Index.
  virtual void removeAt(size_t Index) = 0;
  /// Removes the first occurrence of \p Value; returns false if absent.
  virtual bool removeValue(const T &Value) = 0;
  /// Returns the element at \p Index.
  virtual const T &at(size_t Index) const = 0;
  /// Replaces the element at \p Index.
  virtual void set(size_t Index, const T &Value) = 0;
  /// Returns true if \p Value occurs in the list.
  virtual bool contains(const T &Value) const = 0;
  /// Number of elements.
  virtual size_t size() const = 0;
  /// Removes all elements (capacity may be retained).
  virtual void clear() = 0;
  /// Calls \p Fn on each element in list order.
  virtual void forEach(FunctionRef<void(const T &)> Fn) const = 0;
  /// Capacity hint; variants without capacity ignore it.
  virtual void reserve(size_t) {}
  /// Bytes of memory currently owned by this collection (including the
  /// object header itself) — the footprint dimension of the cost model.
  virtual size_t memoryFootprint() const = 0;
  /// Which variant this is.
  virtual ListVariant variant() const = 0;
  /// Creates an empty list of the same variant (used when a context
  /// re-instantiates after a switch decision).
  virtual std::unique_ptr<ListImpl<T>> cloneEmpty() const = 0;

  bool empty() const { return size() == 0; }
};

/// Value-semantic list handle: the type application code holds.
///
/// Wraps the current variant behind the uniform interface, counts critical
/// operations into a WorkloadProfile and, when created monitored by an
/// allocation context, reports that profile from the destructor. Movable,
/// not copyable (a collection instance has one identity in the profiler).
template <typename T> class List {
public:
  /// An unmonitored list over \p Impl.
  explicit List(std::unique_ptr<ListImpl<T>> Impl)
      : Impl(std::move(Impl)) {}

  /// A monitored list: \p Sink receives the workload profile for
  /// monitoring slot \p Slot when this instance dies.
  List(std::unique_ptr<ListImpl<T>> Impl, ProfileSink *Sink, size_t Slot)
      : Impl(std::move(Impl)), Sink(Sink), Slot(Slot) {}

  List(List &&Other) noexcept
      : Impl(std::move(Other.Impl)), Profile(Other.Profile),
        Shared(std::move(Other.Shared)), Sink(Other.Sink),
        Slot(Other.Slot), Rec(std::move(Other.Rec)) {
    Other.Sink = nullptr;
  }

  List &operator=(List &&Other) noexcept {
    if (this == &Other)
      return *this;
    reportIfMonitored();
    finishTrace();
    Impl = std::move(Other.Impl);
    Profile = Other.Profile;
    Shared = std::move(Other.Shared);
    Sink = Other.Sink;
    Slot = Other.Slot;
    Rec = std::move(Other.Rec);
    Other.Sink = nullptr;
    return *this;
  }

  List(const List &) = delete;
  List &operator=(const List &) = delete;

  ~List() {
    reportIfMonitored();
    finishTrace();
  }

  /// Appends \p Value (profiled as populate).
  void add(const T &Value) {
    note(OperationKind::Populate);
    Impl->push_back(Value);
    noteSize(Impl->size());
    recordOp(TraceOpKind::Populate, OpClass::None);
  }

  /// Inserts \p Value before \p Index (profiled as middle).
  void insert(size_t Index, const T &Value) {
    note(OperationKind::Middle);
    OpClass Class = Rec ? classifyIndex(Index, Impl->size()) : OpClass::None;
    Impl->insertAt(Index, Value);
    noteSize(Impl->size());
    recordOp(TraceOpKind::InsertAt, Class);
  }

  /// Removes the element at \p Index (profiled as middle).
  void removeAt(size_t Index) {
    note(OperationKind::Middle);
    OpClass Class = Rec ? classifyIndex(Index, Impl->size()) : OpClass::None;
    Impl->removeAt(Index);
    recordOp(TraceOpKind::RemoveAt, Class);
  }

  /// Removes the first occurrence of \p Value (profiled as remove).
  bool remove(const T &Value) {
    note(OperationKind::Remove);
    bool Found = Impl->removeValue(Value);
    recordOp(TraceOpKind::RemoveValue, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Positional read (profiled as index access).
  const T &get(size_t Index) const {
    note(OperationKind::IndexAccess);
    recordOp(TraceOpKind::IndexGet,
             Rec ? classifyIndex(Index, Impl->size()) : OpClass::None);
    return Impl->at(Index);
  }

  /// Positional write (profiled as index access).
  void set(size_t Index, const T &Value) {
    note(OperationKind::IndexAccess);
    recordOp(TraceOpKind::IndexSet,
             Rec ? classifyIndex(Index, Impl->size()) : OpClass::None);
    Impl->set(Index, Value);
  }

  /// Membership test (profiled as contains).
  bool contains(const T &Value) const {
    note(OperationKind::Contains);
    bool Found = Impl->contains(Value);
    recordOp(TraceOpKind::Contains, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Full traversal (profiled as one iterate).
  void forEach(FunctionRef<void(const T &)> Fn) const {
    note(OperationKind::Iterate);
    Impl->forEach(Fn);
    recordOp(TraceOpKind::Iterate, OpClass::None);
  }

  /// Copies the elements into a std::vector (profiled as one iterate).
  std::vector<T> snapshot() const {
    std::vector<T> Out;
    Out.reserve(size());
    forEach([&Out](const T &V) { Out.push_back(V); });
    return Out;
  }

  size_t size() const { return Impl->size(); }
  bool empty() const { return Impl->empty(); }
  void clear() {
    Impl->clear();
    recordOp(TraceOpKind::Clear, OpClass::None);
  }
  void reserve(size_t N) { Impl->reserve(N); }
  size_t memoryFootprint() const { return Impl->memoryFootprint(); }
  ListVariant variant() const { return Impl->variant(); }

  /// The workload profile accumulated so far (collapsed from the shared
  /// stripes when profiling is shared; see enableSharedProfiling).
  const WorkloadProfile &profile() const {
    if (Shared)
      Profile = Shared->snapshot();
    return Profile;
  }

  /// True if this instance reports to an allocation context.
  bool isMonitored() const { return Sink != nullptr; }

  /// Switches this instance to thread-safe, NUMA-striped profiling so
  /// multiple owner threads may operate on it concurrently (only
  /// meaningful over a concurrent-tier variant). \p Sketch, when
  /// non-null, observes every operation for the contention signal; it
  /// must outlive this instance (the allocation context owns it).
  void enableSharedProfiling(ContentionSketch *Sketch = nullptr) {
    Shared = std::make_unique<SharedProfile>(Sketch);
  }

  /// True if profiling is multi-owner (see enableSharedProfiling).
  bool isShared() const { return Shared != nullptr; }

  /// Attaches an operation recorder: every subsequent operation is
  /// appended to the trace as instance \p Instance of site \p Site, and
  /// an InstanceEnd marker is recorded when this facade dies.
  void attachRecorder(TraceRecorder *Recorder, uint32_t Site,
                      uint32_t Instance) {
    Rec.attach(Recorder, Site, Instance);
  }

  /// True if this instance records into an operation trace.
  bool isTraced() const { return static_cast<bool>(Rec); }

private:
  void reportIfMonitored() {
    if (!Sink)
      return;
    if (Shared)
      Profile = Shared->snapshot();
    Sink->onInstanceFinished(Slot, Profile);
    Sink = nullptr;
  }

  void finishTrace() { Rec.finish(Impl ? Impl->size() : 0); }

  void recordOp(TraceOpKind Kind, OpClass Class) const {
    Rec.push(Kind, Class, Impl->size());
  }

  void note(OperationKind Kind) const {
    if (Shared)
      Shared->record(Kind);
    else
      Profile.record(Kind);
  }

  void noteSize(size_t Size) const {
    if (Shared)
      Shared->recordSize(Size);
    else
      Profile.recordSize(Size);
  }

  std::unique_ptr<ListImpl<T>> Impl;
  mutable WorkloadProfile Profile;
  mutable std::unique_ptr<SharedProfile> Shared;
  ProfileSink *Sink = nullptr;
  size_t Slot = 0;
  mutable TraceCursor Rec;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_LISTINTERFACE_H
