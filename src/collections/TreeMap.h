//===- TreeMap.h - Sorted map variants ---------------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sorted map variants (paper §7 future work, implemented as
/// extensions): TreeMapImpl (AVL, JDK TreeMap analogue) and
/// SortedArrayMapImpl (parallel sorted arrays with binary search). Both
/// iterate in ascending key order. Key types must provide operator<.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_TREEMAP_H
#define CSWITCH_COLLECTIONS_TREEMAP_H

#include "collections/MapInterface.h"
#include "collections/detail/AVLTree.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <vector>

namespace cswitch {

/// AVL-tree MapImpl with sorted iteration.
template <typename K, typename V>
class TreeMapImpl final : public MapImpl<K, V> {
public:
  TreeMapImpl() = default;

  bool put(const K &Key, const V &Value) override {
    return Tree.insertOrAssign(Key, Value);
  }

  const V *get(const K &Key) const override { return Tree.find(Key); }

  V *getMutable(const K &Key) override { return Tree.findMutable(Key); }

  bool containsKey(const K &Key) const override {
    return Tree.find(Key) != nullptr;
  }

  bool remove(const K &Key) override { return Tree.erase(Key); }

  size_t size() const override { return Tree.size(); }

  void clear() override { Tree.clear(); }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    Tree.inorder(Fn);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Tree.memoryFootprint();
  }

  MapVariant variant() const override { return MapVariant::TreeMap; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<TreeMapImpl<K, V>>();
  }

private:
  detail::AVLTree<K, V> Tree;
};

/// Parallel sorted-array MapImpl: binary-search lookups.
template <typename K, typename V>
class SortedArrayMapImpl final : public MapImpl<K, V> {
public:
  SortedArrayMapImpl() = default;

  bool put(const K &Key, const V &Value) override {
    size_t Index = lowerBound(Key);
    if (Index != Keys.size() && !(Key < Keys[Index])) {
      Vals[Index] = Value;
      return false;
    }
    if (Keys.capacity() == 0) {
      Keys.reserve(8);
      Vals.reserve(8);
    }
    Keys.insert(Keys.begin() + static_cast<ptrdiff_t>(Index), Key);
    Vals.insert(Vals.begin() + static_cast<ptrdiff_t>(Index), Value);
    return true;
  }

  const V *get(const K &Key) const override {
    size_t Index = lowerBound(Key);
    if (Index != Keys.size() && !(Key < Keys[Index]))
      return &Vals[Index];
    return nullptr;
  }

  V *getMutable(const K &Key) override {
    return const_cast<V *>(
        static_cast<const SortedArrayMapImpl *>(this)->get(Key));
  }

  bool containsKey(const K &Key) const override {
    return get(Key) != nullptr;
  }

  bool remove(const K &Key) override {
    size_t Index = lowerBound(Key);
    if (Index == Keys.size() || Key < Keys[Index])
      return false;
    Keys.erase(Keys.begin() + static_cast<ptrdiff_t>(Index));
    Vals.erase(Vals.begin() + static_cast<ptrdiff_t>(Index));
    return true;
  }

  size_t size() const override { return Keys.size(); }

  void clear() override {
    Keys.clear();
    Vals.clear();
  }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    for (size_t I = 0, E = Keys.size(); I != E; ++I)
      Fn(Keys[I], Vals[I]);
  }

  void reserve(size_t N) override {
    Keys.reserve(N);
    Vals.reserve(N);
  }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Keys.capacity() * sizeof(K) +
           Vals.capacity() * sizeof(V);
  }

  MapVariant variant() const override {
    return MapVariant::SortedArrayMap;
  }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<SortedArrayMapImpl<K, V>>();
  }

private:
  size_t lowerBound(const K &Key) const {
    return static_cast<size_t>(
        std::lower_bound(Keys.begin(), Keys.end(), Key) - Keys.begin());
  }

  std::vector<K, CountingAllocator<K>> Keys;
  std::vector<V, CountingAllocator<V>> Vals;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_TREEMAP_H
