//===- SetInterface.h - Uniform set interface + facade ----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform set interface every set variant implements, and the
/// value-semantic Set<T> facade. See ListInterface.h for the design
/// rationale; the contract here is an unordered collection of distinct
/// elements (LinkedHashSet additionally iterates in insertion order,
/// a refinement — never a violation — of the contract).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_SETINTERFACE_H
#define CSWITCH_COLLECTIONS_SETINTERFACE_H

#include "collections/Variants.h"
#include "profile/SharedProfile.h"
#include "profile/WorkloadProfile.h"
#include "replay/TraceRecorder.h"
#include "support/FunctionRef.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace cswitch {

/// Abstract set implementation (one subclass per SetVariant).
template <typename T> class SetImpl {
public:
  virtual ~SetImpl() = default;

  /// Adds \p Value; returns false if it was already present.
  virtual bool add(const T &Value) = 0;
  /// Returns true if \p Value is present.
  virtual bool contains(const T &Value) const = 0;
  /// Removes \p Value; returns false if it was absent.
  virtual bool remove(const T &Value) = 0;
  /// Number of elements.
  virtual size_t size() const = 0;
  /// Removes all elements.
  virtual void clear() = 0;
  /// Calls \p Fn on each element (order is variant-specific).
  virtual void forEach(FunctionRef<void(const T &)> Fn) const = 0;
  /// Capacity hint; variants without capacity ignore it.
  virtual void reserve(size_t) {}
  /// Bytes of memory currently owned by this collection.
  virtual size_t memoryFootprint() const = 0;
  /// Which variant this is.
  virtual SetVariant variant() const = 0;
  /// Creates an empty set of the same variant.
  virtual std::unique_ptr<SetImpl<T>> cloneEmpty() const = 0;

  bool empty() const { return size() == 0; }
};

/// Value-semantic set handle; see List<T> for the monitoring contract.
template <typename T> class Set {
public:
  explicit Set(std::unique_ptr<SetImpl<T>> Impl) : Impl(std::move(Impl)) {}

  Set(std::unique_ptr<SetImpl<T>> Impl, ProfileSink *Sink, size_t Slot)
      : Impl(std::move(Impl)), Sink(Sink), Slot(Slot) {}

  Set(Set &&Other) noexcept
      : Impl(std::move(Other.Impl)), Profile(Other.Profile),
        Shared(std::move(Other.Shared)), Sink(Other.Sink),
        Slot(Other.Slot), Rec(std::move(Other.Rec)) {
    Other.Sink = nullptr;
  }

  Set &operator=(Set &&Other) noexcept {
    if (this == &Other)
      return *this;
    reportIfMonitored();
    finishTrace();
    Impl = std::move(Other.Impl);
    Profile = Other.Profile;
    Shared = std::move(Other.Shared);
    Sink = Other.Sink;
    Slot = Other.Slot;
    Rec = std::move(Other.Rec);
    Other.Sink = nullptr;
    return *this;
  }

  Set(const Set &) = delete;
  Set &operator=(const Set &) = delete;

  ~Set() {
    reportIfMonitored();
    finishTrace();
  }

  /// Adds \p Value (profiled as populate).
  bool add(const T &Value) {
    note(OperationKind::Populate);
    bool Inserted = Impl->add(Value);
    noteSize(Impl->size());
    recordOp(TraceOpKind::Populate,
             Inserted ? OpClass::None : OpClass::Hit);
    return Inserted;
  }

  /// Membership test (profiled as contains).
  bool contains(const T &Value) const {
    note(OperationKind::Contains);
    bool Found = Impl->contains(Value);
    recordOp(TraceOpKind::Contains, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Removes \p Value (profiled as remove).
  bool remove(const T &Value) {
    note(OperationKind::Remove);
    bool Found = Impl->remove(Value);
    recordOp(TraceOpKind::RemoveValue, Found ? OpClass::Hit : OpClass::Miss);
    return Found;
  }

  /// Full traversal (profiled as one iterate).
  void forEach(FunctionRef<void(const T &)> Fn) const {
    note(OperationKind::Iterate);
    Impl->forEach(Fn);
    recordOp(TraceOpKind::Iterate, OpClass::None);
  }

  /// Copies the elements into a std::vector (profiled as one iterate).
  std::vector<T> snapshot() const {
    std::vector<T> Out;
    Out.reserve(size());
    forEach([&Out](const T &V) { Out.push_back(V); });
    return Out;
  }

  size_t size() const { return Impl->size(); }
  bool empty() const { return Impl->empty(); }
  void clear() {
    Impl->clear();
    recordOp(TraceOpKind::Clear, OpClass::None);
  }
  void reserve(size_t N) { Impl->reserve(N); }
  size_t memoryFootprint() const { return Impl->memoryFootprint(); }
  SetVariant variant() const { return Impl->variant(); }

  /// See List<T>::profile().
  const WorkloadProfile &profile() const {
    if (Shared)
      Profile = Shared->snapshot();
    return Profile;
  }
  bool isMonitored() const { return Sink != nullptr; }

  /// See List<T>::enableSharedProfiling().
  void enableSharedProfiling(ContentionSketch *Sketch = nullptr) {
    Shared = std::make_unique<SharedProfile>(Sketch);
  }

  /// True if profiling is multi-owner (see enableSharedProfiling).
  bool isShared() const { return Shared != nullptr; }

  /// Attaches an operation recorder (see List<T>::attachRecorder).
  void attachRecorder(TraceRecorder *Recorder, uint32_t Site,
                      uint32_t Instance) {
    Rec.attach(Recorder, Site, Instance);
  }

  /// True if this instance records into an operation trace.
  bool isTraced() const { return static_cast<bool>(Rec); }

private:
  void reportIfMonitored() {
    if (!Sink)
      return;
    if (Shared)
      Profile = Shared->snapshot();
    Sink->onInstanceFinished(Slot, Profile);
    Sink = nullptr;
  }

  void finishTrace() { Rec.finish(Impl ? Impl->size() : 0); }

  void recordOp(TraceOpKind Kind, OpClass Class) const {
    Rec.push(Kind, Class, Impl->size());
  }

  void note(OperationKind Kind) const {
    if (Shared)
      Shared->record(Kind);
    else
      Profile.record(Kind);
  }

  void noteSize(size_t Size) const {
    if (Shared)
      Shared->recordSize(Size);
    else
      Profile.recordSize(Size);
  }

  std::unique_ptr<SetImpl<T>> Impl;
  mutable WorkloadProfile Profile;
  mutable std::unique_ptr<SharedProfile> Shared;
  ProfileSink *Sink = nullptr;
  size_t Slot = 0;
  mutable TraceCursor Rec;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_SETINTERFACE_H
