//===- Variants.cpp - Collection variant identities ----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "collections/Variants.h"

#include <cassert>

using namespace cswitch;

const char *cswitch::abstractionKindName(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return "list";
  case AbstractionKind::Set:
    return "set";
  case AbstractionKind::Map:
    return "map";
  }
  return "unknown";
}

const char *cswitch::listVariantName(ListVariant V) {
  switch (V) {
  case ListVariant::ArrayList:
    return "ArrayList";
  case ListVariant::LinkedList:
    return "LinkedList";
  case ListVariant::HashArrayList:
    return "HashArrayList";
  case ListVariant::AdaptiveList:
    return "AdaptiveList";
  case ListVariant::MutexList:
    return "MutexList";
  case ListVariant::SnapshotList:
    return "SnapshotList";
  }
  return "unknown";
}

const char *cswitch::setVariantName(SetVariant V) {
  switch (V) {
  case SetVariant::ChainedHashSet:
    return "ChainedHashSet";
  case SetVariant::OpenHashSet:
    return "OpenHashSet";
  case SetVariant::LinkedHashSet:
    return "LinkedHashSet";
  case SetVariant::ArraySet:
    return "ArraySet";
  case SetVariant::CompactHashSet:
    return "CompactHashSet";
  case SetVariant::AdaptiveSet:
    return "AdaptiveSet";
  case SetVariant::TreeSet:
    return "TreeSet";
  case SetVariant::SortedArraySet:
    return "SortedArraySet";
  case SetVariant::MutexHashSet:
    return "MutexHashSet";
  case SetVariant::StripedHashSet:
    return "StripedHashSet";
  }
  return "unknown";
}

const char *cswitch::mapVariantName(MapVariant V) {
  switch (V) {
  case MapVariant::ChainedHashMap:
    return "ChainedHashMap";
  case MapVariant::OpenHashMap:
    return "OpenHashMap";
  case MapVariant::LinkedHashMap:
    return "LinkedHashMap";
  case MapVariant::ArrayMap:
    return "ArrayMap";
  case MapVariant::CompactHashMap:
    return "CompactHashMap";
  case MapVariant::AdaptiveMap:
    return "AdaptiveMap";
  case MapVariant::TreeMap:
    return "TreeMap";
  case MapVariant::SortedArrayMap:
    return "SortedArrayMap";
  case MapVariant::MutexHashMap:
    return "MutexHashMap";
  case MapVariant::ShardedHashMap:
    return "ShardedHashMap";
  }
  return "unknown";
}

bool cswitch::parseListVariant(const std::string &Name, ListVariant &Out) {
  for (ListVariant V : AllListVariants) {
    if (Name == listVariantName(V)) {
      Out = V;
      return true;
    }
  }
  return false;
}

bool cswitch::parseSetVariant(const std::string &Name, SetVariant &Out) {
  for (SetVariant V : AllSetVariants) {
    if (Name == setVariantName(V)) {
      Out = V;
      return true;
    }
  }
  return false;
}

bool cswitch::parseMapVariant(const std::string &Name, MapVariant &Out) {
  for (MapVariant V : AllMapVariants) {
    if (Name == mapVariantName(V)) {
      Out = V;
      return true;
    }
  }
  return false;
}

std::string VariantId::name() const {
  switch (Abstraction) {
  case AbstractionKind::List:
    return listVariantName(static_cast<ListVariant>(Index));
  case AbstractionKind::Set:
    return setVariantName(static_cast<SetVariant>(Index));
  case AbstractionKind::Map:
    return mapVariantName(static_cast<MapVariant>(Index));
  }
  return "unknown";
}

size_t cswitch::numVariantsOf(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return NumListVariants;
  case AbstractionKind::Set:
    return NumSetVariants;
  case AbstractionKind::Map:
    return NumMapVariants;
  }
  assert(false && "unknown abstraction kind");
  return 0;
}

const char *cswitch::concurrencyName(Concurrency Mode) {
  switch (Mode) {
  case Concurrency::None:
    return "none";
  case Concurrency::Mutex:
    return "mutex";
  case Concurrency::Sharded:
    return "sharded";
  case Concurrency::Auto:
    return "auto";
  }
  return "unknown";
}

bool cswitch::parseConcurrency(const std::string &Name, Concurrency &Out) {
  for (Concurrency Mode : {Concurrency::None, Concurrency::Mutex,
                           Concurrency::Sharded, Concurrency::Auto}) {
    if (Name == concurrencyName(Mode)) {
      Out = Mode;
      return true;
    }
  }
  return false;
}

namespace {

/// Mutex-serialized and lock-striped/COW variant indices of one
/// abstraction: the two strategies of the concurrent tier.
struct ConcurrentPair {
  unsigned Mutex;
  unsigned Sharded;
};

ConcurrentPair concurrentPairOf(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return {static_cast<unsigned>(ListVariant::MutexList),
            static_cast<unsigned>(ListVariant::SnapshotList)};
  case AbstractionKind::Set:
    return {static_cast<unsigned>(SetVariant::MutexHashSet),
            static_cast<unsigned>(SetVariant::StripedHashSet)};
  case AbstractionKind::Map:
    return {static_cast<unsigned>(MapVariant::MutexHashMap),
            static_cast<unsigned>(MapVariant::ShardedHashMap)};
  }
  assert(false && "unknown abstraction kind");
  return {0, 0};
}

} // namespace

unsigned cswitch::firstConcurrentVariant(AbstractionKind Kind) {
  // The concurrent tier is appended after every sequential variant, with
  // the mutex strategy first.
  return concurrentPairOf(Kind).Mutex;
}

bool cswitch::isConcurrentVariant(AbstractionKind Kind, unsigned Index) {
  return Index >= firstConcurrentVariant(Kind);
}

uint32_t cswitch::concurrencyCandidateMask(AbstractionKind Kind,
                                           Concurrency Mode) {
  ConcurrentPair Pair = concurrentPairOf(Kind);
  switch (Mode) {
  case Concurrency::None:
    return (1u << Pair.Mutex) - 1; // Every sequential variant.
  case Concurrency::Mutex:
    return 1u << Pair.Mutex;
  case Concurrency::Sharded:
    return 1u << Pair.Sharded;
  case Concurrency::Auto:
    return (1u << Pair.Mutex) | (1u << Pair.Sharded);
  }
  return 0;
}

unsigned cswitch::concurrentInitialVariant(AbstractionKind Kind,
                                           Concurrency Mode) {
  assert(Mode != Concurrency::None &&
         "the sequential tier has no concurrent initial variant");
  ConcurrentPair Pair = concurrentPairOf(Kind);
  return Mode == Concurrency::Sharded ? Pair.Sharded : Pair.Mutex;
}
