//===- Variants.cpp - Collection variant identities ----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "collections/Variants.h"

#include <cassert>

using namespace cswitch;

const char *cswitch::abstractionKindName(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return "list";
  case AbstractionKind::Set:
    return "set";
  case AbstractionKind::Map:
    return "map";
  }
  return "unknown";
}

const char *cswitch::listVariantName(ListVariant V) {
  switch (V) {
  case ListVariant::ArrayList:
    return "ArrayList";
  case ListVariant::LinkedList:
    return "LinkedList";
  case ListVariant::HashArrayList:
    return "HashArrayList";
  case ListVariant::AdaptiveList:
    return "AdaptiveList";
  }
  return "unknown";
}

const char *cswitch::setVariantName(SetVariant V) {
  switch (V) {
  case SetVariant::ChainedHashSet:
    return "ChainedHashSet";
  case SetVariant::OpenHashSet:
    return "OpenHashSet";
  case SetVariant::LinkedHashSet:
    return "LinkedHashSet";
  case SetVariant::ArraySet:
    return "ArraySet";
  case SetVariant::CompactHashSet:
    return "CompactHashSet";
  case SetVariant::AdaptiveSet:
    return "AdaptiveSet";
  case SetVariant::TreeSet:
    return "TreeSet";
  case SetVariant::SortedArraySet:
    return "SortedArraySet";
  }
  return "unknown";
}

const char *cswitch::mapVariantName(MapVariant V) {
  switch (V) {
  case MapVariant::ChainedHashMap:
    return "ChainedHashMap";
  case MapVariant::OpenHashMap:
    return "OpenHashMap";
  case MapVariant::LinkedHashMap:
    return "LinkedHashMap";
  case MapVariant::ArrayMap:
    return "ArrayMap";
  case MapVariant::CompactHashMap:
    return "CompactHashMap";
  case MapVariant::AdaptiveMap:
    return "AdaptiveMap";
  case MapVariant::TreeMap:
    return "TreeMap";
  case MapVariant::SortedArrayMap:
    return "SortedArrayMap";
  }
  return "unknown";
}

bool cswitch::parseListVariant(const std::string &Name, ListVariant &Out) {
  for (ListVariant V : AllListVariants) {
    if (Name == listVariantName(V)) {
      Out = V;
      return true;
    }
  }
  return false;
}

bool cswitch::parseSetVariant(const std::string &Name, SetVariant &Out) {
  for (SetVariant V : AllSetVariants) {
    if (Name == setVariantName(V)) {
      Out = V;
      return true;
    }
  }
  return false;
}

bool cswitch::parseMapVariant(const std::string &Name, MapVariant &Out) {
  for (MapVariant V : AllMapVariants) {
    if (Name == mapVariantName(V)) {
      Out = V;
      return true;
    }
  }
  return false;
}

std::string VariantId::name() const {
  switch (Abstraction) {
  case AbstractionKind::List:
    return listVariantName(static_cast<ListVariant>(Index));
  case AbstractionKind::Set:
    return setVariantName(static_cast<SetVariant>(Index));
  case AbstractionKind::Map:
    return mapVariantName(static_cast<MapVariant>(Index));
  }
  return "unknown";
}

size_t cswitch::numVariantsOf(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return NumListVariants;
  case AbstractionKind::Set:
    return NumSetVariants;
  case AbstractionKind::Map:
    return NumMapVariants;
  }
  assert(false && "unknown abstraction kind");
  return 0;
}
