//===- SnapshotList.h - Copy-on-write list variant --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Copy-on-write strategy of the concurrent list tier (DESIGN.md §11), a
/// CopyOnWriteArrayList analogue: the element array is an immutable
/// snapshot behind a shared_ptr. Readers — including full traversals —
/// take a shared lock only long enough to copy the snapshot pointer and
/// then observe a point-in-time consistent sequence with no lock held
/// (snapshot-on-iterate); writers serialize on a mutex, copy the array,
/// apply the mutation and publish the new snapshot under the exclusive
/// lock. The right strategy for read-mostly shared lists; every mutation
/// pays O(n).
///
/// The snapshot pointer is guarded by a shared_mutex rather than
/// std::atomic<std::shared_ptr>: readers stay parallel (shared lock for
/// a pointer copy is a single RMW), and the critical sections are in
/// terms sanitizers model natively — libstdc++'s _Sp_atomic lock-bit
/// protocol keeps the pointer word plain and trips ThreadSanitizer.
///
/// Positional reads return references into the snapshot taken at call
/// time; they are only valid until the next mutation, like every other
/// list variant.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CONCURRENT_SNAPSHOTLIST_H
#define CSWITCH_COLLECTIONS_CONCURRENT_SNAPSHOTLIST_H

#include "collections/ListInterface.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

namespace cswitch {

/// Copy-on-write, snapshot-on-iterate list (ListVariant::SnapshotList).
template <typename T> class SnapshotListImpl : public ListImpl<T> {
  using Vec = std::vector<T, CountingAllocator<T>>;

public:
  SnapshotListImpl() : Snap(std::make_shared<const Vec>()) {}

  void push_back(const T &Value) override {
    mutate([&](Vec &Data) { Data.push_back(Value); });
  }

  void insertAt(size_t Index, const T &Value) override {
    mutate([&](Vec &Data) {
      assert(Index <= Data.size() && "insert index out of range");
      Data.insert(Data.begin() + static_cast<ptrdiff_t>(Index), Value);
    });
  }

  void removeAt(size_t Index) override {
    mutate([&](Vec &Data) {
      assert(Index < Data.size() && "remove index out of range");
      Data.erase(Data.begin() + static_cast<ptrdiff_t>(Index));
    });
  }

  bool removeValue(const T &Value) override {
    bool Found = false;
    mutate([&](Vec &Data) {
      auto It = std::find(Data.begin(), Data.end(), Value);
      if (It == Data.end())
        return;
      Found = true;
      Data.erase(It);
    });
    return Found;
  }

  const T &at(size_t Index) const override {
    std::shared_ptr<const Vec> S = snapshot();
    assert(Index < S->size() && "index out of range");
    return (*S)[Index];
  }

  void set(size_t Index, const T &Value) override {
    mutate([&](Vec &Data) {
      assert(Index < Data.size() && "index out of range");
      Data[Index] = Value;
    });
  }

  bool contains(const T &Value) const override {
    std::shared_ptr<const Vec> S = snapshot();
    return std::find(S->begin(), S->end(), Value) != S->end();
  }

  size_t size() const override { return snapshot()->size(); }

  void clear() override {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    publish(std::make_shared<const Vec>());
  }

  /// Snapshot iteration: traverses the sequence as it was at the call,
  /// unaffected by concurrent mutation, with no lock held while user
  /// code runs.
  void forEach(FunctionRef<void(const T &)> Fn) const override {
    std::shared_ptr<const Vec> S = snapshot();
    for (const T &Value : *S)
      Fn(Value);
  }

  size_t memoryFootprint() const override {
    std::shared_ptr<const Vec> S = snapshot();
    return sizeof(*this) + sizeof(Vec) + S->capacity() * sizeof(T);
  }

  ListVariant variant() const override { return ListVariant::SnapshotList; }

  std::unique_ptr<ListImpl<T>> cloneEmpty() const override {
    return std::make_unique<SnapshotListImpl<T>>();
  }

private:
  /// Copy the current snapshot pointer under the shared lock; traversal
  /// of the immutable array happens after the lock is released.
  std::shared_ptr<const Vec> snapshot() const {
    std::shared_lock<std::shared_mutex> Lock(SnapMutex);
    return Snap;
  }

  /// Swap in a new snapshot under the exclusive lock; the displaced
  /// array is released after the lock drops so readers never wait on a
  /// potentially O(n) destruction.
  void publish(std::shared_ptr<const Vec> Next) {
    std::shared_ptr<const Vec> Old;
    {
      std::unique_lock<std::shared_mutex> Lock(SnapMutex);
      Old = std::exchange(Snap, std::move(Next));
    }
  }

  /// Copy-mutate-publish under the writer lock. The O(n) copy and the
  /// mutation run outside SnapMutex, so readers only ever wait for the
  /// pointer swap.
  template <typename Fn> void mutate(Fn &&Apply) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    // Only writers replace the snapshot and they hold WriteMutex, so
    // this plain read sees the latest published array.
    Vec Copy(*Snap);
    Apply(Copy);
    publish(std::make_shared<const Vec>(std::move(Copy)));
  }

  std::shared_ptr<const Vec> Snap;
  /// Guards the Snap pointer itself (not the pointed-to array, which is
  /// immutable once published).
  mutable std::shared_mutex SnapMutex;
  /// Serializes writers across the whole copy-mutate-publish cycle.
  mutable std::mutex WriteMutex;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CONCURRENT_SNAPSHOTLIST_H
