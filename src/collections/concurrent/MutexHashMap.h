//===- MutexHashMap.h - Mutex-serialized hash map variant -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutex-serialized strategy of the concurrent map tier (DESIGN.md
/// §11): one lock over the same open-addressing table the sequential
/// OpenHashMap uses. Cheapest concurrent strategy at low contention —
/// one uncontended lock acquisition per operation — and the strategy the
/// engine abandons first when the contention signal rises.
///
/// Thread-safety contract (shared by every concurrent variant): all
/// mutating and value-copying operations are safe to call from any
/// thread. The pointer-returning MapImpl operations (get/getMutable)
/// escape the lock and are only safe while no other thread mutates; use
/// lookup() for a concurrent read.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CONCURRENT_MUTEXHASHMAP_H
#define CSWITCH_COLLECTIONS_CONCURRENT_MUTEXHASHMAP_H

#include "collections/MapInterface.h"
#include "collections/detail/OpenHashTable.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace cswitch {

/// Mutex-serialized open-addressing map (MapVariant::MutexHashMap).
template <typename K, typename V>
class MutexHashMapImpl : public MapImpl<K, V> {
public:
  bool put(const K &Key, const V &Value) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Inserted = Table.insertOrAssign(Key, Value);
    if (Inserted)
      Count.fetch_add(1, std::memory_order_relaxed);
    return Inserted;
  }

  const V *get(const K &Key) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Table.find(Key);
  }

  V *getMutable(const K &Key) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Table.findMutable(Key);
  }

  bool lookup(const K &Key, V &Out) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    const V *Found = Table.find(Key);
    if (!Found)
      return false;
    Out = *Found;
    return true;
  }

  bool containsKey(const K &Key) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Table.find(Key) != nullptr;
  }

  bool remove(const K &Key) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Erased = Table.erase(Key);
    if (Erased)
      Count.fetch_sub(1, std::memory_order_relaxed);
    return Erased;
  }

  /// Lock-free: the facade reads the size after every mutation, so the
  /// count lives outside the lock.
  size_t size() const override {
    return Count.load(std::memory_order_relaxed);
  }

  void clear() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Table.clear();
    Count.store(0, std::memory_order_relaxed);
  }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Table.forEach(Fn);
  }

  void reserve(size_t N) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Table.reserve(N);
  }

  size_t memoryFootprint() const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return sizeof(*this) + Table.memoryFootprint();
  }

  MapVariant variant() const override { return MapVariant::MutexHashMap; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<MutexHashMapImpl<K, V>>();
  }

private:
  mutable std::mutex Mutex;
  detail::OpenHashMapTable<K, V, 1, 2> Table;
  std::atomic<size_t> Count{0};
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CONCURRENT_MUTEXHASHMAP_H
