//===- Sharding.h - Shard sizing/selection of the concurrent tier -*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared shard arithmetic of the lock-striped collection variants
/// (DESIGN.md §11): resolving the shard count from the process-wide
/// ContentionPolicy and mapping a key hash to a shard.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CONCURRENT_SHARDING_H
#define CSWITCH_COLLECTIONS_CONCURRENT_SHARDING_H

#include "collections/AdaptiveConfig.h"

#include <cstddef>
#include <cstdint>
#include <thread>

namespace cswitch {
namespace concurrent {

/// Maximum shards of any striped variant; bounds the per-instance
/// footprint (64 shards x one cache line of mutex + table header).
inline constexpr size_t MaxShards = 64;

/// Rounds \p Requested to the shard count actually used: the next power
/// of two, clamped to [1, MaxShards]. 0 = auto (hardware concurrency).
inline size_t resolveShardCount(size_t Requested) {
  size_t Want = Requested;
  if (Want == 0) {
    unsigned Hardware = std::thread::hardware_concurrency();
    Want = Hardware ? Hardware : 1;
  }
  if (Want > MaxShards)
    Want = MaxShards;
  size_t Shards = 1;
  while (Shards < Want)
    Shards *= 2;
  return Shards;
}

/// Shard count configured for new striped instances (the
/// ContentionPolicy knob resolved; see AdaptiveConfig).
inline size_t configuredShardCount() {
  return resolveShardCount(AdaptiveConfig::global().contention().Shards);
}

/// Shard of a key with hash \p Hash among \p Shards (a power of two).
///
/// Uses the *top* hash bits: the in-shard open-addressing tables index
/// with the low bits of the same hash, and reusing them here would make
/// every key of a shard collide into the same probe chain.
inline size_t shardOfHash(uint64_t Hash, size_t Shards) {
  return (Hash >> 32) & (Shards - 1);
}

} // namespace concurrent
} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CONCURRENT_SHARDING_H
