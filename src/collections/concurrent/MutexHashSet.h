//===- MutexHashSet.h - Mutex-serialized hash set variant -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutex-serialized strategy of the concurrent set tier: one lock over
/// the sequential OpenHashSet's table. See MutexHashMap.h for the
/// tier-wide thread-safety contract.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CONCURRENT_MUTEXHASHSET_H
#define CSWITCH_COLLECTIONS_CONCURRENT_MUTEXHASHSET_H

#include "collections/SetInterface.h"
#include "collections/detail/OpenHashTable.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace cswitch {

/// Mutex-serialized open-addressing set (SetVariant::MutexHashSet).
template <typename T> class MutexHashSetImpl : public SetImpl<T> {
public:
  bool add(const T &Value) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Inserted = Table.insert(Value);
    if (Inserted)
      Count.fetch_add(1, std::memory_order_relaxed);
    return Inserted;
  }

  bool contains(const T &Value) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Table.contains(Value);
  }

  bool remove(const T &Value) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    bool Erased = Table.erase(Value);
    if (Erased)
      Count.fetch_sub(1, std::memory_order_relaxed);
    return Erased;
  }

  size_t size() const override {
    return Count.load(std::memory_order_relaxed);
  }

  void clear() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Table.clear();
    Count.store(0, std::memory_order_relaxed);
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Table.forEach(Fn);
  }

  void reserve(size_t N) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Table.reserve(N);
  }

  size_t memoryFootprint() const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return sizeof(*this) + Table.memoryFootprint();
  }

  SetVariant variant() const override { return SetVariant::MutexHashSet; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<MutexHashSetImpl<T>>();
  }

private:
  mutable std::mutex Mutex;
  detail::OpenHashSetTable<T, 1, 2> Table;
  std::atomic<size_t> Count{0};
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CONCURRENT_MUTEXHASHSET_H
