//===- StripedHashSet.h - Lock-striped hash set variant ---------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-striped strategy of the concurrent set tier: the set analogue of
/// ShardedHashMap (see its header for the striping rationale and
/// MutexHashMap.h for the tier-wide thread-safety contract).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CONCURRENT_STRIPEDHASHSET_H
#define CSWITCH_COLLECTIONS_CONCURRENT_STRIPEDHASHSET_H

#include "collections/SetInterface.h"
#include "collections/concurrent/Sharding.h"
#include "collections/detail/OpenHashTable.h"
#include "support/Topology.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace cswitch {

/// Lock-striped open-addressing set (SetVariant::StripedHashSet).
template <typename T> class StripedHashSetImpl : public SetImpl<T> {
public:
  /// \p Shards = 0 uses the process-wide ContentionPolicy knob; any
  /// value is rounded to a power of two in [1, concurrent::MaxShards].
  explicit StripedHashSetImpl(size_t Shards = 0)
      : NumShards(Shards ? concurrent::resolveShardCount(Shards)
                         : concurrent::configuredShardCount()),
        Lanes(std::make_unique<Shard[]>(NumShards)) {}

  bool add(const T &Value) override {
    Shard &S = shardOf(Value);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    bool Inserted = S.Table.insert(Value);
    if (Inserted)
      Count.fetch_add(1, std::memory_order_relaxed);
    return Inserted;
  }

  bool contains(const T &Value) const override {
    Shard &S = shardOf(Value);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    return S.Table.contains(Value);
  }

  bool remove(const T &Value) override {
    Shard &S = shardOf(Value);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    bool Erased = S.Table.erase(Value);
    if (Erased)
      Count.fetch_sub(1, std::memory_order_relaxed);
    return Erased;
  }

  size_t size() const override {
    return Count.load(std::memory_order_relaxed);
  }

  void clear() override {
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Count.fetch_sub(Lanes[I].Table.size(), std::memory_order_relaxed);
      Lanes[I].Table.clear();
    }
  }

  /// Shard-at-a-time traversal (see ShardedHashMap::forEach).
  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Lanes[I].Table.forEach(Fn);
    }
  }

  void reserve(size_t N) override {
    size_t PerShard = (N + NumShards - 1) / NumShards;
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Lanes[I].Table.reserve(PerShard);
    }
  }

  size_t memoryFootprint() const override {
    size_t Total = sizeof(*this) + NumShards * sizeof(Shard);
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Total += Lanes[I].Table.memoryFootprint();
    }
    return Total;
  }

  SetVariant variant() const override { return SetVariant::StripedHashSet; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<StripedHashSetImpl<T>>(NumShards);
  }

  /// Number of lock stripes (for tests and footprint accounting).
  size_t shardCount() const { return NumShards; }

private:
  struct alignas(CacheLineBytes) Shard {
    mutable std::mutex Mutex;
    detail::OpenHashSetTable<T, 1, 2> Table;
  };

  Shard &shardOf(const T &Value) const {
    return Lanes[concurrent::shardOfHash(DefaultHash<T>{}(Value),
                                         NumShards)];
  }

  const size_t NumShards;
  std::unique_ptr<Shard[]> Lanes;
  std::atomic<size_t> Count{0};
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CONCURRENT_STRIPEDHASHSET_H
