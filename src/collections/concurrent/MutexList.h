//===- MutexList.h - Mutex-serialized list variant --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutex-serialized strategy of the concurrent list tier: one lock over
/// the sequential ArrayList's contiguous storage. See MutexHashMap.h for
/// the tier-wide thread-safety contract; positional reads (at) return
/// references that are only valid until the next mutation.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CONCURRENT_MUTEXLIST_H
#define CSWITCH_COLLECTIONS_CONCURRENT_MUTEXLIST_H

#include "collections/ListInterface.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

namespace cswitch {

/// Mutex-serialized array list (ListVariant::MutexList).
template <typename T> class MutexListImpl : public ListImpl<T> {
public:
  void push_back(const T &Value) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Data.push_back(Value);
    Count.store(Data.size(), std::memory_order_relaxed);
  }

  void insertAt(size_t Index, const T &Value) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Index <= Data.size() && "insert index out of range");
    Data.insert(Data.begin() + static_cast<ptrdiff_t>(Index), Value);
    Count.store(Data.size(), std::memory_order_relaxed);
  }

  void removeAt(size_t Index) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Index < Data.size() && "remove index out of range");
    Data.erase(Data.begin() + static_cast<ptrdiff_t>(Index));
    Count.store(Data.size(), std::memory_order_relaxed);
  }

  bool removeValue(const T &Value) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = std::find(Data.begin(), Data.end(), Value);
    if (It == Data.end())
      return false;
    Data.erase(It);
    Count.store(Data.size(), std::memory_order_relaxed);
    return true;
  }

  const T &at(size_t Index) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Index < Data.size() && "index out of range");
    return Data[Index];
  }

  void set(size_t Index, const T &Value) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(Index < Data.size() && "index out of range");
    Data[Index] = Value;
  }

  bool contains(const T &Value) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return std::find(Data.begin(), Data.end(), Value) != Data.end();
  }

  size_t size() const override {
    return Count.load(std::memory_order_relaxed);
  }

  void clear() override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Data.clear();
    Data.shrink_to_fit();
    Count.store(0, std::memory_order_relaxed);
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const T &Value : Data)
      Fn(Value);
  }

  void reserve(size_t N) override {
    std::lock_guard<std::mutex> Lock(Mutex);
    Data.reserve(N);
  }

  size_t memoryFootprint() const override {
    std::lock_guard<std::mutex> Lock(Mutex);
    return sizeof(*this) + Data.capacity() * sizeof(T);
  }

  ListVariant variant() const override { return ListVariant::MutexList; }

  std::unique_ptr<ListImpl<T>> cloneEmpty() const override {
    return std::make_unique<MutexListImpl<T>>();
  }

private:
  mutable std::mutex Mutex;
  std::vector<T, CountingAllocator<T>> Data;
  std::atomic<size_t> Count{0};
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CONCURRENT_MUTEXLIST_H
