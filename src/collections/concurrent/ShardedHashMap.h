//===- ShardedHashMap.h - Lock-striped hash map variant ---------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-striped strategy of the concurrent map tier (DESIGN.md §11):
/// a power-of-two array of independently locked open-addressing shards,
/// ConcurrentHashMap-style. Keys are routed by the top bits of the same
/// hash the in-shard tables consume from the bottom, so threads hitting
/// different keys contend with probability ~1/shards. The size is a
/// lock-free atomic maintained by the mutating operations (the facade
/// reads it after every mutation).
///
/// See MutexHashMap.h for the tier-wide thread-safety contract.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_CONCURRENT_SHARDEDHASHMAP_H
#define CSWITCH_COLLECTIONS_CONCURRENT_SHARDEDHASHMAP_H

#include "collections/MapInterface.h"
#include "collections/concurrent/Sharding.h"
#include "collections/detail/OpenHashTable.h"
#include "support/Topology.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace cswitch {

/// Lock-striped open-addressing map (MapVariant::ShardedHashMap).
template <typename K, typename V>
class ShardedHashMapImpl : public MapImpl<K, V> {
public:
  /// \p Shards = 0 uses the process-wide ContentionPolicy knob; any
  /// value is rounded to a power of two in [1, concurrent::MaxShards].
  explicit ShardedHashMapImpl(size_t Shards = 0)
      : NumShards(Shards ? concurrent::resolveShardCount(Shards)
                         : concurrent::configuredShardCount()),
        Lanes(std::make_unique<Shard[]>(NumShards)) {}

  bool put(const K &Key, const V &Value) override {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    bool Inserted = S.Table.insertOrAssign(Key, Value);
    if (Inserted)
      Count.fetch_add(1, std::memory_order_relaxed);
    return Inserted;
  }

  const V *get(const K &Key) const override {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    return S.Table.find(Key);
  }

  V *getMutable(const K &Key) override {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    return S.Table.findMutable(Key);
  }

  bool lookup(const K &Key, V &Out) const override {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    const V *Found = S.Table.find(Key);
    if (!Found)
      return false;
    Out = *Found;
    return true;
  }

  bool containsKey(const K &Key) const override {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    return S.Table.find(Key) != nullptr;
  }

  bool remove(const K &Key) override {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    bool Erased = S.Table.erase(Key);
    if (Erased)
      Count.fetch_sub(1, std::memory_order_relaxed);
    return Erased;
  }

  size_t size() const override {
    return Count.load(std::memory_order_relaxed);
  }

  void clear() override {
    // Shard-at-a-time: concurrent writers of other shards proceed; the
    // count is decremented per shard so it never goes stale negative.
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Count.fetch_sub(Lanes[I].Table.size(), std::memory_order_relaxed);
      Lanes[I].Table.clear();
    }
  }

  /// Shard-at-a-time traversal: each shard is consistent under its own
  /// lock; mutations of not-yet-visited shards may or may not be seen.
  void forEach(FunctionRef<void(const K &, const V &)> Fn) const override {
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Lanes[I].Table.forEach(Fn);
    }
  }

  void reserve(size_t N) override {
    size_t PerShard = (N + NumShards - 1) / NumShards;
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Lanes[I].Table.reserve(PerShard);
    }
  }

  size_t memoryFootprint() const override {
    size_t Total = sizeof(*this) + NumShards * sizeof(Shard);
    for (size_t I = 0; I != NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Lanes[I].Mutex);
      Total += Lanes[I].Table.memoryFootprint();
    }
    return Total;
  }

  MapVariant variant() const override { return MapVariant::ShardedHashMap; }

  std::unique_ptr<MapImpl<K, V>> cloneEmpty() const override {
    return std::make_unique<ShardedHashMapImpl<K, V>>(NumShards);
  }

  /// Number of lock stripes (for tests and footprint accounting).
  size_t shardCount() const { return NumShards; }

private:
  /// One lock stripe: the mutex and its table share a padded block so
  /// two shards never share a cache line.
  struct alignas(CacheLineBytes) Shard {
    mutable std::mutex Mutex;
    detail::OpenHashMapTable<K, V, 1, 2> Table;
  };

  Shard &shardOf(const K &Key) const {
    return Lanes[concurrent::shardOfHash(DefaultHash<K>{}(Key), NumShards)];
  }

  const size_t NumShards;
  std::unique_ptr<Shard[]> Lanes;
  std::atomic<size_t> Count{0};
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_CONCURRENT_SHARDEDHASHMAP_H
