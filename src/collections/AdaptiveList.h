//===- AdaptiveList.h - Size-adaptive list variant ---------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AdaptiveList variant (paper §3.2, Table 1: array → hash at size
/// 80): behaves as a plain ArrayList while small, and builds the hash
/// lookup index once the size crosses the configured threshold — an
/// instant transition that trades a one-time O(n) migration for O(1)
/// lookups afterwards. The transition is one-way (no thrashing when the
/// size oscillates around the threshold).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_ADAPTIVELIST_H
#define CSWITCH_COLLECTIONS_ADAPTIVELIST_H

#include "collections/AdaptiveConfig.h"
#include "collections/ListInterface.h"
#include "collections/detail/HashBag.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace cswitch {

/// Size-adaptive ListImpl (array, then array + hash index).
template <typename T> class AdaptiveListImpl final : public ListImpl<T> {
public:
  /// Uses the process-wide threshold by default.
  AdaptiveListImpl()
      : Threshold(AdaptiveConfig::global().thresholds().List) {}

  explicit AdaptiveListImpl(size_t Threshold) : Threshold(Threshold) {}

  void push_back(const T &Value) override {
    if (Data.capacity() == 0)
      Data.reserve(8);
    Data.push_back(Value);
    if (Indexed)
      Index.addOne(Value);
    else
      maybeMigrate();
  }

  void insertAt(size_t Pos, const T &Value) override {
    assert(Pos <= Data.size() && "insert index out of range");
    Data.insert(Data.begin() + static_cast<ptrdiff_t>(Pos), Value);
    if (Indexed)
      Index.addOne(Value);
    else
      maybeMigrate();
  }

  void removeAt(size_t Pos) override {
    assert(Pos < Data.size() && "remove index out of range");
    if (Indexed)
      Index.removeOne(Data[Pos]);
    Data.erase(Data.begin() + static_cast<ptrdiff_t>(Pos));
  }

  bool removeValue(const T &Value) override {
    if (Indexed && !Index.contains(Value))
      return false;
    auto It = std::find(Data.begin(), Data.end(), Value);
    if (It == Data.end())
      return false;
    if (Indexed)
      Index.removeOne(Value);
    Data.erase(It);
    return true;
  }

  const T &at(size_t Pos) const override {
    assert(Pos < Data.size() && "index out of range");
    return Data[Pos];
  }

  void set(size_t Pos, const T &Value) override {
    assert(Pos < Data.size() && "index out of range");
    if (Indexed) {
      Index.removeOne(Data[Pos]);
      Index.addOne(Value);
    }
    Data[Pos] = Value;
  }

  bool contains(const T &Value) const override {
    if (Indexed)
      return Index.contains(Value);
    return std::find(Data.begin(), Data.end(), Value) != Data.end();
  }

  size_t size() const override { return Data.size(); }

  void clear() override {
    Data.clear();
    if (Indexed) {
      Index.clear();
      Indexed = false;
    }
  }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    for (const T &V : Data)
      Fn(V);
  }

  void reserve(size_t N) override { Data.reserve(N); }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Data.capacity() * sizeof(T) +
           (Indexed ? Index.memoryFootprint() : 0);
  }

  ListVariant variant() const override { return ListVariant::AdaptiveList; }

  std::unique_ptr<ListImpl<T>> cloneEmpty() const override {
    return std::make_unique<AdaptiveListImpl<T>>(Threshold);
  }

  /// True once the hash index has been built.
  bool hasMigrated() const { return Indexed; }

  /// The transition threshold of this instance.
  size_t threshold() const { return Threshold; }

private:
  void maybeMigrate() {
    if (Data.size() <= Threshold)
      return;
    for (const T &V : Data)
      Index.addOne(V);
    Indexed = true;
    AdaptiveConfig::global().recordMigration();
  }

  std::vector<T, CountingAllocator<T>> Data;
  detail::HashBag<T> Index;
  size_t Threshold;
  bool Indexed = false;
};

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_ADAPTIVELIST_H
