//===- OpenHashSet.h - Open-addressing set variants --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The open-addressing set variants. OpenHashSet probes a half-empty
/// table (Koloboke-like: fastest lookups, more memory than compact);
/// CompactHashSet runs the same linear-probing scheme at 7/8 maximum load
/// (FastUtil/VLSI-like: most memory-efficient hash set, slower lookups
/// near capacity). Together with ChainedHashSet they span the time/space
/// spectrum the selection rules navigate in Fig. 5.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_OPENHASHSET_H
#define CSWITCH_COLLECTIONS_OPENHASHSET_H

#include "collections/SetInterface.h"
#include "collections/detail/OpenHashTable.h"

namespace cswitch {

/// Open-addressing SetImpl shared by the fast and compact variants.
///
/// \tparam Variant which SetVariant this instantiation reports.
/// \tparam LoadNum / \tparam LoadDen maximum load factor.
template <typename T, SetVariant Variant, unsigned LoadNum, unsigned LoadDen>
class OpenAddressingSetImpl final : public SetImpl<T> {
public:
  OpenAddressingSetImpl() = default;

  bool add(const T &Value) override { return Table.insert(Value); }

  bool contains(const T &Value) const override {
    return Table.contains(Value);
  }

  bool remove(const T &Value) override { return Table.erase(Value); }

  size_t size() const override { return Table.size(); }

  void clear() override { Table.clear(); }

  void forEach(FunctionRef<void(const T &)> Fn) const override {
    Table.forEach(Fn);
  }

  void reserve(size_t N) override { Table.reserve(N); }

  size_t memoryFootprint() const override {
    return sizeof(*this) + Table.memoryFootprint();
  }

  SetVariant variant() const override { return Variant; }

  std::unique_ptr<SetImpl<T>> cloneEmpty() const override {
    return std::make_unique<OpenAddressingSetImpl>();
  }

private:
  detail::OpenHashSetTable<T, LoadNum, LoadDen> Table;
};

/// Fast open-addressing set: maximum load factor 1/2.
template <typename T>
using OpenHashSetImpl =
    OpenAddressingSetImpl<T, SetVariant::OpenHashSet, 1, 2>;

/// Compact open-addressing set: maximum load factor 7/8.
template <typename T>
using CompactHashSetImpl =
    OpenAddressingSetImpl<T, SetVariant::CompactHashSet, 7, 8>;

} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_OPENHASHSET_H
