//===- OpenHashTable.h - Open-addressing tables (internal) ------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-addressing (linear probing) hash tables shared by the open-hash
/// and compact-hash set/map variants. The maximum load factor is a
/// template parameter: the fast variants probe a half-empty table
/// (Koloboke-like), the compact variants a 7/8-full one (memory-efficient
/// but slower near capacity) — giving the framework genuinely different
/// points on the time/space trade-off curve, as the paper's multi-library
/// candidate set does. Internal to the collections library.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_DETAIL_OPENHASHTABLE_H
#define CSWITCH_COLLECTIONS_DETAIL_OPENHASHTABLE_H

#include "support/FunctionRef.h"
#include "support/Hashing.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace cswitch {
namespace detail {

/// Slot states of an open-addressing table.
enum SlotState : uint8_t {
  SlotEmpty = 0,
  SlotFull = 1,
  SlotTombstone = 2,
};

/// Open-addressing set of T with linear probing.
///
/// \tparam LoadNum / \tparam LoadDen maximum load factor as a fraction;
/// growth keeps full+tombstone slots at or below it.
template <typename T, unsigned LoadNum, unsigned LoadDen,
          typename Hash = DefaultHash<T>>
class OpenHashSetTable {
public:
  OpenHashSetTable() = default;

  bool insert(const T &Value) {
    growIfNeeded(1);
    size_t Mask = Values.size() - 1;
    size_t Index = Hash{}(Value) & Mask;
    size_t FirstTombstone = SIZE_MAX;
    while (true) {
      uint8_t State = States[Index];
      if (State == SlotEmpty) {
        size_t Target = FirstTombstone != SIZE_MAX ? FirstTombstone : Index;
        Values[Target] = Value;
        if (States[Target] == SlotEmpty)
          ++Occupied;
        States[Target] = SlotFull;
        ++Count;
        return true;
      }
      if (State == SlotFull && Values[Index] == Value)
        return false;
      if (State == SlotTombstone && FirstTombstone == SIZE_MAX)
        FirstTombstone = Index;
      Index = (Index + 1) & Mask;
    }
  }

  bool contains(const T &Value) const {
    if (Values.empty())
      return false;
    size_t Mask = Values.size() - 1;
    size_t Index = Hash{}(Value) & Mask;
    while (true) {
      uint8_t State = States[Index];
      if (State == SlotEmpty)
        return false;
      if (State == SlotFull && Values[Index] == Value)
        return true;
      Index = (Index + 1) & Mask;
    }
  }

  bool erase(const T &Value) {
    if (Values.empty())
      return false;
    size_t Mask = Values.size() - 1;
    size_t Index = Hash{}(Value) & Mask;
    while (true) {
      uint8_t State = States[Index];
      if (State == SlotEmpty)
        return false;
      if (State == SlotFull && Values[Index] == Value) {
        States[Index] = SlotTombstone;
        --Count;
        return true;
      }
      Index = (Index + 1) & Mask;
    }
  }

  size_t size() const { return Count; }

  void clear() {
    Values.clear();
    Values.shrink_to_fit();
    States.clear();
    States.shrink_to_fit();
    Count = Occupied = 0;
  }

  void forEach(FunctionRef<void(const T &)> Fn) const {
    for (size_t I = 0, E = Values.size(); I != E; ++I)
      if (States[I] == SlotFull)
        Fn(Values[I]);
  }

  void reserve(size_t N) {
    size_t Needed = requiredCapacity(N);
    if (Needed > Values.size())
      rehash(Needed);
  }

  /// Bytes owned by the table, excluding sizeof(*this).
  size_t memoryFootprint() const {
    return Values.capacity() * sizeof(T) +
           States.capacity() * sizeof(uint8_t);
  }

private:
  static constexpr size_t InitialCapacity = 8;

  static size_t requiredCapacity(size_t Elements) {
    // Smallest power of two with Elements <= capacity * LoadNum/LoadDen.
    size_t Cap = InitialCapacity;
    while (Cap * LoadNum < Elements * LoadDen)
      Cap *= 2;
    return Cap;
  }

  void growIfNeeded(size_t Additional) {
    if (Values.empty()) {
      rehash(InitialCapacity);
      return;
    }
    if ((Occupied + Additional) * LoadDen <= Values.size() * LoadNum)
      return;
    // Double only while the live count needs it; a same-size rehash
    // purges tombstones without inflating the footprint.
    size_t NewCapacity = Values.size();
    while ((Count + Additional) * LoadDen > NewCapacity * LoadNum)
      NewCapacity *= 2;
    rehash(NewCapacity);
  }

  void rehash(size_t NewCapacity) {
    assert((NewCapacity & (NewCapacity - 1)) == 0 && "capacity not pow2");
    std::vector<T, CountingAllocator<T>> OldValues(std::move(Values));
    std::vector<uint8_t, CountingAllocator<uint8_t>> OldStates(
        std::move(States));
    Values.assign(NewCapacity, T());
    States.assign(NewCapacity, SlotEmpty);
    Occupied = Count;
    size_t Mask = NewCapacity - 1;
    for (size_t I = 0, E = OldValues.size(); I != E; ++I) {
      if (OldStates[I] != SlotFull)
        continue;
      size_t Index = Hash{}(OldValues[I]) & Mask;
      while (States[Index] != SlotEmpty)
        Index = (Index + 1) & Mask;
      Values[Index] = OldValues[I];
      States[Index] = SlotFull;
    }
  }

  std::vector<T, CountingAllocator<T>> Values;
  std::vector<uint8_t, CountingAllocator<uint8_t>> States;
  size_t Count = 0;    ///< Full slots.
  size_t Occupied = 0; ///< Full + tombstone slots.
};

/// Open-addressing map of K -> V with linear probing.
template <typename K, typename V, unsigned LoadNum, unsigned LoadDen,
          typename Hash = DefaultHash<K>>
class OpenHashMapTable {
public:
  OpenHashMapTable() = default;

  /// Returns true if the key was new.
  bool insertOrAssign(const K &Key, const V &Value) {
    growIfNeeded(1);
    size_t Mask = Keys.size() - 1;
    size_t Index = Hash{}(Key) & Mask;
    size_t FirstTombstone = SIZE_MAX;
    while (true) {
      uint8_t State = States[Index];
      if (State == SlotEmpty) {
        size_t Target = FirstTombstone != SIZE_MAX ? FirstTombstone : Index;
        Keys[Target] = Key;
        Vals[Target] = Value;
        if (States[Target] == SlotEmpty)
          ++Occupied;
        States[Target] = SlotFull;
        ++Count;
        return true;
      }
      if (State == SlotFull && Keys[Index] == Key) {
        Vals[Index] = Value;
        return false;
      }
      if (State == SlotTombstone && FirstTombstone == SIZE_MAX)
        FirstTombstone = Index;
      Index = (Index + 1) & Mask;
    }
  }

  const V *find(const K &Key) const {
    if (Keys.empty())
      return nullptr;
    size_t Mask = Keys.size() - 1;
    size_t Index = Hash{}(Key) & Mask;
    while (true) {
      uint8_t State = States[Index];
      if (State == SlotEmpty)
        return nullptr;
      if (State == SlotFull && Keys[Index] == Key)
        return &Vals[Index];
      Index = (Index + 1) & Mask;
    }
  }

  V *findMutable(const K &Key) {
    return const_cast<V *>(
        static_cast<const OpenHashMapTable *>(this)->find(Key));
  }

  bool erase(const K &Key) {
    if (Keys.empty())
      return false;
    size_t Mask = Keys.size() - 1;
    size_t Index = Hash{}(Key) & Mask;
    while (true) {
      uint8_t State = States[Index];
      if (State == SlotEmpty)
        return false;
      if (State == SlotFull && Keys[Index] == Key) {
        States[Index] = SlotTombstone;
        --Count;
        return true;
      }
      Index = (Index + 1) & Mask;
    }
  }

  size_t size() const { return Count; }

  void clear() {
    Keys.clear();
    Keys.shrink_to_fit();
    Vals.clear();
    Vals.shrink_to_fit();
    States.clear();
    States.shrink_to_fit();
    Count = Occupied = 0;
  }

  void forEach(FunctionRef<void(const K &, const V &)> Fn) const {
    for (size_t I = 0, E = Keys.size(); I != E; ++I)
      if (States[I] == SlotFull)
        Fn(Keys[I], Vals[I]);
  }

  void reserve(size_t N) {
    size_t Needed = requiredCapacity(N);
    if (Needed > Keys.size())
      rehash(Needed);
  }

  /// Bytes owned by the table, excluding sizeof(*this).
  size_t memoryFootprint() const {
    return Keys.capacity() * sizeof(K) + Vals.capacity() * sizeof(V) +
           States.capacity() * sizeof(uint8_t);
  }

private:
  static constexpr size_t InitialCapacity = 8;

  static size_t requiredCapacity(size_t Elements) {
    size_t Cap = InitialCapacity;
    while (Cap * LoadNum < Elements * LoadDen)
      Cap *= 2;
    return Cap;
  }

  void growIfNeeded(size_t Additional) {
    if (Keys.empty()) {
      rehash(InitialCapacity);
      return;
    }
    if ((Occupied + Additional) * LoadDen <= Keys.size() * LoadNum)
      return;
    // Double only while the live count needs it; a same-size rehash
    // purges tombstones without inflating the footprint.
    size_t NewCapacity = Keys.size();
    while ((Count + Additional) * LoadDen > NewCapacity * LoadNum)
      NewCapacity *= 2;
    rehash(NewCapacity);
  }

  void rehash(size_t NewCapacity) {
    assert((NewCapacity & (NewCapacity - 1)) == 0 && "capacity not pow2");
    std::vector<K, CountingAllocator<K>> OldKeys(std::move(Keys));
    std::vector<V, CountingAllocator<V>> OldVals(std::move(Vals));
    std::vector<uint8_t, CountingAllocator<uint8_t>> OldStates(
        std::move(States));
    Keys.assign(NewCapacity, K());
    Vals.assign(NewCapacity, V());
    States.assign(NewCapacity, SlotEmpty);
    Occupied = Count;
    size_t Mask = NewCapacity - 1;
    for (size_t I = 0, E = OldKeys.size(); I != E; ++I) {
      if (OldStates[I] != SlotFull)
        continue;
      size_t Index = Hash{}(OldKeys[I]) & Mask;
      while (States[Index] != SlotEmpty)
        Index = (Index + 1) & Mask;
      Keys[Index] = OldKeys[I];
      Vals[Index] = OldVals[I];
      States[Index] = SlotFull;
    }
  }

  std::vector<K, CountingAllocator<K>> Keys;
  std::vector<V, CountingAllocator<V>> Vals;
  std::vector<uint8_t, CountingAllocator<uint8_t>> States;
  size_t Count = 0;
  size_t Occupied = 0;
};

} // namespace detail
} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_DETAIL_OPENHASHTABLE_H
