//===- HashBag.h - Chained hash multiset (internal) -------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chained-hash multiset used as the lookup index of HashArrayList —
/// the paper's "ArrayList + HashBag for faster lookups" variant (Table 2).
/// Internal to the collections library; not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_DETAIL_HASHBAG_H
#define CSWITCH_COLLECTIONS_DETAIL_HASHBAG_H

#include "support/Hashing.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace cswitch {
namespace detail {

/// A multiset of T backed by a chained hash table of (value, count) nodes.
template <typename T, typename Hash = DefaultHash<T>> class HashBag {
  struct Node {
    T Value;
    uint32_t Count;
    Node *Next;
  };

public:
  HashBag() = default;

  HashBag(const HashBag &) = delete;
  HashBag &operator=(const HashBag &) = delete;

  ~HashBag() { clear(); }

  /// Adds one occurrence of \p Value.
  void addOne(const T &Value) {
    if (Buckets.empty())
      rehash(InitialBuckets);
    size_t Index = bucketIndex(Value);
    for (Node *N = Buckets[Index]; N; N = N->Next) {
      if (N->Value == Value) {
        ++N->Count;
        return;
      }
    }
    Node *N = newCounted<Node>(Node{Value, 1, Buckets[Index]});
    Buckets[Index] = N;
    ++DistinctCount;
    if (DistinctCount * 4 > Buckets.size() * 3)
      rehash(Buckets.size() * 2);
  }

  /// Removes one occurrence of \p Value; returns false if absent.
  bool removeOne(const T &Value) {
    if (Buckets.empty())
      return false;
    size_t Index = bucketIndex(Value);
    Node **Link = &Buckets[Index];
    while (Node *N = *Link) {
      if (N->Value == Value) {
        if (--N->Count == 0) {
          *Link = N->Next;
          deleteCounted(N);
          --DistinctCount;
        }
        return true;
      }
      Link = &N->Next;
    }
    return false;
  }

  /// Returns true if at least one occurrence of \p Value is present.
  bool contains(const T &Value) const {
    if (Buckets.empty())
      return false;
    for (const Node *N = Buckets[bucketIndex(Value)]; N; N = N->Next)
      if (N->Value == Value)
        return true;
    return false;
  }

  /// Number of distinct values held.
  size_t distinctSize() const { return DistinctCount; }

  /// Removes everything and releases the table.
  void clear() {
    for (Node *Head : Buckets) {
      while (Head) {
        Node *Next = Head->Next;
        deleteCounted(Head);
        Head = Next;
      }
    }
    Buckets.clear();
    Buckets.shrink_to_fit();
    DistinctCount = 0;
  }

  /// Bytes owned by the bag (bucket array + nodes), excluding sizeof(*this).
  size_t memoryFootprint() const {
    return Buckets.capacity() * sizeof(Node *) +
           DistinctCount * sizeof(Node);
  }

private:
  static constexpr size_t InitialBuckets = 16;

  size_t bucketIndex(const T &Value) const {
    return Hash{}(Value) & (Buckets.size() - 1);
  }

  void rehash(size_t NewBucketCount) {
    assert((NewBucketCount & (NewBucketCount - 1)) == 0 &&
           "bucket count must be a power of two");
    std::vector<Node *, CountingAllocator<Node *>> Old(std::move(Buckets));
    Buckets.assign(NewBucketCount, nullptr);
    for (Node *Head : Old) {
      while (Head) {
        Node *Next = Head->Next;
        size_t Index = Hash{}(Head->Value) & (NewBucketCount - 1);
        Head->Next = Buckets[Index];
        Buckets[Index] = Head;
        Head = Next;
      }
    }
  }

  std::vector<Node *, CountingAllocator<Node *>> Buckets;
  size_t DistinctCount = 0;
};

} // namespace detail
} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_DETAIL_HASHBAG_H
