//===- AVLTree.h - Self-balancing search tree (internal) --------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch AVL tree backing the sorted collection variants
/// (TreeSet / TreeMap — the paper's future-work item "a wider set of
/// candidate collections, including ... sorted collections", §7, realized
/// here as the analogue of JDK TreeSet/TreeMap). Internal to the
/// collections library.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_COLLECTIONS_DETAIL_AVLTREE_H
#define CSWITCH_COLLECTIONS_DETAIL_AVLTREE_H

#include "support/FunctionRef.h"
#include "support/MemoryTracker.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace cswitch {
namespace detail {

/// An AVL-balanced binary search tree mapping K to V.
///
/// Keys require a strict weak ordering via operator<. All allocation is
/// counted. Heights are maintained eagerly; the AVL invariant (balance
/// factor in {-1, 0, 1}) holds after every mutation.
template <typename K, typename V> class AVLTree {
  struct Node {
    K Key;
    V Value;
    Node *Left;
    Node *Right;
    int32_t Height;
  };

public:
  AVLTree() = default;

  AVLTree(const AVLTree &) = delete;
  AVLTree &operator=(const AVLTree &) = delete;

  ~AVLTree() { clear(); }

  /// Inserts or overwrites; returns true if the key was new.
  bool insertOrAssign(const K &Key, const V &Value) {
    bool Inserted = false;
    Root = insertImpl(Root, Key, Value, Inserted);
    if (Inserted)
      ++Count;
    return Inserted;
  }

  /// Returns the value of \p Key, or nullptr.
  const V *find(const K &Key) const {
    const Node *N = Root;
    while (N) {
      if (Key < N->Key)
        N = N->Left;
      else if (N->Key < Key)
        N = N->Right;
      else
        return &N->Value;
    }
    return nullptr;
  }

  V *findMutable(const K &Key) {
    return const_cast<V *>(static_cast<const AVLTree *>(this)->find(Key));
  }

  /// Removes the mapping of \p Key; returns false if absent.
  bool erase(const K &Key) {
    bool Erased = false;
    Root = eraseImpl(Root, Key, Erased);
    if (Erased)
      --Count;
    return Erased;
  }

  size_t size() const { return Count; }

  void clear() {
    destroy(Root);
    Root = nullptr;
    Count = 0;
  }

  /// In-order (ascending key) traversal.
  void inorder(FunctionRef<void(const K &, const V &)> Fn) const {
    inorderImpl(Root, Fn);
  }

  /// Bytes owned by the tree, excluding sizeof(*this).
  size_t memoryFootprint() const { return Count * sizeof(Node); }

  /// Verifies the AVL and BST invariants (test support; O(n)).
  bool verifyInvariants() const {
    const K *Prev = nullptr;
    return verifyImpl(Root, Prev) >= 0;
  }

private:
  static int32_t heightOf(const Node *N) { return N ? N->Height : 0; }

  static void updateHeight(Node *N) {
    N->Height = 1 + std::max(heightOf(N->Left), heightOf(N->Right));
  }

  static int32_t balanceOf(const Node *N) {
    return heightOf(N->Left) - heightOf(N->Right);
  }

  static Node *rotateRight(Node *Y) {
    Node *X = Y->Left;
    Y->Left = X->Right;
    X->Right = Y;
    updateHeight(Y);
    updateHeight(X);
    return X;
  }

  static Node *rotateLeft(Node *X) {
    Node *Y = X->Right;
    X->Right = Y->Left;
    Y->Left = X;
    updateHeight(X);
    updateHeight(Y);
    return Y;
  }

  static Node *rebalance(Node *N) {
    updateHeight(N);
    int32_t Balance = balanceOf(N);
    if (Balance > 1) {
      if (balanceOf(N->Left) < 0)
        N->Left = rotateLeft(N->Left);
      return rotateRight(N);
    }
    if (Balance < -1) {
      if (balanceOf(N->Right) > 0)
        N->Right = rotateRight(N->Right);
      return rotateLeft(N);
    }
    return N;
  }

  Node *insertImpl(Node *N, const K &Key, const V &Value, bool &Inserted) {
    if (!N) {
      Inserted = true;
      return newCounted<Node>(Node{Key, Value, nullptr, nullptr, 1});
    }
    if (Key < N->Key)
      N->Left = insertImpl(N->Left, Key, Value, Inserted);
    else if (N->Key < Key)
      N->Right = insertImpl(N->Right, Key, Value, Inserted);
    else {
      N->Value = Value;
      return N;
    }
    return rebalance(N);
  }

  Node *eraseImpl(Node *N, const K &Key, bool &Erased) {
    if (!N)
      return nullptr;
    if (Key < N->Key) {
      N->Left = eraseImpl(N->Left, Key, Erased);
    } else if (N->Key < Key) {
      N->Right = eraseImpl(N->Right, Key, Erased);
    } else {
      Erased = true;
      if (!N->Left || !N->Right) {
        Node *Child = N->Left ? N->Left : N->Right;
        deleteCounted(N);
        return Child;
      }
      // Two children: replace with the in-order successor.
      Node *Successor = N->Right;
      while (Successor->Left)
        Successor = Successor->Left;
      N->Key = Successor->Key;
      N->Value = Successor->Value;
      bool Dummy = false;
      N->Right = eraseImpl(N->Right, Successor->Key, Dummy);
    }
    return rebalance(N);
  }

  void destroy(Node *N) {
    if (!N)
      return;
    destroy(N->Left);
    destroy(N->Right);
    deleteCounted(N);
  }

  void inorderImpl(const Node *N,
                   FunctionRef<void(const K &, const V &)> Fn) const {
    if (!N)
      return;
    inorderImpl(N->Left, Fn);
    Fn(N->Key, N->Value);
    inorderImpl(N->Right, Fn);
  }

  /// Returns the height, or -1 on any invariant violation. \p Prev
  /// threads the previously visited key for the BST ordering check.
  int32_t verifyImpl(const Node *N, const K *&Prev) const {
    if (!N)
      return 0;
    int32_t LeftHeight = verifyImpl(N->Left, Prev);
    if (LeftHeight < 0)
      return -1;
    if (Prev && !(*Prev < N->Key))
      return -1;
    Prev = &N->Key;
    int32_t RightHeight = verifyImpl(N->Right, Prev);
    if (RightHeight < 0)
      return -1;
    if (std::abs(LeftHeight - RightHeight) > 1)
      return -1;
    int32_t Height = 1 + std::max(LeftHeight, RightHeight);
    if (Height != N->Height)
      return -1;
    return Height;
  }

  Node *Root = nullptr;
  size_t Count = 0;
};

} // namespace detail
} // namespace cswitch

#endif // CSWITCH_COLLECTIONS_DETAIL_AVLTREE_H
