//===- PerfettoExport.h - Decision-timeline trace export --------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns drained EventLog events plus profiling-histogram snapshots into
/// Chrome/Perfetto `trace_event` JSON (the "JSON Array Format" with a
/// `traceEvents` wrapper object, loadable by ui.perfetto.dev and
/// chrome://tracing). Each allocation site becomes one named track
/// (thread) carrying instant events for its decisions — monitoring
/// rounds, evaluations, transitions, warm starts — and counter tracks
/// plot the per-site p99 latencies from the histogram sweep, all on the
/// shared monotonicNanos() clock so decisions and latency shifts line
/// up visually.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_OBS_PERFETTOEXPORT_H
#define CSWITCH_OBS_PERFETTOEXPORT_H

#include "obs/Profiling.h"
#include "obs/Provenance.h"
#include "support/EventLog.h"

#include <string>
#include <vector>

namespace cswitch {
namespace obs {

/// Renders \p Events (as drained or snapshotted from an EventLog) plus
/// the per-site histogram sweep \p Sites into a self-contained
/// trace_event JSON document. Events with no timestamp (recorded before
/// this feature, or synthetic) are placed at the timeline origin.
/// When \p Ledgers (decision-provenance snapshots, DESIGN.md §14) is
/// non-empty, each transition event is matched to its ledger record by
/// site and nearest timestamp, and its args gain the cost explanation:
/// current/chosen cost on the deciding dimension, their delta, the
/// selection margin, the ratio threshold, and the thread estimate.
std::string renderPerfettoTrace(const std::vector<Event> &Events,
                                const std::vector<SiteHistogramSnapshot> &Sites,
                                const std::vector<SiteLedgerSnapshot> &Ledgers);

/// Overload without decision-provenance annotations.
std::string renderPerfettoTrace(const std::vector<Event> &Events,
                                const std::vector<SiteHistogramSnapshot> &Sites);

/// Convenience overload: snapshots the global EventLog (non-consuming),
/// sweeps the global ProfilingRegistry, and annotates from the global
/// ProvenanceRegistry (a disabled ledger contributes no annotations).
std::string renderPerfettoTrace();

} // namespace obs
} // namespace cswitch

#endif // CSWITCH_OBS_PERFETTOEXPORT_H
