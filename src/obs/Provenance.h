//===- Provenance.h - Decision provenance ledger ----------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision provenance ledger (DESIGN.md §14): a bounded, wait-free
/// per-site ring of DecisionRecords that explains every selection
/// decision end-to-end — the per-dimension total costs of every
/// candidate variant (pre- and post-contention-fold), the criterion
/// ratios against the selection rule's thresholds, the adaptive-gate
/// evidence, the contention-sketch thread estimate, and the outcome
/// (kept / switched / converged / warm-start-skipped).
///
/// Recording discipline mirrors the EventLog (DESIGN.md §6): the ledger
/// is off by default and the enabled check is one relaxed atomic load;
/// when disabled the capture paths allocate nothing and touch no ledger
/// state (ProvenanceRegistry::allocationCount() pins this down). Each
/// site's writer is already serialized by the context's evaluation
/// mutex, so record() is a plain seqlock publication: wait-free for the
/// writer, and readers (the /explain.json endpoint, cswitch_explain)
/// validate the per-slot version word and retry or skip torn slots —
/// they never block a decision.
///
/// Rendering is byte-stable: renderExplainJson() of an unchanged ledger
/// set produces an identical document (sites sorted by name, doubles
/// printed with %.17g round-trip precision, no render-time clocks), so
/// two consecutive snapshots with no intervening decisions compare
/// equal byte-for-byte. parseExplainDocument() is the matching total
/// decoder (schema "cswitch-explain-v1").
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_OBS_PROVENANCE_H
#define CSWITCH_OBS_PROVENANCE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cswitch {

struct TelemetrySnapshot;

namespace obs {

/// Number of cost dimensions a record carries. Kept as a local constant
/// (with matching names below) so the obs layer stays support-only; the
/// core capture code static_asserts it against model::NumCostDimensions.
constexpr size_t ExplainNumDimensions = 4;

/// Maximum candidate variants per record. The largest abstraction today
/// has 10 variants; 16 leaves headroom without growing the record.
constexpr size_t ExplainMaxCandidates = 16;

/// Maximum selection-rule criteria captured per record.
constexpr size_t ExplainMaxCriteria = 4;

/// Decisions retained per site (oldest overwritten first).
constexpr size_t ExplainLedgerCapacity = 8;

/// Returns "time", "alloc", "energy" or "contention" (enum order of
/// CostDimension); "unknown" out of range.
const char *explainDimensionName(size_t Dim);

/// What a recorded decision concluded.
enum class DecisionOutcome : uint8_t {
  Kept,            ///< No candidate beat the current variant.
  Switched,        ///< The context transitioned to ChosenVariant.
  Converged,       ///< Kept, and the keep streak reached convergence.
  WarmStartSkipped ///< The store seeded the variant; no analysis ran.
};

/// Returns "kept", "switched", "converged" or "warm-start-skipped".
const char *decisionOutcomeName(DecisionOutcome Outcome);

/// Parses a decisionOutcomeName() string; returns false if unknown.
bool parseDecisionOutcome(std::string_view Name, DecisionOutcome &Out);

/// The explanation of one candidate variant within one decision.
struct CandidateExplanation {
  /// Total cost per dimension as the selection rule saw it: when the
  /// contention fold was applied, Total[time] includes the contention
  /// penalty (DESIGN.md §11).
  std::array<double, ExplainNumDimensions> Total = {};
  /// Unfolded components: PreFold[time] is the pure time polynomial sum
  /// and PreFold[contention] the contention polynomial sum evaluated at
  /// the thread estimate. Dimensions the rule does not use are still
  /// backfilled here so the breakdown is complete for every candidate.
  std::array<double, ExplainNumDimensions> PreFold = {};
  /// Criterion ratio TC_D(cand)/TC_D(current) per rule criterion
  /// (index-aligned with DecisionRecord::Criteria); -1 when the current
  /// cost was zero (the zero-cost rule of selectVariant applies).
  std::array<double, ExplainMaxCriteria> Ratio = {};
  bool Covered = false;   ///< The model covers this variant.
  bool Eligible = false;  ///< Competed (coverage ∩ tier ∩ adaptive gate).
  bool Qualified = false; ///< Satisfied every criterion of the rule.
};

/// One captured selection-rule criterion.
struct CriterionExplanation {
  uint8_t Dimension = 0; ///< CostDimension enum value.
  double Threshold = 0.0;
};

/// The full explanation of one decision. Trivially copyable: the ledger
/// publishes records word-wise through atomic slots.
struct DecisionRecord {
  uint64_t Sequence = 0;       ///< Per-site decision counter (1-based).
  uint64_t TimestampNanos = 0; ///< monotonicNanos() at capture.
  uint32_t Round = 0;          ///< Monitoring round analyzed.
  DecisionOutcome Outcome = DecisionOutcome::Kept;
  int16_t CurrentVariant = -1; ///< Variant index before the decision.
  int16_t ChosenVariant = -1;  ///< Winning candidate; -1 = none.
  uint8_t NumCandidates = 0;
  uint8_t NumCriteria = 0;
  /// True when the contention penalty was folded into the time totals
  /// (concurrent tier with >1 estimated threads).
  bool ContentionFolded = false;
  bool AdaptiveStraddles = false; ///< Sizes straddled the threshold.
  bool AdaptiveWide = false;      ///< Sizes spread by WideRangeFactor.
  int16_t AdaptiveIndex = -1;     ///< Adaptive variant index, or -1.
  uint32_t ConsecutiveKeeps = 0;  ///< Keep streak after this decision.
  double ContendedThreads = 0.0;  ///< Sketch EWMA thread estimate.
  double AdaptiveThreshold = 0.0; ///< §3.2 threshold in effect.
  double WideRangeFactor = 0.0;
  double MinMaxSize = 0.0; ///< Smallest observed group max size.
  double MaxMaxSize = 0.0; ///< Largest observed group max size.
  /// Worst-case slack of the decided candidate: min over criteria of
  /// (threshold - ratio). Positive for every switch (the candidate beat
  /// every criterion by at least this much); for keeps it is the margin
  /// of the closest non-qualifying candidate (how far the site was from
  /// switching). 0 when no ratio was computable.
  double Margin = 0.0;
  std::array<CriterionExplanation, ExplainMaxCriteria> Criteria = {};
  std::array<CandidateExplanation, ExplainMaxCandidates> Candidates = {};
};

static_assert(std::is_trivially_copyable<DecisionRecord>::value,
              "records are published word-wise through atomic slots");

/// Reader-side view of one site's ledger.
struct SiteLedgerSnapshot {
  std::string Name;
  std::string Abstraction;             ///< "list" / "set" / "map".
  std::string Rule;                    ///< Selection rule name.
  std::vector<std::string> Variants;   ///< Display names by index.
  uint64_t Decisions = 0;              ///< Lifetime decision count.
  std::vector<DecisionRecord> Records; ///< Oldest to newest.
};

/// Bounded per-site decision ring. One writer (the context's evaluator,
/// serialized by its evaluation mutex), any number of concurrent
/// readers. The writer publishes through per-slot seqlock versions over
/// all-atomic payload words — it never blocks, and a reader that loses
/// the race to a wrapping writer skips the torn slot.
class SiteLedger {
public:
  SiteLedger(std::string Name, std::string Abstraction, std::string Rule,
             std::vector<std::string> Variants);

  SiteLedger(const SiteLedger &) = delete;
  SiteLedger &operator=(const SiteLedger &) = delete;

  /// Publishes \p Record into the ring, stamping its Sequence from the
  /// site's decision counter. Wait-free; single writer at a time.
  void record(DecisionRecord Record);

  /// Snapshot of the retained records, oldest to newest. Slots torn by
  /// a concurrent writer are retried briefly, then skipped.
  std::vector<DecisionRecord> snapshot() const;

  /// Lifetime decisions recorded (may exceed the retained window).
  uint64_t decisionCount() const {
    return Count.load(std::memory_order_acquire);
  }

  const std::string &name() const { return Name; }
  const std::string &abstraction() const { return Abstraction; }
  const std::string &rule() const { return Rule; }
  const std::vector<std::string> &variants() const { return Variants; }

  /// Full reader-side view (metadata + records).
  SiteLedgerSnapshot snapshotSite() const;

private:
  static constexpr size_t WordsPerRecord =
      (sizeof(DecisionRecord) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  /// One seqlock slot: Version is even when stable, odd while the
  /// writer republishes. Payload words are atomic so the fences in
  /// record()/snapshot() are value-ordering devices only (the same
  /// discipline — and TSan weakening — as the EventLog rings).
  struct Slot {
    std::atomic<uint64_t> Version{0};
    std::array<std::atomic<uint64_t>, WordsPerRecord> Words = {};
  };

  const std::string Name;
  const std::string Abstraction;
  const std::string Rule;
  const std::vector<std::string> Variants;
  std::array<Slot, ExplainLedgerCapacity> Slots;
  std::atomic<uint64_t> Count{0};
};

/// Process-wide registry of site ledgers. Ledgers are interned by site
/// name (pointer-stable, never freed — bounded by site cardinality,
/// like the EventLog intern table) and kept sorted so snapshots render
/// deterministically.
class ProvenanceRegistry {
public:
  /// The process-wide registry instance.
  static ProvenanceRegistry &global();

  ProvenanceRegistry() = default;
  ProvenanceRegistry(const ProvenanceRegistry &) = delete;
  ProvenanceRegistry &operator=(const ProvenanceRegistry &) = delete;

  /// True when decision capture is on. Off by default; resolved once
  /// from CSWITCH_EXPLAIN (=1/true/on) on first query, after which this
  /// is a single relaxed load — the only cost the capture paths pay
  /// when the ledger is disabled.
  static bool enabled();

  /// Programmatically enables/disables capture (overrides the
  /// environment resolution).
  static void setEnabled(bool Enabled);

  /// Returns the ledger of \p SiteName, creating (and interning) it on
  /// first use. Metadata parameters are consumed only on creation.
  SiteLedger *site(const std::string &SiteName,
                   const std::string &Abstraction, const std::string &Rule,
                   std::vector<std::string> Variants);

  /// Snapshot of every site's ledger, sorted by site name.
  std::vector<SiteLedgerSnapshot> snapshotSites() const;

  /// Number of interned site ledgers.
  size_t siteCount() const;

  /// Ledger allocations performed since construction (site interning).
  /// The disabled path must never move this — bench/explain_overhead
  /// --check pins the guarantee down.
  uint64_t allocationCount() const {
    return Allocations.load(std::memory_order_relaxed);
  }

  /// Drops every interned ledger (tests only; not safe while contexts
  /// holding ledger pointers are live).
  void clearForTest();

private:
  /// 0 = unresolved (consult CSWITCH_EXPLAIN), 1 = off, 2 = on.
  static std::atomic<int> EnabledState;

  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<SiteLedger>> Sites;
  std::atomic<uint64_t> Allocations{0};
};

/// Artifact provenance rendered into the /explain.json header: which
/// model / tuning / store drove the recorded decisions.
struct ExplainProvenance {
  std::string ModelSource;      ///< "<builtin>", a path, or an artifact.
  std::string ModelFingerprint; ///< Artifact hash / host fingerprint.
  uint64_t ModelFitTimestamp = 0;    ///< Unix seconds; 0 = unknown.
  double ModelHoldoutResidual = 0.0; ///< cswitch-model-v2 gate residual.
  uint64_t ModelInstalls = 0;
  std::string TuningSource; ///< cswitch-tuning-v1 path, or empty.
  std::string TuningFingerprint;
  std::string TuningCorpusDigest;
  uint64_t TuningLoads = 0;
  std::string StorePath; ///< Warm-start store path, or empty.
  uint64_t StoreLoads = 0;
  uint64_t StoreWarmStarts = 0;
};

/// Distills the artifact provenance of \p Snapshot (model / tuning /
/// store registries) into the explain header.
ExplainProvenance makeExplainHeader(const TelemetrySnapshot &Snapshot);

/// Renders the "cswitch-explain-v1" document: provenance header plus
/// every site ledger. Byte-stable for unchanged inputs.
std::string renderExplainJson(const ExplainProvenance &Provenance,
                              const std::vector<SiteLedgerSnapshot> &Sites,
                              bool Enabled);

/// A parsed "cswitch-explain-v1" document.
struct ExplainDocument {
  std::string Schema;
  bool Enabled = false;
  ExplainProvenance Provenance;
  std::vector<SiteLedgerSnapshot> Sites;
};

/// Total decoder for renderExplainJson() output. \returns false (with a
/// diagnostic in \p Error when non-null) on malformed JSON, a wrong
/// schema tag, or out-of-range counts; unknown fields are skipped so
/// newer writers stay readable.
bool parseExplainDocument(std::string_view Json, ExplainDocument &Out,
                          std::string *Error = nullptr);

} // namespace obs
} // namespace cswitch

#endif // CSWITCH_OBS_PROVENANCE_H
