//===- MetricsHttp.h - Pull-based introspection endpoint --------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately tiny pull-based metrics endpoint: one background
/// thread, blocking accept, HTTP/1.0, connection-per-request. It exists
/// so a running application can be scraped (`curl :9100/metrics`,
/// Prometheus, `cswitch_top watch`) without the framework growing a
/// dependency on a real HTTP stack. GET routes serve rendered text
/// documents (and implicitly answer HEAD with the same headers and no
/// body); POST routes (added for the fleet store sync, DESIGN.md §12)
/// accept one size-bounded body per request. Unsupported methods on a
/// known path get 405 with an Allow header; unknown paths get 404.
///
/// Routes are registered as (path, callback) pairs before start(); each
/// request invokes the callback fresh, so responses are always current.
/// The callbacks run on the server thread — they must be safe to call
/// concurrently with the application (the snapshot machinery they wrap
/// already is).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_OBS_METRICSHTTP_H
#define CSWITCH_OBS_METRICSHTTP_H

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cswitch {
namespace obs {

/// Minimal blocking-accept HTTP/1.0 server for text documents.
class MetricsServer {
public:
  /// Renders the response body for one request; invoked per request on
  /// the server thread.
  using TextSource = std::function<std::string()>;

  /// Outcome of one POST body handler: an HTTP status code plus the
  /// response body (served as text/plain).
  struct PostResult {
    int Status = 200;
    std::string Body;
  };

  /// Consumes one POST request body; invoked per request on the server
  /// thread. The body is already bounded by the route's MaxBodyBytes.
  using BodyHandler = std::function<PostResult(std::string_view Body)>;

  MetricsServer() = default;
  ~MetricsServer();

  MetricsServer(const MetricsServer &) = delete;
  MetricsServer &operator=(const MetricsServer &) = delete;

  /// Registers \p Render to answer GET \p Path with \p ContentType.
  /// Must be called before start().
  void handle(std::string Path, std::string ContentType, TextSource Render);

  /// Registers \p Handler to answer POST \p Path. Request bodies larger
  /// than \p MaxBodyBytes are refused with 413 before the handler runs
  /// (the connection is drained no further, so an oversized push cannot
  /// pin the server thread). Must be called before start(). A path may
  /// carry both a GET and a POST route.
  void handlePost(std::string Path, size_t MaxBodyBytes, BodyHandler Handler);

  /// Binds 127.0.0.1:\p Port (0 picks an ephemeral port), starts the
  /// accept thread. Returns false if the socket could not be set up
  /// (port in use, sockets unavailable); the server is then inert and
  /// start() may be retried with another port.
  bool start(uint16_t Port);

  /// Stops the accept loop and joins the thread. Safe to call when not
  /// running, and called by the destructor.
  void stop();

  /// True between a successful start() and stop().
  bool running() const { return ListenFd >= 0; }

  /// The bound port (resolved after start() with Port 0), or 0 when not
  /// running.
  uint16_t port() const { return BoundPort; }

private:
  void serveLoop();
  void serveConnection(int Fd);

  struct Route {
    std::string Path;
    std::string ContentType;
    TextSource Render;
  };

  struct PostRoute {
    std::string Path;
    size_t MaxBodyBytes;
    BodyHandler Handler;
  };

  std::vector<Route> Routes;
  std::vector<PostRoute> PostRoutes;
  std::thread Acceptor;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
};

} // namespace obs
} // namespace cswitch

#endif // CSWITCH_OBS_METRICSHTTP_H
