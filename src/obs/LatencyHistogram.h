//===- LatencyHistogram.h - Log-bucketed latency histograms -----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-footprint, lock-free latency histograms for the continuous
/// profiling layer (DESIGN.md §9). HdrHistogram-style log-linear
/// bucketing: values 0..15 ns get exact one-nanosecond buckets; above
/// that every power-of-two octave is split into 16 sub-buckets, so the
/// relative bucket width — and therefore the worst-case quantile error —
/// is bounded by 1/16 (6.25%) everywhere. The whole histogram is 432
/// fixed buckets (~3.4 KB), independent of how many samples it absorbs.
///
/// Concurrency: record() is wait-free — a handful of relaxed atomic
/// RMWs on monotonically increasing counters, no locks, no allocation.
/// Multiple writers may record concurrently; snapshot() reads the same
/// atomics without stopping writers and yields a merge-consistent view
/// (counts observed are always counts that were recorded; a snapshot
/// racing a record may miss it, never corrupt it). Snapshots are plain
/// values that merge with operator+= and distill to the telemetry
/// schema's LatencyStats (p50/p90/p99/p999).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_OBS_LATENCYHISTOGRAM_H
#define CSWITCH_OBS_LATENCYHISTOGRAM_H

#include "support/Telemetry.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace cswitch {
namespace obs {

/// Value-independent bucket geometry shared by the live histogram and
/// its snapshots.
struct HistogramLayout {
  /// Sub-buckets per power-of-two octave (the precision knob).
  static constexpr unsigned SubBuckets = 16;
  /// log2(SubBuckets).
  static constexpr unsigned SubBucketBits = 4;
  /// Largest exactly-representable exponent: values at or above
  /// 2^MaxExponent saturate into the top bucket.
  static constexpr unsigned MaxExponent = 30; // 2^30 ns ≈ 1.07 s
  /// Largest value that lands in a regular bucket; everything above is
  /// clamped into the final bucket and counted as saturated.
  static constexpr uint64_t MaxTrackableNanos = (uint64_t(1) << MaxExponent) - 1;
  /// Total bucket count: the exact linear region [0, SubBuckets) plus
  /// SubBuckets per octave from exponent SubBucketBits to MaxExponent-1.
  static constexpr size_t NumBuckets =
      SubBuckets + (MaxExponent - SubBucketBits) * SubBuckets;

  /// Bucket index of \p Nanos (values above MaxTrackableNanos clamp to
  /// the last bucket).
  static size_t bucketIndex(uint64_t Nanos);

  /// Smallest value mapping to bucket \p Index.
  static uint64_t bucketLowerBound(size_t Index);

  /// Width of bucket \p Index in nanoseconds (>= 1).
  static uint64_t bucketWidth(size_t Index);

  /// Largest value mapping to bucket \p Index
  /// (bucketLowerBound + bucketWidth - 1).
  static uint64_t bucketUpperBound(size_t Index);
};

/// Plain-value copy of a histogram's state at one point in time.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Saturated = 0;
  uint64_t SumNanos = 0;
  uint64_t MinNanos = 0; ///< 0 when empty.
  uint64_t MaxNanos = 0;
  std::array<uint64_t, HistogramLayout::NumBuckets> Buckets = {};

  /// Merges \p Other into this snapshot (bucket-wise; extrema widen).
  HistogramSnapshot &operator+=(const HistogramSnapshot &Other);

  /// Estimate of the \p Q quantile (Q in [0, 1]): the upper bound of
  /// the bucket containing the rank-ceil(Q*Count) sample, clamped to
  /// the observed maximum. Error is bounded by one bucket width. 0 when
  /// the histogram is empty.
  double quantile(double Q) const;

  /// Distills the snapshot into the telemetry schema's value type
  /// (count, extrema, p50/p90/p99/p999).
  LatencyStats stats() const;
};

/// The live, concurrently-writable histogram.
class LatencyHistogram {
public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram &) = delete;
  LatencyHistogram &operator=(const LatencyHistogram &) = delete;

  /// Records one latency sample. Wait-free; safe from any thread.
  void record(uint64_t Nanos) { record(Nanos, 1); }

  /// Records \p N samples of the same latency (sampled instrumentation
  /// points scale their observations back up with this).
  void record(uint64_t Nanos, uint64_t N);

  /// Copies the current state without stopping writers.
  HistogramSnapshot snapshot() const;

  /// True once at least one sample was recorded (single relaxed load —
  /// cheap enough for reporting paths to skip empty histograms).
  bool empty() const {
    return Count.load(std::memory_order_relaxed) == 0;
  }

private:
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Saturated{0};
  std::atomic<uint64_t> SumNanos{0};
  std::atomic<uint64_t> MinNanos{UINT64_MAX};
  std::atomic<uint64_t> MaxNanos{0};
  std::array<std::atomic<uint64_t>, HistogramLayout::NumBuckets> Buckets = {};
};

/// A NUMA-striped histogram: one LatencyHistogram per node, recorded
/// into by the caller's node's stripe and merged bucket-wise at
/// snapshot time (DESIGN.md §10). Because stripes share the bucket
/// geometry, the merged snapshot is bit-identical to what a single
/// histogram fed the same samples would produce — striping changes
/// where the counters live, not what they count. Same record/snapshot/
/// empty surface as LatencyHistogram, so call sites are agnostic.
class StripedHistogram {
public:
  /// \p Stripes = 0 means one stripe per NUMA node of
  /// Topology::system().
  explicit StripedHistogram(unsigned Stripes = 0);

  StripedHistogram(const StripedHistogram &) = delete;
  StripedHistogram &operator=(const StripedHistogram &) = delete;

  /// Records one sample on the calling thread's node's stripe.
  void record(uint64_t Nanos) { record(Nanos, 1); }

  /// Records \p N samples of the same latency. Wait-free.
  void record(uint64_t Nanos, uint64_t N);

  /// Test hook: records onto an explicit stripe (folded modulo the
  /// stripe count), so merge equivalence is checkable regardless of
  /// the machine's real topology.
  void recordOnStripe(unsigned Stripe, uint64_t Nanos, uint64_t N = 1);

  /// Merged copy of every stripe's state without stopping writers.
  HistogramSnapshot snapshot() const;

  /// True while no stripe has recorded a sample.
  bool empty() const;

  unsigned stripes() const { return NumStripes; }

  /// Heap bytes owned by the stripe array (footprint accounting).
  size_t memoryBytes() const;

private:
  /// Padded so adjacent stripes' hot counters never share a line.
  struct alignas(64) Stripe {
    LatencyHistogram Histogram;
  };

  unsigned NumStripes;
  std::unique_ptr<Stripe[]> Lanes;
};

} // namespace obs
} // namespace cswitch

#endif // CSWITCH_OBS_LATENCYHISTOGRAM_H
