//===- Profiling.h - Continuous profiling registry --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The continuous profiling layer's site registry (DESIGN.md §9).
/// Every allocation context resolves a SiteProfile — three latency
/// histograms for its instrumented paths — keyed by site name, so
/// same-named contexts across harness runs accumulate into one
/// distribution and the data outlives any individual context (profiles
/// are interned, never freed; growth is bounded by the program's site
/// cardinality, exactly like the EventLog intern table).
///
/// Cost model of the instrumented paths:
///   * record() (the monitoring fast path) is sampled 1-in-64 per
///     thread: the common case adds one thread_local counter decrement;
///     only sampled instances pay the two steady-clock reads. Recorded
///     samples carry weight 64 so counts remain estimates of totals.
///   * evaluate(), switch execution and store persists are rare
///     (monitoring-rate paced), so every occurrence is timed.
///
/// setEnabled(false) turns the clock reads off globally (the
/// thread_local decrement remains — one register op).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_OBS_PROFILING_H
#define CSWITCH_OBS_PROFILING_H

#include "obs/LatencyHistogram.h"
#include "support/Timer.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cswitch {
namespace obs {

/// The three instrumented paths of one allocation site. The histograms
/// are NUMA-striped (DESIGN.md §10): threads of different nodes record
/// onto different stripes, and latencies() / the registry sweeps merge
/// the stripes bucket-wise, so concurrent monitored sites stop
/// bouncing histogram cache lines across sockets while the distilled
/// quantiles stay identical to the unstriped layout.
struct SiteProfile {
  std::string Name;
  StripedHistogram Record;   ///< Slot claim + profile publication.
  StripedHistogram Evaluate; ///< Window analysis rounds.
  StripedHistogram Switch;   ///< Variant-transition execution.

  explicit SiteProfile(std::string SiteName) : Name(std::move(SiteName)) {}

  /// Distilled per-site view for the telemetry snapshot.
  SiteLatencies latencies() const {
    SiteLatencies L;
    L.Record = Record.snapshot().stats();
    L.Evaluate = Evaluate.snapshot().stats();
    L.Switch = Switch.snapshot().stats();
    return L;
  }
};

/// One merged (site name, histogram snapshots) row of an engine-wide
/// profiling sweep — what the OpenMetrics endpoint renders per site.
struct SiteHistogramSnapshot {
  std::string Name;
  HistogramSnapshot Record;
  HistogramSnapshot Evaluate;
  HistogramSnapshot Switch;
};

/// Process-wide registry of site profiles plus the engine-global
/// persistence histogram.
class ProfilingRegistry {
public:
  /// The process-wide registry instance.
  static ProfilingRegistry &global();

  /// Returns the profile of \p SiteName, creating it on first use. The
  /// pointer is stable for the process lifetime (profiles are interned).
  SiteProfile *profile(const std::string &SiteName);

  /// The store-persistence histogram (engine-wide; persists have no
  /// per-site identity).
  LatencyHistogram &persistHistogram() { return Persist; }

  /// Snapshot of every site's histograms, sorted by site name so
  /// exports are deterministic.
  std::vector<SiteHistogramSnapshot> snapshotSites() const;

  /// Engine-wide merge: all site histograms folded per path, persist
  /// alongside, distilled to the telemetry schema.
  EngineLatencies engineLatencies() const;

  /// Globally enables/disables latency recording (default: enabled).
  /// Disabling stops the clock reads; already-recorded data remains.
  static void setEnabled(bool Enabled) {
    EnabledFlag.store(Enabled, std::memory_order_relaxed);
  }

  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

private:
  static std::atomic<bool> EnabledFlag;

  mutable std::mutex Mutex;
  /// Site name -> interned profile. unique_ptr gives pointer stability
  /// across rehashes.
  std::unordered_map<std::string, std::unique_ptr<SiteProfile>> Sites;
  LatencyHistogram Persist;
};

/// Sampling weight of the monitoring fast path (1-in-SampleEvery
/// instances pay the clock; each sample is recorded with this weight).
inline constexpr uint64_t RecordSampleEvery = 64;

/// Per-thread sampling gate for the record() path: true on every
/// SampleEvery-th call on this thread, and only when profiling is
/// globally enabled. The common case is one thread_local decrement.
inline bool shouldSampleRecord() {
  thread_local uint64_t Countdown = 1;
  if (--Countdown != 0)
    return false;
  Countdown = RecordSampleEvery;
  return ProfilingRegistry::enabled();
}

/// One steady-clock read in nanoseconds (shared epoch with the event
/// log, so histogram samples and decision events line up on export).
inline uint64_t nowNanos() { return monotonicNanos(); }

} // namespace obs
} // namespace cswitch

#endif // CSWITCH_OBS_PROFILING_H
