//===- PerfettoExport.cpp - Decision-timeline trace export ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/PerfettoExport.h"

#include "support/MetricsExport.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

/// Appends microsecond timestamp \p Nanos as `"ts":N.NNN`.
void appendTs(std::string &Out, uint64_t Nanos) {
  char Buf[48];
  // trace_event timestamps are microseconds; keep nanosecond precision
  // via three decimals.
  std::snprintf(Buf, sizeof(Buf), "\"ts\":%" PRIu64 ".%03u",
                Nanos / 1000, static_cast<unsigned>(Nanos % 1000));
  Out += Buf;
}

void appendMetadata(std::string &Out, const char *Name, uint32_t Tid,
                    const std::string &Value, bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf),
                "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"", Tid);
  Out += Buf;
  Out += Name;
  Out += "\",\"args\":{\"name\":\"";
  Out += jsonEscape(Value);
  Out += "\"}}";
}

/// Appends a finite double arg as `,"Name":V`; non-finite values render
/// as 0 (trace_event JSON has no Inf/NaN literals).
void appendArg(std::string &Out, const char *Name, double Value) {
  Out += ",\"";
  Out += Name;
  Out += "\":";
  char Buf[48];
  if (Value != Value || Value > 1.7976931348623157e308 ||
      Value < -1.7976931348623157e308)
    Out += "0";
  else {
    std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
    Out += Buf;
  }
}

/// The ledger record backing a transition event: same site, Switched
/// outcome, nearest timestamp. Returns nullptr when no record matches.
const DecisionRecord *
switchRecordFor(const SiteLedgerSnapshot *Ledger, uint64_t Ts) {
  if (!Ledger)
    return nullptr;
  const DecisionRecord *Best = nullptr;
  uint64_t BestDelta = UINT64_MAX;
  for (const DecisionRecord &R : Ledger->Records) {
    if (R.Outcome != DecisionOutcome::Switched)
      continue;
    uint64_t Delta = R.TimestampNanos > Ts ? R.TimestampNanos - Ts
                                           : Ts - R.TimestampNanos;
    if (Delta <= BestDelta) {
      Best = &R;
      BestDelta = Delta;
    }
  }
  return Best;
}

} // namespace

std::string
cswitch::obs::renderPerfettoTrace(const std::vector<Event> &Events,
                                  const std::vector<SiteHistogramSnapshot> &Sites,
                                  const std::vector<SiteLedgerSnapshot> &Ledgers) {
  // Assign one track (tid) per site name, deterministically: sites from
  // the histogram sweep first (already sorted), then any event-only
  // names in first-seen order. Tid 0 is the engine-level track for
  // events with no site (e.g. store activity).
  std::map<std::string, const SiteLedgerSnapshot *> LedgersByName;
  for (const SiteLedgerSnapshot &L : Ledgers)
    LedgersByName.emplace(L.Name, &L);

  std::map<std::string, uint32_t> Tids;
  uint32_t NextTid = 1;
  for (const auto &Site : Sites)
    Tids.emplace(Site.Name, NextTid++);
  for (const auto &E : Events)
    if (!E.Context.empty() && Tids.emplace(E.Context, NextTid).second)
      ++NextTid;

  // Timeline origin: the earliest real timestamp. Events recorded
  // without one (Ts == 0) are pinned there instead of at the epoch,
  // which would stretch the viewport by minutes of uptime.
  uint64_t MinTs = UINT64_MAX, MaxTs = 0;
  for (const auto &E : Events) {
    if (E.TimestampNanos == 0)
      continue;
    MinTs = std::min(MinTs, E.TimestampNanos);
    MaxTs = std::max(MaxTs, E.TimestampNanos);
  }
  if (MinTs == UINT64_MAX)
    MinTs = 0;
  MaxTs = std::max(MaxTs, MinTs);

  std::string Out;
  Out.reserve(4096 + Events.size() * 160);
  Out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
         "\"schema\":\"cswitch-perfetto-v1\"},\"traceEvents\":[\n";
  bool First = true;

  appendMetadata(Out, "process_name", 0, "cswitch", First);
  appendMetadata(Out, "thread_name", 0, "engine", First);
  for (const auto &[Name, Tid] : Tids)
    appendMetadata(Out, "thread_name", Tid, Name, First);

  for (const auto &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    uint64_t Ts = E.TimestampNanos == 0 ? MinTs : E.TimestampNanos;
    uint32_t Tid = 0;
    if (!E.Context.empty()) {
      auto It = Tids.find(E.Context);
      if (It != Tids.end())
        Tid = It->second;
    }
    Out += "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"decision\",\"pid\":1,";
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "\"tid\":%u,", Tid);
    Out += Buf;
    appendTs(Out, Ts);
    Out += ",\"name\":\"";
    Out += jsonEscape(eventKindName(E.Kind));
    Out += "\",\"args\":{\"detail\":\"";
    Out += jsonEscape(E.Detail);
    Out += "\",\"seq\":";
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, E.SequenceNumber);
    Out += Buf;
    // Annotate transitions with the ledger's cost explanation so the
    // timeline answers "why" without a round-trip to /explain.json.
    if (E.Kind == EventKind::Transition && !E.Context.empty()) {
      auto LedgerIt = LedgersByName.find(E.Context);
      const DecisionRecord *R = switchRecordFor(
          LedgerIt == LedgersByName.end() ? nullptr : LedgerIt->second,
          E.TimestampNanos);
      if (R && R->CurrentVariant >= 0 && R->ChosenVariant >= 0 &&
          static_cast<uint8_t>(R->CurrentVariant) < R->NumCandidates &&
          static_cast<uint8_t>(R->ChosenVariant) < R->NumCandidates) {
        // The deciding dimension is the rule's first criterion (the
        // primary ranking axis); time when the rule declares none.
        size_t Dim = R->NumCriteria != 0 ? R->Criteria[0].Dimension : 0;
        if (Dim >= ExplainNumDimensions)
          Dim = 0;
        double Cur = R->Candidates[static_cast<size_t>(R->CurrentVariant)]
                         .Total[Dim];
        double New = R->Candidates[static_cast<size_t>(R->ChosenVariant)]
                         .Total[Dim];
        Out += ",\"cost_dimension\":\"";
        Out += explainDimensionName(Dim);
        Out += "\"";
        appendArg(Out, "cost_cur", Cur);
        appendArg(Out, "cost_new", New);
        appendArg(Out, "cost_delta", New - Cur);
        appendArg(Out, "margin", R->Margin);
        if (R->NumCriteria != 0)
          appendArg(Out, "threshold", R->Criteria[0].Threshold);
        appendArg(Out, "threads", R->ContendedThreads);
      }
    }
    Out += "}}";
  }

  // One counter track per site plotting the lifetime p99s of its three
  // instrumented paths at the end of the timeline.
  for (const auto &Site : Sites) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "{\"ph\":\"C\",\"pid\":1,\"tid\":0,";
    appendTs(Out, MaxTs);
    Out += ",\"name\":\"p99 ns ";
    Out += jsonEscape(Site.Name);
    Out += "\",\"args\":{";
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "\"record\":%.0f,\"evaluate\":%.0f,\"switch\":%.0f}}",
                  Site.Record.quantile(0.99), Site.Evaluate.quantile(0.99),
                  Site.Switch.quantile(0.99));
    Out += Buf;
  }

  Out += "\n]}\n";
  return Out;
}

std::string
cswitch::obs::renderPerfettoTrace(const std::vector<Event> &Events,
                                  const std::vector<SiteHistogramSnapshot> &Sites) {
  return renderPerfettoTrace(Events, Sites, {});
}

std::string cswitch::obs::renderPerfettoTrace() {
  return renderPerfettoTrace(EventLog::global().snapshot(),
                             ProfilingRegistry::global().snapshotSites(),
                             ProvenanceRegistry::global().snapshotSites());
}
