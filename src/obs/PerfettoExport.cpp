//===- PerfettoExport.cpp - Decision-timeline trace export ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/PerfettoExport.h"

#include "support/MetricsExport.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

/// Appends microsecond timestamp \p Nanos as `"ts":N.NNN`.
void appendTs(std::string &Out, uint64_t Nanos) {
  char Buf[48];
  // trace_event timestamps are microseconds; keep nanosecond precision
  // via three decimals.
  std::snprintf(Buf, sizeof(Buf), "\"ts\":%" PRIu64 ".%03u",
                Nanos / 1000, static_cast<unsigned>(Nanos % 1000));
  Out += Buf;
}

void appendMetadata(std::string &Out, const char *Name, uint32_t Tid,
                    const std::string &Value, bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf),
                "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"", Tid);
  Out += Buf;
  Out += Name;
  Out += "\",\"args\":{\"name\":\"";
  Out += jsonEscape(Value);
  Out += "\"}}";
}

} // namespace

std::string
cswitch::obs::renderPerfettoTrace(const std::vector<Event> &Events,
                                  const std::vector<SiteHistogramSnapshot> &Sites) {
  // Assign one track (tid) per site name, deterministically: sites from
  // the histogram sweep first (already sorted), then any event-only
  // names in first-seen order. Tid 0 is the engine-level track for
  // events with no site (e.g. store activity).
  std::map<std::string, uint32_t> Tids;
  uint32_t NextTid = 1;
  for (const auto &Site : Sites)
    Tids.emplace(Site.Name, NextTid++);
  for (const auto &E : Events)
    if (!E.Context.empty() && Tids.emplace(E.Context, NextTid).second)
      ++NextTid;

  // Timeline origin: the earliest real timestamp. Events recorded
  // without one (Ts == 0) are pinned there instead of at the epoch,
  // which would stretch the viewport by minutes of uptime.
  uint64_t MinTs = UINT64_MAX, MaxTs = 0;
  for (const auto &E : Events) {
    if (E.TimestampNanos == 0)
      continue;
    MinTs = std::min(MinTs, E.TimestampNanos);
    MaxTs = std::max(MaxTs, E.TimestampNanos);
  }
  if (MinTs == UINT64_MAX)
    MinTs = 0;
  MaxTs = std::max(MaxTs, MinTs);

  std::string Out;
  Out.reserve(4096 + Events.size() * 160);
  Out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
         "\"schema\":\"cswitch-perfetto-v1\"},\"traceEvents\":[\n";
  bool First = true;

  appendMetadata(Out, "process_name", 0, "cswitch", First);
  appendMetadata(Out, "thread_name", 0, "engine", First);
  for (const auto &[Name, Tid] : Tids)
    appendMetadata(Out, "thread_name", Tid, Name, First);

  for (const auto &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    uint64_t Ts = E.TimestampNanos == 0 ? MinTs : E.TimestampNanos;
    uint32_t Tid = 0;
    if (!E.Context.empty()) {
      auto It = Tids.find(E.Context);
      if (It != Tids.end())
        Tid = It->second;
    }
    Out += "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"decision\",\"pid\":1,";
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "\"tid\":%u,", Tid);
    Out += Buf;
    appendTs(Out, Ts);
    Out += ",\"name\":\"";
    Out += jsonEscape(eventKindName(E.Kind));
    Out += "\",\"args\":{\"detail\":\"";
    Out += jsonEscape(E.Detail);
    Out += "\",\"seq\":";
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64 "}}", E.SequenceNumber);
    Out += Buf;
  }

  // One counter track per site plotting the lifetime p99s of its three
  // instrumented paths at the end of the timeline.
  for (const auto &Site : Sites) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "{\"ph\":\"C\",\"pid\":1,\"tid\":0,";
    appendTs(Out, MaxTs);
    Out += ",\"name\":\"p99 ns ";
    Out += jsonEscape(Site.Name);
    Out += "\",\"args\":{";
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "\"record\":%.0f,\"evaluate\":%.0f,\"switch\":%.0f}}",
                  Site.Record.quantile(0.99), Site.Evaluate.quantile(0.99),
                  Site.Switch.quantile(0.99));
    Out += Buf;
  }

  Out += "\n]}\n";
  return Out;
}

std::string cswitch::obs::renderPerfettoTrace() {
  return renderPerfettoTrace(EventLog::global().snapshot(),
                             ProfilingRegistry::global().snapshotSites());
}
