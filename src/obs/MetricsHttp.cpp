//===- MetricsHttp.cpp - Pull-based introspection endpoint ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsHttp.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

/// Writes all of \p Data to \p Fd, tolerating short writes. Returns
/// false on error (peer gone — nothing useful to do about it).
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

void respond(int Fd, const char *Status, const std::string &ContentType,
             const std::string &Body, bool HeadOnly = false,
             const char *Allow = nullptr) {
  std::string Head = "HTTP/1.0 ";
  Head += Status;
  Head += "\r\nContent-Type: ";
  Head += ContentType;
  Head += "\r\nContent-Length: ";
  Head += std::to_string(Body.size());
  if (Allow) {
    Head += "\r\nAllow: ";
    Head += Allow;
  }
  Head += "\r\nConnection: close\r\n\r\n";
  // HEAD answers carry the headers of the equivalent GET — including
  // the Content-Length the body would have — but no body bytes.
  if (writeAll(Fd, Head.data(), Head.size()) && !HeadOnly)
    writeAll(Fd, Body.data(), Body.size());
}

} // namespace

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::handle(std::string Path, std::string ContentType,
                           TextSource Render) {
  Routes.push_back({std::move(Path), std::move(ContentType),
                    std::move(Render)});
}

void MetricsServer::handlePost(std::string Path, size_t MaxBodyBytes,
                               BodyHandler Handler) {
  PostRoutes.push_back({std::move(Path), MaxBodyBytes, std::move(Handler)});
}

bool MetricsServer::start(uint16_t Port) {
  if (ListenFd >= 0)
    return false;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 8) != 0) {
    ::close(Fd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    ::close(Fd);
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);
  ListenFd = Fd;
  Acceptor = std::thread([this] { serveLoop(); });
  return true;
}

void MetricsServer::stop() {
  if (ListenFd < 0)
    return;
  // shutdown() wakes the blocking accept with an error; the loop then
  // notices the fd is being torn down and exits.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;
  BoundPort = 0;
}

void MetricsServer::serveLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listen socket shut down: server stopping.
    }
    // Bound the time a stalled client can pin the (single) server
    // thread: a scraper that connects but never sends times out.
    timeval Timeout = {/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    serveConnection(Fd);
    ::close(Fd);
  }
}

namespace {

/// Maps the status codes the POST handlers use to reason phrases.
const char *statusLine(int Status) {
  switch (Status) {
  case 200:
    return "200 OK";
  case 400:
    return "400 Bad Request";
  case 409:
    return "409 Conflict";
  case 413:
    return "413 Payload Too Large";
  case 500:
    return "500 Internal Server Error";
  default:
    return "400 Bad Request";
  }
}

/// Case-insensitive Content-Length lookup in the raw header block.
/// Returns false when absent or unparsable.
bool contentLengthOf(std::string_view Headers, size_t &Out) {
  size_t Pos = 0;
  while (Pos < Headers.size()) {
    size_t LineEnd = Headers.find('\n', Pos);
    if (LineEnd == std::string_view::npos)
      LineEnd = Headers.size();
    std::string_view Line = Headers.substr(Pos, LineEnd - Pos);
    Pos = LineEnd + 1;
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      continue;
    std::string Name(Line.substr(0, Colon));
    for (char &C : Name)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    if (Name != "content-length")
      continue;
    std::string_view Value = Line.substr(Colon + 1);
    size_t Begin = Value.find_first_not_of(" \t");
    if (Begin == std::string_view::npos)
      return false;
    uint64_t Parsed = 0;
    bool AnyDigit = false;
    for (size_t I = Begin; I != Value.size(); ++I) {
      char C = Value[I];
      if (C == '\r' || C == ' ' || C == '\t')
        break;
      if (C < '0' || C > '9')
        return false;
      if (Parsed > (UINT64_MAX - 9) / 10)
        return false; // Absurd length: treat as unparsable.
      Parsed = Parsed * 10 + static_cast<uint64_t>(C - '0');
      AnyDigit = true;
    }
    if (!AnyDigit)
      return false;
    Out = static_cast<size_t>(Parsed);
    return true;
  }
  return false;
}

} // namespace

void MetricsServer::serveConnection(int Fd) {
  // Read until the end of the header block ("\r\n\r\n" or "\n\n"); GET
  // routing only needs the request line, POST additionally needs the
  // Content-Length header. The header block itself is capped at 8 KiB.
  std::string Request;
  char Buf[1024];
  size_t HeaderEnd = std::string::npos;
  size_t BodyStart = 0;
  while (Request.size() < 8192) {
    if (size_t P = Request.find("\r\n\r\n"); P != std::string::npos) {
      HeaderEnd = P;
      BodyStart = P + 4;
      break;
    }
    if (size_t P = Request.find("\n\n"); P != std::string::npos) {
      HeaderEnd = P;
      BodyStart = P + 2;
      break;
    }
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      return;
    Request.append(Buf, static_cast<size_t>(N));
  }
  if (HeaderEnd == std::string::npos)
    return;
  size_t LineEnd = Request.find('\n');
  if (LineEnd == std::string::npos || LineEnd > HeaderEnd + 1)
    return;

  // "GET /path HTTP/1.x" | "POST /path HTTP/1.x"
  std::string Line = Request.substr(0, LineEnd);
  size_t MethodEnd = Line.find(' ');
  if (MethodEnd == std::string::npos) {
    respond(Fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  std::string Method = Line.substr(0, MethodEnd);
  size_t PathEnd = Line.find(' ', MethodEnd + 1);
  std::string Path = Line.substr(MethodEnd + 1,
                                 PathEnd == std::string::npos
                                     ? std::string::npos
                                     : PathEnd - MethodEnd - 1);
  // Strip a query string; the routes are plain paths.
  if (size_t Query = Path.find('?'); Query != std::string::npos)
    Path.resize(Query);

  const Route *GetRoute = nullptr;
  for (const auto &R : Routes)
    if (R.Path == Path)
      GetRoute = &R;
  const PostRoute *Post = nullptr;
  for (const auto &R : PostRoutes)
    if (R.Path == Path)
      Post = &R;
  // What the path supports, for Allow headers on 405 answers. A GET
  // route implicitly answers HEAD too (same headers, no body).
  const char *Allowed = GetRoute ? (Post ? "GET, HEAD, POST" : "GET, HEAD")
                                 : (Post ? "POST" : nullptr);

  if (Method == "GET" || Method == "HEAD") {
    if (GetRoute) {
      respond(Fd, "200 OK", GetRoute->ContentType, GetRoute->Render(),
              /*HeadOnly=*/Method == "HEAD");
      return;
    }
    if (Post) {
      respond(Fd, "405 Method Not Allowed", "text/plain", "no GET route\n",
              Method == "HEAD", Allowed);
      return;
    }
    respond(Fd, "404 Not Found", "text/plain", "unknown path\n",
            Method == "HEAD");
    return;
  }

  if (Method != "POST") {
    // An unsupported method on a known path is a method problem (405,
    // naming what the path does answer); on an unknown path it is a
    // path problem (404) — not a blanket 405 as before.
    if (Allowed)
      respond(Fd, "405 Method Not Allowed", "text/plain",
              "method not allowed\n", false, Allowed);
    else
      respond(Fd, "404 Not Found", "text/plain", "unknown path\n");
    return;
  }

  const PostRoute *Route = Post;
  if (!Route) {
    if (GetRoute)
      respond(Fd, "405 Method Not Allowed", "text/plain", "no POST route\n",
              false, Allowed);
    else
      respond(Fd, "404 Not Found", "text/plain", "no POST route\n");
    return;
  }

  size_t ContentLength = 0;
  std::string_view Headers(Request.data() + LineEnd + 1,
                           HeaderEnd >= LineEnd + 1 ? HeaderEnd - LineEnd - 1
                                                    : 0);
  if (!contentLengthOf(Headers, ContentLength)) {
    respond(Fd, "400 Bad Request", "text/plain",
            "Content-Length required\n");
    return;
  }
  if (ContentLength > Route->MaxBodyBytes) {
    // Refuse before reading: an oversized push never occupies memory or
    // the server thread beyond this point.
    respond(Fd, "413 Payload Too Large", "text/plain", "body too large\n");
    return;
  }

  std::string Body = Request.substr(BodyStart);
  if (Body.size() > ContentLength)
    Body.resize(ContentLength);
  while (Body.size() < ContentLength) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      return; // Peer died (or stalled past the rcv timeout) mid-body.
    size_t Want = ContentLength - Body.size();
    Body.append(Buf, std::min(static_cast<size_t>(N), Want));
  }

  PostResult Result = Route->Handler(Body);
  respond(Fd, statusLine(Result.Status), "text/plain", Result.Body);
}
