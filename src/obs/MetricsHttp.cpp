//===- MetricsHttp.cpp - Pull-based introspection endpoint ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsHttp.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

/// Writes all of \p Data to \p Fd, tolerating short writes. Returns
/// false on error (peer gone — nothing useful to do about it).
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

void respond(int Fd, const char *Status, const std::string &ContentType,
             const std::string &Body) {
  std::string Head = "HTTP/1.0 ";
  Head += Status;
  Head += "\r\nContent-Type: ";
  Head += ContentType;
  Head += "\r\nContent-Length: ";
  Head += std::to_string(Body.size());
  Head += "\r\nConnection: close\r\n\r\n";
  if (writeAll(Fd, Head.data(), Head.size()))
    writeAll(Fd, Body.data(), Body.size());
}

} // namespace

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::handle(std::string Path, std::string ContentType,
                           TextSource Render) {
  Routes.push_back({std::move(Path), std::move(ContentType),
                    std::move(Render)});
}

bool MetricsServer::start(uint16_t Port) {
  if (ListenFd >= 0)
    return false;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 8) != 0) {
    ::close(Fd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    ::close(Fd);
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);
  ListenFd = Fd;
  Acceptor = std::thread([this] { serveLoop(); });
  return true;
}

void MetricsServer::stop() {
  if (ListenFd < 0)
    return;
  // shutdown() wakes the blocking accept with an error; the loop then
  // notices the fd is being torn down and exits.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;
  BoundPort = 0;
}

void MetricsServer::serveLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listen socket shut down: server stopping.
    }
    // Bound the time a stalled client can pin the (single) server
    // thread: a scraper that connects but never sends times out.
    timeval Timeout = {/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    serveConnection(Fd);
    ::close(Fd);
  }
}

void MetricsServer::serveConnection(int Fd) {
  // Read until the end of the request line; headers are irrelevant to
  // routing, so a newline is all we need.
  std::string Request;
  char Buf[1024];
  while (Request.find('\n') == std::string::npos && Request.size() < 8192) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      return;
    Request.append(Buf, static_cast<size_t>(N));
  }
  size_t LineEnd = Request.find('\n');
  if (LineEnd == std::string::npos)
    return;

  // "GET /path HTTP/1.x"
  std::string Line = Request.substr(0, LineEnd);
  size_t MethodEnd = Line.find(' ');
  if (MethodEnd == std::string::npos) {
    respond(Fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  if (Line.substr(0, MethodEnd) != "GET") {
    respond(Fd, "405 Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  size_t PathEnd = Line.find(' ', MethodEnd + 1);
  std::string Path = Line.substr(MethodEnd + 1,
                                 PathEnd == std::string::npos
                                     ? std::string::npos
                                     : PathEnd - MethodEnd - 1);
  // Strip a query string; the routes are plain paths.
  if (size_t Query = Path.find('?'); Query != std::string::npos)
    Path.resize(Query);

  for (const auto &Route : Routes) {
    if (Route.Path != Path)
      continue;
    respond(Fd, "200 OK", Route.ContentType, Route.Render());
    return;
  }
  respond(Fd, "404 Not Found", "text/plain", "unknown path\n");
}
