//===- Profiling.cpp - Continuous profiling registry ---------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/Profiling.h"

#include <algorithm>

using namespace cswitch;
using namespace cswitch::obs;

std::atomic<bool> ProfilingRegistry::EnabledFlag{true};

ProfilingRegistry &ProfilingRegistry::global() {
  static ProfilingRegistry Instance;
  return Instance;
}

SiteProfile *ProfilingRegistry::profile(const std::string &SiteName) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(SiteName);
  if (It != Sites.end())
    return It->second.get();
  auto Profile = std::make_unique<SiteProfile>(SiteName);
  SiteProfile *Ptr = Profile.get();
  Sites.emplace(SiteName, std::move(Profile));
  return Ptr;
}

std::vector<SiteHistogramSnapshot> ProfilingRegistry::snapshotSites() const {
  std::vector<SiteHistogramSnapshot> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out.reserve(Sites.size());
    for (const auto &[Name, Profile] : Sites) {
      SiteHistogramSnapshot S;
      S.Name = Name;
      S.Record = Profile->Record.snapshot();
      S.Evaluate = Profile->Evaluate.snapshot();
      S.Switch = Profile->Switch.snapshot();
      Out.push_back(std::move(S));
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const SiteHistogramSnapshot &A,
               const SiteHistogramSnapshot &B) { return A.Name < B.Name; });
  return Out;
}

EngineLatencies ProfilingRegistry::engineLatencies() const {
  HistogramSnapshot Record, Evaluate, Switch;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Name, Profile] : Sites) {
      Record += Profile->Record.snapshot();
      Evaluate += Profile->Evaluate.snapshot();
      Switch += Profile->Switch.snapshot();
    }
  }
  EngineLatencies L;
  L.Record = Record.stats();
  L.Evaluate = Evaluate.stats();
  L.Switch = Switch.stats();
  L.Persist = Persist.snapshot().stats();
  return L;
}
