//===- LatencyHistogram.cpp - Log-bucketed latency histograms ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/LatencyHistogram.h"

#include "support/Topology.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace cswitch;
using namespace cswitch::obs;

size_t HistogramLayout::bucketIndex(uint64_t Nanos) {
  if (Nanos < SubBuckets)
    return static_cast<size_t>(Nanos);
  if (Nanos > MaxTrackableNanos)
    return NumBuckets - 1;
  // Exponent of the leading bit; in [SubBucketBits, MaxExponent).
  unsigned Exp = 63u - static_cast<unsigned>(std::countl_zero(Nanos));
  // The SubBucketBits bits right below the leading bit pick the
  // sub-bucket within the octave.
  auto Sub = static_cast<size_t>((Nanos >> (Exp - SubBucketBits)) &
                                 (SubBuckets - 1));
  size_t Octave = Exp - SubBucketBits + 1; // octave 0 = linear region
  return Octave * SubBuckets + Sub;
}

uint64_t HistogramLayout::bucketLowerBound(size_t Index) {
  if (Index < SubBuckets)
    return Index;
  size_t Octave = Index / SubBuckets; // >= 1
  size_t Sub = Index % SubBuckets;
  unsigned Exp = static_cast<unsigned>(Octave) + SubBucketBits - 1;
  return (uint64_t(SubBuckets) + Sub) << (Exp - SubBucketBits);
}

uint64_t HistogramLayout::bucketWidth(size_t Index) {
  if (Index < SubBuckets)
    return 1;
  size_t Octave = Index / SubBuckets;
  unsigned Exp = static_cast<unsigned>(Octave) + SubBucketBits - 1;
  return uint64_t(1) << (Exp - SubBucketBits);
}

uint64_t HistogramLayout::bucketUpperBound(size_t Index) {
  return bucketLowerBound(Index) + bucketWidth(Index) - 1;
}

void LatencyHistogram::record(uint64_t Nanos, uint64_t N) {
  if (N == 0)
    return;
  Buckets[HistogramLayout::bucketIndex(Nanos)].fetch_add(
      N, std::memory_order_relaxed);
  Count.fetch_add(N, std::memory_order_relaxed);
  SumNanos.fetch_add(Nanos * N, std::memory_order_relaxed);
  if (Nanos > HistogramLayout::MaxTrackableNanos)
    Saturated.fetch_add(N, std::memory_order_relaxed);
  // Monotone extrema via CAS; losers re-check, so both converge to the
  // true bound without locks.
  uint64_t Seen = MinNanos.load(std::memory_order_relaxed);
  while (Nanos < Seen &&
         !MinNanos.compare_exchange_weak(Seen, Nanos,
                                         std::memory_order_relaxed)) {
  }
  Seen = MaxNanos.load(std::memory_order_relaxed);
  while (Nanos > Seen &&
         !MaxNanos.compare_exchange_weak(Seen, Nanos,
                                         std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot S;
  S.Count = Count.load(std::memory_order_relaxed);
  S.Saturated = Saturated.load(std::memory_order_relaxed);
  S.SumNanos = SumNanos.load(std::memory_order_relaxed);
  uint64_t Min = MinNanos.load(std::memory_order_relaxed);
  S.MinNanos = Min == UINT64_MAX ? 0 : Min;
  S.MaxNanos = MaxNanos.load(std::memory_order_relaxed);
  for (size_t I = 0; I != HistogramLayout::NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

HistogramSnapshot &
HistogramSnapshot::operator+=(const HistogramSnapshot &Other) {
  Count += Other.Count;
  Saturated += Other.Saturated;
  SumNanos += Other.SumNanos;
  if (Other.Count != 0)
    MinNanos = Count == Other.Count ? Other.MinNanos
                                    : std::min(MinNanos, Other.MinNanos);
  MaxNanos = std::max(MaxNanos, Other.MaxNanos);
  for (size_t I = 0; I != HistogramLayout::NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  return *this;
}

double HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  auto Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  Rank = std::max<uint64_t>(Rank, 1);
  uint64_t Cumulative = 0;
  for (size_t I = 0; I != HistogramLayout::NumBuckets; ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Rank) {
      double Upper =
          static_cast<double>(HistogramLayout::bucketUpperBound(I));
      // Never report beyond the observed maximum (the top occupied
      // bucket usually extends past it).
      return std::min(Upper, static_cast<double>(MaxNanos));
    }
  }
  return static_cast<double>(MaxNanos);
}

StripedHistogram::StripedHistogram(unsigned Stripes)
    : NumStripes(Stripes ? Stripes : Topology::system().nodeCount()),
      Lanes(std::make_unique<Stripe[]>(NumStripes)) {}

void StripedHistogram::record(uint64_t Nanos, uint64_t N) {
  Lanes[currentStripe(NumStripes)].Histogram.record(Nanos, N);
}

void StripedHistogram::recordOnStripe(unsigned Stripe, uint64_t Nanos,
                                      uint64_t N) {
  Lanes[Stripe % NumStripes].Histogram.record(Nanos, N);
}

HistogramSnapshot StripedHistogram::snapshot() const {
  HistogramSnapshot Merged = Lanes[0].Histogram.snapshot();
  for (unsigned S = 1; S != NumStripes; ++S)
    Merged += Lanes[S].Histogram.snapshot();
  return Merged;
}

bool StripedHistogram::empty() const {
  for (unsigned S = 0; S != NumStripes; ++S)
    if (!Lanes[S].Histogram.empty())
      return false;
  return true;
}

size_t StripedHistogram::memoryBytes() const {
  return NumStripes * sizeof(Stripe);
}

LatencyStats HistogramSnapshot::stats() const {
  LatencyStats S;
  S.Count = Count;
  S.Saturated = Saturated;
  S.SumNanos = SumNanos;
  S.MinNanos = MinNanos;
  S.MaxNanos = MaxNanos;
  S.P50 = quantile(0.50);
  S.P90 = quantile(0.90);
  S.P99 = quantile(0.99);
  S.P999 = quantile(0.999);
  return S;
}
