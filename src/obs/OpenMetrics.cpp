//===- OpenMetrics.cpp - OpenMetrics text rendering ----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/OpenMetrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace cswitch;
using namespace cswitch::obs;

namespace {

/// Appends `Name{site="..."} Value\n` (or without the label block when
/// \p Site is empty).
void sampleU64(std::string &Out, const char *Name, std::string_view Site,
               uint64_t Value) {
  Out += Name;
  if (!Site.empty()) {
    Out += "{site=\"";
    Out += openMetricsEscape(Site);
    Out += "\"}";
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Value);
  Out += Buf;
}

/// Shortest round-trippable decimal for a double sample value.
void appendDouble(std::string &Out, double Value) {
  char Buf[64];
  // Latencies are non-negative and usually whole nanoseconds; plain
  // decimals beat %g's exponential form for scrape readability.
  if (Value >= 0.0 && Value < 9.0e15 && Value == std::floor(Value)) {
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
    Out += Buf;
    return;
  }
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  // Trim to the shortest representation that still parses back exactly.
  for (int Precision = 1; Precision < 17; ++Precision) {
    char Short[64];
    std::snprintf(Short, sizeof(Short), "%.*g", Precision, Value);
    double Parsed = 0.0;
    if (std::sscanf(Short, "%lf", &Parsed) == 1 && Parsed == Value) {
      Out += Short;
      return;
    }
  }
  Out += Buf;
}

void familyHeader(std::string &Out, const char *Name, const char *Type,
                  const char *Help) {
  Out += "# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += "\n# HELP ";
  Out += Name;
  Out += ' ';
  Out += Help;
  Out += '\n';
}

/// Emits one summary family: quantile samples plus _count/_sum, with an
/// optional site label. Families with zero observations still emit
/// _count/_sum so scrapes see a stable series set.
void summaryFamily(std::string &Out, const char *Name, const char *Help,
                   const std::vector<std::pair<std::string_view,
                                               const LatencyStats *>> &Rows) {
  familyHeader(Out, Name, "summary", Help);
  static constexpr struct {
    const char *Label;
    double LatencyStats::*Field;
  } Quantiles[] = {{"0.5", &LatencyStats::P50},
                   {"0.9", &LatencyStats::P90},
                   {"0.99", &LatencyStats::P99},
                   {"0.999", &LatencyStats::P999}};
  for (const auto &[Site, Stats] : Rows) {
    std::string Labels;
    if (!Site.empty()) {
      Labels = "site=\"";
      Labels += openMetricsEscape(Site);
      Labels += '"';
    }
    for (const auto &Q : Quantiles) {
      Out += Name;
      Out += '{';
      if (!Labels.empty()) {
        Out += Labels;
        Out += ',';
      }
      Out += "quantile=\"";
      Out += Q.Label;
      Out += "\"} ";
      appendDouble(Out, Stats->*(Q.Field));
      Out += '\n';
    }
    Out += Name;
    Out += "_count";
    if (!Labels.empty()) {
      Out += '{';
      Out += Labels;
      Out += '}';
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Stats->Count);
    Out += Buf;
    Out += Name;
    Out += "_sum";
    if (!Labels.empty()) {
      Out += '{';
      Out += Labels;
      Out += '}';
    }
    std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Stats->SumNanos);
    Out += Buf;
  }
}

} // namespace

std::string cswitch::obs::openMetricsEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string
cswitch::obs::renderOpenMetrics(const TelemetrySnapshot &Snapshot,
                                const std::vector<SiteHistogramSnapshot> &Sites) {
  std::string Out;
  Out.reserve(4096);

  // Engine-wide gauges and counters.
  familyHeader(Out, "cswitch_contexts", "gauge",
               "Allocation contexts currently registered with the engine.");
  sampleU64(Out, "cswitch_contexts", {}, Snapshot.Engine.Contexts);

  struct EngineCounter {
    const char *Name;
    const char *Help;
    uint64_t Value;
  };
  const EngineCounter EngineCounters[] = {
      {"cswitch_engine_instances_created",
       "Collections created through adaptive contexts.",
       Snapshot.Engine.InstancesCreated},
      {"cswitch_engine_instances_monitored",
       "Instances that claimed a monitoring slot.",
       Snapshot.Engine.InstancesMonitored},
      {"cswitch_engine_profiles_published",
       "Usage profiles published into evaluation windows.",
       Snapshot.Engine.ProfilesPublished},
      {"cswitch_engine_profiles_discarded",
       "Usage profiles discarded by closed windows.",
       Snapshot.Engine.ProfilesDiscarded},
      {"cswitch_engine_evaluations", "Window evaluation rounds executed.",
       Snapshot.Engine.Evaluations},
      {"cswitch_engine_switches", "Variant transitions executed.",
       Snapshot.Engine.Switches},
      {"cswitch_events_recorded", "Decision events recorded (incl. dropped).",
       Snapshot.Events.Recorded},
      {"cswitch_events_dropped", "Decision events lost to ring wrap-around.",
       Snapshot.Events.Dropped},
      {"cswitch_recorder_ops_recorded",
       "Operations captured into trace buffers.",
       Snapshot.Recorder.OpsRecorded},
      {"cswitch_recorder_ops_dropped",
       "Operations lost to full trace buffers.", Snapshot.Recorder.OpsDropped},
      {"cswitch_store_loads", "Selection-store documents loaded.",
       Snapshot.Store.Loads},
      {"cswitch_store_load_failures",
       "Corrupt or mismatched store documents (cold start).",
       Snapshot.Store.LoadFailures},
      {"cswitch_store_warm_starts",
       "Contexts seeded from a stored cross-run decision.",
       Snapshot.Store.WarmStarts},
      {"cswitch_store_persists", "Successful selection-store writes.",
       Snapshot.Store.Persists},
      {"cswitch_store_persist_failures",
       "Failed selection-store lock or write attempts.",
       Snapshot.Store.PersistFailures},
      {"cswitch_fleet_pulls", "Store documents pulled from fleet peers.",
       Snapshot.Fleet.Pulls},
      {"cswitch_fleet_pull_failures",
       "Store pulls that failed after retries.", Snapshot.Fleet.PullFailures},
      {"cswitch_fleet_pushes", "Store documents pushed to fleet peers.",
       Snapshot.Fleet.Pushes},
      {"cswitch_fleet_push_failures",
       "Store pushes that failed after retries.", Snapshot.Fleet.PushFailures},
      {"cswitch_fleet_retries", "Fleet HTTP request retries.",
       Snapshot.Fleet.Retries},
      {"cswitch_fleet_store_gets",
       "Store documents served to peers over /store.",
       Snapshot.Fleet.StoreGets},
      {"cswitch_fleet_merges_applied",
       "Remote store documents merged into the local store.",
       Snapshot.Fleet.MergesApplied},
      {"cswitch_fleet_rejected_oversize",
       "Store pushes rejected for exceeding the size limit.",
       Snapshot.Fleet.RejectedOversize},
      {"cswitch_fleet_rejected_malformed",
       "Store pushes the total decoder refused.",
       Snapshot.Fleet.RejectedMalformed},
      {"cswitch_fleet_rejected_incompatible",
       "Fleet artifacts rejected for schema/fingerprint mismatch.",
       Snapshot.Fleet.RejectedIncompatible},
      {"cswitch_fleet_recalibrations", "On-device model fit runs completed.",
       Snapshot.Fleet.Recalibrations},
      {"cswitch_fleet_promotions",
       "Recalibrated models promoted past the hold-out gate.",
       Snapshot.Fleet.Promotions},
      {"cswitch_fleet_promotions_rejected",
       "Recalibrated models the hold-out gate refused.",
       Snapshot.Fleet.PromotionsRejected},
      {"cswitch_tuning_loads", "Tuned-configuration artifacts applied.",
       Snapshot.Tuning.Loads},
      {"cswitch_tuning_load_failures",
       "Tuned-configuration artifacts the loader rejected.",
       Snapshot.Tuning.LoadFailures},
      {"cswitch_model_installs",
       "Performance models installed (builtin, measured, or artifact).",
       Snapshot.Model.Installs},
  };
  for (const auto &C : EngineCounters) {
    familyHeader(Out, C.Name, "counter", C.Help);
    Out += C.Name;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "_total %" PRIu64 "\n", C.Value);
    Out += Buf;
  }

  // Topology of the striped monitoring structures (DESIGN.md §10), so
  // dashboards can relate per-node series to the machine layout.
  familyHeader(Out, "cswitch_topology_nodes", "gauge",
               "NUMA nodes the monitoring structures are striped over.");
  sampleU64(Out, "cswitch_topology_nodes", {}, Snapshot.Topology.Nodes);
  familyHeader(Out, "cswitch_topology_cpus", "gauge",
               "CPUs seen by topology detection.");
  sampleU64(Out, "cswitch_topology_cpus", {}, Snapshot.Topology.Cpus);

  // Provenance of the applied tuned configuration, Prometheus
  // info-metric style: the labels carry the identity, the value is 1.
  // Emitted only once an artifact has been applied.
  if (Snapshot.Tuning.Loads > 0) {
    familyHeader(Out, "cswitch_tuning_info", "gauge",
                 "Provenance of the applied cswitch-tuning-v1 artifact.");
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "\",seed=\"%" PRIu64 "\",generations=\"%" PRIu64
                  "\",population=\"%" PRIu64 "\"} 1\n",
                  Snapshot.Tuning.Seed, Snapshot.Tuning.Generations,
                  Snapshot.Tuning.Population);
    Out += "cswitch_tuning_info{source=\"";
    Out += openMetricsEscape(Snapshot.Tuning.Source);
    Out += "\",fingerprint=\"";
    Out += openMetricsEscape(Snapshot.Tuning.Fingerprint);
    Out += "\",corpus_digest=\"";
    Out += openMetricsEscape(Snapshot.Tuning.CorpusDigest);
    Out += Buf;
  }

  // Provenance of the cost model driving selection (DESIGN.md §14):
  // which artifact the decisions trace back to. Emitted once any model
  // has been installed — including the shipped default ("<builtin>").
  if (Snapshot.Model.Installs > 0) {
    familyHeader(Out, "cswitch_model_info", "gauge",
                 "Provenance of the installed performance model.");
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "\",fit_timestamp=\"%" PRIu64
                  "\",holdout_residual=\"%.17g\"} 1\n",
                  Snapshot.Model.FitTimestamp,
                  Snapshot.Model.HoldoutResidual);
    Out += "cswitch_model_info{source=\"";
    Out += openMetricsEscape(Snapshot.Model.Source);
    Out += "\",fingerprint=\"";
    Out += openMetricsEscape(Snapshot.Model.Fingerprint);
    Out += Buf;
  }

  // Identity of the attached selection store, for the same reason:
  // warm-start decisions in the explain ledger cite it.
  if (!Snapshot.Store.Path.empty()) {
    familyHeader(Out, "cswitch_store_info", "gauge",
                 "Identity of the attached selection store.");
    Out += "cswitch_store_info{path=\"";
    Out += openMetricsEscape(Snapshot.Store.Path);
    Out += "\"} 1\n";
  }

  familyHeader(Out, "cswitch_node_events_dropped", "counter",
               "Decision events lost to ring wrap-around, per node ring.");
  for (size_t Node = 0; Node != Snapshot.Events.NodeDropped.size(); ++Node) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf),
                  "cswitch_node_events_dropped_total{node=\"%zu\"} %" PRIu64
                  "\n",
                  Node, Snapshot.Events.NodeDropped[Node]);
    Out += Buf;
  }

  // Per-context monitoring counters, labelled by site.
  struct SiteCounter {
    const char *Name;
    const char *Help;
    uint64_t ContextStats::*Field;
  };
  const SiteCounter SiteCounters[] = {
      {"cswitch_instances_created",
       "Collections created at this allocation site.",
       &ContextStats::InstancesCreated},
      {"cswitch_instances_monitored",
       "Instances of this site that claimed a monitoring slot.",
       &ContextStats::InstancesMonitored},
      {"cswitch_profiles_published",
       "Usage profiles this site published into windows.",
       &ContextStats::ProfilesPublished},
      {"cswitch_evaluations", "Evaluation rounds executed for this site.",
       &ContextStats::Evaluations},
      {"cswitch_switches", "Variant transitions executed at this site.",
       &ContextStats::Switches},
  };
  for (const auto &C : SiteCounters) {
    familyHeader(Out, C.Name, "counter", C.Help);
    for (const auto &Ctx : Snapshot.Contexts) {
      Out += C.Name;
      Out += "_total{site=\"";
      Out += openMetricsEscape(Ctx.Name);
      Out += "\"} ";
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%" PRIu64 "\n", Ctx.Stats.*(C.Field));
      Out += Buf;
    }
  }

  familyHeader(Out, "cswitch_context_footprint_bytes", "gauge",
               "Approximate memory footprint of this site's context.");
  for (const auto &Ctx : Snapshot.Contexts)
    sampleU64(Out, "cswitch_context_footprint_bytes", Ctx.Name,
              Ctx.FootprintBytes);

  familyHeader(Out, "cswitch_context_contended_threads", "gauge",
               "Smoothed estimate of distinct threads operating on this "
               "site's collections (0 = sequential context).");
  for (const auto &Ctx : Snapshot.Contexts) {
    Out += "cswitch_context_contended_threads{site=\"";
    Out += openMetricsEscape(Ctx.Name);
    Out += "\"} ";
    appendDouble(Out, Ctx.ContendedThreads);
    Out += '\n';
  }

  familyHeader(Out, "cswitch_context_variant_info", "gauge",
               "Current variant of this site (value is always 1).");
  for (const auto &Ctx : Snapshot.Contexts) {
    Out += "cswitch_context_variant_info{site=\"";
    Out += openMetricsEscape(Ctx.Name);
    Out += "\",abstraction=\"";
    Out += openMetricsEscape(Ctx.Abstraction);
    Out += "\",variant=\"";
    Out += openMetricsEscape(Ctx.Variant);
    Out += "\"} 1\n";
  }

  // Engine-wide latency summaries.
  summaryFamily(Out, "cswitch_record_latency_nanos",
                "Monitoring fast-path latency, all sites merged (sampled "
                "1-in-64).",
                {{std::string_view(), &Snapshot.Latency.Record}});
  summaryFamily(Out, "cswitch_evaluate_latency_nanos",
                "Window-evaluation latency, all sites merged.",
                {{std::string_view(), &Snapshot.Latency.Evaluate}});
  summaryFamily(Out, "cswitch_switch_latency_nanos",
                "Variant-transition latency, all sites merged.",
                {{std::string_view(), &Snapshot.Latency.Switch}});
  summaryFamily(Out, "cswitch_persist_latency_nanos",
                "Selection-store persist latency.",
                {{std::string_view(), &Snapshot.Latency.Persist}});

  // Per-site latency summaries from the profiling sweep. Distill each
  // histogram once, keep the stats alive for the row span.
  std::vector<LatencyStats> SiteStats;
  SiteStats.reserve(Sites.size() * 3);
  std::vector<std::pair<std::string_view, const LatencyStats *>> RecordRows,
      EvaluateRows, SwitchRows;
  for (const auto &Site : Sites) {
    SiteStats.push_back(Site.Record.stats());
    RecordRows.emplace_back(Site.Name, &SiteStats.back());
    SiteStats.push_back(Site.Evaluate.stats());
    EvaluateRows.emplace_back(Site.Name, &SiteStats.back());
    SiteStats.push_back(Site.Switch.stats());
    SwitchRows.emplace_back(Site.Name, &SiteStats.back());
  }
  summaryFamily(Out, "cswitch_site_record_latency_nanos",
                "Monitoring fast-path latency per site (sampled 1-in-64).",
                RecordRows);
  summaryFamily(Out, "cswitch_site_evaluate_latency_nanos",
                "Window-evaluation latency per site.", EvaluateRows);
  summaryFamily(Out, "cswitch_site_switch_latency_nanos",
                "Variant-transition latency per site.", SwitchRows);

  Out += "# EOF\n";
  return Out;
}

std::string cswitch::obs::renderOpenMetrics(const TelemetrySnapshot &Snapshot) {
  return renderOpenMetrics(Snapshot,
                           ProfilingRegistry::global().snapshotSites());
}
