//===- OpenMetrics.h - OpenMetrics text rendering ---------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a TelemetrySnapshot plus the profiling registry's per-site
/// histogram sweep as an OpenMetrics 1.0 text exposition — what the
/// introspection endpoint serves under /metrics and what Prometheus or
/// `cswitch_top watch` scrape. Counters end in `_total`, latency
/// distributions are summaries with quantile labels (0.5/0.9/0.99/
/// 0.999) in nanoseconds, per-site series carry a `site` label with
/// escaped values, and the document is terminated by `# EOF`.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_OBS_OPENMETRICS_H
#define CSWITCH_OBS_OPENMETRICS_H

#include "obs/Profiling.h"
#include "support/Telemetry.h"

#include <string>
#include <string_view>
#include <vector>

namespace cswitch {
namespace obs {

/// Escapes \p Text for use inside an OpenMetrics label value (backslash,
/// double quote, newline).
std::string openMetricsEscape(std::string_view Text);

/// Renders the full exposition: engine-wide counters, per-context
/// monitoring counters and footprints (from \p Snapshot), and per-site
/// plus engine-wide latency summaries (from \p Sites and
/// \p Snapshot.Latency).
std::string renderOpenMetrics(const TelemetrySnapshot &Snapshot,
                              const std::vector<SiteHistogramSnapshot> &Sites);

/// Convenience overload sweeping the global ProfilingRegistry.
std::string renderOpenMetrics(const TelemetrySnapshot &Snapshot);

} // namespace obs
} // namespace cswitch

#endif // CSWITCH_OBS_OPENMETRICS_H
