//===- Provenance.cpp - Decision provenance ledger -----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "obs/Provenance.h"

#include "support/MetricsExport.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace cswitch;
using namespace cswitch::obs;

// TSan does not model std::atomic_thread_fence (GCC even rejects it
// under -fsanitize=thread -Werror=tsan). Every slot field is atomic, so
// the fences below are value-ordering devices only — no non-atomic
// state is published through them — and can weaken to compiler fences
// under the sanitizer without hiding any reportable race.
#if defined(__SANITIZE_THREAD__)
#define CSWITCH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CSWITCH_TSAN 1
#endif
#endif

namespace {

inline void orderingFence(std::memory_order Order) {
#ifdef CSWITCH_TSAN
  std::atomic_signal_fence(Order);
#else
  std::atomic_thread_fence(Order);
#endif
}

} // namespace

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *cswitch::obs::explainDimensionName(size_t Dim) {
  switch (Dim) {
  case 0:
    return "time";
  case 1:
    return "alloc";
  case 2:
    return "energy";
  case 3:
    return "contention";
  }
  return "unknown";
}

const char *cswitch::obs::decisionOutcomeName(DecisionOutcome Outcome) {
  switch (Outcome) {
  case DecisionOutcome::Kept:
    return "kept";
  case DecisionOutcome::Switched:
    return "switched";
  case DecisionOutcome::Converged:
    return "converged";
  case DecisionOutcome::WarmStartSkipped:
    return "warm-start-skipped";
  }
  return "unknown";
}

bool cswitch::obs::parseDecisionOutcome(std::string_view Name,
                                        DecisionOutcome &Out) {
  if (Name == "kept")
    Out = DecisionOutcome::Kept;
  else if (Name == "switched")
    Out = DecisionOutcome::Switched;
  else if (Name == "converged")
    Out = DecisionOutcome::Converged;
  else if (Name == "warm-start-skipped")
    Out = DecisionOutcome::WarmStartSkipped;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// SiteLedger
//===----------------------------------------------------------------------===//

SiteLedger::SiteLedger(std::string Name, std::string Abstraction,
                       std::string Rule, std::vector<std::string> Variants)
    : Name(std::move(Name)), Abstraction(std::move(Abstraction)),
      Rule(std::move(Rule)), Variants(std::move(Variants)) {}

void SiteLedger::record(DecisionRecord Record) {
  uint64_t Seq = Count.load(std::memory_order_relaxed);
  Record.Sequence = Seq + 1;
  Slot &S = Slots[Seq % ExplainLedgerCapacity];
  // Seqlock publication: odd version while the payload words are in
  // flux. The writer is serialized per site (the context's evaluation
  // mutex), so plain stores suffice for the version bumps.
  uint64_t Version = S.Version.load(std::memory_order_relaxed);
  S.Version.store(Version + 1, std::memory_order_relaxed);
  orderingFence(std::memory_order_release);
  uint64_t Staged[WordsPerRecord] = {};
  std::memcpy(Staged, &Record, sizeof(Record));
  for (size_t I = 0; I != WordsPerRecord; ++I)
    S.Words[I].store(Staged[I], std::memory_order_relaxed);
  orderingFence(std::memory_order_release);
  S.Version.store(Version + 2, std::memory_order_relaxed);
  Count.store(Seq + 1, std::memory_order_release);
}

std::vector<DecisionRecord> SiteLedger::snapshot() const {
  uint64_t Total = Count.load(std::memory_order_acquire);
  uint64_t Retained = std::min<uint64_t>(Total, ExplainLedgerCapacity);
  std::vector<DecisionRecord> Out;
  Out.reserve(Retained);
  for (uint64_t I = Total - Retained; I != Total; ++I) {
    const Slot &S = Slots[I % ExplainLedgerCapacity];
    uint64_t Staged[WordsPerRecord];
    bool Valid = false;
    for (int Attempt = 0; Attempt != 16 && !Valid; ++Attempt) {
      uint64_t V1 = S.Version.load(std::memory_order_acquire);
      if (V1 & 1) {
        // Writer mid-publication; it completes in a bounded number of
        // stores (or is descheduled — yield instead of burning).
        std::this_thread::yield();
        continue;
      }
      for (size_t J = 0; J != WordsPerRecord; ++J)
        Staged[J] = S.Words[J].load(std::memory_order_relaxed);
      orderingFence(std::memory_order_acquire);
      Valid = S.Version.load(std::memory_order_relaxed) == V1;
    }
    if (!Valid)
      continue; // Torn by a fast-wrapping writer; skip, never block.
    DecisionRecord Record;
    std::memcpy(&Record, Staged, sizeof(Record));
    // A writer may have lapped this logical index between the Count
    // read and the slot read; the slot then holds a newer record. Drop
    // it — it will appear in its own position on the next snapshot.
    if (Record.Sequence != I + 1)
      continue;
    Out.push_back(Record);
  }
  return Out;
}

SiteLedgerSnapshot SiteLedger::snapshotSite() const {
  SiteLedgerSnapshot Out;
  Out.Name = Name;
  Out.Abstraction = Abstraction;
  Out.Rule = Rule;
  Out.Variants = Variants;
  Out.Records = snapshot();
  Out.Decisions = decisionCount();
  return Out;
}

//===----------------------------------------------------------------------===//
// ProvenanceRegistry
//===----------------------------------------------------------------------===//

std::atomic<int> ProvenanceRegistry::EnabledState{0};

ProvenanceRegistry &ProvenanceRegistry::global() {
  static ProvenanceRegistry Instance;
  return Instance;
}

bool ProvenanceRegistry::enabled() {
  int State = EnabledState.load(std::memory_order_relaxed);
  if (State == 0) {
    const char *Env = std::getenv("CSWITCH_EXPLAIN");
    bool On = Env != nullptr &&
              (std::strcmp(Env, "1") == 0 || std::strcmp(Env, "true") == 0 ||
               std::strcmp(Env, "on") == 0);
    int Resolved = On ? 2 : 1;
    int Expected = 0;
    if (!EnabledState.compare_exchange_strong(Expected, Resolved,
                                              std::memory_order_relaxed))
      Resolved = Expected; // Another thread (or setEnabled) won.
    State = Resolved;
  }
  return State == 2;
}

void ProvenanceRegistry::setEnabled(bool Enabled) {
  EnabledState.store(Enabled ? 2 : 1, std::memory_order_relaxed);
}

SiteLedger *ProvenanceRegistry::site(const std::string &SiteName,
                                     const std::string &Abstraction,
                                     const std::string &Rule,
                                     std::vector<std::string> Variants) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(SiteName);
  if (It == Sites.end()) {
    Allocations.fetch_add(1, std::memory_order_relaxed);
    It = Sites
             .emplace(SiteName,
                      std::make_unique<SiteLedger>(SiteName, Abstraction,
                                                   Rule, std::move(Variants)))
             .first;
  }
  return It->second.get();
}

std::vector<SiteLedgerSnapshot> ProvenanceRegistry::snapshotSites() const {
  std::vector<const SiteLedger *> Ledgers;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Ledgers.reserve(Sites.size());
    for (const auto &[Name, Ledger] : Sites)
      Ledgers.push_back(Ledger.get());
  }
  std::vector<SiteLedgerSnapshot> Out;
  Out.reserve(Ledgers.size());
  // Sites is a std::map: the collected pointers are already sorted by
  // site name, which is what makes the rendered document byte-stable.
  for (const SiteLedger *Ledger : Ledgers)
    Out.push_back(Ledger->snapshotSite());
  return Out;
}

size_t ProvenanceRegistry::siteCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Sites.size();
}

void ProvenanceRegistry::clearForTest() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Sites.clear();
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// Round-trip double formatting: %.17g survives parse-render cycles
/// bit-for-bit, which the byte-stability guarantee relies on.
/// Non-finite values (never produced by the capture paths, but the
/// ledger is a dumb pipe) degrade to 0 so the document always parses.
void appendDouble(std::string &Out, double Value) {
  if (!std::isfinite(Value)) {
    Out += '0';
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  Out += Buf;
}

void appendDimensions(std::string &Out,
                      const std::array<double, ExplainNumDimensions> &Values) {
  Out += '{';
  for (size_t D = 0; D != ExplainNumDimensions; ++D) {
    if (D)
      Out += ',';
    Out += '"';
    Out += explainDimensionName(D);
    Out += "\":";
    appendDouble(Out, Values[D]);
  }
  Out += '}';
}

void appendRecord(std::string &Out, const DecisionRecord &R) {
  size_t NumCriteria = std::min<size_t>(R.NumCriteria, ExplainMaxCriteria);
  size_t NumCandidates =
      std::min<size_t>(R.NumCandidates, ExplainMaxCandidates);
  Out += "{\"seq\":" + std::to_string(R.Sequence);
  Out += ",\"ts_nanos\":" + std::to_string(R.TimestampNanos);
  Out += ",\"round\":" + std::to_string(R.Round);
  Out += ",\"outcome\":\"";
  Out += decisionOutcomeName(R.Outcome);
  Out += "\",\"current\":" + std::to_string(R.CurrentVariant);
  Out += ",\"chosen\":" + std::to_string(R.ChosenVariant);
  Out += ",\"threads\":";
  appendDouble(Out, R.ContendedThreads);
  Out += ",\"contention_folded\":";
  Out += R.ContentionFolded ? "true" : "false";
  Out += ",\"consecutive_keeps\":" + std::to_string(R.ConsecutiveKeeps);
  Out += ",\"adaptive\":{\"index\":" + std::to_string(R.AdaptiveIndex);
  Out += ",\"threshold\":";
  appendDouble(Out, R.AdaptiveThreshold);
  Out += ",\"wide_range_factor\":";
  appendDouble(Out, R.WideRangeFactor);
  Out += ",\"min_max_size\":";
  appendDouble(Out, R.MinMaxSize);
  Out += ",\"max_max_size\":";
  appendDouble(Out, R.MaxMaxSize);
  Out += ",\"straddles\":";
  Out += R.AdaptiveStraddles ? "true" : "false";
  Out += ",\"wide\":";
  Out += R.AdaptiveWide ? "true" : "false";
  Out += "},\"margin\":";
  appendDouble(Out, R.Margin);
  Out += ",\"criteria\":[";
  for (size_t C = 0; C != NumCriteria; ++C) {
    if (C)
      Out += ',';
    Out += "{\"dimension\":\"";
    Out += explainDimensionName(R.Criteria[C].Dimension);
    Out += "\",\"threshold\":";
    appendDouble(Out, R.Criteria[C].Threshold);
    Out += '}';
  }
  Out += "],\"candidates\":[";
  for (size_t V = 0; V != NumCandidates; ++V) {
    const CandidateExplanation &Cand = R.Candidates[V];
    if (V)
      Out += ',';
    Out += "{\"variant\":" + std::to_string(V);
    Out += ",\"covered\":";
    Out += Cand.Covered ? "true" : "false";
    Out += ",\"eligible\":";
    Out += Cand.Eligible ? "true" : "false";
    Out += ",\"qualified\":";
    Out += Cand.Qualified ? "true" : "false";
    Out += ",\"total\":";
    appendDimensions(Out, Cand.Total);
    Out += ",\"pre_fold\":";
    appendDimensions(Out, Cand.PreFold);
    Out += ",\"ratios\":[";
    for (size_t C = 0; C != NumCriteria; ++C) {
      if (C)
        Out += ',';
      appendDouble(Out, Cand.Ratio[C]);
    }
    Out += "]}";
  }
  Out += "]}";
}

} // namespace

ExplainProvenance
cswitch::obs::makeExplainHeader(const TelemetrySnapshot &Snapshot) {
  ExplainProvenance Out;
  Out.ModelSource = Snapshot.Model.Source;
  Out.ModelFingerprint = Snapshot.Model.Fingerprint;
  Out.ModelFitTimestamp = Snapshot.Model.FitTimestamp;
  Out.ModelHoldoutResidual = Snapshot.Model.HoldoutResidual;
  Out.ModelInstalls = Snapshot.Model.Installs;
  Out.TuningSource = Snapshot.Tuning.Source;
  Out.TuningFingerprint = Snapshot.Tuning.Fingerprint;
  Out.TuningCorpusDigest = Snapshot.Tuning.CorpusDigest;
  Out.TuningLoads = Snapshot.Tuning.Loads;
  Out.StorePath = Snapshot.Store.Path;
  Out.StoreLoads = Snapshot.Store.Loads;
  Out.StoreWarmStarts = Snapshot.Store.WarmStarts;
  return Out;
}

std::string
cswitch::obs::renderExplainJson(const ExplainProvenance &Provenance,
                                const std::vector<SiteLedgerSnapshot> &Sites,
                                bool Enabled) {
  std::string Out = "{\"schema\":\"cswitch-explain-v1\",\"enabled\":";
  Out += Enabled ? "true" : "false";
  Out += ",\"provenance\":{\"model\":{\"source\":\"" +
         jsonEscape(Provenance.ModelSource) + "\",\"fingerprint\":\"" +
         jsonEscape(Provenance.ModelFingerprint) + "\",\"fit_timestamp\":" +
         std::to_string(Provenance.ModelFitTimestamp) +
         ",\"holdout_residual\":";
  appendDouble(Out, Provenance.ModelHoldoutResidual);
  Out += ",\"installs\":" + std::to_string(Provenance.ModelInstalls);
  Out += "},\"tuning\":{\"source\":\"" + jsonEscape(Provenance.TuningSource) +
         "\",\"fingerprint\":\"" + jsonEscape(Provenance.TuningFingerprint) +
         "\",\"corpus_digest\":\"" +
         jsonEscape(Provenance.TuningCorpusDigest) +
         "\",\"loads\":" + std::to_string(Provenance.TuningLoads);
  Out += "},\"store\":{\"path\":\"" + jsonEscape(Provenance.StorePath) +
         "\",\"loads\":" + std::to_string(Provenance.StoreLoads) +
         ",\"warm_starts\":" + std::to_string(Provenance.StoreWarmStarts);
  Out += "}},\"sites\":[";
  bool FirstSite = true;
  for (const SiteLedgerSnapshot &Site : Sites) {
    if (!FirstSite)
      Out += ',';
    FirstSite = false;
    Out += "{\"name\":\"" + jsonEscape(Site.Name) + "\",\"abstraction\":\"" +
           jsonEscape(Site.Abstraction) + "\",\"rule\":\"" +
           jsonEscape(Site.Rule) +
           "\",\"decisions\":" + std::to_string(Site.Decisions);
    Out += ",\"variants\":[";
    for (size_t V = 0; V != Site.Variants.size(); ++V) {
      if (V)
        Out += ',';
      Out += '"' + jsonEscape(Site.Variants[V]) + '"';
    }
    Out += "],\"records\":[";
    for (size_t R = 0; R != Site.Records.size(); ++R) {
      if (R)
        Out += ',';
      appendRecord(Out, Site.Records[R]);
    }
    Out += "]}";
  }
  Out += "]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing (total decoder)
//===----------------------------------------------------------------------===//

namespace {

/// Minimal JSON document model for the total decoder. The repo carries
/// no JSON dependency; this parser accepts exactly RFC-8259 JSON (with
/// a nesting cap) and is only as featureful as the explain schema and
/// its tests need.
struct JsonValue {
  enum Kind { Null, Boolean, Number, String, Array, Object };
  Kind K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  const JsonValue *field(std::string_view Name) const {
    if (K != Object)
      return nullptr;
    for (const auto &[Key, Value] : Obj)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
};

class JsonParser {
public:
  JsonParser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    if (!parseValue(Out, 0))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing garbage after document");
    return true;
  }

private:
  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;

  static constexpr int MaxDepth = 64;

  bool fail(const std::string &Message) {
    if (Error)
      *Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool parseLiteral(std::string_view Literal) {
    if (Text.substr(Pos, Literal.size()) != Literal)
      return false;
    Pos += Literal.size();
    return true;
  }

  static void encodeUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      if (++Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Code;
        if (!parseHex4(Code))
          return false;
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          // Surrogate pair; an unpaired high surrogate degrades to
          // U+FFFD (total decoding: never reject what we can repair).
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            uint32_t Low;
            if (!parseHex4(Low))
              return false;
            if (Low >= 0xDC00 && Low <= 0xDFFF)
              Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
            else
              Code = 0xFFFD;
          } else {
            Code = 0xFFFD;
          }
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          Code = 0xFFFD; // Unpaired low surrogate.
        }
        encodeUtf8(Out, Code);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(double &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected number");
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    Out = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return fail("malformed number");
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of document");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Object;
      skipSpace();
      if (consume('}'))
        return true;
      for (;;) {
        skipSpace();
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!consume(':'))
          return fail("expected ':'");
        JsonValue Value;
        if (!parseValue(Value, Depth + 1))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(Value));
        if (consume(','))
          continue;
        if (consume('}'))
          return true;
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Array;
      skipSpace();
      if (consume(']'))
        return true;
      for (;;) {
        JsonValue Value;
        if (!parseValue(Value, Depth + 1))
          return false;
        Out.Arr.push_back(std::move(Value));
        if (consume(','))
          continue;
        if (consume(']'))
          return true;
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.K = JsonValue::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      if (!parseLiteral("true"))
        return fail("bad literal");
      Out.K = JsonValue::Boolean;
      Out.B = true;
      return true;
    }
    if (C == 'f') {
      if (!parseLiteral("false"))
        return fail("bad literal");
      Out.K = JsonValue::Boolean;
      Out.B = false;
      return true;
    }
    if (C == 'n') {
      if (!parseLiteral("null"))
        return fail("bad literal");
      Out.K = JsonValue::Null;
      return true;
    }
    Out.K = JsonValue::Number;
    return parseNumber(Out.Num);
  }
};

double numberOr(const JsonValue *Value, double Default) {
  return Value && Value->K == JsonValue::Number ? Value->Num : Default;
}

uint64_t u64Or(const JsonValue *Value, uint64_t Default) {
  double Num = numberOr(Value, static_cast<double>(Default));
  return Num <= 0 ? 0 : static_cast<uint64_t>(Num);
}

bool boolOr(const JsonValue *Value, bool Default) {
  return Value && Value->K == JsonValue::Boolean ? Value->B : Default;
}

std::string stringOr(const JsonValue *Value, const std::string &Default) {
  return Value && Value->K == JsonValue::String ? Value->Str : Default;
}

size_t dimensionIndexOf(const std::string &Name) {
  for (size_t D = 0; D != ExplainNumDimensions; ++D)
    if (Name == explainDimensionName(D))
      return D;
  return ExplainNumDimensions; // Unknown dimension: ignored.
}

void decodeDimensions(const JsonValue *Value,
                      std::array<double, ExplainNumDimensions> &Out) {
  if (!Value || Value->K != JsonValue::Object)
    return;
  for (const auto &[Key, Field] : Value->Obj) {
    size_t D = dimensionIndexOf(Key);
    if (D < ExplainNumDimensions && Field.K == JsonValue::Number)
      Out[D] = Field.Num;
  }
}

void decodeRecord(const JsonValue &Value, DecisionRecord &Out) {
  Out.Sequence = u64Or(Value.field("seq"), 0);
  Out.TimestampNanos = u64Or(Value.field("ts_nanos"), 0);
  Out.Round = static_cast<uint32_t>(u64Or(Value.field("round"), 0));
  parseDecisionOutcome(stringOr(Value.field("outcome"), "kept"),
                       Out.Outcome);
  Out.CurrentVariant =
      static_cast<int16_t>(numberOr(Value.field("current"), -1));
  Out.ChosenVariant =
      static_cast<int16_t>(numberOr(Value.field("chosen"), -1));
  Out.ContendedThreads = numberOr(Value.field("threads"), 0.0);
  Out.ContentionFolded = boolOr(Value.field("contention_folded"), false);
  Out.ConsecutiveKeeps =
      static_cast<uint32_t>(u64Or(Value.field("consecutive_keeps"), 0));
  if (const JsonValue *Adaptive = Value.field("adaptive")) {
    Out.AdaptiveIndex =
        static_cast<int16_t>(numberOr(Adaptive->field("index"), -1));
    Out.AdaptiveThreshold = numberOr(Adaptive->field("threshold"), 0.0);
    Out.WideRangeFactor =
        numberOr(Adaptive->field("wide_range_factor"), 0.0);
    Out.MinMaxSize = numberOr(Adaptive->field("min_max_size"), 0.0);
    Out.MaxMaxSize = numberOr(Adaptive->field("max_max_size"), 0.0);
    Out.AdaptiveStraddles = boolOr(Adaptive->field("straddles"), false);
    Out.AdaptiveWide = boolOr(Adaptive->field("wide"), false);
  }
  Out.Margin = numberOr(Value.field("margin"), 0.0);
  if (const JsonValue *Criteria = Value.field("criteria")) {
    if (Criteria->K == JsonValue::Array) {
      size_t N = std::min(Criteria->Arr.size(), ExplainMaxCriteria);
      Out.NumCriteria = static_cast<uint8_t>(N);
      for (size_t C = 0; C != N; ++C) {
        const JsonValue &Criterion = Criteria->Arr[C];
        Out.Criteria[C].Dimension = static_cast<uint8_t>(
            dimensionIndexOf(stringOr(Criterion.field("dimension"), "")));
        Out.Criteria[C].Threshold =
            numberOr(Criterion.field("threshold"), 0.0);
      }
    }
  }
  if (const JsonValue *Candidates = Value.field("candidates")) {
    if (Candidates->K == JsonValue::Array) {
      size_t N = std::min(Candidates->Arr.size(), ExplainMaxCandidates);
      Out.NumCandidates = static_cast<uint8_t>(N);
      for (size_t V = 0; V != N; ++V) {
        const JsonValue &Item = Candidates->Arr[V];
        // The rendered index is positional; out-of-range values are
        // clamped into the positional slot (total decoding).
        size_t Index = std::min<size_t>(
            u64Or(Item.field("variant"), V), ExplainMaxCandidates - 1);
        CandidateExplanation &Cand = Out.Candidates[Index];
        Cand.Covered = boolOr(Item.field("covered"), false);
        Cand.Eligible = boolOr(Item.field("eligible"), false);
        Cand.Qualified = boolOr(Item.field("qualified"), false);
        decodeDimensions(Item.field("total"), Cand.Total);
        decodeDimensions(Item.field("pre_fold"), Cand.PreFold);
        if (const JsonValue *Ratios = Item.field("ratios")) {
          if (Ratios->K == JsonValue::Array) {
            size_t M = std::min(Ratios->Arr.size(), ExplainMaxCriteria);
            for (size_t C = 0; C != M; ++C)
              if (Ratios->Arr[C].K == JsonValue::Number)
                Cand.Ratio[C] = Ratios->Arr[C].Num;
          }
        }
      }
    }
  }
}

} // namespace

bool cswitch::obs::parseExplainDocument(std::string_view Json,
                                        ExplainDocument &Out,
                                        std::string *Error) {
  JsonValue Root;
  if (!JsonParser(Json, Error).parse(Root))
    return false;
  if (Root.K != JsonValue::Object) {
    if (Error)
      *Error = "document is not an object";
    return false;
  }
  std::string Schema = stringOr(Root.field("schema"), "");
  if (Schema != "cswitch-explain-v1") {
    if (Error)
      *Error = "unsupported schema \"" + Schema + "\"";
    return false;
  }
  Out = ExplainDocument();
  Out.Schema = Schema;
  Out.Enabled = boolOr(Root.field("enabled"), false);
  if (const JsonValue *Provenance = Root.field("provenance")) {
    if (const JsonValue *Model = Provenance->field("model")) {
      Out.Provenance.ModelSource = stringOr(Model->field("source"), "");
      Out.Provenance.ModelFingerprint =
          stringOr(Model->field("fingerprint"), "");
      Out.Provenance.ModelFitTimestamp =
          u64Or(Model->field("fit_timestamp"), 0);
      Out.Provenance.ModelHoldoutResidual =
          numberOr(Model->field("holdout_residual"), 0.0);
      Out.Provenance.ModelInstalls = u64Or(Model->field("installs"), 0);
    }
    if (const JsonValue *Tuning = Provenance->field("tuning")) {
      Out.Provenance.TuningSource = stringOr(Tuning->field("source"), "");
      Out.Provenance.TuningFingerprint =
          stringOr(Tuning->field("fingerprint"), "");
      Out.Provenance.TuningCorpusDigest =
          stringOr(Tuning->field("corpus_digest"), "");
      Out.Provenance.TuningLoads = u64Or(Tuning->field("loads"), 0);
    }
    if (const JsonValue *Store = Provenance->field("store")) {
      Out.Provenance.StorePath = stringOr(Store->field("path"), "");
      Out.Provenance.StoreLoads = u64Or(Store->field("loads"), 0);
      Out.Provenance.StoreWarmStarts =
          u64Or(Store->field("warm_starts"), 0);
    }
  }
  if (const JsonValue *Sites = Root.field("sites")) {
    if (Sites->K == JsonValue::Array) {
      Out.Sites.reserve(Sites->Arr.size());
      for (const JsonValue &Site : Sites->Arr) {
        SiteLedgerSnapshot Ledger;
        Ledger.Name = stringOr(Site.field("name"), "");
        Ledger.Abstraction = stringOr(Site.field("abstraction"), "");
        Ledger.Rule = stringOr(Site.field("rule"), "");
        Ledger.Decisions = u64Or(Site.field("decisions"), 0);
        if (const JsonValue *Variants = Site.field("variants"))
          if (Variants->K == JsonValue::Array)
            for (const JsonValue &Variant : Variants->Arr)
              Ledger.Variants.push_back(
                  Variant.K == JsonValue::String ? Variant.Str : "");
        if (const JsonValue *Records = Site.field("records")) {
          if (Records->K == JsonValue::Array) {
            Ledger.Records.reserve(Records->Arr.size());
            for (const JsonValue &Record : Records->Arr) {
              DecisionRecord Decoded;
              decodeRecord(Record, Decoded);
              Ledger.Records.push_back(Decoded);
            }
          }
        }
        Out.Sites.push_back(std::move(Ledger));
      }
    }
  }
  return true;
}
