//===- PolicySimulator.cpp - Offline what-if policy sweeps ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "replay/PolicySimulator.h"

#include "support/MetricsExport.h"

#include <algorithm>
#include <cstdio>
#include <utility>

using namespace cswitch;

PolicySimulator::PolicySimulator(
    std::shared_ptr<const PerformanceModel> Model)
    : Model(std::move(Model)) {}

void PolicySimulator::addTrace(OpTrace Trace) {
  Corpus.push_back(std::move(Trace));
}

void PolicySimulator::addPolicy(PolicyCandidate Policy) {
  Policies.push_back(std::move(Policy));
}

void PolicySimulator::addDefaultPolicies() {
  auto Add = [this](std::string Name, SelectionRule Rule,
                    ContextOptions Context = {}) {
    PolicyCandidate P;
    P.Name = std::move(Name);
    P.Rule = std::move(Rule);
    P.Context = Context;
    P.Context.LogEvents = false; // keep sweeps out of the global EventLog
    Policies.push_back(std::move(P));
  };

  Add("Rtime", SelectionRule::timeRule());
  Add("Ralloc", SelectionRule::allocRule());
  Add("Renergy", SelectionRule::energyRule());
  Add("static", SelectionRule::impossibleRule());

  // Rtime threshold sweep (Table 4 uses 0.8; how sensitive is it?).
  SelectionRule Aggressive = SelectionRule::timeRule();
  Aggressive.Name = "Rtime(0.9)";
  Aggressive.Criteria.front().Threshold = 0.9;
  Add("Rtime-0.9", std::move(Aggressive));
  SelectionRule Conservative = SelectionRule::timeRule();
  Conservative.Name = "Rtime(0.7)";
  Conservative.Criteria.front().Threshold = 0.7;
  Add("Rtime-0.7", std::move(Conservative));

  // Window-size sweep around the paper's 100.
  Add("Rtime-w50", SelectionRule::timeRule(),
      ContextOptions{}.windowSize(50));
  Add("Rtime-w200", SelectionRule::timeRule(),
      ContextOptions{}.windowSize(200));

  // Adaptive-threshold variant: paper Table 1 values halved.
  PolicyCandidate HalfThresholds;
  HalfThresholds.Name = "Rtime-adapt/2";
  HalfThresholds.Rule = SelectionRule::timeRule();
  HalfThresholds.Context.LogEvents = false;
  HalfThresholds.Thresholds = AdaptiveThresholds{40, 20, 25};
  Policies.push_back(std::move(HalfThresholds));
}

SimulationReport PolicySimulator::run(uint64_t Seed, unsigned Threads) {
  SimulationReport Report;
  // Aggregate profiles once per trace; predicted costs reuse them for
  // every policy.
  std::vector<std::vector<SiteProfile>> Aggregates;
  Aggregates.reserve(Corpus.size());
  for (const OpTrace &Trace : Corpus)
    Aggregates.push_back(aggregateTrace(Trace));

  for (const PolicyCandidate &Policy : Policies) {
    PolicyOutcome Outcome;
    Outcome.Name = Policy.Name;

    for (size_t T = 0, E = Corpus.size(); T != E; ++T) {
      ReplayOptions Options;
      Options.Mode = ReplayMode::Engine;
      Options.Seed = Seed;
      Options.Threads = Threads;
      Options.EvalEveryOps = Policy.EvalEveryOps;
      Options.Context = Policy.Context;
      if (Policy.Thresholds)
        Options.Context.AdaptiveOverride = *Policy.Thresholds;
      Options.Rule = Policy.Rule;
      Options.Model = Model;
      Replayer Replay(Corpus[T], std::move(Options));
      ReplayResult Result = Replay.run();

      Outcome.OpsExecuted += Result.OpsExecuted;
      Outcome.InstancesReplayed += Result.InstancesReplayed;
      Outcome.Evaluations += Result.Evaluations;
      Outcome.Switches += Result.Switches;
      Outcome.SizeMismatches += Result.SizeMismatches;
      Outcome.ElapsedNanos += Result.ElapsedNanos;
      Outcome.AllocatedBytes += Result.AllocatedBytes;
      Outcome.TrajectoryTime += Result.TrajectoryTime;
      Outcome.TrajectoryAlloc += Result.TrajectoryAlloc;

      for (size_t S = 0, NumSites = Result.Sites.size(); S != NumSites;
           ++S) {
        const SiteReplayResult &Site = Result.Sites[S];
        std::string Key;
        if (E > 1) {
          Key += "t";
          Key += std::to_string(T);
          Key += ":";
        }
        Key += Site.Name;
        VariantId Final{Site.Kind, Site.FinalVariantIndex};
        Outcome.FinalVariants.emplace_back(std::move(Key),
                                           Final.name());
        // Predicted cost of finishing on this variant, over the
        // trace's aggregated per-instance profiles.
        if (S < Aggregates[T].size()) {
          for (const WorkloadProfile &Profile :
               Aggregates[T][S].Profiles) {
            Outcome.PredictedTime +=
                Model->totalCost(Final, Profile, CostDimension::Time);
            Outcome.PredictedAlloc +=
                Model->totalCost(Final, Profile, CostDimension::Alloc);
          }
        }
      }
    }

    Report.Ranked.push_back(std::move(Outcome));
  }

  std::stable_sort(Report.Ranked.begin(), Report.Ranked.end(),
                   [](const PolicyOutcome &L, const PolicyOutcome &R) {
                     return L.ElapsedNanos < R.ElapsedNanos;
                   });
  if (!Report.Ranked.empty())
    Report.Best = Report.Ranked.front().Name;
  return Report;
}

std::string SimulationReport::render() const {
  std::string Out;
  Out += "what-if policy sweep (";
  Out += std::to_string(Ranked.size());
  Out += " policies, ranked by replayed time)\n";
  Out += "rank  policy          elapsed_ms   alloc_mb  switches  evals  "
         "pred_time_ms  mismatches\n";
  char Line[160];
  for (size_t I = 0, E = Ranked.size(); I != E; ++I) {
    const PolicyOutcome &O = Ranked[I];
    std::snprintf(Line, sizeof(Line),
                  "%4zu  %-14s %10.3f %10.3f %9llu %6llu %13.3f %11llu\n",
                  I + 1, O.Name.c_str(),
                  static_cast<double>(O.ElapsedNanos) / 1e6,
                  static_cast<double>(O.AllocatedBytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(O.Switches),
                  static_cast<unsigned long long>(O.Evaluations),
                  O.PredictedTime / 1e6,
                  static_cast<unsigned long long>(O.SizeMismatches));
    Out += Line;
  }
  if (!Best.empty()) {
    Out += "best: ";
    Out += Best;
    Out += "\n";
  }
  return Out;
}

std::string SimulationReport::toJson() const {
  auto Num = [](double Value) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
    return std::string(Buf);
  };
  std::string Out = "{\n";
  Out += "  \"schema\": \"cswitch-simulate-v2\",\n";
  Out += "  \"policies\": " + std::to_string(Ranked.size()) + ",\n";
  Out += "  \"best\": \"" + jsonEscape(Best) + "\",\n";
  Out += "  \"ranked\": [\n";
  for (size_t I = 0, E = Ranked.size(); I != E; ++I) {
    const PolicyOutcome &O = Ranked[I];
    Out += "    {\"rank\": " + std::to_string(I + 1) + ", ";
    Out += "\"policy\": \"" + jsonEscape(O.Name) + "\", ";
    Out += "\"elapsed_ns\": " + std::to_string(O.ElapsedNanos) + ", ";
    Out += "\"allocated_bytes\": " + std::to_string(O.AllocatedBytes) + ", ";
    Out += "\"ops\": " + std::to_string(O.OpsExecuted) + ", ";
    Out += "\"instances\": " + std::to_string(O.InstancesReplayed) + ", ";
    Out += "\"evaluations\": " + std::to_string(O.Evaluations) + ", ";
    Out += "\"switches\": " + std::to_string(O.Switches) + ", ";
    Out += "\"size_mismatches\": " + std::to_string(O.SizeMismatches) + ", ";
    Out += "\"predicted_time\": " + Num(O.PredictedTime) + ", ";
    Out += "\"predicted_alloc\": " + Num(O.PredictedAlloc) + ", ";
    Out += "\"trajectory_time\": " + Num(O.TrajectoryTime) + ", ";
    Out += "\"trajectory_alloc\": " + Num(O.TrajectoryAlloc) + ", ";
    Out += "\"final_variants\": [";
    for (size_t V = 0, NumV = O.FinalVariants.size(); V != NumV; ++V) {
      if (V)
        Out += ", ";
      Out += "{\"site\": \"" + jsonEscape(O.FinalVariants[V].first) +
             "\", \"variant\": \"" + jsonEscape(O.FinalVariants[V].second) +
             "\"}";
    }
    Out += "]}";
    Out += I + 1 == E ? "\n" : ",\n";
  }
  Out += "  ]\n";
  Out += "}\n";
  return Out;
}
