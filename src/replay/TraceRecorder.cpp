//===- TraceRecorder.cpp - Lock-free operation-trace recorder -------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "replay/TraceRecorder.h"

#include <algorithm>

using namespace cswitch;

TraceRecorder::TraceRecorder(TraceRecorderOptions Options)
    : Cap(std::max<size_t>(Options.Capacity, 1)),
      SampleEvery(std::max<uint64_t>(Options.SampleEvery, 1)),
      Slots(std::make_unique<OpSlot[]>(Cap)),
      TimeSamples(std::make_unique<std::atomic<uint64_t>[]>(
          (Cap >> TimeBucketShift) + 1)) {
  RegistryId = RecorderRegistry::global().attach([this] { return stats(); });
}

TraceRecorder::~TraceRecorder() {
  RecorderRegistry::global().detach(RegistryId, stats());
}

uint32_t TraceRecorder::registerSite(std::string_view Name,
                                     AbstractionKind Kind,
                                     unsigned DeclaredVariantIndex) {
  std::lock_guard<std::mutex> Lock(SiteMutex);
  for (size_t I = 0, E = Sites.size(); I != E; ++I)
    if (Sites[I].Name == Name)
      return static_cast<uint32_t>(I);
  TraceSite Site;
  Site.Name = std::string(Name);
  Site.Kind = Kind;
  Site.DeclaredVariantIndex = DeclaredVariantIndex;
  Sites.push_back(std::move(Site));
  return static_cast<uint32_t>(Sites.size() - 1);
}

bool TraceRecorder::beginInstance([[maybe_unused]] uint32_t Site,
                                  uint32_t &InstanceOut) {
  uint64_t Seen = SeenInstances.fetch_add(1, std::memory_order_relaxed);
  if (Seen % SampleEvery != 0)
    return false;
  // When everything is sampled the decision counter already numbers the
  // instances densely; skip the second fetch_add.
  uint64_t Instance =
      SampleEvery == 1 ? Seen
                       : NextInstance.fetch_add(1, std::memory_order_relaxed);
  if (Instance > UINT32_MAX)
    return false; // Instance ids are 32-bit in the trace format.
  InstanceOut = static_cast<uint32_t>(Instance);
  return true;
}

void TraceRecorder::recordBatch(uint32_t Site, uint32_t Instance,
                                const BufferedTraceOp *Ops, size_t N) {
  if (N == 0)
    return;
  uint64_t Base = Next.fetch_add(N, std::memory_order_relaxed);
  // One clock read serves every time bucket the batch spans (batches are
  // short; sub-bucket resolution is not needed).
  uint64_t Now = 0;
  bool HaveNow = false;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Ticket = Base + I;
    if (Ticket >= Cap)
      return; // This op and the rest of the batch are counted drops.
    if ((Ticket & TimeBucketMask) == 0) {
      if (!HaveNow) {
        Now = Clock.elapsedNanos();
        HaveNow = true;
      }
      TimeSamples[Ticket >> TimeBucketShift].store(
          Now, std::memory_order_relaxed);
    }
    OpSlot &Slot = Slots[Ticket];
    Slot.Site = Site;
    Slot.Instance = Instance;
    Slot.Kind = Ops[I].Kind;
    Slot.Class = Ops[I].Class;
    Slot.Size = Ops[I].Size;
    Slot.Ready.store(1, std::memory_order_release);
  }
}

OpTrace TraceRecorder::trace() const {
  OpTrace Out;
  {
    std::lock_guard<std::mutex> Lock(SiteMutex);
    Out.Sites = Sites;
  }
  uint64_t Claimed = Next.load(std::memory_order_relaxed);
  uint64_t Kept = std::min<uint64_t>(Claimed, Cap);
  Out.Ops.reserve(Kept);
  for (uint64_t I = 0; I != Kept; ++I) {
    const OpSlot &Slot = Slots[I];
    if (!Slot.Ready.load(std::memory_order_acquire))
      continue; // Writer still mid-publication.
    TraceOp Op;
    Op.Site = Slot.Site;
    Op.Instance = Slot.Instance;
    Op.Kind = static_cast<TraceOpKind>(Slot.Kind);
    Op.Class = static_cast<OpClass>(Slot.Class);
    Op.Size = Slot.Size;
    Op.TimeNanos =
        TimeSamples[I >> TimeBucketShift].load(std::memory_order_relaxed);
    Out.Ops.push_back(Op);
  }
  Out.OpsDropped = Claimed > Cap ? Claimed - Cap : 0;
  Out.InstancesSampled = instancesSampled();
  Out.InstancesSkipped = instancesSkipped();
  return Out;
}

void TraceRecorder::clear() {
  uint64_t Claimed = Next.load(std::memory_order_relaxed);
  uint64_t Kept = std::min<uint64_t>(Claimed, Cap);
  for (uint64_t I = 0; I != Kept; ++I)
    Slots[I].Ready.store(0, std::memory_order_relaxed);
  for (uint64_t I = 0, E = (Kept >> TimeBucketShift) + 1; I != E; ++I)
    TimeSamples[I].store(0, std::memory_order_relaxed);
  Next.store(0, std::memory_order_relaxed);
  SeenInstances.store(0, std::memory_order_relaxed);
  NextInstance.store(0, std::memory_order_relaxed);
  Clock.reset();
}

uint64_t TraceRecorder::opsRecorded() const {
  uint64_t Claimed = Next.load(std::memory_order_relaxed);
  return std::min<uint64_t>(Claimed, Cap);
}

uint64_t TraceRecorder::opsDropped() const {
  uint64_t Claimed = Next.load(std::memory_order_relaxed);
  return Claimed > Cap ? Claimed - Cap : 0;
}

uint64_t TraceRecorder::instancesSampled() const {
  // Sampled ids are handed out by NextInstance (by SeenInstances itself
  // when everything is sampled); attempts past the 32-bit id space were
  // rejected, so clamp to it. Deriving the count instead of keeping a
  // dedicated counter keeps beginInstance lean.
  uint64_t Handed = SampleEvery == 1
                        ? SeenInstances.load(std::memory_order_relaxed)
                        : NextInstance.load(std::memory_order_relaxed);
  return std::min<uint64_t>(Handed, uint64_t(UINT32_MAX) + 1);
}

uint64_t TraceRecorder::instancesSkipped() const {
  uint64_t Seen = SeenInstances.load(std::memory_order_relaxed);
  uint64_t Sampled = instancesSampled();
  return Seen > Sampled ? Seen - Sampled : 0;
}

RecorderStats TraceRecorder::stats() const {
  RecorderStats S;
  S.Recorders = 1;
  S.OpsRecorded = opsRecorded();
  S.OpsDropped = opsDropped();
  S.InstancesSampled = instancesSampled();
  S.InstancesSkipped = instancesSkipped();
  return S;
}
