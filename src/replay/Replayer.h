//===- Replayer.h - Deterministic trace re-execution ------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic re-execution of recorded operation traces. The Replayer
/// turns a trace into a live workload again: every recorded operation is
/// re-executed against real collection instances — either a pinned
/// variant per abstraction (including the adaptive collections) or full
/// adaptive allocation contexts registered with a private SwitchEngine —
/// while Timer/MemoryTracker measure what the trace costs under that
/// regime. This is the trace-driven benchmark generation idea of
/// MapReplay (Schiavio et al.) applied to the CollectionSwitch decision
/// pipeline: one recorded run becomes arbitrarily many reproducible
/// what-if experiments.
///
/// Determinism (DESIGN.md §7): operand values are re-synthesized from
/// the recorded key/index classes with a per-instance SplitMix64 seeded
/// by mix(Seed, Site, Instance), so a replay is a pure function of
/// (trace bytes, options). With Threads == 1 two replays of the same
/// trace produce byte-identical decision logs and identical final
/// variants. With Threads > 1, sites are partitioned across threads;
/// each site's log is still deterministic (contexts are per-site) and
/// logs are concatenated in site order, so the decision log is invariant
/// in the thread count too — only the measured wall-clock changes.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_REPLAY_REPLAYER_H
#define CSWITCH_REPLAY_REPLAYER_H

#include "core/AllocationContext.h"
#include "core/SelectionRule.h"
#include "replay/TraceFormat.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cswitch {

/// How the Replayer instantiates collections.
enum class ReplayMode {
  Fixed,  ///< Pinned variant per abstraction (no adaptation).
  Engine, ///< Adaptive allocation contexts (the full decision pipeline).
};

/// Configuration of one replay run.
struct ReplayOptions {
  ReplayMode Mode = ReplayMode::Engine;
  /// Root seed of the deterministic operand synthesis.
  uint64_t Seed = 0x1905;
  /// Worker threads (sites are partitioned round-robin). 1 = fully
  /// deterministic measurement order.
  unsigned Threads = 1;
  /// Engine mode: evaluate a site's context after every N executed ops
  /// of that site (the deterministic stand-in for the paper's 50 ms
  /// monitoring rate), plus once at end of stream.
  uint64_t EvalEveryOps = 256;
  /// Fixed mode: variant index override per abstraction; sites of an
  /// abstraction without an override replay on their declared variant.
  std::optional<unsigned> FixedList;
  std::optional<unsigned> FixedSet;
  std::optional<unsigned> FixedMap;
  /// Engine mode: context knobs (window size, finished ratio, ...).
  ContextOptions Context;
  /// Engine mode: the selection rule contexts decide by.
  SelectionRule Rule = SelectionRule::timeRule();
  /// Engine mode: the performance model contexts predict with
  /// (required; Fixed mode ignores it).
  std::shared_ptr<const PerformanceModel> Model;
};

/// Per-site outcome of a replay.
struct SiteReplayResult {
  std::string Name;
  AbstractionKind Kind = AbstractionKind::List;
  unsigned InitialVariantIndex = 0;
  unsigned FinalVariantIndex = 0;
  uint64_t OpsExecuted = 0;
  uint64_t Evaluations = 0;
  uint64_t Switches = 0;
  /// Ops whose replayed collection size diverged from the recorded
  /// size-at-op — the fidelity check of the operand re-synthesis (should
  /// be 0 for a loss-free trace).
  uint64_t SizeMismatches = 0;
  /// Model-predicted time/alloc cost of the replay *trajectory*: every
  /// replayed instance costed on the variant it was actually created
  /// with, over the workload it actually executed. Unlike a final-variant
  /// prediction this rewards converging early — instances created before
  /// the context switched still pay the pre-switch variant's cost — so
  /// it is the deterministic fitness signal of the offline tuner.
  /// Computed only when ReplayOptions::Model is set; 0 otherwise.
  double TrajectoryTime = 0.0;
  double TrajectoryAlloc = 0.0;
};

/// Outcome of one replay run.
struct ReplayResult {
  std::vector<SiteReplayResult> Sites;
  uint64_t OpsExecuted = 0;
  uint64_t InstancesReplayed = 0;
  uint64_t SizeMismatches = 0;
  uint64_t Evaluations = 0;
  uint64_t Switches = 0;
  /// Measured cost of re-executing the trace.
  uint64_t ElapsedNanos = 0;
  uint64_t AllocatedBytes = 0;
  /// Trajectory cost summed over sites (see SiteReplayResult); the
  /// deterministic counterpart of the measured costs above.
  double TrajectoryTime = 0.0;
  double TrajectoryAlloc = 0.0;
  /// Per-site decision log (engine mode), concatenated in site order;
  /// byte-identical across replays of the same (trace, options).
  std::string DecisionLog;
};

/// Re-executes an operation trace. One Replayer instance is reusable:
/// every run() builds fresh collections/contexts from the immutable
/// trace, so repeated runs measure repeated executions of the same
/// workload.
class Replayer {
public:
  Replayer(OpTrace Trace, ReplayOptions Options);

  /// Replays the whole trace once.
  ReplayResult run();

  /// The trace being replayed.
  const OpTrace &trace() const { return Trace; }

  /// The options replays run with.
  const ReplayOptions &options() const { return Options; }

private:
  struct SiteRun; // Per-site replay state (Replayer.cpp).

  OpTrace Trace;
  ReplayOptions Options;
};

/// Aggregates the per-site workload profiles a trace implies (op counts
/// bucketed by OperationKind, max size per instance merged per site).
/// This is how the offline pipeline turns an operation trace back into
/// the aggregate form (ProfileTrace / OfflineAdvisor) — and what the
/// PolicySimulator feeds the cost model for predicted costs.
struct SiteProfile {
  std::string Name;
  AbstractionKind Kind = AbstractionKind::List;
  unsigned DeclaredVariantIndex = 0;
  std::vector<WorkloadProfile> Profiles; ///< One per recorded instance.
};
std::vector<SiteProfile> aggregateTrace(const OpTrace &Trace);

} // namespace cswitch

#endif // CSWITCH_REPLAY_REPLAYER_H
