//===- TraceFormat.h - Binary operation-trace format ------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact versioned binary format (`cswitch-optrace-v1`) for
/// persisted operation traces: the operation-level record of a workload
/// captured by the TraceRecorder and consumed by the Replayer and the
/// PolicySimulator. Where ProfileTrace persists *aggregated* per-site
/// counters (good for one-shot offline advice, §6), an operation trace
/// preserves the order, interleaving and per-operation context of the
/// original run, which is what deterministic replay and what-if policy
/// simulation need (MapReplay-style trace-driven benchmark generation).
///
/// Layout (all integers LEB128 varints, deltas zigzag-encoded):
///
///   "cswitch-optrace-"  16-byte magic prefix
///   version             varint (currently 1; readers reject others)
///   site-count          varint
///   per site:           name-length, name bytes, abstraction (u8),
///                       declared-variant index (varint)
///   ops-dropped         varint   (recorder loss; observability)
///   instances-sampled   varint
///   instances-skipped   varint
///   op-count            varint
///   per op:             packed u8 (kind << 3 | class),
///                       zigzag site delta, zigzag instance delta,
///                       size (varint), zigzag time-delta (nanoseconds)
///
/// Encoding is canonical: decode(encode(T)) == T and re-encoding the
/// decoded trace reproduces the exact bytes — the round-trip property
/// the format tests pin down.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_REPLAY_TRACEFORMAT_H
#define CSWITCH_REPLAY_TRACEFORMAT_H

#include "collections/Variants.h"
#include "profile/OperationKind.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cswitch {

/// Operation kinds at trace granularity. Unlike OperationKind (the six
/// *aggregated* profiling categories), these name the facade method that
/// executed, because replay must re-execute — not just count — the
/// operation. Instance life-cycle boundaries are ops too, so a trace is
/// a single totally-ordered stream.
enum class TraceOpKind : uint8_t {
  InstanceBegin, ///< A collection instance was created at the site.
  InstanceEnd,   ///< The instance finished its life-cycle.
  Populate,      ///< list add / set add / map put.
  Contains,      ///< contains / containsKey / get lookup.
  Iterate,       ///< One full traversal.
  IndexGet,      ///< List positional read.
  IndexSet,      ///< List positional write.
  InsertAt,      ///< List interior insert.
  RemoveAt,      ///< List positional remove.
  RemoveValue,   ///< Remove by value / key.
  Clear,         ///< clear().
};

/// Number of TraceOpKind values.
constexpr size_t NumTraceOpKinds = 11;

/// Returns a stable lowercase name ("begin", "populate", ...).
const char *traceOpKindName(TraceOpKind Kind);

/// Maps a trace op to the profiling category it is counted under, or
/// nullopt for ops outside the §4.1.2 critical set (life-cycle markers
/// and clear).
std::optional<OperationKind> toOperationKind(TraceOpKind Kind);

/// The key/index class of one operation: enough information to
/// re-synthesize an equivalent operand deterministically, without
/// persisting application values (traces stay compact and leak no data).
enum class OpClass : uint8_t {
  None,     ///< No operand context (populate new key, iterate, ...).
  Hit,      ///< Lookup/remove found its key; populate hit an existing key.
  Miss,     ///< Lookup/remove missed.
  Front,    ///< Positional op at index 0.
  Interior, ///< Positional op at an interior index.
  Back,     ///< Positional op at the last index (or append position).
};

/// Number of OpClass values.
constexpr size_t NumOpClasses = 6;

/// Returns a stable lowercase name ("none", "hit", ...).
const char *opClassName(OpClass Class);

/// Classifies a positional \p Index against collection \p Size.
inline OpClass classifyIndex(size_t Index, size_t Size) {
  if (Index == 0)
    return OpClass::Front;
  if (Index + 1 >= Size)
    return OpClass::Back;
  return OpClass::Interior;
}

/// One recorded operation.
struct TraceOp {
  uint32_t Site = 0;     ///< Index into OpTrace::Sites.
  uint32_t Instance = 0; ///< Recorder-assigned instance id.
  TraceOpKind Kind = TraceOpKind::InstanceBegin;
  OpClass Class = OpClass::None;
  uint32_t Size = 0;      ///< Collection size after the op (before, for
                          ///< nothing: clear records 0).
  uint64_t TimeNanos = 0; ///< Nanoseconds since recording started.

  bool operator==(const TraceOp &Other) const = default;
};

/// One recorded allocation site.
struct TraceSite {
  std::string Name;
  AbstractionKind Kind = AbstractionKind::List;
  unsigned DeclaredVariantIndex = 0;

  bool operator==(const TraceSite &Other) const = default;
};

/// A complete operation trace: the site table, the totally-ordered
/// operation stream, and the recorder's loss/sampling accounting.
struct OpTrace {
  std::vector<TraceSite> Sites;
  std::vector<TraceOp> Ops;
  uint64_t OpsDropped = 0;        ///< Ops lost to the bounded buffer.
  uint64_t InstancesSampled = 0;  ///< Instances recorded.
  uint64_t InstancesSkipped = 0;  ///< Instances passed over by sampling.

  bool operator==(const OpTrace &Other) const = default;

  /// Wall-clock span covered by the recorded ops (max - min timestamp).
  uint64_t durationNanos() const;
};

/// Serializes \p Trace into the cswitch-optrace-v1 byte string.
std::string encodeTrace(const OpTrace &Trace);

/// Parses a cswitch-optrace document. Returns false on malformed,
/// truncated or version-mismatched input; \p Error (when non-null)
/// receives a one-line diagnosis. \p Out is left empty on failure.
bool decodeTrace(std::string_view Bytes, OpTrace &Out,
                 std::string *Error = nullptr);

/// File/stream wrappers; `readTrace` consumes the whole stream (so `-`
/// pipelines work). All return false on I/O or parse failure.
bool writeTraceToFile(const std::string &Path, const OpTrace &Trace);
bool readTrace(std::istream &IS, OpTrace &Out, std::string *Error = nullptr);
bool readTraceFromFile(const std::string &Path, OpTrace &Out,
                       std::string *Error = nullptr);

} // namespace cswitch

#endif // CSWITCH_REPLAY_TRACEFORMAT_H
