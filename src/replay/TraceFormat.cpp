//===- TraceFormat.cpp - Binary operation-trace format --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "replay/TraceFormat.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cswitch;

namespace {

constexpr char Magic[] = "cswitch-optrace-"; // 16 bytes, no terminator.
constexpr size_t MagicSize = 16;
constexpr uint64_t FormatVersion = 1;

/// Pre-allocation guard while decoding untrusted counts: never reserve
/// more than this many elements up front; growth beyond it must be paid
/// for by actual input bytes.
constexpr size_t MaxReserve = 1 << 16;

/// Header-only mirror of numVariantsOf(): the trace library sits below
/// the collections library in the link order, so it must not pull in
/// Variants.cpp symbols.
constexpr size_t variantCountOf(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return NumListVariants;
  case AbstractionKind::Set:
    return NumSetVariants;
  case AbstractionKind::Map:
    return NumMapVariants;
  }
  return 0;
}

void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out += static_cast<char>((Value & 0x7f) | 0x80);
    Value >>= 7;
  }
  Out += static_cast<char>(Value);
}

uint64_t zigzag(int64_t Value) {
  return (static_cast<uint64_t>(Value) << 1) ^
         static_cast<uint64_t>(Value >> 63);
}

int64_t unzigzag(uint64_t Value) {
  return static_cast<int64_t>(Value >> 1) ^ -static_cast<int64_t>(Value & 1);
}

/// Bounded byte reader over the encoded document.
class Reader {
public:
  Reader(std::string_view Bytes) : Cur(Bytes.data()), End(Cur + Bytes.size()) {}

  bool varint(uint64_t &Out) {
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Cur == End)
        return false;
      uint8_t Byte = static_cast<uint8_t>(*Cur++);
      Out |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return true;
    }
    return false; // More than 10 continuation bytes: corrupt.
  }

  bool bytes(size_t N, std::string &Out) {
    if (static_cast<size_t>(End - Cur) < N)
      return false;
    Out.assign(Cur, N);
    Cur += N;
    return true;
  }

  bool byte(uint8_t &Out) {
    if (Cur == End)
      return false;
    Out = static_cast<uint8_t>(*Cur++);
    return true;
  }

  bool atEnd() const { return Cur == End; }

private:
  const char *Cur;
  const char *End;
};

bool fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

const char *cswitch::traceOpKindName(TraceOpKind Kind) {
  switch (Kind) {
  case TraceOpKind::InstanceBegin:
    return "begin";
  case TraceOpKind::InstanceEnd:
    return "end";
  case TraceOpKind::Populate:
    return "populate";
  case TraceOpKind::Contains:
    return "contains";
  case TraceOpKind::Iterate:
    return "iterate";
  case TraceOpKind::IndexGet:
    return "index-get";
  case TraceOpKind::IndexSet:
    return "index-set";
  case TraceOpKind::InsertAt:
    return "insert-at";
  case TraceOpKind::RemoveAt:
    return "remove-at";
  case TraceOpKind::RemoveValue:
    return "remove-value";
  case TraceOpKind::Clear:
    return "clear";
  }
  return "unknown";
}

std::optional<OperationKind> cswitch::toOperationKind(TraceOpKind Kind) {
  switch (Kind) {
  case TraceOpKind::Populate:
    return OperationKind::Populate;
  case TraceOpKind::Contains:
    return OperationKind::Contains;
  case TraceOpKind::Iterate:
    return OperationKind::Iterate;
  case TraceOpKind::IndexGet:
  case TraceOpKind::IndexSet:
    return OperationKind::IndexAccess;
  case TraceOpKind::InsertAt:
  case TraceOpKind::RemoveAt:
    return OperationKind::Middle;
  case TraceOpKind::RemoveValue:
    return OperationKind::Remove;
  case TraceOpKind::InstanceBegin:
  case TraceOpKind::InstanceEnd:
  case TraceOpKind::Clear:
    return std::nullopt;
  }
  return std::nullopt;
}

const char *cswitch::opClassName(OpClass Class) {
  switch (Class) {
  case OpClass::None:
    return "none";
  case OpClass::Hit:
    return "hit";
  case OpClass::Miss:
    return "miss";
  case OpClass::Front:
    return "front";
  case OpClass::Interior:
    return "interior";
  case OpClass::Back:
    return "back";
  }
  return "unknown";
}

uint64_t OpTrace::durationNanos() const {
  if (Ops.empty())
    return 0;
  uint64_t Lo = UINT64_MAX, Hi = 0;
  for (const TraceOp &Op : Ops) {
    Lo = std::min(Lo, Op.TimeNanos);
    Hi = std::max(Hi, Op.TimeNanos);
  }
  return Hi - Lo;
}

std::string cswitch::encodeTrace(const OpTrace &Trace) {
  std::string Out;
  Out.reserve(MagicSize + 16 + Trace.Ops.size() * 6);
  Out.append(Magic, MagicSize);
  putVarint(Out, FormatVersion);

  putVarint(Out, Trace.Sites.size());
  for (const TraceSite &Site : Trace.Sites) {
    putVarint(Out, Site.Name.size());
    Out += Site.Name;
    Out += static_cast<char>(static_cast<unsigned>(Site.Kind));
    putVarint(Out, Site.DeclaredVariantIndex);
  }

  putVarint(Out, Trace.OpsDropped);
  putVarint(Out, Trace.InstancesSampled);
  putVarint(Out, Trace.InstancesSkipped);

  putVarint(Out, Trace.Ops.size());
  uint32_t PrevSite = 0, PrevInstance = 0;
  uint64_t PrevTime = 0;
  for (const TraceOp &Op : Trace.Ops) {
    Out += static_cast<char>((static_cast<unsigned>(Op.Kind) << 3) |
                             static_cast<unsigned>(Op.Class));
    putVarint(Out, zigzag(static_cast<int64_t>(Op.Site) -
                          static_cast<int64_t>(PrevSite)));
    putVarint(Out, zigzag(static_cast<int64_t>(Op.Instance) -
                          static_cast<int64_t>(PrevInstance)));
    putVarint(Out, Op.Size);
    putVarint(Out, zigzag(static_cast<int64_t>(Op.TimeNanos) -
                          static_cast<int64_t>(PrevTime)));
    PrevSite = Op.Site;
    PrevInstance = Op.Instance;
    PrevTime = Op.TimeNanos;
  }
  return Out;
}

bool cswitch::decodeTrace(std::string_view Bytes, OpTrace &Out,
                          std::string *Error) {
  Out = OpTrace();
  if (Bytes.size() < MagicSize ||
      std::memcmp(Bytes.data(), Magic, MagicSize) != 0)
    return fail(Error, "not a cswitch-optrace document (bad magic)");
  Reader In(Bytes.substr(MagicSize));

  uint64_t Version = 0;
  if (!In.varint(Version))
    return fail(Error, "truncated version");
  if (Version != FormatVersion) {
    if (Error)
      *Error = "unsupported cswitch-optrace version " +
               std::to_string(Version) + " (expected " +
               std::to_string(FormatVersion) + ")";
    Out = OpTrace();
    return false;
  }

  uint64_t SiteCount = 0;
  if (!In.varint(SiteCount))
    return fail(Error, "truncated site count");
  Out.Sites.reserve(std::min<uint64_t>(SiteCount, MaxReserve));
  for (uint64_t I = 0; I != SiteCount; ++I) {
    TraceSite Site;
    uint64_t NameLen = 0;
    if (!In.varint(NameLen) || !In.bytes(NameLen, Site.Name)) {
      Out = OpTrace();
      return fail(Error, "truncated site name");
    }
    uint8_t Kind = 0;
    if (!In.byte(Kind) || Kind >= NumAbstractionKinds) {
      Out = OpTrace();
      return fail(Error, "bad abstraction kind");
    }
    Site.Kind = static_cast<AbstractionKind>(Kind);
    uint64_t Declared = 0;
    if (!In.varint(Declared) || Declared >= variantCountOf(Site.Kind)) {
      Out = OpTrace();
      return fail(Error, "bad declared variant index");
    }
    Site.DeclaredVariantIndex = static_cast<unsigned>(Declared);
    Out.Sites.push_back(std::move(Site));
  }

  uint64_t OpCount = 0;
  if (!In.varint(Out.OpsDropped) || !In.varint(Out.InstancesSampled) ||
      !In.varint(Out.InstancesSkipped) || !In.varint(OpCount)) {
    Out = OpTrace();
    return fail(Error, "truncated recorder counters");
  }

  Out.Ops.reserve(std::min<uint64_t>(OpCount, MaxReserve));
  uint32_t PrevSite = 0, PrevInstance = 0;
  uint64_t PrevTime = 0;
  for (uint64_t I = 0; I != OpCount; ++I) {
    uint8_t Packed = 0;
    uint64_t SiteDelta = 0, InstanceDelta = 0, Size = 0, TimeDelta = 0;
    if (!In.byte(Packed) || !In.varint(SiteDelta) ||
        !In.varint(InstanceDelta) || !In.varint(Size) ||
        !In.varint(TimeDelta)) {
      Out = OpTrace();
      return fail(Error, "truncated op stream");
    }
    TraceOp Op;
    unsigned Kind = Packed >> 3, Class = Packed & 0x7;
    if (Kind >= NumTraceOpKinds || Class >= NumOpClasses) {
      Out = OpTrace();
      return fail(Error, "bad op kind/class byte");
    }
    Op.Kind = static_cast<TraceOpKind>(Kind);
    Op.Class = static_cast<OpClass>(Class);
    int64_t Site = static_cast<int64_t>(PrevSite) + unzigzag(SiteDelta);
    int64_t Instance =
        static_cast<int64_t>(PrevInstance) + unzigzag(InstanceDelta);
    int64_t Time = static_cast<int64_t>(PrevTime) + unzigzag(TimeDelta);
    if (Site < 0 || static_cast<uint64_t>(Site) >= Out.Sites.size() ||
        Instance < 0 || Instance > static_cast<int64_t>(UINT32_MAX) ||
        Size > UINT32_MAX || Time < 0) {
      Out = OpTrace();
      return fail(Error, "op field out of range");
    }
    Op.Site = static_cast<uint32_t>(Site);
    Op.Instance = static_cast<uint32_t>(Instance);
    Op.Size = static_cast<uint32_t>(Size);
    Op.TimeNanos = static_cast<uint64_t>(Time);
    PrevSite = Op.Site;
    PrevInstance = Op.Instance;
    PrevTime = Op.TimeNanos;
    Out.Ops.push_back(Op);
  }

  if (!In.atEnd()) {
    Out = OpTrace();
    return fail(Error, "trailing bytes after op stream");
  }
  return true;
}

bool cswitch::writeTraceToFile(const std::string &Path,
                               const OpTrace &Trace) {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS)
    return false;
  std::string Bytes = encodeTrace(Trace);
  OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  return static_cast<bool>(OS);
}

bool cswitch::readTrace(std::istream &IS, OpTrace &Out, std::string *Error) {
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  if (IS.bad())
    return fail(Error, "I/O error reading trace stream");
  return decodeTrace(Buffer.str(), Out, Error);
}

bool cswitch::readTraceFromFile(const std::string &Path, OpTrace &Out,
                                std::string *Error) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return fail(Error, "cannot open trace file");
  return readTrace(IS, Out, Error);
}
