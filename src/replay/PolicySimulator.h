//===- PolicySimulator.h - Offline what-if policy sweeps --------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline what-if simulator: replays a corpus of recorded operation
/// traces under a set of candidate selection policies and ranks them by
/// measured cost. This answers the question the live framework cannot —
/// "what would this workload have cost under rule R / window W /
/// adaptive thresholds T?" — without re-running the application
/// (paper §6 positions exactly this as the advantage of trace-based
/// approaches like Brainy; here the traces come from our own recorder,
/// so the sweep evaluates the real decision pipeline, not a model of
/// it).
///
/// Each candidate is replayed in engine mode (full allocation contexts,
/// deterministic evaluation cadence) over every trace in the corpus.
/// Besides the measured wall-clock/allocation costs, the simulator
/// computes the model-predicted cost of each policy's final variant
/// choices over the trace's aggregated workload profiles, so reports
/// show predicted-vs-replayed side by side.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_REPLAY_POLICYSIMULATOR_H
#define CSWITCH_REPLAY_POLICYSIMULATOR_H

#include "collections/AdaptiveConfig.h"
#include "replay/Replayer.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cswitch {

/// One selection policy to evaluate: a rule plus the context knobs it
/// runs with. An unset Thresholds leaves the process-global adaptive
/// thresholds untouched.
struct PolicyCandidate {
  std::string Name;
  SelectionRule Rule = SelectionRule::timeRule();
  ContextOptions Context;
  /// Evaluation cadence handed to the Replayer.
  uint64_t EvalEveryOps = 256;
  /// When set, this candidate's replay contexts run with these adaptive
  /// thresholds (applied per-context via
  /// ContextOptions::AdaptiveOverride — global state is never touched,
  /// so candidates can be evaluated concurrently).
  std::optional<AdaptiveThresholds> Thresholds;
};

/// Outcome of one policy over the whole corpus.
struct PolicyOutcome {
  std::string Name;
  uint64_t OpsExecuted = 0;
  uint64_t InstancesReplayed = 0;
  uint64_t Evaluations = 0;
  uint64_t Switches = 0;
  uint64_t SizeMismatches = 0;
  /// Measured replay cost, summed over the corpus.
  uint64_t ElapsedNanos = 0;
  uint64_t AllocatedBytes = 0;
  /// Model-predicted time/alloc cost of the policy's final variant
  /// choices over the corpus's aggregated profiles.
  double PredictedTime = 0.0;
  double PredictedAlloc = 0.0;
  /// Model-predicted cost of the replay trajectory (every instance on
  /// the variant it was created with; see
  /// SiteReplayResult::TrajectoryTime) — deterministic, and sensitive to
  /// *when* a policy converges, not just where.
  double TrajectoryTime = 0.0;
  double TrajectoryAlloc = 0.0;
  /// site name -> final variant name, across the corpus (trace index
  /// prefixes the site name when the corpus has several traces).
  std::vector<std::pair<std::string, std::string>> FinalVariants;
};

/// Ranked what-if report.
struct SimulationReport {
  /// Outcomes sorted by measured elapsed time, best first.
  std::vector<PolicyOutcome> Ranked;
  /// Name of the fastest policy (empty if nothing ran).
  std::string Best;

  /// Renders the ranked table as human-readable text.
  std::string render() const;

  /// Renders the full ranked report as JSON (schema
  /// "cswitch-simulate-v2") for programmatic consumers — the tuner, CI
  /// asserts, and `cswitch_replay simulate --json`. Includes per-policy
  /// counters, predicted and trajectory costs, and final variant
  /// choices.
  std::string toJson() const;
};

/// Sweeps selection policies over a corpus of recorded traces.
class PolicySimulator {
public:
  explicit PolicySimulator(std::shared_ptr<const PerformanceModel> Model);

  /// Adds a recorded trace to the corpus.
  void addTrace(OpTrace Trace);

  /// Adds one candidate policy.
  void addPolicy(PolicyCandidate Policy);

  /// Adds the standard sweep: the paper's Table 4 rules (Rtime, Ralloc,
  /// Renergy), a static baseline (impossibleRule — full monitoring, no
  /// switching, the §5.3 overhead configuration), Rtime threshold
  /// variants (0.7 / 0.9), window-size variants (50 / 200), and an
  /// adaptive-threshold variant (paper §3.2 Table 2 halved).
  void addDefaultPolicies();

  /// Replays every policy over the corpus. \p Seed and \p Threads are
  /// forwarded to the Replayer (determinism: same corpus + same
  /// policies + same seed => same decision logs and variant choices).
  SimulationReport run(uint64_t Seed = 0x1905, unsigned Threads = 1);

  size_t traceCount() const { return Corpus.size(); }
  size_t policyCount() const { return Policies.size(); }

private:
  std::shared_ptr<const PerformanceModel> Model;
  std::vector<OpTrace> Corpus;
  std::vector<PolicyCandidate> Policies;
};

} // namespace cswitch

#endif // CSWITCH_REPLAY_POLICYSIMULATOR_H
