//===- Replayer.cpp - Deterministic trace re-execution --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "replay/Replayer.h"

#include "core/SwitchEngine.h"
#include "support/MemoryTracker.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>
#include <unordered_map>

using namespace cswitch;

namespace {

/// Per-instance seed: a replayed instance's operand stream depends only
/// on (root seed, site, instance id), never on scheduling.
uint64_t mixSeed(uint64_t Seed, uint32_t Site, uint32_t Instance) {
  SplitMix64 Rng(Seed ^ (uint64_t(Site) << 32) ^ Instance);
  return Rng.next();
}

/// A value that was never inserted (inserted values count up from 0).
uint64_t missValue(SplitMix64 &Rng) {
  return (uint64_t(1) << 62) + Rng.nextBelow(uint64_t(1) << 20);
}

/// Re-synthesizes an index into an existing element ([0, Size)) from its
/// recorded class. Caller guarantees Size > 0.
size_t pickExistingIndex(OpClass Class, size_t Size, SplitMix64 &Rng) {
  switch (Class) {
  case OpClass::Front:
    return 0;
  case OpClass::Back:
    return Size - 1;
  case OpClass::Interior:
    return Size > 2 ? 1 + Rng.nextBelow(Size - 2) : Size - 1;
  default:
    return Rng.nextBelow(Size);
  }
}

/// Re-synthesizes an insert position ([0, Size]) from its recorded class.
size_t pickInsertIndex(OpClass Class, size_t Size, SplitMix64 &Rng) {
  switch (Class) {
  case OpClass::Front:
    return 0;
  case OpClass::Back:
    return Size;
  case OpClass::Interior:
    return Size > 2 ? 1 + Rng.nextBelow(Size - 2) : Size;
  default:
    return Rng.nextBelow(Size + 1);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-site replay state
//===----------------------------------------------------------------------===//

struct Replayer::SiteRun {
  /// One live replayed list: the facade under measurement plus a mirror
  /// of its contents so hit operands can be picked without reading the
  /// facade (which would perturb its workload profile).
  struct ListInstance {
    List<uint64_t> Facade;
    std::vector<uint64_t> Mirror;
    SplitMix64 Rng;
    uint64_t NextVal = 0;
    /// Variant index the instance was created with and the workload it
    /// executed (accumulated only when trajectory costs are on).
    unsigned Variant = 0;
    WorkloadProfile Work;

    ListInstance(List<uint64_t> Facade, uint64_t Seed)
        : Facade(std::move(Facade)), Rng(Seed) {}
  };

  /// One live replayed set: LiveKeys mirrors the member keys.
  struct SetInstance {
    Set<uint64_t> Facade;
    std::vector<uint64_t> LiveKeys;
    SplitMix64 Rng;
    uint64_t NextKey = 0;
    unsigned Variant = 0;
    WorkloadProfile Work;

    SetInstance(Set<uint64_t> Facade, uint64_t Seed)
        : Facade(std::move(Facade)), Rng(Seed) {}
  };

  /// One live replayed map.
  struct MapInstance {
    Map<uint64_t, uint64_t> Facade;
    std::vector<uint64_t> LiveKeys;
    SplitMix64 Rng;
    uint64_t NextKey = 0;
    unsigned Variant = 0;
    WorkloadProfile Work;

    MapInstance(Map<uint64_t, uint64_t> Facade, uint64_t Seed)
        : Facade(std::move(Facade)), Rng(Seed) {}
  };

  const TraceSite *Site = nullptr;
  uint32_t Index = 0;

  // Engine mode: the adaptive context of this site (one of the three,
  // by abstraction). Fixed mode: the pinned variant index.
  std::unique_ptr<ListContext<uint64_t>> ListCtx;
  std::unique_ptr<SetContext<uint64_t>> SetCtx;
  std::unique_ptr<MapContext<uint64_t, uint64_t>> MapCtx;
  unsigned FixedVariant = 0;
  /// When set, instances accumulate their workload and are costed on the
  /// variant they were created with (trajectory costs; see
  /// SiteReplayResult::TrajectoryTime).
  const PerformanceModel *CostModel = nullptr;

  std::unordered_map<uint32_t, ListInstance> Lists;
  std::unordered_map<uint32_t, SetInstance> Sets;
  std::unordered_map<uint32_t, MapInstance> Maps;

  uint64_t OpsSinceEval = 0;
  uint64_t InstancesReplayed = 0;
  /// Side-effect sink so replayed reads cannot be optimized away.
  uint64_t Sink = 0;
  SiteReplayResult Result;
  std::string Log;

  AllocationContextBase *context() const {
    if (ListCtx)
      return ListCtx.get();
    if (SetCtx)
      return SetCtx.get();
    return MapCtx.get();
  }

  void evaluateContext() {
    AllocationContextBase *Ctx = context();
    bool Switched = Ctx->evaluate();
    ++Result.Evaluations;
    if (Switched)
      ++Result.Switches;
    Log += "site=";
    Log += Site->Name;
    Log += " eval=";
    Log += std::to_string(Result.Evaluations);
    Log += " variant=";
    Log += Ctx->currentVariant().name();
    Log += Switched ? " switched=1\n" : " switched=0\n";
  }

  void beginInstance(const TraceOp &Op, uint64_t RootSeed) {
    uint64_t Seed = mixSeed(RootSeed, Op.Site, Op.Instance);
    ++InstancesReplayed;
    AllocationContextBase *Ctx = context();
    unsigned Variant = Ctx ? Ctx->currentVariantIndex() : FixedVariant;
    switch (Site->Kind) {
    case AbstractionKind::List: {
      List<uint64_t> L =
          ListCtx ? ListCtx->createList()
                  : List<uint64_t>(makeListImpl<uint64_t>(
                        static_cast<ListVariant>(FixedVariant)));
      auto It = Lists.emplace(Op.Instance, ListInstance(std::move(L), Seed));
      It.first->second.Variant = Variant;
      break;
    }
    case AbstractionKind::Set: {
      Set<uint64_t> S =
          SetCtx ? SetCtx->createSet()
                 : Set<uint64_t>(makeSetImpl<uint64_t>(
                       static_cast<SetVariant>(FixedVariant)));
      auto It = Sets.emplace(Op.Instance, SetInstance(std::move(S), Seed));
      It.first->second.Variant = Variant;
      break;
    }
    case AbstractionKind::Map: {
      Map<uint64_t, uint64_t> M =
          MapCtx ? MapCtx->createMap()
                 : Map<uint64_t, uint64_t>(makeMapImpl<uint64_t, uint64_t>(
                       static_cast<MapVariant>(FixedVariant)));
      auto It = Maps.emplace(Op.Instance, MapInstance(std::move(M), Seed));
      It.first->second.Variant = Variant;
      break;
    }
    }
  }

  /// Accumulates \p Op into the instance's realized workload profile
  /// (mirrors aggregateTrace's per-instance accumulation); only when
  /// trajectory costs are on.
  template <typename Instance>
  void recordWork(Instance &I, const TraceOp &Op) {
    if (!CostModel)
      return;
    if (std::optional<OperationKind> Kind = toOperationKind(Op.Kind))
      I.Work.record(*Kind);
    I.Work.recordSize(Op.Size);
  }

  /// Costs one finished (or straggling) instance on the variant it was
  /// created with. Accumulated over every instance this is the replay's
  /// trajectory cost — instances created before a context switched still
  /// pay the pre-switch variant, so earlier convergence scores better.
  template <typename Instance> void costInstance(const Instance &I) {
    if (!CostModel)
      return;
    VariantId V{Site->Kind, I.Variant};
    Result.TrajectoryTime += CostModel->totalCost(V, I.Work,
                                                  CostDimension::Time);
    Result.TrajectoryAlloc += CostModel->totalCost(V, I.Work,
                                                   CostDimension::Alloc);
  }

  void execListOp(ListInstance &I, const TraceOp &Op) {
    recordWork(I, Op);
    List<uint64_t> &L = I.Facade;
    std::vector<uint64_t> &M = I.Mirror;
    switch (Op.Kind) {
    case TraceOpKind::Populate: {
      uint64_t V = I.NextVal++;
      L.add(V);
      M.push_back(V);
      break;
    }
    case TraceOpKind::InsertAt: {
      size_t Idx = pickInsertIndex(Op.Class, M.size(), I.Rng);
      uint64_t V = I.NextVal++;
      L.insert(Idx, V);
      M.insert(M.begin() + static_cast<ptrdiff_t>(Idx), V);
      break;
    }
    case TraceOpKind::RemoveAt: {
      if (M.empty())
        break;
      size_t Idx = pickExistingIndex(Op.Class, M.size(), I.Rng);
      L.removeAt(Idx);
      M.erase(M.begin() + static_cast<ptrdiff_t>(Idx));
      break;
    }
    case TraceOpKind::RemoveValue: {
      if (Op.Class == OpClass::Hit && !M.empty()) {
        size_t Idx = I.Rng.nextBelow(M.size());
        L.remove(M[Idx]);
        M.erase(M.begin() + static_cast<ptrdiff_t>(Idx));
      } else {
        L.remove(missValue(I.Rng));
      }
      break;
    }
    case TraceOpKind::IndexGet: {
      if (M.empty())
        break;
      Sink += L.get(pickExistingIndex(Op.Class, M.size(), I.Rng));
      break;
    }
    case TraceOpKind::IndexSet: {
      if (M.empty())
        break;
      size_t Idx = pickExistingIndex(Op.Class, M.size(), I.Rng);
      uint64_t V = I.NextVal++;
      L.set(Idx, V);
      M[Idx] = V;
      break;
    }
    case TraceOpKind::Contains: {
      uint64_t V = Op.Class == OpClass::Hit && !M.empty()
                       ? M[I.Rng.nextBelow(M.size())]
                       : missValue(I.Rng);
      Sink += L.contains(V) ? 1 : 0;
      break;
    }
    case TraceOpKind::Iterate: {
      uint64_t Sum = 0;
      L.forEach([&Sum](const uint64_t &V) { Sum += V; });
      Sink += Sum;
      break;
    }
    case TraceOpKind::Clear:
      L.clear();
      M.clear();
      break;
    default:
      break;
    }
    if (L.size() != Op.Size)
      ++Result.SizeMismatches;
  }

  void execSetOp(SetInstance &I, const TraceOp &Op) {
    recordWork(I, Op);
    Set<uint64_t> &S = I.Facade;
    std::vector<uint64_t> &Keys = I.LiveKeys;
    switch (Op.Kind) {
    case TraceOpKind::Populate: {
      if (Op.Class == OpClass::Hit && !Keys.empty()) {
        S.add(Keys[I.Rng.nextBelow(Keys.size())]);
      } else {
        uint64_t K = I.NextKey++;
        S.add(K);
        Keys.push_back(K);
      }
      break;
    }
    case TraceOpKind::Contains: {
      uint64_t K = Op.Class == OpClass::Hit && !Keys.empty()
                       ? Keys[I.Rng.nextBelow(Keys.size())]
                       : missValue(I.Rng);
      Sink += S.contains(K) ? 1 : 0;
      break;
    }
    case TraceOpKind::RemoveValue: {
      if (Op.Class == OpClass::Hit && !Keys.empty()) {
        size_t Idx = I.Rng.nextBelow(Keys.size());
        S.remove(Keys[Idx]);
        Keys[Idx] = Keys.back();
        Keys.pop_back();
      } else {
        S.remove(missValue(I.Rng));
      }
      break;
    }
    case TraceOpKind::Iterate: {
      uint64_t Sum = 0;
      S.forEach([&Sum](const uint64_t &V) { Sum += V; });
      Sink += Sum;
      break;
    }
    case TraceOpKind::Clear:
      S.clear();
      Keys.clear();
      break;
    default:
      break;
    }
    if (S.size() != Op.Size)
      ++Result.SizeMismatches;
  }

  void execMapOp(MapInstance &I, const TraceOp &Op) {
    recordWork(I, Op);
    Map<uint64_t, uint64_t> &M = I.Facade;
    std::vector<uint64_t> &Keys = I.LiveKeys;
    switch (Op.Kind) {
    case TraceOpKind::Populate: {
      if (Op.Class == OpClass::Hit && !Keys.empty()) {
        M.put(Keys[I.Rng.nextBelow(Keys.size())], I.Rng.next());
      } else {
        uint64_t K = I.NextKey++;
        M.put(K, I.Rng.next());
        Keys.push_back(K);
      }
      break;
    }
    case TraceOpKind::Contains: {
      uint64_t K = Op.Class == OpClass::Hit && !Keys.empty()
                       ? Keys[I.Rng.nextBelow(Keys.size())]
                       : missValue(I.Rng);
      const uint64_t *V = M.get(K);
      Sink += V ? *V : 0;
      break;
    }
    case TraceOpKind::RemoveValue: {
      if (Op.Class == OpClass::Hit && !Keys.empty()) {
        size_t Idx = I.Rng.nextBelow(Keys.size());
        M.remove(Keys[Idx]);
        Keys[Idx] = Keys.back();
        Keys.pop_back();
      } else {
        M.remove(missValue(I.Rng));
      }
      break;
    }
    case TraceOpKind::Iterate: {
      uint64_t Sum = 0;
      M.forEach([&Sum](const uint64_t &K, const uint64_t &V) {
        Sum += K + V;
      });
      Sink += Sum;
      break;
    }
    case TraceOpKind::Clear:
      M.clear();
      Keys.clear();
      break;
    default:
      break;
    }
    if (M.size() != Op.Size)
      ++Result.SizeMismatches;
  }

  /// Executes one op of this site.
  void execute(const TraceOp &Op, const ReplayOptions &Options) {
    ++Result.OpsExecuted;
    if (Op.Kind == TraceOpKind::InstanceBegin) {
      beginInstance(Op, Options.Seed);
    } else if (Op.Kind == TraceOpKind::InstanceEnd) {
      // Destroying the facade reports its profile (engine mode).
      switch (Site->Kind) {
      case AbstractionKind::List: {
        auto It = Lists.find(Op.Instance);
        if (It != Lists.end()) {
          if (It->second.Facade.size() != Op.Size)
            ++Result.SizeMismatches;
          costInstance(It->second);
          Lists.erase(It);
        }
        break;
      }
      case AbstractionKind::Set: {
        auto It = Sets.find(Op.Instance);
        if (It != Sets.end()) {
          if (It->second.Facade.size() != Op.Size)
            ++Result.SizeMismatches;
          costInstance(It->second);
          Sets.erase(It);
        }
        break;
      }
      case AbstractionKind::Map: {
        auto It = Maps.find(Op.Instance);
        if (It != Maps.end()) {
          if (It->second.Facade.size() != Op.Size)
            ++Result.SizeMismatches;
          costInstance(It->second);
          Maps.erase(It);
        }
        break;
      }
      }
    } else {
      // Collection op: dispatch to the live instance. Ops of instances
      // whose begin marker was dropped are skipped (the trace's
      // OpsDropped counter reports the loss).
      switch (Site->Kind) {
      case AbstractionKind::List: {
        auto It = Lists.find(Op.Instance);
        if (It != Lists.end())
          execListOp(It->second, Op);
        break;
      }
      case AbstractionKind::Set: {
        auto It = Sets.find(Op.Instance);
        if (It != Sets.end())
          execSetOp(It->second, Op);
        break;
      }
      case AbstractionKind::Map: {
        auto It = Maps.find(Op.Instance);
        if (It != Maps.end())
          execMapOp(It->second, Op);
        break;
      }
      }
    }
    if (context()) {
      if (++OpsSinceEval >= Options.EvalEveryOps) {
        OpsSinceEval = 0;
        evaluateContext();
      }
    }
  }

  /// End of stream: stragglers die (publishing their profiles), then a
  /// final evaluation closes the last monitoring round.
  void finish() {
    if (CostModel) {
      // Cost stragglers in instance-id order: double accumulation is
      // order-sensitive and the unordered_map iteration order must not
      // leak into the (bit-deterministic) trajectory totals.
      auto CostAll = [this](auto &Instances) {
        std::vector<uint32_t> Ids;
        Ids.reserve(Instances.size());
        for (const auto &Entry : Instances)
          Ids.push_back(Entry.first);
        std::sort(Ids.begin(), Ids.end());
        for (uint32_t Id : Ids)
          costInstance(Instances.at(Id));
      };
      CostAll(Lists);
      CostAll(Sets);
      CostAll(Maps);
    }
    Lists.clear();
    Sets.clear();
    Maps.clear();
    if (AllocationContextBase *Ctx = context()) {
      evaluateContext();
      Result.FinalVariantIndex = Ctx->currentVariantIndex();
    } else {
      Result.FinalVariantIndex = FixedVariant;
    }
  }
};

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

Replayer::Replayer(OpTrace Trace, ReplayOptions Options)
    : Trace(std::move(Trace)), Options(std::move(Options)) {}

ReplayResult Replayer::run() {
  assert((Options.Mode != ReplayMode::Engine || Options.Model) &&
         "engine-mode replay requires a performance model");

  size_t NumSites = Trace.Sites.size();
  std::vector<SiteRun> Runs(NumSites);
  SwitchEngine Engine; // Private registry; never started — evaluation
                       // is driven deterministically below.
  for (size_t I = 0; I != NumSites; ++I) {
    const TraceSite &Site = Trace.Sites[I];
    SiteRun &Run = Runs[I];
    Run.Site = &Site;
    Run.Index = static_cast<uint32_t>(I);
    Run.CostModel = Options.Model.get();
    Run.Result.Name = Site.Name;
    Run.Result.Kind = Site.Kind;
    Run.Result.InitialVariantIndex = Site.DeclaredVariantIndex;
    if (Options.Mode == ReplayMode::Engine) {
      switch (Site.Kind) {
      case AbstractionKind::List:
        Run.ListCtx = std::make_unique<ListContext<uint64_t>>(
            Site.Name, static_cast<ListVariant>(Site.DeclaredVariantIndex),
            Options.Model, Options.Rule, Options.Context);
        break;
      case AbstractionKind::Set:
        Run.SetCtx = std::make_unique<SetContext<uint64_t>>(
            Site.Name, static_cast<SetVariant>(Site.DeclaredVariantIndex),
            Options.Model, Options.Rule, Options.Context);
        break;
      case AbstractionKind::Map:
        Run.MapCtx = std::make_unique<MapContext<uint64_t, uint64_t>>(
            Site.Name, static_cast<MapVariant>(Site.DeclaredVariantIndex),
            Options.Model, Options.Rule, Options.Context);
        break;
      }
      Engine.registerContext(Run.context());
    } else {
      unsigned Declared = Site.DeclaredVariantIndex;
      switch (Site.Kind) {
      case AbstractionKind::List:
        Run.FixedVariant = Options.FixedList.value_or(Declared);
        break;
      case AbstractionKind::Set:
        Run.FixedVariant = Options.FixedSet.value_or(Declared);
        break;
      case AbstractionKind::Map:
        Run.FixedVariant = Options.FixedMap.value_or(Declared);
        break;
      }
    }
  }

  unsigned Threads = std::max(1u, Options.Threads);
  if (NumSites > 0)
    Threads = static_cast<unsigned>(
        std::min<size_t>(Threads, NumSites));
  std::atomic<uint64_t> AllocatedBytes{0};

  // Sites are partitioned round-robin; every worker scans the whole op
  // stream and executes only its sites' ops, preserving each site's
  // recorded op order exactly.
  auto Worker = [&](unsigned ThreadIndex) {
    AllocationScope Scope;
    for (const TraceOp &Op : Trace.Ops) {
      if (Op.Site >= NumSites || Op.Site % Threads != ThreadIndex)
        continue;
      Runs[Op.Site].execute(Op, Options);
    }
    for (size_t I = ThreadIndex; I < NumSites; I += Threads)
      Runs[I].finish();
    AllocatedBytes.fetch_add(Scope.allocatedInScope(),
                             std::memory_order_relaxed);
  };

  Timer Clock;
  if (Threads == 1) {
    Worker(0);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads - 1);
    for (unsigned T = 1; T != Threads; ++T)
      Pool.emplace_back(Worker, T);
    Worker(0);
    for (std::thread &T : Pool)
      T.join();
  }
  uint64_t Elapsed = Clock.elapsedNanos();

  ReplayResult Result;
  Result.ElapsedNanos = Elapsed;
  Result.AllocatedBytes = AllocatedBytes.load(std::memory_order_relaxed);
  Result.Sites.reserve(NumSites);
  for (SiteRun &Run : Runs) {
    if (Options.Mode == ReplayMode::Engine)
      Engine.unregisterContext(Run.context());
    Result.OpsExecuted += Run.Result.OpsExecuted;
    Result.InstancesReplayed += Run.InstancesReplayed;
    Result.SizeMismatches += Run.Result.SizeMismatches;
    Result.Evaluations += Run.Result.Evaluations;
    Result.Switches += Run.Result.Switches;
    Result.TrajectoryTime += Run.Result.TrajectoryTime;
    Result.TrajectoryAlloc += Run.Result.TrajectoryAlloc;
    Result.DecisionLog += Run.Log;
    Result.Sites.push_back(std::move(Run.Result));
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Trace aggregation
//===----------------------------------------------------------------------===//

std::vector<SiteProfile> cswitch::aggregateTrace(const OpTrace &Trace) {
  struct SiteAccum {
    std::unordered_map<uint32_t, WorkloadProfile> Live;
    std::vector<std::pair<uint32_t, WorkloadProfile>> Done;
  };
  std::vector<SiteAccum> Accums(Trace.Sites.size());

  for (const TraceOp &Op : Trace.Ops) {
    if (Op.Site >= Accums.size())
      continue;
    SiteAccum &A = Accums[Op.Site];
    if (Op.Kind == TraceOpKind::InstanceBegin) {
      A.Live.emplace(Op.Instance, WorkloadProfile());
      continue;
    }
    auto It = A.Live.find(Op.Instance);
    if (It == A.Live.end())
      continue; // Begin marker lost to the bounded buffer.
    if (Op.Kind == TraceOpKind::InstanceEnd) {
      A.Done.emplace_back(Op.Instance, It->second);
      A.Live.erase(It);
      continue;
    }
    if (std::optional<OperationKind> Kind = toOperationKind(Op.Kind))
      It->second.record(*Kind);
    It->second.recordSize(Op.Size);
  }

  std::vector<SiteProfile> Out;
  Out.reserve(Trace.Sites.size());
  for (size_t I = 0, E = Trace.Sites.size(); I != E; ++I) {
    SiteAccum &A = Accums[I];
    for (auto &Live : A.Live)
      A.Done.emplace_back(Live.first, Live.second);
    std::sort(A.Done.begin(), A.Done.end(),
              [](const auto &L, const auto &R) { return L.first < R.first; });
    SiteProfile Profile;
    Profile.Name = Trace.Sites[I].Name;
    Profile.Kind = Trace.Sites[I].Kind;
    Profile.DeclaredVariantIndex = Trace.Sites[I].DeclaredVariantIndex;
    Profile.Profiles.reserve(A.Done.size());
    for (auto &Done : A.Done)
      Profile.Profiles.push_back(Done.second);
    Out.push_back(std::move(Profile));
  }
  return Out;
}
