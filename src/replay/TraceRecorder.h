//===- TraceRecorder.h - Lock-free operation-trace recorder -----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-overhead recorder that captures an operation trace behind the
/// existing monitoring hooks: allocation contexts register their site
/// and ask the recorder whether each created instance should be sampled;
/// the collection facades then append one TraceOp per executed
/// operation. The recorded stream is extracted as an OpTrace and
/// persisted in the cswitch-optrace-v1 format (TraceFormat.h) for the
/// Replayer and the PolicySimulator.
///
/// Record-path discipline (same as the EventLog ring, DESIGN.md §6/§7):
/// record() is wait-free apart from one relaxed `fetch_add` that claims
/// a slot ticket; the payload is written into the claimed slot and
/// published with one release-store of the slot's Ready flag. Recorders
/// never block on each other or on the consumer. Unlike the EventLog the
/// buffer does not wrap: a trace must preserve its prefix to stay
/// replayable, so once the bounded buffer is full further operations are
/// *dropped and counted* (opsDropped()), never overwritten.
///
/// Sampling: with sampleEvery == N, every Nth created instance per
/// recorder is traced (the rest are counted as skipped). Sampled
/// instances are traced completely — per-instance sampling keeps every
/// recorded life-cycle replayable, where per-op sampling would not.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_REPLAY_TRACERECORDER_H
#define CSWITCH_REPLAY_TRACERECORDER_H

#include "replay/TraceFormat.h"
#include "support/Telemetry.h"
#include "support/Timer.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace cswitch {

/// Tuning knobs of a TraceRecorder.
struct TraceRecorderOptions {
  /// Maximum operations retained (bounded buffer; excess ops are dropped
  /// and counted). Default fits ~24 MB of slots.
  size_t Capacity = 1 << 20;
  /// Sample one of every N created instances (1 = trace everything).
  uint64_t SampleEvery = 1;

  TraceRecorderOptions &capacity(size_t Value) {
    Capacity = Value;
    return *this;
  }
  TraceRecorderOptions &sampleEvery(uint64_t Value) {
    SampleEvery = Value;
    return *this;
  }
};

/// One buffered, not-yet-claimed trace operation. Site and instance are
/// implicit in the owning TraceCursor, so the entry stays at 8 bytes.
struct BufferedTraceOp {
  uint32_t Size = 0;
  uint8_t Kind = 0;
  uint8_t Class = 0;
};

/// Lock-free bounded operation recorder.
///
/// Thread-safe: any number of facades may record() concurrently while
/// contexts register sites and sample instances. Site registration is a
/// mutex-guarded cold path (once per allocation site); everything on the
/// per-operation path is a fetch_add plus plain stores.
class TraceRecorder {
public:
  explicit TraceRecorder(TraceRecorderOptions Options = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  //===--------------------------------------------------------------===//
  // Site registration + instance sampling (cold paths)
  //===--------------------------------------------------------------===//

  /// Registers an allocation site and returns its trace-site index.
  /// Idempotent by name: re-registering a known name returns the
  /// existing index (harnesses reconstruct their contexts per run).
  uint32_t registerSite(std::string_view Name, AbstractionKind Kind,
                        unsigned DeclaredVariantIndex);

  /// Decides whether the next instance created at \p Site is sampled.
  /// On true, \p InstanceOut receives the recorder-assigned instance id;
  /// the caller attaches the recorder to the new facade, whose
  /// TraceCursor records the InstanceBegin marker (direct users of the
  /// record() API must record it themselves). On false the instance is
  /// counted as skipped and must not be traced.
  bool beginInstance(uint32_t Site, uint32_t &InstanceOut);

  //===--------------------------------------------------------------===//
  // Record path (lock-free, allocation-free)
  //===--------------------------------------------------------------===//

  /// Appends one operation. One relaxed fetch_add claims the ticket;
  /// tickets past the buffer capacity are counted as dropped and the
  /// call returns without writing. Timestamps are sampled, not read per
  /// op: one ticket in 64 reads the clock into a side array and the ops
  /// of the bucket share that sample (replay never consumes timestamps;
  /// they only inform duration/rate reporting, where 64-op resolution is
  /// ample — and reading the clock on every op would dominate the
  /// record path).
  void record(uint32_t Site, uint32_t Instance, TraceOpKind Kind,
              OpClass Class, size_t Size) {
    uint64_t Ticket = Next.fetch_add(1, std::memory_order_relaxed);
    if (Ticket >= Cap)
      return; // Buffer full: Next - Cap is the drop count.
    if ((Ticket & TimeBucketMask) == 0)
      TimeSamples[Ticket >> TimeBucketShift].store(
          Clock.elapsedNanos(), std::memory_order_relaxed);
    OpSlot &Slot = Slots[Ticket];
    Slot.Site = Site;
    Slot.Instance = Instance;
    Slot.Kind = static_cast<uint8_t>(Kind);
    Slot.Class = static_cast<uint8_t>(Class);
    Slot.Size = Size > UINT32_MAX ? UINT32_MAX
                                  : static_cast<uint32_t>(Size);
    Slot.Ready.store(1, std::memory_order_release);
  }

  /// Appends \p N operations of one instance with a single ticket claim.
  /// This is the TraceCursor flush path: facades buffer their ops
  /// locally and amortize the contended fetch_add over the batch, so a
  /// traced instance costs one RMW per ~buffer-length operations instead
  /// of one per operation. The batch occupies consecutive tickets (ops
  /// of an instance stay in program order); drop accounting is exact
  /// because every claimed ticket is either written or past capacity.
  void recordBatch(uint32_t Site, uint32_t Instance,
                   const BufferedTraceOp *Ops, size_t N);

  //===--------------------------------------------------------------===//
  // Consumption + accounting
  //===--------------------------------------------------------------===//

  /// Extracts the recorded stream as an OpTrace (site table, ops in
  /// ticket order, drop/sampling counters). Slots still mid-publication
  /// are skipped; call after the traced workload has quiesced for a
  /// complete trace. Does not consume: recording may continue.
  OpTrace trace() const;

  /// Forgets all recorded ops and counters; the site table is retained
  /// (site indices stay valid). Not safe concurrently with record().
  void clear();

  /// Operations recorded into the buffer (excluding dropped).
  uint64_t opsRecorded() const;
  /// Operations lost to the bounded buffer.
  uint64_t opsDropped() const;
  /// Instances sampled (traced) so far.
  uint64_t instancesSampled() const;
  /// Instances passed over by sampling.
  uint64_t instancesSkipped() const;

  /// This recorder's counters in telemetry form (Recorders = 1).
  RecorderStats stats() const;

  /// Slot capacity of the buffer.
  size_t capacity() const { return Cap; }

private:
  /// One claimed slot, 16 bytes so four slots share a cache line. Ready
  /// is 0 until the writer's release-store publishes the payload; the
  /// consumer acquires it before reading. Timestamps live in the
  /// bucketed TimeSamples side array, not in the slot.
  struct OpSlot {
    uint32_t Site = 0;
    uint32_t Instance = 0;
    uint32_t Size = 0;
    uint8_t Kind = 0;
    uint8_t Class = 0;
    std::atomic<uint8_t> Ready{0};
  };
  static_assert(sizeof(OpSlot) <= 16, "record path relies on slot density");

  /// One clock sample is taken per 64-ticket bucket; the ops of a bucket
  /// all report the bucket's timestamp.
  static constexpr uint64_t TimeBucketShift = 6;
  static constexpr uint64_t TimeBucketMask = (1u << TimeBucketShift) - 1;

  size_t Cap;
  uint64_t SampleEvery;
  std::unique_ptr<OpSlot[]> Slots;
  std::unique_ptr<std::atomic<uint64_t>[]> TimeSamples;
  Timer Clock;

  /// Monotonic ticket counter: the single point of contention on the
  /// record path. Tickets >= Cap are drops. Own cache line — every
  /// record() hits it, so it must not false-share with the
  /// instance-sampling counters below.
  alignas(64) std::atomic<uint64_t> Next{0};
  /// Sampling decision counter; with SampleEvery == 1 it doubles as the
  /// instance-id source (beginInstance then needs a single RMW).
  alignas(64) std::atomic<uint64_t> SeenInstances{0};
  /// Sampled-instance id source. Own line: with SampleEvery > 1 every
  /// creation RMWs SeenInstances while only sampled creations RMW this
  /// one — sharing the line would put the rare path's misses on the
  /// common path (false-sharing audit, EXPERIMENTS.md).
  alignas(64) std::atomic<uint64_t> NextInstance{0};

  /// Site table (cold path).
  mutable std::mutex SiteMutex;
  std::vector<TraceSite> Sites;

  /// RecorderRegistry attachment (telemetry integration).
  uint64_t RegistryId = 0;
};

/// Per-facade write cursor into a TraceRecorder.
///
/// A traced facade owns one cursor for its whole life: operations are
/// buffered locally (plain stores, no atomics) and handed to the
/// recorder in batches via recordBatch(), so the contended ticket
/// counter is touched once per batch rather than once per operation.
/// finish() appends the InstanceEnd marker, flushes, and detaches; a
/// facade's ops therefore become visible to trace() in bursts, the last
/// one when the facade dies. Within an instance program order is
/// preserved (batches claim consecutive tickets in flush order).
///
/// Not thread-safe — a cursor belongs to one facade, and facades are
/// single-owner objects. Moving a cursor transfers the buffered ops and
/// detaches the source.
class TraceCursor {
public:
  TraceCursor() = default;

  TraceCursor(TraceCursor &&Other) noexcept
      : Rec(Other.Rec), Site(Other.Site), Instance(Other.Instance),
        Count(Other.Count), Ops(Other.Ops) {
    Other.Rec = nullptr;
    Other.Count = 0;
  }

  /// Move-assignment expects the destination to be detached (facades
  /// finish their trace before being overwritten).
  TraceCursor &operator=(TraceCursor &&Other) noexcept {
    Rec = Other.Rec;
    Site = Other.Site;
    Instance = Other.Instance;
    Count = Other.Count;
    Ops = Other.Ops;
    Other.Rec = nullptr;
    Other.Count = 0;
    return *this;
  }

  TraceCursor(const TraceCursor &) = delete;
  TraceCursor &operator=(const TraceCursor &) = delete;

  ~TraceCursor() { finish(0); } // No-op when already finished/detached.

  /// Binds the cursor to \p Recorder as instance \p Instance of site
  /// \p Site and buffers the InstanceBegin marker. The recorder must
  /// outlive the cursor.
  void attach(TraceRecorder *Recorder, uint32_t SiteIndex,
              uint32_t InstanceId) {
    Rec = Recorder;
    Site = SiteIndex;
    Instance = InstanceId;
    Count = 0;
    push(TraceOpKind::InstanceBegin, OpClass::None, 0);
  }

  /// True while bound to a recorder.
  explicit operator bool() const { return Rec != nullptr; }

  /// Buffers one operation; flushes when the buffer fills.
  void push(TraceOpKind Kind, OpClass Class, size_t Size) {
    if (!Rec)
      return;
    BufferedTraceOp &Op = Ops[Count];
    Op.Size = Size > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(Size);
    Op.Kind = static_cast<uint8_t>(Kind);
    Op.Class = static_cast<uint8_t>(Class);
    if (++Count == Ops.size())
      flush();
  }

  /// Appends the InstanceEnd marker (final size \p FinalSize), flushes
  /// everything, and detaches.
  void finish(size_t FinalSize) {
    if (!Rec)
      return;
    push(TraceOpKind::InstanceEnd, OpClass::None, FinalSize);
    flush();
    Rec = nullptr;
  }

private:
  void flush() {
    if (Count != 0) {
      Rec->recordBatch(Site, Instance, Ops.data(), Count);
      Count = 0;
    }
  }

  TraceRecorder *Rec = nullptr;
  uint32_t Site = 0;
  uint32_t Instance = 0;
  size_t Count = 0;
  std::array<BufferedTraceOp, 8> Ops{};
};

} // namespace cswitch

#endif // CSWITCH_REPLAY_TRACERECORDER_H
