//===- MetricsExport.h - Telemetry serialization ----------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializers for TelemetrySnapshot: a stable JSON document (schema
/// "cswitch-telemetry-v1", consumed by the CI bench artifacts and the
/// snapshot-consistency tests) and a flat CSV table (one row per
/// context) for spreadsheet-grade analysis. Plus the small JSON string
/// escaping helper the tools reuse for their own reports.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_METRICSEXPORT_H
#define CSWITCH_SUPPORT_METRICSEXPORT_H

#include "support/Telemetry.h"

#include <string>
#include <string_view>

namespace cswitch {

/// Escapes \p Text for inclusion inside a JSON string literal: quotes,
/// backslashes and control characters are escaped, valid UTF-8 passes
/// through verbatim, and bytes that are not well-formed UTF-8 become
/// U+FFFD so the emitted document always parses.
std::string jsonEscape(std::string_view Text);

/// Serializes \p Snapshot as a JSON document:
/// \code
/// {
///   "schema": "cswitch-telemetry-v1",
///   "engine": {"contexts": N, "instances_created": ..., ...},
///   "latency": {"record": {"count": ..., "p50": ..., "p99": ...},
///               "evaluate": {...}, "switch": {...}, "persist": {...}},
///   "events": {"recorded": ..., "dropped": ...},
///   "recorder": {"recorders": ..., "ops_recorded": ...,
///                "ops_dropped": ..., "instances_sampled": ...,
///                "instances_skipped": ...},
///   "contexts": [{"name": ..., "abstraction": ..., "variant": ...,
///                 "instances_created": ..., ..., "footprint_bytes": ...,
///                 "contended_threads": ...,
///                 "latency": {"record": {...}, "evaluate": {...},
///                             "switch": {...}}}]
/// }
/// \endcode
/// Engine totals always equal the per-context column sums of the same
/// snapshot (the round-trip invariant the tests pin down).
std::string toJson(const TelemetrySnapshot &Snapshot);

/// Serializes the per-context breakdown as CSV with a header row:
/// name,abstraction,variant,instances_created,instances_monitored,
/// profiles_published,profiles_discarded,evaluations,switches,
/// footprint_bytes,contended_threads
/// Preceded by `#` comment lines carrying the event-log and trace
/// recorder loss counters.
std::string toCsv(const TelemetrySnapshot &Snapshot);

/// Writes \p Content to \p Path; returns false on I/O failure.
bool writeTextFile(const std::string &Path, std::string_view Content);

} // namespace cswitch

#endif // CSWITCH_SUPPORT_METRICSEXPORT_H
