//===- Statistics.h - Summary statistics and significance ------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics and a two-sample significance test. The paper reports
/// DaCapo results over 30 measured runs and only quotes differences that
/// pass a Tukey HSD test; this module provides the equivalent decision via
/// Welch's t-test (see DESIGN.md §1 for the substitution rationale), plus
/// the mean/stddev/CI machinery every harness prints.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_STATISTICS_H
#define CSWITCH_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace cswitch {

/// Summary of a sample: count, mean, variance and extremes.
struct SampleStats {
  size_t Count = 0;
  double Mean = 0.0;
  double Variance = 0.0; ///< Unbiased (n-1) sample variance.
  double Min = 0.0;
  double Max = 0.0;

  double stddev() const;
  /// Half-width of the ~95% confidence interval for the mean (normal
  /// approximation, adequate for the 30-run samples used here).
  double ci95HalfWidth() const;
};

/// Computes summary statistics of \p Values (empty input yields all-zero).
SampleStats summarize(const std::vector<double> &Values);

/// Result of a two-sample comparison.
struct ComparisonResult {
  bool Significant = false; ///< True if the means differ at ~5% level.
  double MeanDifference = 0.0; ///< mean(B) - mean(A).
  double TStatistic = 0.0;
  /// Relative change of B versus A: (mean(B) - mean(A)) / mean(A).
  double RelativeChange = 0.0;
};

/// Welch's unequal-variance t-test of mean(A) vs mean(B) at the ~5% level.
///
/// Degrees of freedom follow Welch–Satterthwaite; the critical value is
/// looked up from a built-in t-table. Samples of fewer than two
/// observations are never significant.
ComparisonResult compareMeans(const std::vector<double> &A,
                              const std::vector<double> &B);

/// Two-sided 5%-level critical value of Student's t for \p Df degrees of
/// freedom (interpolated from a built-in table; asymptotes to 1.96).
double tCriticalValue5Percent(double Df);

} // namespace cswitch

#endif // CSWITCH_SUPPORT_STATISTICS_H
