//===- Polynomial.cpp - Dense univariate polynomials ---------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Polynomial.h"

#include <sstream>

using namespace cswitch;

Polynomial Polynomial::operator+(const Polynomial &Other) const {
  const auto &A = Coefficients;
  const auto &B = Other.Coefficients;
  std::vector<double> Sum(std::max(A.size(), B.size()), 0.0);
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Sum[I] += A[I];
  for (size_t I = 0, E = B.size(); I != E; ++I)
    Sum[I] += B[I];
  return Polynomial(std::move(Sum));
}

Polynomial Polynomial::scaled(double Factor) const {
  std::vector<double> Coeffs = Coefficients;
  for (double &C : Coeffs)
    C *= Factor;
  return Polynomial(std::move(Coeffs));
}

std::string Polynomial::toString() const {
  if (Coefficients.empty())
    return "0";
  std::ostringstream OS;
  for (size_t I = 0, E = Coefficients.size(); I != E; ++I) {
    if (I != 0)
      OS << " + ";
    OS << Coefficients[I];
    if (I == 1)
      OS << "*x";
    else if (I > 1)
      OS << "*x^" << I;
  }
  return OS.str();
}
