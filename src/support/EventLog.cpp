//===- EventLog.cpp - Framework event tracing ----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

using namespace cswitch;

const char *cswitch::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::ContextCreated:
    return "context-created";
  case EventKind::MonitoringRound:
    return "monitoring-round";
  case EventKind::Evaluation:
    return "evaluation";
  case EventKind::Transition:
    return "transition";
  case EventKind::AdaptiveMigration:
    return "adaptive-migration";
  }
  return "unknown";
}

EventLog &EventLog::global() {
  static EventLog Instance;
  return Instance;
}

void EventLog::record(EventKind Kind, std::string Context,
                      std::string Detail) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Event E{Kind, std::move(Context), std::move(Detail), NextSequence++};
  if (Ring.size() < Capacity) {
    Ring.push_back(std::move(E));
    return;
  }
  // Ring full: overwrite the oldest slot.
  Ring[Head] = std::move(E);
  Head = (Head + 1) % Capacity;
  ++Dropped;
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<Event> Out;
  Out.reserve(Ring.size());
  for (size_t I = 0, E = Ring.size(); I != E; ++I)
    Out.push_back(Ring[(Head + I) % Ring.size()]);
  return Out;
}

std::vector<Event> EventLog::snapshotOfKind(EventKind Kind) const {
  std::vector<Event> All = snapshot();
  std::vector<Event> Out;
  for (Event &E : All)
    if (E.Kind == Kind)
      Out.push_back(std::move(E));
  return Out;
}

void EventLog::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Ring.clear();
  Head = 0;
  Dropped = 0;
}

uint64_t EventLog::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Dropped;
}

uint64_t EventLog::totalRecorded() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return NextSequence;
}
