//===- EventLog.cpp - Framework event tracing ----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include "support/Timer.h"
#include "support/Topology.h"

#include <algorithm>

using namespace cswitch;

// TSan does not model std::atomic_thread_fence (GCC even rejects it
// under -fsanitize=thread -Werror=tsan). Every slot field is atomic, so
// the fences below are value-ordering devices only — no non-atomic
// state is published through them — and can weaken to compiler fences
// under the sanitizer without hiding any reportable race.
#if defined(__SANITIZE_THREAD__)
#define CSWITCH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CSWITCH_TSAN 1
#endif
#endif

namespace {

inline void orderingFence(std::memory_order Order) {
#ifdef CSWITCH_TSAN
  std::atomic_signal_fence(Order);
#else
  std::atomic_thread_fence(Order);
#endif
}

} // namespace

const char *cswitch::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::ContextCreated:
    return "context-created";
  case EventKind::MonitoringRound:
    return "monitoring-round";
  case EventKind::Evaluation:
    return "evaluation";
  case EventKind::Transition:
    return "transition";
  case EventKind::AdaptiveMigration:
    return "adaptive-migration";
  case EventKind::WarmStart:
    return "warm-start";
  case EventKind::Store:
    return "store";
  }
  return "unknown";
}

EventLog &EventLog::global() {
  static EventLog Instance;
  return Instance;
}

namespace {

size_t roundUpPow2(size_t Value) {
  size_t Pow = 1;
  while (Pow < Value)
    Pow <<= 1;
  return Pow;
}

} // namespace

EventLog::EventLog(size_t Capacity, unsigned Nodes)
    : Nodes(Nodes ? Nodes : Topology::system().nodeCount()) {
  // Split the slot budget over the rings: each ring gets the per-node
  // share rounded up to a power of two, so a single-node log has the
  // exact pre-sharding capacity.
  size_t PerRing = (std::max<size_t>(Capacity, 2) + this->Nodes - 1) /
                   this->Nodes;
  RingCap = roundUpPow2(std::max<size_t>(PerRing, 2));
  Mask = RingCap - 1;
  Rings = std::make_unique<Ring[]>(this->Nodes);
  for (unsigned N = 0; N != this->Nodes; ++N)
    Rings[N].Slots = std::make_unique<Slot[]>(RingCap);
  // Id 0 is reserved for the empty string so that "no detail" needs no
  // interning.
  InternedText.emplace_back();
  InternedIds.emplace("", 0);
}

uint32_t EventLog::intern(std::string_view Text) {
  if (Text.empty())
    return 0;
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto It = InternedIds.find(std::string(Text));
  if (It != InternedIds.end())
    return It->second;
  auto Id = static_cast<uint32_t>(InternedText.size());
  InternedText.emplace_back(Text);
  InternedIds.emplace(InternedText.back(), Id);
  return Id;
}

std::string EventLog::textOf(uint32_t Id) const {
  std::lock_guard<std::mutex> Lock(InternMutex);
  if (Id >= InternedText.size())
    return {};
  return InternedText[Id];
}

void EventLog::recordOnRing(unsigned Node, EventKind Kind,
                            uint32_t ContextId, uint32_t DetailId) {
  Ring &R = Rings[Node];
  uint64_t Ticket = R.Next.fetch_add(1, std::memory_order_relaxed);
  Slot &S = R.Slots[Ticket & Mask];
  // Seqlock write protocol: odd version opens the write, the release
  // fence orders it before the payload stores, the release store of the
  // even version publishes the payload. Two writers racing on a wrapped
  // slot leave one of their versions behind; readers reject the slot
  // unless both version loads agree on the ticket they expect.
  S.Ver.store(2 * Ticket + 1, std::memory_order_relaxed);
  orderingFence(std::memory_order_release);
  S.Ts.store(monotonicNanos(), std::memory_order_relaxed);
  S.Context.store(ContextId, std::memory_order_relaxed);
  S.Detail.store(DetailId, std::memory_order_relaxed);
  S.Kind.store(static_cast<uint32_t>(Kind), std::memory_order_relaxed);
  S.Ver.store(2 * Ticket + 2, std::memory_order_release);
}

void EventLog::record(EventKind Kind, uint32_t ContextId,
                      uint32_t DetailId) {
  if (!Enabled.load(std::memory_order_relaxed))
    return;
  recordOnRing(currentStripe(Nodes), Kind, ContextId, DetailId);
}

void EventLog::recordOnNode(unsigned Node, EventKind Kind,
                            uint32_t ContextId, uint32_t DetailId) {
  if (!Enabled.load(std::memory_order_relaxed))
    return;
  recordOnRing(Node % Nodes, Kind, ContextId, DetailId);
}

void EventLog::record(EventKind Kind, std::string_view Context,
                      std::string_view Detail) {
  if (!Enabled.load(std::memory_order_relaxed))
    return;
  record(Kind, intern(Context), intern(Detail));
}

std::vector<EventLog::RawEvent>
EventLog::collect(unsigned Node, uint64_t Lo, uint64_t Hi) const {
  std::vector<RawEvent> Out;
  if (Lo >= Hi)
    return Out;
  const Ring &R = Rings[Node];
  Out.reserve(static_cast<size_t>(Hi - Lo));
  for (uint64_t Ticket = Lo; Ticket != Hi; ++Ticket) {
    const Slot &S = R.Slots[Ticket & Mask];
    uint64_t Expected = 2 * Ticket + 2;
    uint64_t V1 = S.Ver.load(std::memory_order_acquire);
    if (V1 != Expected)
      continue; // mid-write, overwritten, or never published
    RawEvent Raw;
    Raw.Ticket = Ticket;
    Raw.Ts = S.Ts.load(std::memory_order_relaxed);
    Raw.Context = S.Context.load(std::memory_order_relaxed);
    Raw.Detail = S.Detail.load(std::memory_order_relaxed);
    Raw.Kind = S.Kind.load(std::memory_order_relaxed);
    Raw.Node = Node;
    orderingFence(std::memory_order_acquire);
    if (S.Ver.load(std::memory_order_relaxed) != Expected)
      continue; // overwritten while reading
    Out.push_back(Raw);
  }
  return Out;
}

std::vector<EventLog::RawEvent>
EventLog::merge(std::vector<std::vector<RawEvent>> PerRing) {
  if (PerRing.size() == 1)
    return std::move(PerRing.front());
  size_t Total = 0;
  for (const auto &Ring : PerRing)
    Total += Ring.size();
  std::vector<RawEvent> Out;
  Out.reserve(Total);
  // K-way merge popping ring heads by (timestamp, node). Comparing by
  // head timestamp — not by ticket — keeps each ring's ticket order
  // intact by construction (a ring's heads are consumed front to back)
  // while interleaving rings on the shared steady clock.
  std::vector<size_t> Heads(PerRing.size(), 0);
  while (Out.size() != Total) {
    size_t Best = PerRing.size();
    for (size_t R = 0; R != PerRing.size(); ++R) {
      if (Heads[R] == PerRing[R].size())
        continue;
      if (Best == PerRing.size() ||
          PerRing[R][Heads[R]].Ts < PerRing[Best][Heads[Best]].Ts)
        Best = R;
    }
    Out.push_back(PerRing[Best][Heads[Best]++]);
  }
  return Out;
}

std::vector<Event> EventLog::resolve(
    const std::vector<RawEvent> &Raw) const {
  std::vector<Event> Out;
  Out.reserve(Raw.size());
  std::lock_guard<std::mutex> Lock(InternMutex);
  for (const RawEvent &R : Raw) {
    Event E;
    E.Kind = static_cast<EventKind>(R.Kind);
    // Ring index in the high bits keeps sequence numbers unique across
    // rings; a single-node log yields the plain ticket.
    E.SequenceNumber = (static_cast<uint64_t>(R.Node) << 48) | R.Ticket;
    E.TimestampNanos = R.Ts;
    E.ContextId = R.Context;
    E.DetailId = R.Detail;
    E.Node = R.Node;
    if (R.Context < InternedText.size())
      E.Context = InternedText[R.Context];
    if (R.Detail < InternedText.size())
      E.Detail = InternedText[R.Detail];
    Out.push_back(std::move(E));
  }
  return Out;
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> Lock(ConsumerMutex);
  std::vector<std::vector<RawEvent>> PerRing(Nodes);
  for (unsigned N = 0; N != Nodes; ++N) {
    const Ring &R = Rings[N];
    uint64_t Hi = R.Next.load(std::memory_order_acquire);
    PerRing[N] = collect(N, windowStart(R, Hi), Hi);
  }
  return resolve(merge(std::move(PerRing)));
}

std::vector<Event> EventLog::snapshotOfKind(EventKind Kind) const {
  std::vector<Event> All = snapshot();
  std::vector<Event> Out;
  for (Event &E : All)
    if (E.Kind == Kind)
      Out.push_back(std::move(E));
  return Out;
}

std::vector<Event> EventLog::drain() {
  std::lock_guard<std::mutex> Lock(ConsumerMutex);
  std::vector<std::vector<RawEvent>> PerRing(Nodes);
  for (unsigned N = 0; N != Nodes; ++N) {
    Ring &R = Rings[N];
    uint64_t Hi = R.Next.load(std::memory_order_acquire);
    uint64_t Lo = std::max(R.DrainCursor, windowStart(R, Hi));
    std::vector<RawEvent> &Raw = PerRing[N];
    uint64_t Ticket = Lo;
    for (; Ticket != Hi; ++Ticket) {
      const Slot &S = R.Slots[Ticket & Mask];
      uint64_t Expected = 2 * Ticket + 2;
      uint64_t V1 = S.Ver.load(std::memory_order_acquire);
      if (V1 < Expected)
        break; // writer still mid-publication: stop, next drain resumes
      if (V1 != Expected)
        continue; // overwritten by a later ticket
      RawEvent Re;
      Re.Ticket = Ticket;
      Re.Ts = S.Ts.load(std::memory_order_relaxed);
      Re.Context = S.Context.load(std::memory_order_relaxed);
      Re.Detail = S.Detail.load(std::memory_order_relaxed);
      Re.Kind = S.Kind.load(std::memory_order_relaxed);
      Re.Node = N;
      orderingFence(std::memory_order_acquire);
      if (S.Ver.load(std::memory_order_relaxed) != Expected)
        continue; // overwritten while reading
      Raw.push_back(Re);
    }
    R.DrainCursor = Ticket;
  }
  return resolve(merge(std::move(PerRing)));
}

void EventLog::clear() {
  std::lock_guard<std::mutex> Lock(ConsumerMutex);
  for (unsigned N = 0; N != Nodes; ++N) {
    Ring &R = Rings[N];
    uint64_t Hi = R.Next.load(std::memory_order_acquire);
    R.Base.store(Hi, std::memory_order_relaxed);
    R.DrainCursor = Hi;
  }
}

uint64_t EventLog::droppedCount() const {
  uint64_t Dropped = 0;
  for (unsigned N = 0; N != Nodes; ++N) {
    const Ring &R = Rings[N];
    uint64_t Hi = R.Next.load(std::memory_order_acquire);
    uint64_t Total = Hi - R.Base.load(std::memory_order_relaxed);
    Dropped += Total > RingCap ? Total - RingCap : 0;
  }
  return Dropped;
}

std::vector<uint64_t> EventLog::nodeDroppedCounts() const {
  std::vector<uint64_t> Out(Nodes, 0);
  for (unsigned N = 0; N != Nodes; ++N) {
    const Ring &R = Rings[N];
    uint64_t Hi = R.Next.load(std::memory_order_acquire);
    uint64_t Total = Hi - R.Base.load(std::memory_order_relaxed);
    Out[N] = Total > RingCap ? Total - RingCap : 0;
  }
  return Out;
}

uint64_t EventLog::totalRecorded() const {
  uint64_t Total = 0;
  for (unsigned N = 0; N != Nodes; ++N) {
    const Ring &R = Rings[N];
    Total += R.Next.load(std::memory_order_acquire) -
             R.Base.load(std::memory_order_relaxed);
  }
  return Total;
}
