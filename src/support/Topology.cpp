//===- Topology.cpp - Processor topology detection ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Topology.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

using namespace cswitch;

namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into cpu ids. Returns an
/// empty vector on any malformed token — callers treat that as a
/// detection failure for the node.
std::vector<unsigned> parseCpuList(const std::string &Text) {
  std::vector<unsigned> Cpus;
  std::stringstream Stream(Text);
  std::string Token;
  while (std::getline(Stream, Token, ',')) {
    // Trim whitespace (the sysfs file ends in a newline).
    while (!Token.empty() && std::isspace(static_cast<unsigned char>(
                                 Token.back())))
      Token.pop_back();
    while (!Token.empty() && std::isspace(static_cast<unsigned char>(
                                 Token.front())))
      Token.erase(Token.begin());
    if (Token.empty())
      continue;
    size_t Dash = Token.find('-');
    try {
      if (Dash == std::string::npos) {
        Cpus.push_back(static_cast<unsigned>(std::stoul(Token)));
      } else {
        unsigned Lo =
            static_cast<unsigned>(std::stoul(Token.substr(0, Dash)));
        unsigned Hi =
            static_cast<unsigned>(std::stoul(Token.substr(Dash + 1)));
        if (Hi < Lo || Hi - Lo > 4096)
          return {};
        for (unsigned Cpu = Lo; Cpu <= Hi; ++Cpu)
          Cpus.push_back(Cpu);
      }
    } catch (...) {
      return {};
    }
  }
  return Cpus;
}

/// Process-wide ordinal assigned to each thread on first use; the
/// synthetic-topology round-robin is `ordinal % nodes`.
unsigned threadOrdinal() {
  static std::atomic<unsigned> NextOrdinal{0};
  thread_local unsigned Ordinal =
      NextOrdinal.fetch_add(1, std::memory_order_relaxed);
  return Ordinal;
}

/// Cached sched_getcpu(): one syscall per ~1024 calls per thread. A
/// stale value survives thread migration for at most one refresh
/// window, which only costs locality, never correctness.
unsigned cachedCurrentCpu() {
#if defined(__linux__)
  thread_local unsigned Cached = 0;
  thread_local unsigned Countdown = 0;
  if (Countdown == 0) {
    Countdown = 1024;
    int Cpu = sched_getcpu();
    Cached = Cpu < 0 ? 0 : static_cast<unsigned>(Cpu);
  }
  --Countdown;
  return Cached;
#else
  return 0;
#endif
}

} // namespace

Topology Topology::detect(const std::string &SysfsNodeDir,
                          unsigned OverrideNodes) {
  Topology T;
  unsigned HwCpus = std::max(1u, std::thread::hardware_concurrency());
  if (OverrideNodes != 0) {
    T.Nodes = std::min(OverrideNodes, 64u);
    T.Cpus = HwCpus;
    T.Synthetic = true;
    return T;
  }

  // Enumerate node<id> directories; node ids may be sparse, so collect
  // and renumber densely in ascending id order.
  std::vector<std::pair<unsigned, std::vector<unsigned>>> Found;
  std::error_code Ec;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SysfsNodeDir, Ec)) {
    if (Ec)
      break;
    std::string Name = Entry.path().filename().string();
    if (Name.rfind("node", 0) != 0)
      continue;
    std::string IdText = Name.substr(4);
    if (IdText.empty() ||
        IdText.find_first_not_of("0123456789") != std::string::npos)
      continue;
    std::ifstream CpuList(Entry.path() / "cpulist");
    if (!CpuList)
      continue;
    std::string Text((std::istreambuf_iterator<char>(CpuList)),
                     std::istreambuf_iterator<char>());
    std::vector<unsigned> Cpus = parseCpuList(Text);
    if (Cpus.empty())
      continue; // memory-only node (or unparsable): no threads run there
    Found.emplace_back(static_cast<unsigned>(std::stoul(IdText)),
                       std::move(Cpus));
  }
  if (Found.empty()) {
    T.Cpus = HwCpus;
    return T; // no sysfs (non-Linux, masked /sys): single node
  }
  std::sort(Found.begin(), Found.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  unsigned MaxCpu = 0;
  for (const auto &[Id, Cpus] : Found)
    for (unsigned Cpu : Cpus)
      MaxCpu = std::max(MaxCpu, Cpu);
  T.CpuToNode.assign(MaxCpu + 1, -1);
  for (unsigned Dense = 0; Dense != Found.size(); ++Dense)
    for (unsigned Cpu : Found[Dense].second)
      T.CpuToNode[Cpu] = static_cast<int>(Dense);
  T.Nodes = static_cast<unsigned>(Found.size());
  T.Cpus = static_cast<unsigned>(std::count_if(
      T.CpuToNode.begin(), T.CpuToNode.end(), [](int N) { return N >= 0; }));
  return T;
}

const Topology &Topology::system() {
  static const Topology Instance = [] {
    unsigned Override = 0;
    if (const char *Env = std::getenv("CSWITCH_NUMA_NODES")) {
      char *End = nullptr;
      unsigned long Value = std::strtoul(Env, &End, 10);
      if (End && *End == '\0' && Value > 0 && Value <= 64)
        Override = static_cast<unsigned>(Value);
    }
    return detect("/sys/devices/system/node", Override);
  }();
  return Instance;
}

unsigned Topology::nodeOfCpu(unsigned Cpu) const {
  if (Nodes <= 1)
    return 0;
  if (Synthetic)
    return Cpu % Nodes;
  if (Cpu < CpuToNode.size() && CpuToNode[Cpu] >= 0)
    return static_cast<unsigned>(CpuToNode[Cpu]);
  return 0;
}

std::vector<unsigned> Topology::cpusOfNode(unsigned Node) const {
  std::vector<unsigned> Out;
  for (unsigned Cpu = 0; Cpu != CpuToNode.size(); ++Cpu)
    if (CpuToNode[Cpu] == static_cast<int>(Node))
      Out.push_back(Cpu);
  return Out;
}

unsigned Topology::currentNode() const {
  if (Nodes <= 1)
    return 0;
  if (Synthetic)
    return threadOrdinal() % Nodes;
  return nodeOfCpu(cachedCurrentCpu());
}
