//===- Random.cpp - Deterministic pseudo-random number generation --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

using namespace cswitch;

std::vector<int64_t> cswitch::distinctIntegers(SplitMix64 &Rng, size_t N,
                                               int64_t Universe) {
  assert(Universe >= static_cast<int64_t>(N) &&
         "universe too small for distinct draw");
  // For dense draws (more than half the universe requested) rejection
  // sampling degenerates; fall back to a shuffled prefix of the universe.
  if (static_cast<int64_t>(N) * 2 >= Universe) {
    std::vector<int64_t> All(static_cast<size_t>(Universe));
    for (size_t I = 0, E = All.size(); I != E; ++I)
      All[I] = static_cast<int64_t>(I);
    All = shuffled(Rng, std::move(All));
    All.resize(N);
    return All;
  }

  std::unordered_set<int64_t> Seen;
  std::vector<int64_t> Result;
  Result.reserve(N);
  while (Result.size() < N) {
    int64_t V = static_cast<int64_t>(
        Rng.nextBelow(static_cast<uint64_t>(Universe)));
    if (Seen.insert(V).second)
      Result.push_back(V);
  }
  return Result;
}

std::vector<int64_t> cswitch::shuffled(SplitMix64 &Rng,
                                       std::vector<int64_t> Values) {
  for (size_t I = Values.size(); I > 1; --I)
    std::swap(Values[I - 1], Values[Rng.nextBelow(I)]);
  return Values;
}

ZipfDistribution::ZipfDistribution(size_t N, double Skew) : Skew(Skew) {
  assert(N > 0 && "Zipf support must be non-empty");
  Cdf.resize(N);
  double Total = 0.0;
  for (size_t K = 0; K != N; ++K) {
    Total += 1.0 / std::pow(static_cast<double>(K + 1), Skew);
    Cdf[K] = Total;
  }
  for (size_t K = 0; K != N; ++K)
    Cdf[K] /= Total;
  Cdf.back() = 1.0; // guard against rounding excluding the last rank
}

size_t ZipfDistribution::next(SplitMix64 &Rng) const {
  double U = Rng.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    --It;
  return static_cast<size_t>(It - Cdf.begin());
}
