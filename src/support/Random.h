//===- Random.h - Deterministic pseudo-random number generation -*- C++ -*-==//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable pseudo-random number generation used by every
/// workload generator and test in the project. All randomness in the
/// repository flows from SplitMix64 so experiments are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_RANDOM_H
#define CSWITCH_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cswitch {

/// A small, fast, high-quality 64-bit PRNG (SplitMix64, Steele et al. 2014).
///
/// Used instead of std::mt19937 because its state is a single word, its
/// output is identical across standard library implementations, and it is
/// cheap enough to use inside microbenchmark inner loops without distorting
/// the measured collection costs.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniformly distributed integer in [0, Bound).
  ///
  /// Uses Lemire's multiply-shift rejection-free reduction; the bias is
  /// below 2^-32 for every bound used in this project, which is far below
  /// the noise floor of any measured quantity.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniformly distributed integer in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

/// Generates \p N distinct integers drawn uniformly from [0, Universe).
///
/// Distinctness matters for set/map population workloads where duplicate
/// keys would silently shrink the collection under test. \p Universe must
/// be at least \p N.
std::vector<int64_t> distinctIntegers(SplitMix64 &Rng, size_t N,
                                      int64_t Universe);

/// Returns a uniformly shuffled copy of \p Values (Fisher-Yates).
std::vector<int64_t> shuffled(SplitMix64 &Rng, std::vector<int64_t> Values);

/// Draws ranks from a Zipf distribution over [0, N): rank K is drawn
/// with probability proportional to 1 / (K + 1)^Skew — the skewed
/// key-popularity model of server caches and session stores (MapReplay
/// uses the same family for trace-driven map workloads).
///
/// The CDF is precomputed once (O(N) setup, O(log N) per draw via
/// binary search), so draws are cheap enough for multi-threaded bench
/// inner loops; each thread should own its Rng while sharing one
/// immutable ZipfDistribution.
class ZipfDistribution {
public:
  /// \p N must be positive. \p Skew 0 degenerates to uniform; the
  /// classic web/cache skew is ~0.99.
  ZipfDistribution(size_t N, double Skew);

  /// Returns the next rank in [0, size()).
  size_t next(SplitMix64 &Rng) const;

  size_t size() const { return Cdf.size(); }
  double skew() const { return Skew; }

private:
  double Skew;
  std::vector<double> Cdf; ///< Cdf[K] = P(rank <= K); back() == 1.
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_RANDOM_H
