//===- LeastSquares.cpp - Polynomial least-squares fitting ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/LeastSquares.h"

#include <cassert>
#include <cmath>

using namespace cswitch;

std::vector<double> cswitch::solveLinearSystem(std::vector<double> A,
                                               std::vector<double> B,
                                               size_t N) {
  assert(A.size() == N * N && "matrix shape mismatch");
  assert(B.size() == N && "rhs shape mismatch");

  for (size_t Col = 0; Col != N; ++Col) {
    // Partial pivoting: bring the largest remaining entry of this column
    // to the diagonal.
    size_t Pivot = Col;
    double Best = std::fabs(A[Col * N + Col]);
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Mag = std::fabs(A[Row * N + Col]);
      if (Mag > Best) {
        Best = Mag;
        Pivot = Row;
      }
    }
    if (Best < 1e-12)
      return {};
    if (Pivot != Col) {
      for (size_t K = 0; K != N; ++K)
        std::swap(A[Pivot * N + K], A[Col * N + K]);
      std::swap(B[Pivot], B[Col]);
    }

    double Diag = A[Col * N + Col];
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Factor = A[Row * N + Col] / Diag;
      if (Factor == 0.0)
        continue;
      A[Row * N + Col] = 0.0;
      for (size_t K = Col + 1; K != N; ++K)
        A[Row * N + K] -= Factor * A[Col * N + K];
      B[Row] -= Factor * B[Col];
    }
  }

  // Back substitution.
  std::vector<double> X(N, 0.0);
  for (size_t I = N; I > 0; --I) {
    size_t Row = I - 1;
    double Acc = B[Row];
    for (size_t K = Row + 1; K != N; ++K)
      Acc -= A[Row * N + K] * X[K];
    X[Row] = Acc / A[Row * N + Row];
  }
  return X;
}

Polynomial cswitch::fitPolynomial(const std::vector<double> &Xs,
                                  const std::vector<double> &Ys,
                                  size_t Degree) {
  assert(Xs.size() == Ys.size() && "sample shape mismatch");
  assert(Xs.size() >= Degree + 1 && "not enough samples for degree");

  // Scale x into [-1, 1]-ish so x^6 terms in the normal equations do not
  // overflow the dynamic range of double for sizes up to 1e4.
  double Scale = 1.0;
  for (double X : Xs)
    Scale = std::max(Scale, std::fabs(X));
  double InvScale = 1.0 / Scale;

  size_t N = Degree + 1;
  // Normal equations: (V^T V) c = V^T y with V the Vandermonde matrix of
  // the scaled xs. V^T V entry (i, j) = sum_k x_k^(i+j); build the power
  // sums once.
  std::vector<double> PowerSums(2 * Degree + 1, 0.0);
  std::vector<double> Rhs(N, 0.0);
  for (size_t K = 0, E = Xs.size(); K != E; ++K) {
    double X = Xs[K] * InvScale;
    double Pow = 1.0;
    for (size_t P = 0; P != PowerSums.size(); ++P) {
      PowerSums[P] += Pow;
      if (P < N)
        Rhs[P] += Pow * Ys[K];
      Pow *= X;
    }
  }
  std::vector<double> Normal(N * N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      Normal[I * N + J] = PowerSums[I + J];

  std::vector<double> Scaled = solveLinearSystem(std::move(Normal),
                                                 std::move(Rhs), N);
  if (Scaled.empty())
    return Polynomial();

  // Unscale: coefficient of x^i in original units is c_i / Scale^i.
  std::vector<double> Coeffs(N);
  double Div = 1.0;
  for (size_t I = 0; I != N; ++I) {
    Coeffs[I] = Scaled[I] * Div;
    Div *= InvScale;
  }
  return Polynomial(std::move(Coeffs));
}

double cswitch::residualSumOfSquares(const Polynomial &Fit,
                                     const std::vector<double> &Xs,
                                     const std::vector<double> &Ys) {
  assert(Xs.size() == Ys.size() && "sample shape mismatch");
  double Rss = 0.0;
  for (size_t I = 0, E = Xs.size(); I != E; ++I) {
    double R = Ys[I] - Fit.evaluate(Xs[I]);
    Rss += R * R;
  }
  return Rss;
}
