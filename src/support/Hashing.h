//===- Hashing.h - Hash functions for the collection library ---*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash functions shared by every hash-backed collection variant. The
/// variants deliberately share one hash so that performance differences
/// between them reflect their table organisation (chained vs open vs
/// compact), not hash quality — mirroring the paper's setup where all Java
/// libraries hash through Object.hashCode spreading.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_HASHING_H
#define CSWITCH_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>

namespace cswitch {

/// Finalizer from MurmurHash3: spreads entropy of an integer into all bits.
///
/// Integral keys in the benchmarks are sequential or uniform; without
/// spreading, open-addressing tables would exhibit artificial clustering
/// that chained tables hide, skewing the cost model.
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

/// FNV-1a over a byte range; used for string keys.
inline uint64_t fnv1a(const void *Data, size_t Len) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Len; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Default hasher used by all hash-backed collection variants.
///
/// Dispatches on the key type: integral and pointer keys are mixed,
/// strings are FNV-hashed, everything else defers to std::hash and then
/// mixes the result (std::hash for integers is commonly the identity,
/// which is fatal for open addressing).
template <typename T> struct DefaultHash {
  uint64_t operator()(const T &Value) const {
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      return mix64(static_cast<uint64_t>(Value));
    else if constexpr (std::is_pointer_v<T>)
      return mix64(reinterpret_cast<uint64_t>(Value));
    else
      return mix64(std::hash<T>{}(Value));
  }
};

template <> struct DefaultHash<std::string> {
  uint64_t operator()(const std::string &Value) const {
    return fnv1a(Value.data(), Value.size());
  }
};

/// Combines two hash values (boost::hash_combine-style, 64-bit).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4));
}

/// Rounds \p X up to the next power of two (minimum 1).
inline size_t nextPowerOfTwo(size_t X) {
  if (X <= 1)
    return 1;
  --X;
  X |= X >> 1;
  X |= X >> 2;
  X |= X >> 4;
  X |= X >> 8;
  X |= X >> 16;
  if constexpr (sizeof(size_t) == 8)
    X |= X >> 32;
  return X + 1;
}

} // namespace cswitch

#endif // CSWITCH_SUPPORT_HASHING_H
