//===- MemoryTracker.cpp - Allocation byte accounting --------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/MemoryTracker.h"

using namespace cswitch;

namespace {
struct Counters {
  uint64_t Allocated = 0;
  int64_t Live = 0;
  int64_t PeakLive = 0;
};
thread_local Counters TlsCounters;
} // namespace

void MemoryTracker::recordAlloc(size_t Bytes) {
  TlsCounters.Allocated += Bytes;
  TlsCounters.Live += static_cast<int64_t>(Bytes);
  if (TlsCounters.Live > TlsCounters.PeakLive)
    TlsCounters.PeakLive = TlsCounters.Live;
}

void MemoryTracker::recordFree(size_t Bytes) {
  TlsCounters.Live -= static_cast<int64_t>(Bytes);
}

uint64_t MemoryTracker::allocatedBytes() { return TlsCounters.Allocated; }

int64_t MemoryTracker::liveBytes() { return TlsCounters.Live; }

int64_t MemoryTracker::peakLiveBytes() { return TlsCounters.PeakLive; }

void MemoryTracker::resetPeak() { TlsCounters.PeakLive = TlsCounters.Live; }
