//===- MetricsExport.cpp - Telemetry serialization -----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/MetricsExport.h"

#include <cstdio>

using namespace cswitch;

namespace {

/// Length of the valid UTF-8 sequence starting at \p I of \p Text, or 0
/// when the bytes there are not well-formed UTF-8 (lone continuation
/// byte, truncated sequence, overlong encoding, surrogate, > U+10FFFF).
size_t utf8SequenceLength(std::string_view Text, size_t I) {
  auto Byte = [&](size_t Off) {
    return static_cast<unsigned char>(Text[I + Off]);
  };
  unsigned char Lead = Byte(0);
  size_t Len;
  if (Lead < 0x80)
    return 1;
  else if ((Lead & 0xe0) == 0xc0)
    Len = 2;
  else if ((Lead & 0xf0) == 0xe0)
    Len = 3;
  else if ((Lead & 0xf8) == 0xf0)
    Len = 4;
  else
    return 0; // Continuation byte or 0xf8..0xff lead: invalid.
  if (I + Len > Text.size())
    return 0; // Truncated sequence.
  for (size_t Off = 1; Off != Len; ++Off)
    if ((Byte(Off) & 0xc0) != 0x80)
      return 0;
  // Reject overlong encodings, UTF-16 surrogates and values beyond
  // U+10FFFF — all of which real JSON parsers refuse.
  if (Len == 2 && Lead < 0xc2)
    return 0;
  if (Len == 3 && Lead == 0xe0 && Byte(1) < 0xa0)
    return 0;
  if (Len == 3 && Lead == 0xed && Byte(1) >= 0xa0)
    return 0;
  if (Len == 4 && (Lead == 0xf0 ? Byte(1) < 0x90
                                : Lead == 0xf4 ? Byte(1) >= 0x90
                                               : Lead > 0xf4))
    return 0;
  return Len;
}

} // namespace

std::string cswitch::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t I = 0; I < Text.size();) {
    char C = Text[I];
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else if (static_cast<unsigned char>(C) >= 0x80) {
        // Site names come from arbitrary application strings; passing
        // non-UTF-8 bytes through raw would make the whole document
        // unparseable. Valid multi-byte sequences are copied verbatim,
        // anything else becomes U+FFFD.
        size_t Len = utf8SequenceLength(Text, I);
        if (Len == 0) {
          Out += "\\ufffd";
          ++I;
        } else {
          Out.append(Text.substr(I, Len));
          I += Len;
        }
        continue;
      } else {
        Out += C;
      }
    }
    ++I;
  }
  return Out;
}

namespace {

/// Formats a double compactly ("%.6g": integers stay integral, the
/// contention estimate keeps enough digits to see EWMA movement).
std::string formatDouble(double Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return Buf;
}

void appendStatFields(std::string &Out, const ContextStats &S) {
  Out += "\"instances_created\": " + std::to_string(S.InstancesCreated);
  Out += ", \"instances_monitored\": " +
         std::to_string(S.InstancesMonitored);
  Out += ", \"profiles_published\": " + std::to_string(S.ProfilesPublished);
  Out += ", \"profiles_discarded\": " + std::to_string(S.ProfilesDiscarded);
  Out += ", \"evaluations\": " + std::to_string(S.Evaluations);
  Out += ", \"switches\": " + std::to_string(S.Switches);
}

/// Appends one LatencyStats object: counts, extrema, quantiles (all
/// nanoseconds; quantiles with one decimal, which is already below the
/// histogram bucket resolution).
void appendLatencyStats(std::string &Out, const char *Key,
                        const LatencyStats &S) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "\"%s\": {\"count\": %llu, \"saturated\": %llu, "
                "\"sum_nanos\": %llu, \"min_nanos\": %llu, "
                "\"max_nanos\": %llu, \"p50\": %.1f, \"p90\": %.1f, "
                "\"p99\": %.1f, \"p999\": %.1f}",
                Key, static_cast<unsigned long long>(S.Count),
                static_cast<unsigned long long>(S.Saturated),
                static_cast<unsigned long long>(S.SumNanos),
                static_cast<unsigned long long>(S.MinNanos),
                static_cast<unsigned long long>(S.MaxNanos), S.P50, S.P90,
                S.P99, S.P999);
  Out += Buf;
}

void appendSiteLatencies(std::string &Out, const SiteLatencies &L) {
  Out += "\"latency\": {";
  appendLatencyStats(Out, "record", L.Record);
  Out += ", ";
  appendLatencyStats(Out, "evaluate", L.Evaluate);
  Out += ", ";
  appendLatencyStats(Out, "switch", L.Switch);
  Out += "}";
}

} // namespace

std::string cswitch::toJson(const TelemetrySnapshot &Snapshot) {
  std::string Out;
  Out += "{\n  \"schema\": \"cswitch-telemetry-v1\",\n";
  Out += "  \"engine\": {\"contexts\": " +
         std::to_string(Snapshot.Engine.Contexts) + ", ";
  ContextStats EngineTotals;
  EngineTotals.InstancesCreated = Snapshot.Engine.InstancesCreated;
  EngineTotals.InstancesMonitored = Snapshot.Engine.InstancesMonitored;
  EngineTotals.ProfilesPublished = Snapshot.Engine.ProfilesPublished;
  EngineTotals.ProfilesDiscarded = Snapshot.Engine.ProfilesDiscarded;
  EngineTotals.Evaluations = Snapshot.Engine.Evaluations;
  EngineTotals.Switches = Snapshot.Engine.Switches;
  appendStatFields(Out, EngineTotals);
  Out += "},\n";
  // Additive in cswitch-telemetry-v1: the node layout the striped
  // monitoring structures were sized for (DESIGN.md §10).
  Out += "  \"topology\": {\"nodes\": " +
         std::to_string(Snapshot.Topology.Nodes) +
         ", \"cpus\": " + std::to_string(Snapshot.Topology.Cpus) + "},\n";
  Out += "  \"latency\": {";
  appendLatencyStats(Out, "record", Snapshot.Latency.Record);
  Out += ", ";
  appendLatencyStats(Out, "evaluate", Snapshot.Latency.Evaluate);
  Out += ", ";
  appendLatencyStats(Out, "switch", Snapshot.Latency.Switch);
  Out += ", ";
  appendLatencyStats(Out, "persist", Snapshot.Latency.Persist);
  Out += "},\n";
  Out += "  \"events\": {\"recorded\": " +
         std::to_string(Snapshot.Events.Recorded) +
         ", \"dropped\": " + std::to_string(Snapshot.Events.Dropped) +
         ", \"node_dropped\": [";
  for (size_t I = 0; I != Snapshot.Events.NodeDropped.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Snapshot.Events.NodeDropped[I]);
  }
  Out += "]},\n";
  Out += "  \"recorder\": {\"recorders\": " +
         std::to_string(Snapshot.Recorder.Recorders) +
         ", \"ops_recorded\": " +
         std::to_string(Snapshot.Recorder.OpsRecorded) +
         ", \"ops_dropped\": " +
         std::to_string(Snapshot.Recorder.OpsDropped) +
         ", \"instances_sampled\": " +
         std::to_string(Snapshot.Recorder.InstancesSampled) +
         ", \"instances_skipped\": " +
         std::to_string(Snapshot.Recorder.InstancesSkipped) + "},\n";
  Out += "  \"store\": {\"loads\": " + std::to_string(Snapshot.Store.Loads) +
         ", \"load_failures\": " +
         std::to_string(Snapshot.Store.LoadFailures) +
         ", \"sites_loaded\": " +
         std::to_string(Snapshot.Store.SitesLoaded) +
         ", \"warm_starts\": " +
         std::to_string(Snapshot.Store.WarmStarts) +
         ", \"persists\": " + std::to_string(Snapshot.Store.Persists) +
         ", \"persist_failures\": " +
         std::to_string(Snapshot.Store.PersistFailures) +
         ", \"path\": \"" + jsonEscape(Snapshot.Store.Path) + "\"},\n";
  Out += "  \"fleet\": {\"pulls\": " + std::to_string(Snapshot.Fleet.Pulls) +
         ", \"pull_failures\": " +
         std::to_string(Snapshot.Fleet.PullFailures) +
         ", \"pushes\": " + std::to_string(Snapshot.Fleet.Pushes) +
         ", \"push_failures\": " +
         std::to_string(Snapshot.Fleet.PushFailures) +
         ", \"retries\": " + std::to_string(Snapshot.Fleet.Retries) +
         ", \"store_gets\": " + std::to_string(Snapshot.Fleet.StoreGets) +
         ", \"merges_applied\": " +
         std::to_string(Snapshot.Fleet.MergesApplied) +
         ", \"sites_merged\": " +
         std::to_string(Snapshot.Fleet.SitesMerged) +
         ", \"rejected_oversize\": " +
         std::to_string(Snapshot.Fleet.RejectedOversize) +
         ", \"rejected_malformed\": " +
         std::to_string(Snapshot.Fleet.RejectedMalformed) +
         ", \"rejected_incompatible\": " +
         std::to_string(Snapshot.Fleet.RejectedIncompatible) +
         ", \"recalibrations\": " +
         std::to_string(Snapshot.Fleet.Recalibrations) +
         ", \"promotions\": " + std::to_string(Snapshot.Fleet.Promotions) +
         ", \"promotions_rejected\": " +
         std::to_string(Snapshot.Fleet.PromotionsRejected) + "},\n";
  Out += "  \"tuning\": {\"loads\": " + std::to_string(Snapshot.Tuning.Loads) +
         ", \"load_failures\": " +
         std::to_string(Snapshot.Tuning.LoadFailures) +
         ", \"source\": \"" + jsonEscape(Snapshot.Tuning.Source) +
         "\", \"fingerprint\": \"" + jsonEscape(Snapshot.Tuning.Fingerprint) +
         "\", \"corpus_digest\": \"" +
         jsonEscape(Snapshot.Tuning.CorpusDigest) +
         "\", \"seed\": " + std::to_string(Snapshot.Tuning.Seed) +
         ", \"generations\": " + std::to_string(Snapshot.Tuning.Generations) +
         ", \"population\": " + std::to_string(Snapshot.Tuning.Population) +
         ", \"evaluations\": " + std::to_string(Snapshot.Tuning.Evaluations) +
         ", \"parameters\": " + std::to_string(Snapshot.Tuning.Parameters) +
         ", \"winner_fitness\": " +
         formatDouble(Snapshot.Tuning.WinnerFitness) +
         ", \"baseline_fitness\": " +
         formatDouble(Snapshot.Tuning.BaselineFitness) + "},\n";
  Out += "  \"model\": {\"installs\": " +
         std::to_string(Snapshot.Model.Installs) +
         ", \"source\": \"" + jsonEscape(Snapshot.Model.Source) +
         "\", \"fingerprint\": \"" + jsonEscape(Snapshot.Model.Fingerprint) +
         "\", \"fit_timestamp\": " +
         std::to_string(Snapshot.Model.FitTimestamp) +
         ", \"holdout_residual\": " +
         formatDouble(Snapshot.Model.HoldoutResidual) + "},\n";
  Out += "  \"contexts\": [";
  for (size_t I = 0; I != Snapshot.Contexts.size(); ++I) {
    const ContextSnapshot &C = Snapshot.Contexts[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"name\": \"" + jsonEscape(C.Name) + "\", ";
    Out += "\"abstraction\": \"" + jsonEscape(C.Abstraction) + "\", ";
    Out += "\"variant\": \"" + jsonEscape(C.Variant) + "\", ";
    appendStatFields(Out, C.Stats);
    Out += ", \"footprint_bytes\": " + std::to_string(C.FootprintBytes);
    Out += ", \"contended_threads\": " + formatDouble(C.ContendedThreads);
    Out += ", ";
    appendSiteLatencies(Out, C.Latency);
    Out += "}";
  }
  Out += Snapshot.Contexts.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

namespace {

/// CSV-quotes \p Field when it contains a comma, quote, or newline.
std::string csvField(const std::string &Field) {
  if (Field.find_first_of(",\"\n") == std::string::npos)
    return Field;
  std::string Out = "\"";
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace

std::string cswitch::toCsv(const TelemetrySnapshot &Snapshot) {
  // Loss counters ride along as `#` comments: the column schema (and
  // the tests pinning it) stays untouched, but trace/event loss is
  // never silently invisible in exported data.
  std::string Out = "# events_recorded=" +
                    std::to_string(Snapshot.Events.Recorded) +
                    " events_dropped=" +
                    std::to_string(Snapshot.Events.Dropped) + "\n";
  Out += "# recorder_ops_recorded=" +
         std::to_string(Snapshot.Recorder.OpsRecorded) +
         " recorder_ops_dropped=" +
         std::to_string(Snapshot.Recorder.OpsDropped) +
         " recorder_instances_sampled=" +
         std::to_string(Snapshot.Recorder.InstancesSampled) +
         " recorder_instances_skipped=" +
         std::to_string(Snapshot.Recorder.InstancesSkipped) + "\n";
  Out += "# store_loads=" + std::to_string(Snapshot.Store.Loads) +
         " store_load_failures=" +
         std::to_string(Snapshot.Store.LoadFailures) +
         " store_sites_loaded=" + std::to_string(Snapshot.Store.SitesLoaded) +
         " store_warm_starts=" + std::to_string(Snapshot.Store.WarmStarts) +
         " store_persists=" + std::to_string(Snapshot.Store.Persists) +
         " store_persist_failures=" +
         std::to_string(Snapshot.Store.PersistFailures) + "\n";
  Out += "# fleet_pulls=" + std::to_string(Snapshot.Fleet.Pulls) +
         " fleet_pushes=" + std::to_string(Snapshot.Fleet.Pushes) +
         " fleet_merges_applied=" +
         std::to_string(Snapshot.Fleet.MergesApplied) +
         " fleet_rejected_oversize=" +
         std::to_string(Snapshot.Fleet.RejectedOversize) +
         " fleet_rejected_malformed=" +
         std::to_string(Snapshot.Fleet.RejectedMalformed) +
         " fleet_rejected_incompatible=" +
         std::to_string(Snapshot.Fleet.RejectedIncompatible) +
         " fleet_recalibrations=" +
         std::to_string(Snapshot.Fleet.Recalibrations) +
         " fleet_promotions=" + std::to_string(Snapshot.Fleet.Promotions) +
         " fleet_promotions_rejected=" +
         std::to_string(Snapshot.Fleet.PromotionsRejected) + "\n";
  Out += "# tuning_loads=" + std::to_string(Snapshot.Tuning.Loads) +
         " tuning_load_failures=" +
         std::to_string(Snapshot.Tuning.LoadFailures) +
         " tuning_parameters=" + std::to_string(Snapshot.Tuning.Parameters) +
         " tuning_seed=" + std::to_string(Snapshot.Tuning.Seed) +
         " tuning_source=" + csvField(Snapshot.Tuning.Source) + "\n";
  {
    // Engine-wide latency p99s ride along the same way: the column
    // schema stays untouched, but tail behaviour is visible in every
    // exported table.
    char Buf[320];
    std::snprintf(Buf, sizeof(Buf),
                  "# latency_record_count=%llu latency_record_p99=%.1f"
                  " latency_evaluate_p99=%.1f latency_switch_p99=%.1f"
                  " latency_persist_p99=%.1f topology_nodes=%u"
                  " topology_cpus=%u\n",
                  static_cast<unsigned long long>(
                      Snapshot.Latency.Record.Count),
                  Snapshot.Latency.Record.P99, Snapshot.Latency.Evaluate.P99,
                  Snapshot.Latency.Switch.P99, Snapshot.Latency.Persist.P99,
                  Snapshot.Topology.Nodes, Snapshot.Topology.Cpus);
    Out += Buf;
  }
  Out += "name,abstraction,variant,instances_created,"
         "instances_monitored,profiles_published,"
         "profiles_discarded,evaluations,switches,"
         "footprint_bytes,contended_threads\n";
  for (const ContextSnapshot &C : Snapshot.Contexts) {
    Out += csvField(C.Name) + ',' + csvField(C.Abstraction) + ',' +
           csvField(C.Variant) + ',';
    Out += std::to_string(C.Stats.InstancesCreated) + ',';
    Out += std::to_string(C.Stats.InstancesMonitored) + ',';
    Out += std::to_string(C.Stats.ProfilesPublished) + ',';
    Out += std::to_string(C.Stats.ProfilesDiscarded) + ',';
    Out += std::to_string(C.Stats.Evaluations) + ',';
    Out += std::to_string(C.Stats.Switches) + ',';
    Out += std::to_string(C.FootprintBytes) + ',';
    Out += formatDouble(C.ContendedThreads) + '\n';
  }
  return Out;
}

bool cswitch::writeTextFile(const std::string &Path,
                            std::string_view Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), F);
  bool Ok = Written == Content.size();
  return std::fclose(F) == 0 && Ok;
}
