//===- MetricsExport.cpp - Telemetry serialization -----------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/MetricsExport.h"

#include <cstdio>

using namespace cswitch;

std::string cswitch::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

void appendStatFields(std::string &Out, const ContextStats &S) {
  Out += "\"instances_created\": " + std::to_string(S.InstancesCreated);
  Out += ", \"instances_monitored\": " +
         std::to_string(S.InstancesMonitored);
  Out += ", \"profiles_published\": " + std::to_string(S.ProfilesPublished);
  Out += ", \"profiles_discarded\": " + std::to_string(S.ProfilesDiscarded);
  Out += ", \"evaluations\": " + std::to_string(S.Evaluations);
  Out += ", \"switches\": " + std::to_string(S.Switches);
}

} // namespace

std::string cswitch::toJson(const TelemetrySnapshot &Snapshot) {
  std::string Out;
  Out += "{\n  \"schema\": \"cswitch-telemetry-v1\",\n";
  Out += "  \"engine\": {\"contexts\": " +
         std::to_string(Snapshot.Engine.Contexts) + ", ";
  ContextStats EngineTotals;
  EngineTotals.InstancesCreated = Snapshot.Engine.InstancesCreated;
  EngineTotals.InstancesMonitored = Snapshot.Engine.InstancesMonitored;
  EngineTotals.ProfilesPublished = Snapshot.Engine.ProfilesPublished;
  EngineTotals.ProfilesDiscarded = Snapshot.Engine.ProfilesDiscarded;
  EngineTotals.Evaluations = Snapshot.Engine.Evaluations;
  EngineTotals.Switches = Snapshot.Engine.Switches;
  appendStatFields(Out, EngineTotals);
  Out += "},\n";
  Out += "  \"events\": {\"recorded\": " +
         std::to_string(Snapshot.Events.Recorded) +
         ", \"dropped\": " + std::to_string(Snapshot.Events.Dropped) +
         "},\n";
  Out += "  \"recorder\": {\"recorders\": " +
         std::to_string(Snapshot.Recorder.Recorders) +
         ", \"ops_recorded\": " +
         std::to_string(Snapshot.Recorder.OpsRecorded) +
         ", \"ops_dropped\": " +
         std::to_string(Snapshot.Recorder.OpsDropped) +
         ", \"instances_sampled\": " +
         std::to_string(Snapshot.Recorder.InstancesSampled) +
         ", \"instances_skipped\": " +
         std::to_string(Snapshot.Recorder.InstancesSkipped) + "},\n";
  Out += "  \"store\": {\"loads\": " + std::to_string(Snapshot.Store.Loads) +
         ", \"load_failures\": " +
         std::to_string(Snapshot.Store.LoadFailures) +
         ", \"sites_loaded\": " +
         std::to_string(Snapshot.Store.SitesLoaded) +
         ", \"warm_starts\": " +
         std::to_string(Snapshot.Store.WarmStarts) +
         ", \"persists\": " + std::to_string(Snapshot.Store.Persists) +
         ", \"persist_failures\": " +
         std::to_string(Snapshot.Store.PersistFailures) + "},\n";
  Out += "  \"contexts\": [";
  for (size_t I = 0; I != Snapshot.Contexts.size(); ++I) {
    const ContextSnapshot &C = Snapshot.Contexts[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"name\": \"" + jsonEscape(C.Name) + "\", ";
    Out += "\"abstraction\": \"" + jsonEscape(C.Abstraction) + "\", ";
    Out += "\"variant\": \"" + jsonEscape(C.Variant) + "\", ";
    appendStatFields(Out, C.Stats);
    Out += ", \"footprint_bytes\": " + std::to_string(C.FootprintBytes);
    Out += "}";
  }
  Out += Snapshot.Contexts.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

namespace {

/// CSV-quotes \p Field when it contains a comma, quote, or newline.
std::string csvField(const std::string &Field) {
  if (Field.find_first_of(",\"\n") == std::string::npos)
    return Field;
  std::string Out = "\"";
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace

std::string cswitch::toCsv(const TelemetrySnapshot &Snapshot) {
  // Loss counters ride along as `#` comments: the column schema (and
  // the tests pinning it) stays untouched, but trace/event loss is
  // never silently invisible in exported data.
  std::string Out = "# events_recorded=" +
                    std::to_string(Snapshot.Events.Recorded) +
                    " events_dropped=" +
                    std::to_string(Snapshot.Events.Dropped) + "\n";
  Out += "# recorder_ops_recorded=" +
         std::to_string(Snapshot.Recorder.OpsRecorded) +
         " recorder_ops_dropped=" +
         std::to_string(Snapshot.Recorder.OpsDropped) +
         " recorder_instances_sampled=" +
         std::to_string(Snapshot.Recorder.InstancesSampled) +
         " recorder_instances_skipped=" +
         std::to_string(Snapshot.Recorder.InstancesSkipped) + "\n";
  Out += "# store_loads=" + std::to_string(Snapshot.Store.Loads) +
         " store_load_failures=" +
         std::to_string(Snapshot.Store.LoadFailures) +
         " store_sites_loaded=" + std::to_string(Snapshot.Store.SitesLoaded) +
         " store_warm_starts=" + std::to_string(Snapshot.Store.WarmStarts) +
         " store_persists=" + std::to_string(Snapshot.Store.Persists) +
         " store_persist_failures=" +
         std::to_string(Snapshot.Store.PersistFailures) + "\n";
  Out += "name,abstraction,variant,instances_created,"
         "instances_monitored,profiles_published,"
         "profiles_discarded,evaluations,switches,"
         "footprint_bytes\n";
  for (const ContextSnapshot &C : Snapshot.Contexts) {
    Out += csvField(C.Name) + ',' + csvField(C.Abstraction) + ',' +
           csvField(C.Variant) + ',';
    Out += std::to_string(C.Stats.InstancesCreated) + ',';
    Out += std::to_string(C.Stats.InstancesMonitored) + ',';
    Out += std::to_string(C.Stats.ProfilesPublished) + ',';
    Out += std::to_string(C.Stats.ProfilesDiscarded) + ',';
    Out += std::to_string(C.Stats.Evaluations) + ',';
    Out += std::to_string(C.Stats.Switches) + ',';
    Out += std::to_string(C.FootprintBytes) + '\n';
  }
  return Out;
}

bool cswitch::writeTextFile(const std::string &Path,
                            std::string_view Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), F);
  bool Ok = Written == Content.size();
  return std::fclose(F) == 0 && Ok;
}
