//===- Statistics.cpp - Summary statistics and significance --------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace cswitch;

double SampleStats::stddev() const { return std::sqrt(Variance); }

double SampleStats::ci95HalfWidth() const {
  if (Count < 2)
    return 0.0;
  return tCriticalValue5Percent(static_cast<double>(Count - 1)) *
         std::sqrt(Variance / static_cast<double>(Count));
}

SampleStats cswitch::summarize(const std::vector<double> &Values) {
  SampleStats Stats;
  if (Values.empty())
    return Stats;
  Stats.Count = Values.size();
  Stats.Min = Values.front();
  Stats.Max = Values.front();
  double Sum = 0.0;
  for (double V : Values) {
    Sum += V;
    Stats.Min = std::min(Stats.Min, V);
    Stats.Max = std::max(Stats.Max, V);
  }
  Stats.Mean = Sum / static_cast<double>(Values.size());
  if (Values.size() > 1) {
    double SqAcc = 0.0;
    for (double V : Values) {
      double D = V - Stats.Mean;
      SqAcc += D * D;
    }
    Stats.Variance = SqAcc / static_cast<double>(Values.size() - 1);
  }
  return Stats;
}

double cswitch::tCriticalValue5Percent(double Df) {
  // Two-sided 5% critical values for Student's t. Linear interpolation
  // between tabulated dfs; beyond df=120 the normal quantile 1.96 is used.
  static const double Table[][2] = {
      {1, 12.706}, {2, 4.303},  {3, 3.182},  {4, 2.776},  {5, 2.571},
      {6, 2.447},  {7, 2.365},  {8, 2.306},  {9, 2.262},  {10, 2.228},
      {12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {30, 2.042},
      {40, 2.021}, {60, 2.000}, {120, 1.980}};
  constexpr size_t TableSize = sizeof(Table) / sizeof(Table[0]);
  if (Df <= Table[0][0])
    return Table[0][1];
  if (Df >= Table[TableSize - 1][0])
    return 1.96;
  for (size_t I = 1; I != TableSize; ++I) {
    if (Df <= Table[I][0]) {
      double X0 = Table[I - 1][0], Y0 = Table[I - 1][1];
      double X1 = Table[I][0], Y1 = Table[I][1];
      return Y0 + (Y1 - Y0) * (Df - X0) / (X1 - X0);
    }
  }
  return 1.96;
}

ComparisonResult cswitch::compareMeans(const std::vector<double> &A,
                                       const std::vector<double> &B) {
  ComparisonResult Result;
  SampleStats SA = summarize(A);
  SampleStats SB = summarize(B);
  Result.MeanDifference = SB.Mean - SA.Mean;
  if (SA.Mean != 0.0)
    Result.RelativeChange = Result.MeanDifference / SA.Mean;
  if (SA.Count < 2 || SB.Count < 2)
    return Result;

  double VarTermA = SA.Variance / static_cast<double>(SA.Count);
  double VarTermB = SB.Variance / static_cast<double>(SB.Count);
  double StdErr = std::sqrt(VarTermA + VarTermB);
  if (StdErr == 0.0) {
    // Zero variance in both samples: any nonzero difference is exact.
    Result.Significant = Result.MeanDifference != 0.0;
    Result.TStatistic = Result.Significant ? HUGE_VAL : 0.0;
    return Result;
  }

  Result.TStatistic = Result.MeanDifference / StdErr;
  // Welch–Satterthwaite degrees of freedom.
  double Num = (VarTermA + VarTermB) * (VarTermA + VarTermB);
  double Den =
      VarTermA * VarTermA / static_cast<double>(SA.Count - 1) +
      VarTermB * VarTermB / static_cast<double>(SB.Count - 1);
  double Df = Den > 0.0 ? Num / Den : 1.0;
  Result.Significant =
      std::fabs(Result.TStatistic) > tCriticalValue5Percent(Df);
  return Result;
}
