//===- LeastSquares.h - Polynomial least-squares fitting -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Least-squares polynomial fitting, the numerical core of the performance
/// model builder (paper §4.1.2: "coefficients are calculated using the
/// least squares polynomial fit ... polynomials of third degree").
/// Implemented from scratch: Vandermonde normal equations solved by
/// Gaussian elimination with partial pivoting, with x-scaling to keep the
/// system well-conditioned for sizes up to 10^4.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_LEASTSQUARES_H
#define CSWITCH_SUPPORT_LEASTSQUARES_H

#include "support/Polynomial.h"

#include <cstddef>
#include <vector>

namespace cswitch {

/// Solves the dense linear system A * X = B in place and returns X.
///
/// \p A is row-major NxN. Uses Gaussian elimination with partial
/// pivoting. \returns an empty vector if the matrix is numerically
/// singular (pivot below 1e-12 after scaling).
std::vector<double> solveLinearSystem(std::vector<double> A,
                                      std::vector<double> B, size_t N);

/// Fits a polynomial of degree \p Degree to the samples (Xs[i], Ys[i]) by
/// least squares.
///
/// Requires at least Degree+1 samples. Internally scales x by 1/max|x| to
/// condition the Vandermonde normal equations, then unscales the
/// coefficients, so callers see coefficients in the original units.
/// \returns the zero polynomial if the system is singular (e.g. all Xs
/// identical).
Polynomial fitPolynomial(const std::vector<double> &Xs,
                         const std::vector<double> &Ys, size_t Degree);

/// Residual sum of squares of \p Fit against the samples.
double residualSumOfSquares(const Polynomial &Fit,
                            const std::vector<double> &Xs,
                            const std::vector<double> &Ys);

} // namespace cswitch

#endif // CSWITCH_SUPPORT_LEASTSQUARES_H
