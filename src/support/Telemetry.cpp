//===- Telemetry.cpp - Observability snapshot schema ---------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <unordered_map>
#include <utility>

using namespace cswitch;

namespace {

uint64_t monus(uint64_t A, uint64_t B) { return A > B ? A - B : 0; }

} // namespace

ContextStats &ContextStats::operator+=(const ContextStats &Other) {
  InstancesCreated += Other.InstancesCreated;
  InstancesMonitored += Other.InstancesMonitored;
  ProfilesPublished += Other.ProfilesPublished;
  ProfilesDiscarded += Other.ProfilesDiscarded;
  Evaluations += Other.Evaluations;
  Switches += Other.Switches;
  return *this;
}

ContextStats cswitch::operator-(const ContextStats &A,
                                const ContextStats &B) {
  ContextStats Out;
  Out.InstancesCreated = monus(A.InstancesCreated, B.InstancesCreated);
  Out.InstancesMonitored = monus(A.InstancesMonitored, B.InstancesMonitored);
  Out.ProfilesPublished = monus(A.ProfilesPublished, B.ProfilesPublished);
  Out.ProfilesDiscarded = monus(A.ProfilesDiscarded, B.ProfilesDiscarded);
  Out.Evaluations = monus(A.Evaluations, B.Evaluations);
  Out.Switches = monus(A.Switches, B.Switches);
  return Out;
}

bool cswitch::operator==(const ContextStats &A, const ContextStats &B) {
  return A.InstancesCreated == B.InstancesCreated &&
         A.InstancesMonitored == B.InstancesMonitored &&
         A.ProfilesPublished == B.ProfilesPublished &&
         A.ProfilesDiscarded == B.ProfilesDiscarded &&
         A.Evaluations == B.Evaluations && A.Switches == B.Switches;
}

EngineStats &EngineStats::operator+=(const ContextStats &Context) {
  ++Contexts;
  InstancesCreated += Context.InstancesCreated;
  InstancesMonitored += Context.InstancesMonitored;
  ProfilesPublished += Context.ProfilesPublished;
  ProfilesDiscarded += Context.ProfilesDiscarded;
  Evaluations += Context.Evaluations;
  Switches += Context.Switches;
  return *this;
}

EngineStats &EngineStats::operator+=(const EngineStats &Other) {
  Contexts += Other.Contexts;
  InstancesCreated += Other.InstancesCreated;
  InstancesMonitored += Other.InstancesMonitored;
  ProfilesPublished += Other.ProfilesPublished;
  ProfilesDiscarded += Other.ProfilesDiscarded;
  Evaluations += Other.Evaluations;
  Switches += Other.Switches;
  return *this;
}

EngineStats cswitch::operator-(const EngineStats &A, const EngineStats &B) {
  EngineStats Out;
  Out.Contexts = A.Contexts > B.Contexts ? A.Contexts - B.Contexts : 0;
  Out.InstancesCreated = monus(A.InstancesCreated, B.InstancesCreated);
  Out.InstancesMonitored = monus(A.InstancesMonitored, B.InstancesMonitored);
  Out.ProfilesPublished = monus(A.ProfilesPublished, B.ProfilesPublished);
  Out.ProfilesDiscarded = monus(A.ProfilesDiscarded, B.ProfilesDiscarded);
  Out.Evaluations = monus(A.Evaluations, B.Evaluations);
  Out.Switches = monus(A.Switches, B.Switches);
  return Out;
}

bool cswitch::operator==(const EngineStats &A, const EngineStats &B) {
  return A.Contexts == B.Contexts &&
         A.InstancesCreated == B.InstancesCreated &&
         A.InstancesMonitored == B.InstancesMonitored &&
         A.ProfilesPublished == B.ProfilesPublished &&
         A.ProfilesDiscarded == B.ProfilesDiscarded &&
         A.Evaluations == B.Evaluations && A.Switches == B.Switches;
}

bool cswitch::operator==(const LatencyStats &A, const LatencyStats &B) {
  return A.Count == B.Count && A.Saturated == B.Saturated &&
         A.SumNanos == B.SumNanos && A.MinNanos == B.MinNanos &&
         A.MaxNanos == B.MaxNanos && A.P50 == B.P50 && A.P90 == B.P90 &&
         A.P99 == B.P99 && A.P999 == B.P999;
}

EventLogStats cswitch::operator-(const EventLogStats &A,
                                 const EventLogStats &B) {
  EventLogStats Out;
  Out.Recorded = monus(A.Recorded, B.Recorded);
  Out.Dropped = monus(A.Dropped, B.Dropped);
  // Element-wise saturating difference, sized by the newer snapshot (a
  // baseline from before the per-node split simply subtracts nothing).
  Out.NodeDropped.resize(A.NodeDropped.size());
  for (size_t I = 0; I != A.NodeDropped.size(); ++I)
    Out.NodeDropped[I] =
        monus(A.NodeDropped[I],
              I < B.NodeDropped.size() ? B.NodeDropped[I] : 0);
  return Out;
}

bool cswitch::operator==(const TopologyStats &A, const TopologyStats &B) {
  return A.Nodes == B.Nodes && A.Cpus == B.Cpus;
}

RecorderStats &RecorderStats::operator+=(const RecorderStats &Other) {
  Recorders += Other.Recorders;
  OpsRecorded += Other.OpsRecorded;
  OpsDropped += Other.OpsDropped;
  InstancesSampled += Other.InstancesSampled;
  InstancesSkipped += Other.InstancesSkipped;
  return *this;
}

RecorderStats cswitch::operator-(const RecorderStats &A,
                                 const RecorderStats &B) {
  RecorderStats Out;
  Out.Recorders = monus(A.Recorders, B.Recorders);
  Out.OpsRecorded = monus(A.OpsRecorded, B.OpsRecorded);
  Out.OpsDropped = monus(A.OpsDropped, B.OpsDropped);
  Out.InstancesSampled = monus(A.InstancesSampled, B.InstancesSampled);
  Out.InstancesSkipped = monus(A.InstancesSkipped, B.InstancesSkipped);
  return Out;
}

bool cswitch::operator==(const RecorderStats &A, const RecorderStats &B) {
  return A.Recorders == B.Recorders && A.OpsRecorded == B.OpsRecorded &&
         A.OpsDropped == B.OpsDropped &&
         A.InstancesSampled == B.InstancesSampled &&
         A.InstancesSkipped == B.InstancesSkipped;
}

StoreStats &StoreStats::operator+=(const StoreStats &Other) {
  Loads += Other.Loads;
  LoadFailures += Other.LoadFailures;
  SitesLoaded += Other.SitesLoaded;
  WarmStarts += Other.WarmStarts;
  Persists += Other.Persists;
  PersistFailures += Other.PersistFailures;
  return *this;
}

StoreStats cswitch::operator-(const StoreStats &A, const StoreStats &B) {
  StoreStats Out;
  Out.Path = A.Path; // State, not a counter: carries over verbatim.
  Out.Loads = monus(A.Loads, B.Loads);
  Out.LoadFailures = monus(A.LoadFailures, B.LoadFailures);
  Out.SitesLoaded = monus(A.SitesLoaded, B.SitesLoaded);
  Out.WarmStarts = monus(A.WarmStarts, B.WarmStarts);
  Out.Persists = monus(A.Persists, B.Persists);
  Out.PersistFailures = monus(A.PersistFailures, B.PersistFailures);
  return Out;
}

bool cswitch::operator==(const StoreStats &A, const StoreStats &B) {
  return A.Loads == B.Loads && A.LoadFailures == B.LoadFailures &&
         A.SitesLoaded == B.SitesLoaded && A.WarmStarts == B.WarmStarts &&
         A.Persists == B.Persists &&
         A.PersistFailures == B.PersistFailures && A.Path == B.Path;
}

FleetStats &FleetStats::operator+=(const FleetStats &Other) {
  Pulls += Other.Pulls;
  PullFailures += Other.PullFailures;
  Pushes += Other.Pushes;
  PushFailures += Other.PushFailures;
  Retries += Other.Retries;
  StoreGets += Other.StoreGets;
  MergesApplied += Other.MergesApplied;
  SitesMerged += Other.SitesMerged;
  RejectedOversize += Other.RejectedOversize;
  RejectedMalformed += Other.RejectedMalformed;
  RejectedIncompatible += Other.RejectedIncompatible;
  Recalibrations += Other.Recalibrations;
  Promotions += Other.Promotions;
  PromotionsRejected += Other.PromotionsRejected;
  return *this;
}

FleetStats cswitch::operator-(const FleetStats &A, const FleetStats &B) {
  FleetStats Out;
  Out.Pulls = monus(A.Pulls, B.Pulls);
  Out.PullFailures = monus(A.PullFailures, B.PullFailures);
  Out.Pushes = monus(A.Pushes, B.Pushes);
  Out.PushFailures = monus(A.PushFailures, B.PushFailures);
  Out.Retries = monus(A.Retries, B.Retries);
  Out.StoreGets = monus(A.StoreGets, B.StoreGets);
  Out.MergesApplied = monus(A.MergesApplied, B.MergesApplied);
  Out.SitesMerged = monus(A.SitesMerged, B.SitesMerged);
  Out.RejectedOversize = monus(A.RejectedOversize, B.RejectedOversize);
  Out.RejectedMalformed = monus(A.RejectedMalformed, B.RejectedMalformed);
  Out.RejectedIncompatible =
      monus(A.RejectedIncompatible, B.RejectedIncompatible);
  Out.Recalibrations = monus(A.Recalibrations, B.Recalibrations);
  Out.Promotions = monus(A.Promotions, B.Promotions);
  Out.PromotionsRejected = monus(A.PromotionsRejected, B.PromotionsRejected);
  return Out;
}

bool cswitch::operator==(const FleetStats &A, const FleetStats &B) {
  return A.Pulls == B.Pulls && A.PullFailures == B.PullFailures &&
         A.Pushes == B.Pushes && A.PushFailures == B.PushFailures &&
         A.Retries == B.Retries && A.StoreGets == B.StoreGets &&
         A.MergesApplied == B.MergesApplied &&
         A.SitesMerged == B.SitesMerged &&
         A.RejectedOversize == B.RejectedOversize &&
         A.RejectedMalformed == B.RejectedMalformed &&
         A.RejectedIncompatible == B.RejectedIncompatible &&
         A.Recalibrations == B.Recalibrations &&
         A.Promotions == B.Promotions &&
         A.PromotionsRejected == B.PromotionsRejected;
}

TuningStats cswitch::operator-(const TuningStats &A, const TuningStats &B) {
  TuningStats Out = A; // Provenance carries over verbatim.
  Out.Loads = monus(A.Loads, B.Loads);
  Out.LoadFailures = monus(A.LoadFailures, B.LoadFailures);
  return Out;
}

bool cswitch::operator==(const TuningStats &A, const TuningStats &B) {
  return A.Loads == B.Loads && A.LoadFailures == B.LoadFailures &&
         A.Source == B.Source && A.Fingerprint == B.Fingerprint &&
         A.CorpusDigest == B.CorpusDigest && A.Seed == B.Seed &&
         A.Generations == B.Generations && A.Population == B.Population &&
         A.Evaluations == B.Evaluations && A.Parameters == B.Parameters &&
         A.WinnerFitness == B.WinnerFitness &&
         A.BaselineFitness == B.BaselineFitness;
}

ModelStats cswitch::operator-(const ModelStats &A, const ModelStats &B) {
  ModelStats Out = A; // Provenance carries over verbatim.
  Out.Installs = monus(A.Installs, B.Installs);
  return Out;
}

bool cswitch::operator==(const ModelStats &A, const ModelStats &B) {
  return A.Installs == B.Installs && A.Source == B.Source &&
         A.Fingerprint == B.Fingerprint &&
         A.FitTimestamp == B.FitTimestamp &&
         A.HoldoutResidual == B.HoldoutResidual;
}

ModelRegistry &ModelRegistry::global() {
  static ModelRegistry Instance;
  return Instance;
}

void ModelRegistry::recordInstall(const ModelStats &Provenance) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Installs = Counters.Installs + 1;
  Counters = Provenance;
  Counters.Installs = Installs;
}

ModelStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

TuningRegistry &TuningRegistry::global() {
  static TuningRegistry Instance;
  return Instance;
}

void TuningRegistry::recordLoad(const TuningStats &Provenance) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Loads = Counters.Loads + 1;
  uint64_t Failures = Counters.LoadFailures;
  Counters = Provenance;
  Counters.Loads = Loads;
  Counters.LoadFailures = Failures;
}

void TuningRegistry::recordFailure() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.LoadFailures;
}

TuningStats TuningRegistry::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

FleetRegistry &FleetRegistry::global() {
  static FleetRegistry Instance;
  return Instance;
}

void FleetRegistry::record(const FleetStats &Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters += Delta;
}

FleetStats FleetRegistry::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

RecorderRegistry &RecorderRegistry::global() {
  static RecorderRegistry Instance;
  return Instance;
}

uint64_t RecorderRegistry::attach(Source StatsSource) {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Id = NextId++;
  Sources.emplace_back(Id, std::move(StatsSource));
  return Id;
}

void RecorderRegistry::detach(uint64_t Id, const RecorderStats &Final) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = Sources.begin(); It != Sources.end(); ++It) {
    if (It->first == Id) {
      Sources.erase(It);
      Retired += Final;
      return;
    }
  }
}

RecorderStats RecorderRegistry::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  RecorderStats Out = Retired;
  for (const auto &[Id, Source] : Sources)
    Out += Source();
  return Out;
}

TelemetrySnapshot cswitch::operator-(const TelemetrySnapshot &Now,
                                     const TelemetrySnapshot &Before) {
  TelemetrySnapshot Out;
  Out.Engine = Now.Engine - Before.Engine;
  Out.Events = Now.Events - Before.Events;
  Out.Recorder = Now.Recorder - Before.Recorder;
  Out.Store = Now.Store - Before.Store;
  Out.Fleet = Now.Fleet - Before.Fleet;
  Out.Tuning = Now.Tuning - Before.Tuning;
  Out.Model = Now.Model - Before.Model;
  // Lifetime-distribution quantiles do not subtract; carry the newer
  // snapshot's distillation verbatim (same convention as Variant).
  Out.Latency = Now.Latency;
  // The topology is static process state, not a counter.
  Out.Topology = Now.Topology;
  std::unordered_map<std::string, const ContextSnapshot *> Baseline;
  Baseline.reserve(Before.Contexts.size());
  for (const ContextSnapshot &C : Before.Contexts)
    Baseline.emplace(C.Name, &C);
  Out.Contexts.reserve(Now.Contexts.size());
  for (const ContextSnapshot &C : Now.Contexts) {
    ContextSnapshot Delta = C;
    auto It = Baseline.find(C.Name);
    if (It != Baseline.end())
      Delta.Stats = C.Stats - It->second->Stats;
    Out.Contexts.push_back(std::move(Delta));
  }
  return Out;
}

Telemetry::Telemetry(Source SnapshotSource)
    : Snap(std::move(SnapshotSource)) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Last = Snap();
}

TelemetrySnapshot Telemetry::capture() const { return Snap(); }

TelemetrySnapshot Telemetry::interval() {
  TelemetrySnapshot Now = Snap();
  std::lock_guard<std::mutex> Lock(Mutex);
  TelemetrySnapshot Delta = Now - Last;
  Last = std::move(Now);
  return Delta;
}

void Telemetry::reset() {
  TelemetrySnapshot Now = Snap();
  std::lock_guard<std::mutex> Lock(Mutex);
  Last = std::move(Now);
}
