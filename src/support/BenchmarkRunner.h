//===- BenchmarkRunner.h - Steady-state measurement harness ----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-state measurement harness following the methodology the paper
/// adopts from Georges et al. (OOPSLA'07): a number of unmeasured warm-up
/// iterations followed by measured iterations whose statistics are
/// reported. Plays the role JMH plays for the Java original, both in the
/// model builder (§4.1.2: 15 warm-up / 30 measured) and in the evaluation
/// harnesses (§5.1).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_BENCHMARKRUNNER_H
#define CSWITCH_SUPPORT_BENCHMARKRUNNER_H

#include "support/MemoryTracker.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace cswitch {

/// Configuration of a steady-state measurement.
struct MeasurementPlan {
  size_t WarmupIterations = 15;
  size_t MeasuredIterations = 30;
  /// If nonzero, each iteration repeats the scenario until at least this
  /// many nanoseconds elapsed, and reports time per single execution.
  uint64_t MinIterationNanos = 0;
};

/// One measured iteration: wall time and bytes allocated.
struct IterationSample {
  double Nanos = 0.0;
  double AllocatedBytes = 0.0;
};

/// Result of a steady-state measurement.
struct MeasurementResult {
  std::vector<IterationSample> Samples;

  /// Per-iteration wall times in nanoseconds.
  std::vector<double> nanosSeries() const;
  /// Per-iteration allocation in bytes.
  std::vector<double> allocSeries() const;
  SampleStats timeStats() const;
  SampleStats allocStats() const;
};

/// Runs \p Scenario under \p Plan and reports per-execution statistics.
///
/// The scenario callable performs one complete execution of the workload
/// (e.g. "populate 100k collections and run the lookups"). Warm-up
/// executions are discarded; each measured iteration times one or more
/// executions (per MinIterationNanos) and records the allocation delta
/// from MemoryTracker, both normalized to a single execution.
MeasurementResult measureSteadyState(const MeasurementPlan &Plan,
                                     const std::function<void()> &Scenario);

} // namespace cswitch

#endif // CSWITCH_SUPPORT_BENCHMARKRUNNER_H
