//===- FunctionRef.h - Non-owning callable reference -----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning reference to a callable (modelled on llvm::function_ref).
/// Used for collection traversal callbacks where std::function's potential
/// heap allocation would pollute both the time and the allocation
/// dimensions of the performance model.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_FUNCTIONREF_H
#define CSWITCH_SUPPORT_FUNCTIONREF_H

#include <cstdint>
#include <type_traits>
#include <utility>

namespace cswitch {

template <typename Fn> class FunctionRef;

/// A lightweight reference to a callable with signature Ret(Params...).
///
/// Like StringRef for callables: it does not own the callee, so it must
/// not outlive the full-expression it was constructed in unless the callee
/// is known to stay alive. Always pass by value.
template <typename Ret, typename... Params> class FunctionRef<Ret(Params...)> {
public:
  FunctionRef() = default;

  template <typename Callable,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<Callable>, FunctionRef>>>
  FunctionRef(Callable &&Fn)
      : Callback(&callImpl<std::remove_reference_t<Callable>>),
        Callee(reinterpret_cast<intptr_t>(&Fn)) {}

  Ret operator()(Params... Args) const {
    return Callback(Callee, std::forward<Params>(Args)...);
  }

  explicit operator bool() const { return Callback != nullptr; }

private:
  template <typename Callable>
  static Ret callImpl(intptr_t Callee, Params... Args) {
    return (*reinterpret_cast<Callable *>(Callee))(
        std::forward<Params>(Args)...);
  }

  Ret (*Callback)(intptr_t, Params...) = nullptr;
  intptr_t Callee = 0;
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_FUNCTIONREF_H
