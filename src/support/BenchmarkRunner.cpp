//===- BenchmarkRunner.cpp - Steady-state measurement harness ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "support/BenchmarkRunner.h"

using namespace cswitch;

std::vector<double> MeasurementResult::nanosSeries() const {
  std::vector<double> Out;
  Out.reserve(Samples.size());
  for (const IterationSample &S : Samples)
    Out.push_back(S.Nanos);
  return Out;
}

std::vector<double> MeasurementResult::allocSeries() const {
  std::vector<double> Out;
  Out.reserve(Samples.size());
  for (const IterationSample &S : Samples)
    Out.push_back(S.AllocatedBytes);
  return Out;
}

SampleStats MeasurementResult::timeStats() const {
  return summarize(nanosSeries());
}

SampleStats MeasurementResult::allocStats() const {
  return summarize(allocSeries());
}

MeasurementResult
cswitch::measureSteadyState(const MeasurementPlan &Plan,
                            const std::function<void()> &Scenario) {
  for (size_t I = 0; I != Plan.WarmupIterations; ++I)
    Scenario();

  MeasurementResult Result;
  Result.Samples.reserve(Plan.MeasuredIterations);
  for (size_t I = 0; I != Plan.MeasuredIterations; ++I) {
    AllocationScope Alloc;
    Timer Clock;
    uint64_t Executions = 0;
    do {
      Scenario();
      ++Executions;
    } while (Clock.elapsedNanos() < Plan.MinIterationNanos);
    double Div = static_cast<double>(Executions);
    Result.Samples.push_back(
        {static_cast<double>(Clock.elapsedNanos()) / Div,
         static_cast<double>(Alloc.allocatedInScope()) / Div});
  }
  return Result;
}
