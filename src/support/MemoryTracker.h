//===- MemoryTracker.h - Allocation byte accounting ------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-local accounting of bytes allocated by the collection library.
/// Plays the role of the JMH GC profiler in the paper (§4.1.2): the model
/// builder and the Fig. 5 allocation plots read these counters around a
/// measured scenario, and the Ralloc selection dimension is calibrated
/// from them. Every collection variant routes its internal storage through
/// CountingAllocator so the numbers cover exactly the collection-owned
/// memory, like the per-collection footprint studies the paper cites.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_MEMORYTRACKER_H
#define CSWITCH_SUPPORT_MEMORYTRACKER_H

#include <cstddef>
#include <cstdint>
#include <memory>

namespace cswitch {

/// Thread-local byte counters for collection-internal allocations.
///
/// `allocated` is cumulative (monotone; the allocation-churn metric),
/// `live` is current usage (the footprint metric), `peakLive` tracks the
/// high-water mark since the last resetPeak().
class MemoryTracker {
public:
  /// Records an allocation of \p Bytes.
  static void recordAlloc(size_t Bytes);
  /// Records a deallocation of \p Bytes.
  static void recordFree(size_t Bytes);

  /// Cumulative bytes allocated on this thread since startup.
  static uint64_t allocatedBytes();
  /// Bytes currently live (allocated minus freed) on this thread.
  static int64_t liveBytes();
  /// High-water mark of liveBytes() since the last resetPeak().
  static int64_t peakLiveBytes();
  /// Resets the peak to the current live value.
  static void resetPeak();
};

/// RAII scope measuring bytes allocated (cumulative) between construction
/// and the call to allocatedInScope().
class AllocationScope {
public:
  AllocationScope() : StartAllocated(MemoryTracker::allocatedBytes()) {}

  /// Bytes allocated on this thread since the scope was opened.
  uint64_t allocatedInScope() const {
    return MemoryTracker::allocatedBytes() - StartAllocated;
  }

private:
  uint64_t StartAllocated;
};

/// Minimal std-compatible allocator that reports every byte to
/// MemoryTracker. Used for all internal storage of the collection
/// variants.
template <typename T> class CountingAllocator {
public:
  using value_type = T;

  CountingAllocator() = default;
  template <typename U> CountingAllocator(const CountingAllocator<U> &) {}

  T *allocate(size_t N) {
    MemoryTracker::recordAlloc(N * sizeof(T));
    return std::allocator<T>().allocate(N);
  }

  void deallocate(T *Ptr, size_t N) {
    MemoryTracker::recordFree(N * sizeof(T));
    std::allocator<T>().deallocate(Ptr, N);
  }

  bool operator==(const CountingAllocator &) const { return true; }
  bool operator!=(const CountingAllocator &) const { return false; }
};

/// Allocates one counted object of type \p T (for node-based variants).
template <typename T, typename... Args> T *newCounted(Args &&...As) {
  CountingAllocator<T> Alloc;
  T *Ptr = Alloc.allocate(1);
  return new (Ptr) T(std::forward<Args>(As)...);
}

/// Destroys and frees an object allocated with newCounted.
template <typename T> void deleteCounted(T *Ptr) {
  if (!Ptr)
    return;
  Ptr->~T();
  CountingAllocator<T>().deallocate(Ptr, 1);
}

} // namespace cswitch

#endif // CSWITCH_SUPPORT_MEMORYTRACKER_H
