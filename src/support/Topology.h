//===- Topology.h - Processor topology detection ----------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NUMA topology detection and the striping primitives built on it.
/// The monitoring hot paths (instance counters, event ring, latency
/// histograms, registry shards) are all write-heavy and read-rarely;
/// striping them per NUMA node keeps the cache lines they hammer local
/// to the writing socket and turns cross-node contention into a
/// merge-at-snapshot cost on the cold read path (DESIGN.md §10).
///
/// Detection reads `/sys/devices/system/node/node*/cpulist` and degrades
/// to a single node when sysfs is absent (non-Linux, containers with a
/// masked /sys). `CSWITCH_NUMA_NODES` overrides the node count for
/// testing the striped structures on single-node hardware; under the
/// override threads are spread over the synthetic nodes round-robin in
/// creation order, so a test's worker threads deterministically land on
/// distinct stripes.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_TOPOLOGY_H
#define CSWITCH_SUPPORT_TOPOLOGY_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cswitch {

/// Size every contended counter is padded to. 64 bytes covers x86 and
/// most AArch64 parts; the adjacent-line prefetcher argues for 128, but
/// doubling the footprint of every striped counter is not worth it for
/// structures that already separate writers by node.
inline constexpr size_t CacheLineBytes = 64;

/// Immutable view of the machine's NUMA layout: how many nodes there
/// are and which node each cpu belongs to. Value type; detection is a
/// pure function of a sysfs directory so tests can point it at a fake
/// root.
class Topology {
public:
  /// Detects the topology from \p SysfsNodeDir (layout of
  /// /sys/devices/system/node: one `node<id>` subdirectory per node,
  /// each with a `cpulist` file like "0-3,8-11"). Sparse node ids are
  /// renumbered densely in ascending order. Returns a single-node
  /// topology when the directory is missing or unparsable.
  ///
  /// \p OverrideNodes, when nonzero, wins over detection: the topology
  /// becomes \p OverrideNodes synthetic nodes (capped at 64) with
  /// threads assigned round-robin — see currentNode().
  static Topology detect(const std::string &SysfsNodeDir,
                         unsigned OverrideNodes = 0);

  /// The process-wide topology: detected once from the live sysfs, with
  /// the `CSWITCH_NUMA_NODES` environment variable (read once, at first
  /// use) as the override.
  static const Topology &system();

  /// Single-node fallback (also what detect() returns on failure).
  Topology() = default;

  /// Number of NUMA nodes (>= 1).
  unsigned nodeCount() const { return Nodes; }

  /// Number of cpus the detection saw (>= 1; hardware_concurrency
  /// fallback when sysfs was absent).
  unsigned cpuCount() const { return Cpus; }

  /// True when the node count came from an override rather than sysfs.
  bool synthetic() const { return Synthetic; }

  /// Node of \p Cpu (0 when unknown; `Cpu % nodeCount()` under a
  /// synthetic override so every node is reachable).
  unsigned nodeOfCpu(unsigned Cpu) const;

  /// Cpus belonging to \p Node (empty for out-of-range nodes, and for
  /// synthetic topologies, which have no real cpu map).
  std::vector<unsigned> cpusOfNode(unsigned Node) const;

  /// Node index of the calling thread, always in [0, nodeCount()).
  ///
  /// Real topologies map the current cpu (sched_getcpu, cached in a
  /// thread-local and refreshed every ~1024 calls — a migrated thread
  /// briefly records onto its old node's stripe, which costs a few
  /// remote writes but is never incorrect). Synthetic topologies assign
  /// each thread a node round-robin in first-use order, which is what
  /// makes single-machine tests of the striped structures
  /// deterministic.
  unsigned currentNode() const;

private:
  unsigned Nodes = 1;
  unsigned Cpus = 1;
  bool Synthetic = false;
  std::vector<int> CpuToNode; ///< Indexed by cpu id; -1 for gaps.
};

/// Stripe index of the calling thread for a structure with
/// \p NumStripes stripes: the current node, folded down when the
/// structure has fewer stripes than the machine has nodes.
inline unsigned currentStripe(unsigned NumStripes) {
  if (NumStripes <= 1)
    return 0;
  return Topology::system().currentNode() % NumStripes;
}

/// A small fixed set of per-node-striped uint64 counters. add() is a
/// relaxed fetch_add on the caller's node's stripe — no cross-node
/// cache-line traffic on the hot path; sum() merges the stripes at read
/// time (monotonic per stripe, so a racing sum() is a valid snapshot of
/// some interleaving, like any single relaxed counter).
///
/// Each stripe is one cache line, so the \p NumCounters counters of a
/// stripe share a line on purpose: they are only ever written by
/// threads of one node, and splitting them would quadruple the
/// footprint for no contention win.
template <size_t NumCounters> class StripedCounters {
  static_assert(NumCounters >= 1 &&
                    NumCounters * sizeof(uint64_t) <= CacheLineBytes,
                "one stripe must fit a cache line");

public:
  /// \p Stripes = 0 means one stripe per NUMA node.
  explicit StripedCounters(unsigned Stripes = 0)
      : NumStripes(Stripes ? Stripes : Topology::system().nodeCount()),
        Lanes(std::make_unique<Stripe[]>(NumStripes)) {}

  /// Adds \p Delta to counter \p Which on the calling thread's stripe.
  void add(size_t Which, uint64_t Delta = 1) {
    Lanes[currentStripe(NumStripes)].Counters[Which].fetch_add(
        Delta, std::memory_order_relaxed);
  }

  /// Test hook: adds on an explicit stripe.
  void addOnStripe(unsigned Stripe, size_t Which, uint64_t Delta = 1) {
    Lanes[Stripe % NumStripes].Counters[Which].fetch_add(
        Delta, std::memory_order_relaxed);
  }

  /// Merged value of counter \p Which over every stripe.
  uint64_t sum(size_t Which) const {
    uint64_t Total = 0;
    for (unsigned S = 0; S != NumStripes; ++S)
      Total += Lanes[S].Counters[Which].load(std::memory_order_relaxed);
    return Total;
  }

  unsigned stripes() const { return NumStripes; }

  /// Heap bytes owned by the stripe array (for footprint accounting).
  size_t memoryBytes() const { return NumStripes * sizeof(Stripe); }

private:
  struct alignas(CacheLineBytes) Stripe {
    std::atomic<uint64_t> Counters[NumCounters] = {};
  };

  unsigned NumStripes;
  std::unique_ptr<Stripe[]> Lanes;
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_TOPOLOGY_H
