//===- EventLog.h - Framework event tracing ---------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "detailed log system for tracing framework events" the paper names
/// as its mitigation for the increased-complexity risk (§4.4). Events are
/// recorded in a bounded in-memory ring and can be drained for inspection;
/// Table 6 (most common transitions) is produced from the Transition
/// events recorded here.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_EVENTLOG_H
#define CSWITCH_SUPPORT_EVENTLOG_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cswitch {

/// Kind of framework event.
enum class EventKind {
  ContextCreated,   ///< An allocation context was registered.
  MonitoringRound,  ///< A context started monitoring a fresh window.
  Evaluation,       ///< A context evaluated its window.
  Transition,       ///< A context switched its variant.
  AdaptiveMigration ///< An adaptive instance migrated its representation.
};

/// Returns a stable name for \p Kind (e.g. "transition").
const char *eventKindName(EventKind Kind);

/// One recorded framework event.
struct Event {
  EventKind Kind;
  std::string Context; ///< Context/site name, or variant name for migrations.
  std::string Detail;  ///< Free-form detail, e.g. "ArrayList -> AdaptiveList".
  uint64_t SequenceNumber = 0;
};

/// Thread-safe, bounded, process-wide event log.
///
/// Bounded so that long benchmark runs cannot grow it without limit; when
/// full, the oldest events are dropped (droppedCount() reports how many).
class EventLog {
public:
  /// Returns the process-wide log instance.
  static EventLog &global();

  explicit EventLog(size_t Capacity = 65536) : Capacity(Capacity) {}

  /// Appends an event.
  void record(EventKind Kind, std::string Context, std::string Detail);

  /// Returns a snapshot of the retained events in record order.
  std::vector<Event> snapshot() const;

  /// Returns the retained events of kind \p Kind in record order.
  std::vector<Event> snapshotOfKind(EventKind Kind) const;

  /// Removes all events (dropped count is reset too).
  void clear();

  /// Number of events discarded because the ring was full.
  uint64_t droppedCount() const;

  /// Total events ever recorded (including dropped).
  uint64_t totalRecorded() const;

private:
  mutable std::mutex Mutex;
  size_t Capacity;
  size_t Head = 0; ///< Index of the oldest retained event.
  std::vector<Event> Ring;
  uint64_t Dropped = 0;
  uint64_t NextSequence = 0;
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_EVENTLOG_H
