//===- EventLog.h - Framework event tracing ---------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "detailed log system for tracing framework events" the paper names
/// as its mitigation for the increased-complexity risk (§4.4). Events are
/// recorded in fixed-capacity lock-free rings and can be drained or
/// snapshotted for inspection; Table 6 (most common transitions) is
/// produced from the Transition events recorded here.
///
/// Record path (DESIGN.md §6, "telemetry ring protocol"): record() is
/// wait-free apart from one atomic fetch_add — a ticket claims a slot,
/// the payload is published under a per-slot sequence version, and
/// writers never block on readers or on each other. Site names and
/// detail strings are interned once (mutex-guarded cold path) and events
/// carry 32-bit ids, so recording allocates nothing and copies no
/// strings. When a ring wraps, the oldest events are overwritten and
/// droppedCount() reports how many were lost.
///
/// Topology-aware sharding (DESIGN.md §10): the log is one ring per
/// NUMA node, so the ticket counter a recorder hammers lives on its own
/// socket and never bounces across the interconnect. record() routes to
/// the caller's node ring; consumers merge the rings by timestamp while
/// preserving each ring's ticket order, and drop accounting stays exact
/// per ring (nodeDroppedCounts() exposes the split). On single-node
/// machines there is exactly one ring and behaviour is identical to the
/// pre-sharded log.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_EVENTLOG_H
#define CSWITCH_SUPPORT_EVENTLOG_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cswitch {

/// Kind of framework event.
enum class EventKind {
  ContextCreated,    ///< An allocation context was registered.
  MonitoringRound,   ///< A context started monitoring a fresh window.
  Evaluation,        ///< A context evaluated its window.
  Transition,        ///< A context switched its variant.
  AdaptiveMigration, ///< An adaptive instance migrated its representation.
  WarmStart,         ///< A context seeded its variant from the store.
  Store              ///< Selection-store activity (load/persist problems).
};

/// Returns a stable name for \p Kind (e.g. "transition").
const char *eventKindName(EventKind Kind);

/// One recorded framework event, resolved for consumption. The strings
/// are materialized from the intern table at snapshot/drain time; the
/// ring itself only stores the ids.
struct Event {
  EventKind Kind;
  std::string Context; ///< Context/site name, or variant name for migrations.
  std::string Detail;  ///< Free-form detail, e.g. "ArrayList -> AdaptiveList".
  /// Unique per event: the ring-local ticket in the low bits with the
  /// ring (node) index folded into bits 48+. On a single-node log this
  /// is the plain ticket. Orders events within one node; cross-node
  /// order comes from TimestampNanos.
  uint64_t SequenceNumber = 0;
  /// Record time in monotonicNanos() units (the steady clock), so
  /// drained events can be laid out on a timeline (the Perfetto
  /// decision-timeline export) and correlated with latency histograms
  /// captured on the same clock.
  uint64_t TimestampNanos = 0;
  uint32_t ContextId = 0; ///< Interned id of Context.
  uint32_t DetailId = 0;  ///< Interned id of Detail.
  uint32_t Node = 0;      ///< NUMA node (ring) the event was recorded on.
};

/// Lock-free, bounded, process-wide event log: one ring per NUMA node.
///
/// Bounded so that long benchmark runs cannot grow it without limit;
/// when a ring is full, its oldest events are overwritten
/// (droppedCount() reports how many, nodeDroppedCounts() per ring). The
/// record path takes no mutex and performs no allocation: it is one
/// relaxed fetch_add on the caller's node's ticket counter, one
/// steady-clock read (the timestamp that anchors the decision
/// timeline), and five slot stores. Consumers (snapshot / drain /
/// clear) serialize against each other on a mutex but never against
/// recorders; slots overwritten mid-read are detected by their sequence
/// version and skipped.
class EventLog {
public:
  /// Returns the process-wide log instance.
  static EventLog &global();

  /// \p Capacity is the total slot budget, split evenly over the rings
  /// and rounded up per ring to a power of two. \p Nodes = 0 means one
  /// ring per NUMA node of Topology::system(); pass an explicit count
  /// to pin the ring layout (tests of per-ring semantics pass 1).
  explicit EventLog(size_t Capacity = 65536, unsigned Nodes = 0);

  EventLog(const EventLog &) = delete;
  EventLog &operator=(const EventLog &) = delete;

  //===--------------------------------------------------------------===//
  // Interning (cold path, mutex-guarded)
  //===--------------------------------------------------------------===//

  /// Interns \p Text and returns its stable id. Interning the same text
  /// twice returns the same id. Id 0 is always the empty string.
  uint32_t intern(std::string_view Text);

  /// Returns the text interned under \p Id ("" for unknown ids).
  std::string textOf(uint32_t Id) const;

  //===--------------------------------------------------------------===//
  // Record path (lock-free, allocation-free)
  //===--------------------------------------------------------------===//

  /// Appends an event carrying pre-interned ids to the calling thread's
  /// node ring. Lock-free: one atomic fetch_add claims the slot; a
  /// per-slot sequence version publishes the payload. Returns
  /// immediately without any work when recording is disabled.
  void record(EventKind Kind, uint32_t ContextId, uint32_t DetailId = 0);

  /// record() onto an explicit node's ring (folded modulo the ring
  /// count). Tests of the merge/drop protocol use this to target rings
  /// deterministically regardless of the machine's real topology.
  void recordOnNode(unsigned Node, EventKind Kind, uint32_t ContextId,
                    uint32_t DetailId = 0);

  /// Convenience overload that interns both strings first (cold paths
  /// and tests; the framework's hot paths pre-intern and use the id
  /// overload).
  void record(EventKind Kind, std::string_view Context,
              std::string_view Detail);

  /// Globally enables/disables recording. While disabled, record() is a
  /// single relaxed load and nothing is counted.
  void setEnabled(bool Enabled) {
    this->Enabled.store(Enabled, std::memory_order_relaxed);
  }

  /// True when recording is enabled (the default).
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  //===--------------------------------------------------------------===//
  // Consumption (serialized on a consumer mutex; never blocks recorders)
  //===--------------------------------------------------------------===//

  /// Returns a snapshot of the retained events, merged across rings in
  /// timestamp order with each ring's ticket order preserved. Events
  /// overwritten while the snapshot runs are skipped.
  std::vector<Event> snapshot() const;

  /// Returns the retained events of kind \p Kind in merged order.
  std::vector<Event> snapshotOfKind(EventKind Kind) const;

  /// Consuming read: returns the events recorded since the previous
  /// drain() (or clear()), merged across rings, and advances each
  /// ring's drain cursor past them. A ring's cursor stops before any
  /// event whose writer is still mid-publication, so a drain never
  /// loses an event that is about to arrive — the next drain picks it
  /// up.
  std::vector<Event> drain();

  /// Forgets all recorded events (dropped counts and drain cursors are
  /// reset too). The intern table is retained: ids stay valid.
  void clear();

  /// Events lost because a ring wrapped (since clear()), summed over
  /// rings.
  uint64_t droppedCount() const;

  /// Per-ring wrap losses, indexed by node (size nodeCount()).
  std::vector<uint64_t> nodeDroppedCounts() const;

  /// Total events recorded since clear() (including dropped ones).
  uint64_t totalRecorded() const;

  /// Total slot capacity over all rings.
  size_t capacity() const { return RingCap * Nodes; }

  /// Number of per-node rings.
  unsigned nodeCount() const { return Nodes; }

private:
  /// One ring slot. Ver carries the full ticket: 2*T+1 while the
  /// payload of ticket T is being written, 2*T+2 once published. A
  /// reader accepts a slot only when Ver reads 2*T+2 for the ticket it
  /// expects both before and after loading the payload (seqlock
  /// validation with Boehm's fence protocol), so overwrites and torn
  /// writes are detected instead of locked out.
  struct alignas(32) Slot {
    std::atomic<uint64_t> Ver{0};
    std::atomic<uint64_t> Ts{0};
    std::atomic<uint32_t> Context{0};
    std::atomic<uint32_t> Detail{0};
    std::atomic<uint32_t> Kind{0};
  };

  /// One per-node ring: slots plus the ticket counters that only
  /// threads of this node touch on the record path. Cache-line aligned
  /// so one node's Next never shares a line with another's.
  struct alignas(64) Ring {
    std::unique_ptr<Slot[]> Slots;
    /// Monotonic ticket counter: the single point of contention on the
    /// record path, now per node. Never reset (clear() moves Base
    /// instead so in-flight recorders keep working).
    std::atomic<uint64_t> Next{0};
    /// Logical beginning of the ring (advanced by clear()).
    std::atomic<uint64_t> Base{0};
    uint64_t DrainCursor = 0; ///< Guarded by ConsumerMutex.
  };

  /// Raw (still id-based) event collected from a ring.
  struct RawEvent {
    uint64_t Ticket;
    uint64_t Ts;
    uint32_t Context;
    uint32_t Detail;
    uint32_t Kind;
    uint32_t Node;
  };

  /// The record path, targeted at ring \p Node.
  void recordOnRing(unsigned Node, EventKind Kind, uint32_t ContextId,
                    uint32_t DetailId);

  /// Collects ring \p Node's validated events with tickets in
  /// [Lo, Hi), in ticket order.
  std::vector<RawEvent> collect(unsigned Node, uint64_t Lo,
                                uint64_t Hi) const;

  /// Merges per-ring collections (each ticket-ordered) into one
  /// timestamp-ordered stream; ties break by node index, so the merge
  /// is deterministic and each ring's internal order survives.
  static std::vector<RawEvent>
  merge(std::vector<std::vector<RawEvent>> PerRing);

  /// Resolves raw events into Events (one intern-table lock for all).
  std::vector<Event> resolve(const std::vector<RawEvent> &Raw) const;

  /// Oldest ticket of ring \p R that can still be retained given
  /// \p Hi = R.Next.
  uint64_t windowStart(const Ring &R, uint64_t Hi) const {
    uint64_t Lo = R.Base.load(std::memory_order_relaxed);
    if (Hi - Lo > RingCap)
      Lo = Hi - RingCap;
    return Lo;
  }

  size_t RingCap; ///< Power-of-two slot count per ring.
  size_t Mask;    ///< RingCap - 1.
  unsigned Nodes; ///< Ring count (>= 1).
  std::unique_ptr<Ring[]> Rings;

  std::atomic<bool> Enabled{true};

  /// Serializes consumers (snapshot/drain/clear) with each other only.
  mutable std::mutex ConsumerMutex;

  /// Intern table (cold path).
  mutable std::mutex InternMutex;
  std::vector<std::string> InternedText;
  std::unordered_map<std::string, uint32_t> InternedIds;
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_EVENTLOG_H
