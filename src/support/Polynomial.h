//===- Polynomial.h - Dense univariate polynomials -------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense univariate polynomials over double. The performance model of the
/// paper (§4.1.2) represents the cost of every critical collection
/// operation as a cubic polynomial of the collection size; this is the
/// value type those models are made of.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_POLYNOMIAL_H
#define CSWITCH_SUPPORT_POLYNOMIAL_H

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace cswitch {

/// A polynomial c0 + c1*x + c2*x^2 + ... with double coefficients.
///
/// The default-constructed polynomial is the zero polynomial. Degree is
/// structural (trailing zero coefficients are kept as written), matching
/// the fixed-degree fits produced by the model builder.
class Polynomial {
public:
  Polynomial() = default;

  /// Constructs from coefficients ordered low degree first.
  explicit Polynomial(std::vector<double> Coeffs)
      : Coefficients(std::move(Coeffs)) {}

  /// Returns the polynomial coefficients, low degree first (empty for the
  /// zero polynomial).
  const std::vector<double> &coefficients() const { return Coefficients; }

  /// Structural degree; the zero polynomial reports degree 0.
  size_t degree() const {
    return Coefficients.empty() ? 0 : Coefficients.size() - 1;
  }

  /// Evaluates at \p X using Horner's scheme.
  double evaluate(double X) const {
    double Acc = 0.0;
    for (size_t I = Coefficients.size(); I > 0; --I)
      Acc = Acc * X + Coefficients[I - 1];
    return Acc;
  }

  /// Evaluates at \p X and clamps negative predictions to zero.
  ///
  /// Cost models must never predict negative cost: a cubic fit to noisy
  /// measurements can dip below zero at small sizes, and a negative cost
  /// would invert the selection-rule ratios.
  double evaluateNonNegative(double X) const {
    double V = evaluate(X);
    return V < 0.0 ? 0.0 : V;
  }

  /// Pointwise sum.
  Polynomial operator+(const Polynomial &Other) const;

  /// Scalar multiple.
  Polynomial scaled(double Factor) const;

  /// Human-readable rendering, e.g. "3.5 + 0.25*x + 1e-3*x^2".
  std::string toString() const;

  bool operator==(const Polynomial &Other) const {
    return Coefficients == Other.Coefficients;
  }

private:
  std::vector<double> Coefficients;
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_POLYNOMIAL_H
