//===- Timer.h - Monotonic wall-clock timing --------------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin wrapper over std::chrono::steady_clock used by the benchmark
/// runner and the harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_TIMER_H
#define CSWITCH_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace cswitch {

/// Monotonic nanoseconds since an arbitrary process-stable epoch (the
/// steady clock's own epoch). One clock read; the shared timestamp
/// source of the event log and the continuous-profiling layer, so their
/// timelines line up in exports.
inline uint64_t monotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic stopwatch; starts at construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed nanoseconds since construction or the last reset().
  uint64_t elapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  /// Elapsed seconds since construction or the last reset().
  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_TIMER_H
