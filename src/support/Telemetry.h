//===- Telemetry.h - Observability snapshot schema --------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry schema of the framework's observability layer: typed,
/// string-keyed snapshots of the monitoring pipeline that the engine
/// fills, the periodic reporter emits, and MetricsExport serializes.
///
/// Layering: this header is pure data plus delta arithmetic — it knows
/// nothing about contexts, engines, or collections, so the support
/// library stays at the bottom of the dependency stack. The core layer
/// (SwitchEngine::telemetry()) produces snapshots; consumers diff,
/// export, or stream them.
///
/// All counters are cumulative ("since process start" for a live
/// snapshot). Interval behaviour is obtained by subtracting two
/// snapshots: `Now - Before` via the saturating operator- overloads, or
/// statefully via the Telemetry interval tracker.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_SUPPORT_TELEMETRY_H
#define CSWITCH_SUPPORT_TELEMETRY_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace cswitch {

/// Monitoring counters of one allocation context (the "accessor pile"
/// of AllocationContextBase, batched into one value type).
struct ContextStats {
  uint64_t InstancesCreated = 0;
  uint64_t InstancesMonitored = 0;
  uint64_t ProfilesPublished = 0;
  uint64_t ProfilesDiscarded = 0;
  uint64_t Evaluations = 0;
  uint64_t Switches = 0;

  ContextStats &operator+=(const ContextStats &Other);
};

/// Saturating per-field difference (counters are monotonic; a negative
/// interval can only come from contexts vanishing and clamps to zero).
ContextStats operator-(const ContextStats &A, const ContextStats &B);
bool operator==(const ContextStats &A, const ContextStats &B);

/// Aggregate monitoring statistics over every registered context (the
/// facade-level report of the §5.3 overhead discussion).
struct EngineStats {
  size_t Contexts = 0;
  uint64_t InstancesCreated = 0;
  uint64_t InstancesMonitored = 0;
  uint64_t ProfilesPublished = 0;
  uint64_t ProfilesDiscarded = 0;
  uint64_t Evaluations = 0;
  uint64_t Switches = 0;

  EngineStats &operator+=(const ContextStats &Context);
  EngineStats &operator+=(const EngineStats &Other);
};

/// Saturating per-field difference: the interval behaviour between two
/// engine-wide snapshots (benchmarks bracket runs with this instead of
/// hand-diffing individual counters).
EngineStats operator-(const EngineStats &A, const EngineStats &B);
bool operator==(const EngineStats &A, const EngineStats &B);

/// Distilled view of one latency histogram (src/obs/LatencyHistogram):
/// counts, extrema and the headline quantiles, all in nanoseconds.
/// Cumulative since process start, like every other telemetry counter;
/// quantiles describe the lifetime distribution, so interval snapshots
/// carry them verbatim from the newer snapshot rather than subtracting.
struct LatencyStats {
  uint64_t Count = 0;     ///< Samples recorded.
  uint64_t Saturated = 0; ///< Samples clamped at the max trackable value.
  uint64_t SumNanos = 0;  ///< Sum of recorded latencies.
  uint64_t MinNanos = 0;  ///< Smallest recorded latency (0 when empty).
  uint64_t MaxNanos = 0;  ///< Largest recorded latency.
  double P50 = 0.0;       ///< Median, in nanoseconds.
  double P90 = 0.0;
  double P99 = 0.0;
  double P999 = 0.0;
};
// No operator+= on purpose: quantiles cannot be merged from two
// LatencyStats — aggregation happens on the histograms themselves
// (obs::HistogramSnapshot::operator+=) before distilling.

bool operator==(const LatencyStats &A, const LatencyStats &B);

/// Latency distributions of one allocation site's instrumented paths
/// (the continuous-profiling layer's per-site view).
struct SiteLatencies {
  LatencyStats Record;   ///< Monitoring fast path (slot claim + publish).
  LatencyStats Evaluate; ///< Window evaluation (analysis rounds).
  LatencyStats Switch;   ///< Variant-transition execution.
};

/// Engine-wide latency distributions: the per-site histograms merged,
/// plus the store-persistence path (which has no per-site identity).
struct EngineLatencies {
  LatencyStats Record;
  LatencyStats Evaluate;
  LatencyStats Switch;
  LatencyStats Persist; ///< SelectionStore persist (merge + write).
};

/// Per-context slice of a telemetry snapshot. Strings, not enums, so
/// the schema (and its exports) need no knowledge of the collection
/// layer.
struct ContextSnapshot {
  std::string Name;        ///< Allocation-site name.
  std::string Abstraction; ///< "list", "set" or "map".
  std::string Variant;     ///< Current variant name.
  ContextStats Stats;
  size_t FootprintBytes = 0; ///< Approximate context memory footprint.
  SiteLatencies Latency;     ///< Per-site latency distributions.
  /// Smoothed estimate of distinct threads operating on this site's
  /// collections (0 for sequential contexts; DESIGN.md §11).
  double ContendedThreads = 0.0;
};

/// Counters of the event-log rings at snapshot time.
struct EventLogStats {
  uint64_t Recorded = 0; ///< Events recorded (including dropped).
  uint64_t Dropped = 0;  ///< Events lost to ring wrap-around.
  /// Wrap losses split per NUMA node ring (DESIGN.md §10); indexed by
  /// node, sums to Dropped. Empty when the producer predates the
  /// per-node split.
  std::vector<uint64_t> NodeDropped;
};

EventLogStats operator-(const EventLogStats &A, const EventLogStats &B);

/// The machine topology the striped monitoring structures were sized
/// for (detected once at process start; see support/Topology.h).
/// Carried in the snapshot so exports can label per-node series.
struct TopologyStats {
  uint32_t Nodes = 1; ///< NUMA nodes.
  uint32_t Cpus = 1;  ///< Cpus the detection saw.
};

bool operator==(const TopologyStats &A, const TopologyStats &B);

/// Counters of the operation-trace recorders (src/replay/) at snapshot
/// time. Aggregated over every recorder ever attached in this process so
/// trace loss (ops dropped by a full buffer, instances passed over by
/// sampling) is observable, not silent.
struct RecorderStats {
  uint64_t Recorders = 0;        ///< Recorders attached (cumulative).
  uint64_t OpsRecorded = 0;      ///< Ops captured into trace buffers.
  uint64_t OpsDropped = 0;       ///< Ops lost to full trace buffers.
  uint64_t InstancesSampled = 0; ///< Instances traced.
  uint64_t InstancesSkipped = 0; ///< Instances passed over by sampling.

  RecorderStats &operator+=(const RecorderStats &Other);
};

RecorderStats operator-(const RecorderStats &A, const RecorderStats &B);
bool operator==(const RecorderStats &A, const RecorderStats &B);

/// Counters of the persistent selection store (src/store/) at snapshot
/// time, so cross-run warm-start behaviour — including graceful
/// degradation on a corrupt store — is observable, not silent.
struct StoreStats {
  uint64_t Loads = 0;           ///< Store documents loaded (incl. missing).
  uint64_t LoadFailures = 0;    ///< Corrupt/mismatched documents (cold start).
  uint64_t SitesLoaded = 0;     ///< Sites read from loaded documents.
  uint64_t WarmStarts = 0;      ///< Contexts seeded from a stored decision.
  uint64_t Persists = 0;        ///< Successful store merges written out.
  uint64_t PersistFailures = 0; ///< Failed lock/write attempts.
  /// Path of the engine-installed store (state, not a counter: carried
  /// verbatim by operator-). Empty when no store is installed.
  std::string Path;

  StoreStats &operator+=(const StoreStats &Other);
};

StoreStats operator-(const StoreStats &A, const StoreStats &B);
bool operator==(const StoreStats &A, const StoreStats &B);

/// Counters of the fleet calibration subsystem (src/fleet/) at snapshot
/// time: store push/pull sync traffic, every network-input rejection
/// class, and the recalibration promotion gate — so fleet behaviour
/// (including every failure mode) is observable, not silent.
struct FleetStats {
  // Client side (pull/push against a peer's /store endpoint).
  uint64_t Pulls = 0;         ///< Successful store pulls from peers.
  uint64_t PullFailures = 0;  ///< Failed pulls (after retries).
  uint64_t Pushes = 0;        ///< Successful store pushes to peers.
  uint64_t PushFailures = 0;  ///< Failed pushes (after retries).
  uint64_t Retries = 0;       ///< Request retries (timeouts, refused).
  // Server side (/store endpoint on this process).
  uint64_t StoreGets = 0;          ///< Store documents served to peers.
  uint64_t MergesApplied = 0;      ///< Remote documents merged in.
  uint64_t SitesMerged = 0;        ///< Sites received across all merges.
  uint64_t RejectedOversize = 0;   ///< Pushes over the size limit.
  uint64_t RejectedMalformed = 0;  ///< Pushes the total decoder refused.
  uint64_t RejectedIncompatible = 0; ///< Artifacts with a foreign
                                     ///< schema/host fingerprint.
  // On-device recalibration (Recalibrator).
  uint64_t Recalibrations = 0;      ///< Fit runs completed.
  uint64_t Promotions = 0;          ///< Candidate models promoted.
  uint64_t PromotionsRejected = 0;  ///< Candidates the gate refused.

  FleetStats &operator+=(const FleetStats &Other);
};

FleetStats operator-(const FleetStats &A, const FleetStats &B);
bool operator==(const FleetStats &A, const FleetStats &B);

/// Counters and provenance of the tuned-configuration loader (the
/// `cswitch-tuning-v1` artifacts the offline autotuner emits), so which
/// tuned parameters a process runs under — and every rejected artifact —
/// is observable, not silent.
struct TuningStats {
  uint64_t Loads = 0;        ///< Tuning artifacts applied.
  uint64_t LoadFailures = 0; ///< Artifacts rejected (decode/validate).
  // Provenance of the most recently applied artifact (empty/zero when
  // none). These are state, not counters: operator- carries the newer
  // snapshot's values verbatim (same convention as Variant/Latency).
  std::string Source;       ///< Artifact origin (file path, or "<memory>").
  std::string Fingerprint;  ///< Host fingerprint recorded at tune time.
  std::string CorpusDigest; ///< Digest of the trace corpus tuned against.
  uint64_t Seed = 0;        ///< Search seed.
  uint64_t Generations = 0; ///< Generations the search ran.
  uint64_t Population = 0;  ///< Genomes per generation.
  uint64_t Evaluations = 0; ///< Fitness evaluations performed.
  uint64_t Parameters = 0;  ///< Parameter rows applied.
  double WinnerFitness = 0.0;   ///< Fitness of the applied genome.
  double BaselineFitness = 0.0; ///< Fitness of the paper defaults.
};

TuningStats operator-(const TuningStats &A, const TuningStats &B);
bool operator==(const TuningStats &A, const TuningStats &B);

/// Provenance of the performance model driving selection decisions:
/// where the installed model came from and, for recalibrated
/// cswitch-model-v2 artifacts, the fit metadata of the promotion gate.
/// Installs counts model installations; the provenance fields are
/// state and carry over verbatim in operator- (TuningStats convention).
struct ModelStats {
  uint64_t Installs = 0;    ///< Models installed since process start.
  std::string Source;       ///< "<builtin>", a file path, or an artifact
                            ///< tag such as "cswitch-model-v2".
  std::string Fingerprint;  ///< Content hash / host fingerprint.
  uint64_t FitTimestamp = 0;    ///< Unix seconds the model was fit; 0 =
                                ///< not a recalibrated artifact.
  double HoldoutResidual = 0.0; ///< Held-out residual of the promotion
                                ///< gate (cswitch-model-v2 only).
};

ModelStats operator-(const ModelStats &A, const ModelStats &B);
bool operator==(const ModelStats &A, const ModelStats &B);

/// Process-wide accumulator model installers report through, so the
/// engine's telemetry snapshot (and the /explain.json provenance
/// header) can say which model drives decisions without the support
/// layer depending on the model library — the TuningRegistry pattern.
class ModelRegistry {
public:
  /// The process-wide registry instance.
  static ModelRegistry &global();

  /// Records a model installation: increments Installs and replaces the
  /// provenance fields (\p Provenance counter fields are ignored).
  void recordInstall(const ModelStats &Provenance);

  /// Cumulative counters plus latest provenance since process start.
  ModelStats stats() const;

private:
  mutable std::mutex Mutex;
  ModelStats Counters; ///< Guarded by Mutex.
};

/// Process-wide accumulator the tuned-configuration loader reports
/// through, so the engine's telemetry snapshot can include tuning
/// provenance without the support layer depending on the tuning library
/// — the same decoupling FleetRegistry provides for the fleet.
class TuningRegistry {
public:
  /// The process-wide registry instance.
  static TuningRegistry &global();

  /// Records a successfully applied artifact: increments Loads and
  /// installs \p Provenance (its counter fields are ignored).
  void recordLoad(const TuningStats &Provenance);

  /// Records an artifact the loader rejected.
  void recordFailure();

  /// Cumulative counters plus latest provenance since process start.
  TuningStats stats() const;

private:
  mutable std::mutex Mutex;
  TuningStats Counters; ///< Guarded by Mutex.
};

/// Process-wide accumulator the fleet layer reports through, so the
/// engine's telemetry snapshot can include fleet counters without the
/// support layer (or the core) depending on the fleet library — the
/// same decoupling RecorderRegistry provides for the trace recorders.
/// Counters only ever increase; record() adds a delta.
class FleetRegistry {
public:
  /// The process-wide registry instance.
  static FleetRegistry &global();

  /// Folds \p Delta into the cumulative counters.
  void record(const FleetStats &Delta);

  /// Cumulative counters since process start.
  FleetStats stats() const;

private:
  mutable std::mutex Mutex;
  FleetStats Counters; ///< Guarded by Mutex.
};

/// Process-wide registry the trace recorders report through, so the
/// engine's telemetry snapshot can include recorder counters without the
/// support layer (or the core) depending on the replay library. A live
/// recorder attaches a stats callback; on detach its final counters move
/// into a retired accumulator, keeping every counter monotonic across
/// recorder lifetimes.
class RecorderRegistry {
public:
  using Source = std::function<RecorderStats()>;

  /// The process-wide registry instance.
  static RecorderRegistry &global();

  /// Registers a live stats source; returns the attachment id.
  uint64_t attach(Source StatsSource);

  /// Removes attachment \p Id, folding \p Final into the retired
  /// accumulator.
  void detach(uint64_t Id, const RecorderStats &Final);

  /// Aggregate over retired recorders plus every live source.
  RecorderStats stats() const;

private:
  mutable std::mutex Mutex;
  uint64_t NextId = 1;                                 ///< Guarded by Mutex.
  std::vector<std::pair<uint64_t, Source>> Sources;    ///< Guarded by Mutex.
  RecorderStats Retired;                               ///< Guarded by Mutex.
};

/// One engine-wide observability snapshot: aggregate counters, the
/// per-context breakdown, the state of the event log, the trace
/// recorders' loss accounting, and the selection store's counters.
struct TelemetrySnapshot {
  EngineStats Engine;
  std::vector<ContextSnapshot> Contexts;
  EventLogStats Events;
  RecorderStats Recorder;
  StoreStats Store;
  FleetStats Fleet;
  TuningStats Tuning;
  ModelStats Model;
  EngineLatencies Latency;
  TopologyStats Topology;
};

/// Interval difference between two snapshots: aggregate and event
/// counters subtract saturating; contexts are matched by name (a
/// context present only in \p Now appears verbatim — it is new activity
/// by definition; contexts that vanished are omitted). Variant,
/// footprint and the latency distributions are taken from \p Now
/// (quantiles of a lifetime histogram do not subtract).
TelemetrySnapshot operator-(const TelemetrySnapshot &Now,
                            const TelemetrySnapshot &Before);

/// Stateful interval tracker over a snapshot source: capture() returns
/// the absolute snapshot, interval() the delta since the previous
/// interval() (or since construction/reset). Thread-safe.
///
/// The source is a callable so this layer stays decoupled from the
/// engine; wire it up with e.g.
/// \code
///   Telemetry T([] { return SwitchEngine::global().telemetry(); });
/// \endcode
class Telemetry {
public:
  using Source = std::function<TelemetrySnapshot()>;

  explicit Telemetry(Source SnapshotSource);

  /// Current absolute snapshot.
  TelemetrySnapshot capture() const;

  /// Delta since the previous interval() call (or reset/construction).
  TelemetrySnapshot interval();

  /// Restarts the interval baseline at the current snapshot.
  void reset();

private:
  Source Snap;
  mutable std::mutex Mutex;
  TelemetrySnapshot Last; ///< Guarded by Mutex.
};

} // namespace cswitch

#endif // CSWITCH_SUPPORT_TELEMETRY_H
