//===- OperationKind.h - Critical collection operations --------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The critical collection operations the framework profiles and models.
/// Following the paper (§4.1.2), an operation is critical if at least one
/// variant implements it with linear-or-worse cost: populate, contains,
/// iterate and middle insert/remove. We additionally model index access
/// (linear on linked lists) and remove-by-value (linear on arrays, and the
/// operation on which the paper's own model mispredicts HashArrayList in
/// the multi-phase experiment, §5.1), so that experiment is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_PROFILE_OPERATIONKIND_H
#define CSWITCH_PROFILE_OPERATIONKIND_H

#include <array>
#include <cstddef>

namespace cswitch {

/// Kinds of profiled (critical) collection operations.
enum class OperationKind : unsigned {
  Populate,    ///< add / push_back / put of one element.
  Contains,    ///< contains / containsKey / get lookup.
  Iterate,     ///< one full traversal of the collection.
  IndexAccess, ///< list positional read (at/get by index).
  Middle,      ///< insert or remove at an interior index.
  Remove,      ///< remove by value / key.
};

/// Number of OperationKind values.
constexpr size_t NumOperationKinds = 6;

/// All operation kinds, in enum order.
constexpr std::array<OperationKind, NumOperationKinds> AllOperationKinds = {
    OperationKind::Populate,    OperationKind::Contains,
    OperationKind::Iterate,     OperationKind::IndexAccess,
    OperationKind::Middle,      OperationKind::Remove};

/// Returns the stable lowercase name of \p Kind ("populate", ...).
const char *operationKindName(OperationKind Kind);

/// Parses an operation kind name; returns false if \p Name is unknown.
bool parseOperationKind(const char *Name, OperationKind &Out);

} // namespace cswitch

#endif // CSWITCH_PROFILE_OPERATIONKIND_H
