//===- WorkloadProfile.h - Per-instance workload data ----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload profile of one monitored collection instance (paper §3.1):
/// the number of executed critical operations per kind, and the maximum
/// size the collection reached during its lifetime. Profiles are cheap
/// plain data — they are updated on every operation of a monitored
/// instance, so no indirection or synchronization is allowed here.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_PROFILE_WORKLOADPROFILE_H
#define CSWITCH_PROFILE_WORKLOADPROFILE_H

#include "profile/OperationKind.h"

#include <array>
#include <cstdint>
#include <string>

namespace cswitch {

/// Operation counters and maximum size of one collection instance.
struct WorkloadProfile {
  std::array<uint64_t, NumOperationKinds> Counts = {};
  uint64_t MaxSize = 0;

  /// Increments the counter of \p Kind.
  void record(OperationKind Kind, uint64_t N = 1) {
    Counts[static_cast<size_t>(Kind)] += N;
  }

  /// Updates the maximum observed size.
  void recordSize(uint64_t Size) {
    if (Size > MaxSize)
      MaxSize = Size;
  }

  /// Returns the counter of \p Kind.
  uint64_t count(OperationKind Kind) const {
    return Counts[static_cast<size_t>(Kind)];
  }

  /// Total operations of all kinds.
  uint64_t totalOperations() const {
    uint64_t Sum = 0;
    for (uint64_t C : Counts)
      Sum += C;
    return Sum;
  }

  /// Accumulates \p Other into this profile (MaxSize takes the max).
  void merge(const WorkloadProfile &Other) {
    for (size_t I = 0; I != NumOperationKinds; ++I)
      Counts[I] += Other.Counts[I];
    recordSize(Other.MaxSize);
  }

  /// Resets all counters and the maximum size.
  void reset() {
    Counts = {};
    MaxSize = 0;
  }

  bool operator==(const WorkloadProfile &Other) const = default;

  /// Debug rendering, e.g. "populate:100 contains:5 max:100".
  std::string toString() const;
};

/// Destination for finished-instance profiles.
///
/// Allocation contexts implement this; monitored facades call
/// onInstanceFinished() from their destructor (the C++ replacement for the
/// paper's WeakReference lifecycle detection — see DESIGN.md §1).
class ProfileSink {
public:
  virtual ~ProfileSink();

  /// Called exactly once per monitored instance when it finishes its
  /// life-cycle. \p Slot is the monitoring slot the instance was assigned
  /// at creation. Must be thread-safe.
  virtual void onInstanceFinished(size_t Slot,
                                  const WorkloadProfile &Profile) = 0;
};

} // namespace cswitch

#endif // CSWITCH_PROFILE_WORKLOADPROFILE_H
