//===- WorkloadProfile.cpp - Per-instance workload data ------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "profile/WorkloadProfile.h"

#include <sstream>

using namespace cswitch;

ProfileSink::~ProfileSink() = default;

std::string WorkloadProfile::toString() const {
  std::ostringstream OS;
  bool First = true;
  for (OperationKind Kind : AllOperationKinds) {
    uint64_t N = count(Kind);
    if (N == 0)
      continue;
    if (!First)
      OS << ' ';
    OS << operationKindName(Kind) << ':' << N;
    First = false;
  }
  if (!First)
    OS << ' ';
  OS << "max:" << MaxSize;
  return OS.str();
}
