//===- ContentionSketch.h - Observed-thread-count estimation ----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contention signal of the concurrent collection tier (DESIGN.md
/// §11): a per-context cardinality sketch of the threads that touched
/// the context's collections, plus the operation volume they produced.
/// The estimated thread count is the size argument of the contention
/// cost polynomials — AdaptiveConfig's rules use it to pick mutex vs.
/// sharded vs. copy-on-write strategies as contention changes.
///
/// The sketch is a 64-bucket linear-counting bitmap: each thread sets
/// the bit of its id hash (computed once per thread, cached in a
/// thread-local), striped per NUMA node like StripedCounters so the hot
/// path is one relaxed check-then-fetch_or on a node-local line. The
/// estimate n = 64 * ln(64 / zero-bits) is exact to within a few
/// percent for the 1..16 threads the selection actually discriminates.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_PROFILE_CONTENTIONSKETCH_H
#define CSWITCH_PROFILE_CONTENTIONSKETCH_H

#include "support/Hashing.h"
#include "support/Topology.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>

namespace cswitch {

namespace detail {

/// The calling thread's sketch bit, hashed and cached on first use.
inline uint64_t threadSketchBit() {
  thread_local const uint64_t Bit =
      uint64_t(1) << (mix64(std::hash<std::thread::id>{}(
                          std::this_thread::get_id())) &
                      63);
  return Bit;
}

} // namespace detail

/// Striped thread-cardinality sketch with an operation counter.
class ContentionSketch {
public:
  /// \p Stripes = 0 means one stripe per NUMA node.
  explicit ContentionSketch(unsigned Stripes = 0)
      : NumStripes(Stripes ? Stripes : Topology::system().nodeCount()),
        Lanes(std::make_unique<Stripe[]>(NumStripes)) {}

  /// Records \p N operations by the calling thread.
  void observe(uint64_t N = 1) {
    Stripe &S = Lanes[currentStripe(NumStripes)];
    S.Ops.fetch_add(N, std::memory_order_relaxed);
    uint64_t Bit = detail::threadSketchBit();
    // Check-before-or: after a thread's first op the bit is already set
    // and the hot path is a read of a node-local line.
    if (!(S.Bits.load(std::memory_order_relaxed) & Bit))
      S.Bits.fetch_or(Bit, std::memory_order_relaxed);
  }

  /// Operations observed since the last reset().
  uint64_t operations() const {
    uint64_t Total = 0;
    for (unsigned S = 0; S != NumStripes; ++S)
      Total += Lanes[S].Ops.load(std::memory_order_relaxed);
    return Total;
  }

  /// Linear-counting estimate of the distinct threads observed since
  /// the last reset(). 0 when nothing was observed; saturates at 64.
  double estimateThreads() const {
    uint64_t Union = 0;
    for (unsigned S = 0; S != NumStripes; ++S)
      Union |= Lanes[S].Bits.load(std::memory_order_relaxed);
    if (Union == 0)
      return 0.0;
    int Zero = 64 - std::popcount(Union);
    if (Zero == 0)
      return 64.0;
    return 64.0 * std::log(64.0 / static_cast<double>(Zero));
  }

  /// Clears bits and operation counters (start of an analysis round).
  void reset() {
    for (unsigned S = 0; S != NumStripes; ++S) {
      Lanes[S].Bits.store(0, std::memory_order_relaxed);
      Lanes[S].Ops.store(0, std::memory_order_relaxed);
    }
  }

  unsigned stripes() const { return NumStripes; }

private:
  struct alignas(CacheLineBytes) Stripe {
    std::atomic<uint64_t> Bits{0};
    std::atomic<uint64_t> Ops{0};
  };

  unsigned NumStripes;
  std::unique_ptr<Stripe[]> Lanes;
};

} // namespace cswitch

#endif // CSWITCH_PROFILE_CONTENTIONSKETCH_H
