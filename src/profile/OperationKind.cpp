//===- OperationKind.cpp - Critical collection operations ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "profile/OperationKind.h"

#include <cstring>

using namespace cswitch;

const char *cswitch::operationKindName(OperationKind Kind) {
  switch (Kind) {
  case OperationKind::Populate:
    return "populate";
  case OperationKind::Contains:
    return "contains";
  case OperationKind::Iterate:
    return "iterate";
  case OperationKind::IndexAccess:
    return "index";
  case OperationKind::Middle:
    return "middle";
  case OperationKind::Remove:
    return "remove";
  }
  return "unknown";
}

bool cswitch::parseOperationKind(const char *Name, OperationKind &Out) {
  for (OperationKind Kind : AllOperationKinds) {
    if (std::strcmp(Name, operationKindName(Kind)) == 0) {
      Out = Kind;
      return true;
    }
  }
  return false;
}
