//===- SharedProfile.h - Multi-owner workload profile -----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-owner replacement for the facade's plain WorkloadProfile.
/// A sequential facade is owned by one thread, so its profile is plain
/// data; a concurrent-tier facade is hammered from many threads, and a
/// plain profile would be both racy and a cache-line hot spot. The
/// SharedProfile stripes the per-operation counters per NUMA node
/// (exactly like StripedCounters), maintains the maximum size as a
/// CAS-max, and forwards every operation to the owning context's
/// ContentionSketch so the contention signal sees the instance's
/// threads. The facade destructor collapses it into an ordinary
/// WorkloadProfile before reporting (DESIGN.md §11).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_PROFILE_SHAREDPROFILE_H
#define CSWITCH_PROFILE_SHAREDPROFILE_H

#include "profile/ContentionSketch.h"
#include "profile/WorkloadProfile.h"
#include "support/Topology.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace cswitch {

/// Thread-safe, NUMA-striped workload profile for concurrent facades.
class SharedProfile {
public:
  /// \p Sketch, when non-null, additionally observes every recorded
  /// operation (it outlives the profile: the owning context holds it).
  /// \p Stripes = 0 means one stripe per NUMA node.
  explicit SharedProfile(ContentionSketch *Sketch = nullptr,
                         unsigned Stripes = 0)
      : NumStripes(Stripes ? Stripes : Topology::system().nodeCount()),
        Lanes(std::make_unique<Stripe[]>(NumStripes)), Sketch(Sketch) {}

  /// Increments the counter of \p Kind on the calling thread's stripe.
  void record(OperationKind Kind, uint64_t N = 1) {
    Lanes[currentStripe(NumStripes)]
        .Counts[static_cast<size_t>(Kind)]
        .fetch_add(N, std::memory_order_relaxed);
    if (Sketch)
      Sketch->observe(N);
  }

  /// Raises the maximum observed size (relaxed CAS-max).
  void recordSize(uint64_t Size) {
    uint64_t Seen = Max.load(std::memory_order_relaxed);
    while (Size > Seen &&
           !Max.compare_exchange_weak(Seen, Size,
                                      std::memory_order_relaxed))
      ;
  }

  /// Collapses the stripes into a plain profile (a valid snapshot of
  /// some interleaving while writers race, exact once they stopped).
  WorkloadProfile snapshot() const {
    WorkloadProfile P;
    for (unsigned S = 0; S != NumStripes; ++S)
      for (size_t I = 0; I != NumOperationKinds; ++I)
        P.Counts[I] +=
            Lanes[S].Counts[I].load(std::memory_order_relaxed);
    P.MaxSize = Max.load(std::memory_order_relaxed);
    return P;
  }

  unsigned stripes() const { return NumStripes; }

private:
  struct alignas(CacheLineBytes) Stripe {
    std::atomic<uint64_t> Counts[NumOperationKinds] = {};
  };
  static_assert(NumOperationKinds * sizeof(uint64_t) <= CacheLineBytes,
                "one stripe must fit a cache line");

  unsigned NumStripes;
  std::unique_ptr<Stripe[]> Lanes;
  std::atomic<uint64_t> Max{0};
  ContentionSketch *Sketch;
};

} // namespace cswitch

#endif // CSWITCH_PROFILE_SHAREDPROFILE_H
