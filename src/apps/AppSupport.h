//===- AppSupport.h - Shared helpers of the mini-apps (internal) -*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers shared by the mini-application implementations:
/// run bracketing (timing, peak-footprint tracking, result assembly) and
/// workload-size distributions. Not installed as public API.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_APPS_APPSUPPORT_H
#define CSWITCH_APPS_APPSUPPORT_H

#include "apps/Apps.h"
#include "support/MemoryTracker.h"
#include "support/Random.h"
#include "support/Timer.h"

namespace cswitch {
namespace detail {

/// RAII bracket around one application run: resets the peak-footprint
/// tracker, captures the engine-stats baseline, times the run, and
/// assembles the AppResult. Transitions and monitoring counters come
/// from the engine's own interval (EngineStats operator-), not from
/// hand-maintained tallies.
class AppRunScope {
public:
  AppRunScope()
      : BaseLive(MemoryTracker::liveBytes()),
        BaseStats(SwitchEngine::global().stats()) {
    MemoryTracker::resetPeak();
  }

  /// Finalizes the result (call exactly once, at the end of the run,
  /// while the harness — and thus its registered contexts — is alive).
  AppResult finish(const AppHarness &Harness, uint64_t Checksum,
                   uint64_t Instances) const {
    AppResult Result;
    Result.Seconds = Clock.elapsedSeconds();
    Result.PeakLiveBytes = MemoryTracker::peakLiveBytes() - BaseLive;
    Result.Checksum = Checksum;
    Result.InstancesCreated = Instances;
    Result.TargetSites = Harness.siteCount();
    Result.Stats = SwitchEngine::global().stats() - BaseStats;
    Result.Transitions = static_cast<size_t>(Result.Stats.Switches);
    return Result;
  }

private:
  int64_t BaseLive;
  EngineStats BaseStats;
  Timer Clock;
};

/// A bimodal size draw: mostly small sizes, occasionally (1 in
/// \p LargeEvery) a large one — the "widely ranging sizes" pattern that
/// makes adaptive variants eligible (paper §3.2).
inline size_t bimodalSize(SplitMix64 &Rng, size_t SmallLo, size_t SmallHi,
                          size_t LargeLo, size_t LargeHi,
                          uint64_t LargeEvery) {
  if (Rng.nextBelow(LargeEvery) == 0)
    return static_cast<size_t>(Rng.nextInRange(
        static_cast<int64_t>(LargeLo), static_cast<int64_t>(LargeHi)));
  return static_cast<size_t>(Rng.nextInRange(
      static_cast<int64_t>(SmallLo), static_cast<int64_t>(SmallHi)));
}

/// Resolves the model an app run should use.
inline std::shared_ptr<const PerformanceModel>
resolveModel(const AppRunConfig &RunConfig) {
  return RunConfig.Model ? RunConfig.Model : Switch::model();
}

} // namespace detail
} // namespace cswitch

#endif // CSWITCH_APPS_APPSUPPORT_H
