//===- SessionServer.h - Multi-tenant session-server scenario ---*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant session-server scenario driving the concurrent
/// collection tier (DESIGN.md §11): a hot per-tenant cache map hit by
/// every worker thread with Zipf-skewed keys, a churning session
/// registry set, and an append-mostly event feed list. Unlike the
/// DaCapo-substitute apps (Apps.h), every target collection instance is
/// shared across threads, so the contexts run in a concurrent mode and
/// the engine selects the synchronization strategy (mutex-serialized
/// vs. lock-striped/copy-on-write) from the observed contention.
///
/// The workload is epoch-based: each epoch instantiates fresh
/// collections from the contexts (picking up any strategy switch),
/// hammers them from every worker, then retires them so their profiles
/// publish into monitoring windows.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_APPS_SESSIONSERVER_H
#define CSWITCH_APPS_SESSIONSERVER_H

#include "core/Switch.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cswitch {

/// Parameters of one session-server execution.
struct ServerRunConfig {
  /// Worker threads hammering the shared collections.
  size_t Threads = 2;
  /// Tenants sharing the cache; even tenants are read-heavy (90%
  /// lookups), odd tenants write-heavy (60% lookups) — the mixed
  /// read/write population of a real session store.
  size_t Tenants = 4;
  /// Distinct cache keys per tenant (the Zipf support).
  size_t KeysPerTenant = 1024;
  /// Request-loop iterations per worker per epoch.
  size_t OpsPerThread = 20000;
  /// Epochs (collection generations); each ends with an engine
  /// evaluation sweep, so strategy switches take effect on the next
  /// epoch's instances.
  size_t Epochs = 8;
  /// Zipf skew of the key popularity (~0.99 is the classic web/cache
  /// skew; 0 degenerates to uniform).
  double ZipfSkew = 0.99;
  uint64_t Seed = 1;
  /// Synchronization tier of the three contexts. Must not be None —
  /// the instances are shared across threads. Mutex/Sharded pin a
  /// strategy (bench baselines); Auto lets contention decide.
  Concurrency Mode = Concurrency::Auto;
  SelectionRule Rule = SelectionRule::timeRule();
  /// Options of the three contexts (the concurrency mode above is
  /// applied on top). The default shrinks the monitoring window to the
  /// epoch granularity: one instance per context finishes per epoch.
  ContextOptions CtxOptions = ContextOptions{}.windowSize(4)
                                  .finishedRatio(0.5)
                                  .logEvents(false);
};

/// Outcome of one session-server execution.
struct ServerRunResult {
  double Seconds = 0.0;      ///< Wall-clock time of the worker epochs.
  double OpsPerSecond = 0.0; ///< Request-loop iterations per second.
  uint64_t Operations = 0;   ///< Total request-loop iterations.
  /// Interleaving-dependent fold of every lookup result (keeps the
  /// work observable; NOT config-invariant like AppResult::Checksum).
  uint64_t Checksum = 0;
  size_t CacheSwitches = 0;  ///< Strategy switches of the cache context.
  size_t TotalSwitches = 0;  ///< Switches across all three contexts.
  std::string CacheVariant;  ///< Final variant of the hot cache map.
  /// Cache variant at the end of each epoch (the switch trail).
  std::vector<std::string> CacheVariantTrail;
  /// Final smoothed thread estimate of the cache context.
  double ContendedThreads = 0.0;
  EngineStats Stats;         ///< Engine-stats interval over the run.
};

/// Runs the session-server scenario under \p Config. Contexts are
/// created through Switch::makeContext (global model and engine);
/// install a measured model with Switch::setModel first when one is
/// available.
ServerRunResult runSessionServerSim(const ServerRunConfig &Config);

} // namespace cswitch

#endif // CSWITCH_APPS_SESSIONSERVER_H
