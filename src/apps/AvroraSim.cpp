//===- AvroraSim.cpp - AVR microcontroller simulator workload ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Stand-in for DaCapo avrora (paper Table 5: 7 target allocation sites).
// Avrora simulates a grid of AVR microcontrollers exchanging radio
// packets; its reported collection behaviour is dominated by event and
// watch sets receiving heavy membership tests at medium sizes, with the
// paper's transitions HS -> OpenHashSet (Rtime) and HS -> AdaptiveSet
// (Ralloc, wide-ranging watch-set sizes).
//
//===----------------------------------------------------------------------===//

#include "apps/AppSupport.h"

#include <deque>

using namespace cswitch;
using namespace cswitch::detail;

AppResult cswitch::runAvroraSim(const AppRunConfig &RunConfig) {
  AppHarness Harness(RunConfig.Config, RunConfig.Rule,
                     resolveModel(RunConfig), RunConfig.CtxOptions);

  // 7 target sites (Table 5).
  AppHarness::SetSite PendingEvents =
      Harness.declareSetSite("avrora:EventQueue.pending",
                             SetVariant::ChainedHashSet);
  AppHarness::SetSite WatchSetA = Harness.declareSetSite(
      "avrora:Microcontroller.watchA", SetVariant::ChainedHashSet);
  AppHarness::SetSite WatchSetB = Harness.declareSetSite(
      "avrora:Microcontroller.watchB", SetVariant::ChainedHashSet);
  AppHarness::SetSite InterruptSet = Harness.declareSetSite(
      "avrora:InterruptTable.posted", SetVariant::ChainedHashSet);
  AppHarness::MapSite RegisterMap = Harness.declareMapSite(
      "avrora:State.registers", MapVariant::ChainedHashMap);
  AppHarness::ListSite PacketList = Harness.declareListSite(
      "avrora:Radio.packetBuffer", ListVariant::ArrayList);
  AppHarness::ListSite NodeList = Harness.declareListSite(
      "avrora:Simulation.nodes", ListVariant::ArrayList);

  SplitMix64 Rng(RunConfig.Seed);
  AppRunScope Scope;
  uint64_t Checksum = 0;
  uint64_t Instances = 0;

  // Every third watch set stays registered on its device for the rest
  // of the run; the peak footprint (the M column of Table 5) therefore
  // grows with the variants chosen *after* adaptation, while the
  // short-lived majority keeps the monitoring windows filling.
  std::deque<Set<AppElem>> RetainedWatches;
  uint64_t WatchCounter = 0;

  auto Rounds = static_cast<size_t>(600 * RunConfig.Scale);
  for (size_t Round = 0; Round != Rounds; ++Round) {
    // One simulation quantum: post events, poll membership heavily.
    size_t EventCount = bimodalSize(Rng, 40, 120, 300, 600, 12);
    Set<AppElem> Events = PendingEvents.create();
    ++Instances;
    for (size_t I = 0; I != EventCount; ++I)
      Events.add(static_cast<AppElem>(Rng.nextBelow(EventCount * 4)));
    // The simulator probes the event set once per device per cycle.
    for (size_t Probe = 0; Probe != EventCount * 4; ++Probe)
      Checksum += Events.contains(
          static_cast<AppElem>(Rng.nextBelow(EventCount * 4)));

    // Watch sets: wide-ranging sizes, probe-heavy, retained for a
    // window of rounds before the devices drop them.
    for (AppHarness::SetSite *Site : {&WatchSetA, &WatchSetB}) {
      size_t WatchCount = bimodalSize(Rng, 4, 30, 80, 200, 8);
      Set<AppElem> Watches = Site->create();
      ++Instances;
      for (size_t I = 0; I != WatchCount; ++I)
        Watches.add(static_cast<AppElem>(Rng.nextBelow(4096)));
      for (size_t Probe = 0; Probe != WatchCount * 2; ++Probe)
        Checksum += Watches.contains(
            static_cast<AppElem>(Rng.nextBelow(4096)));
      if (WatchCounter++ % 3 == 0)
        RetainedWatches.push_back(std::move(Watches));
    }

    // Interrupt posting: small set, add/remove churn.
    Set<AppElem> Interrupts = InterruptSet.create();
    ++Instances;
    for (size_t I = 0; I != 24; ++I) {
      AppElem Irq = static_cast<AppElem>(Rng.nextBelow(32));
      if (!Interrupts.add(Irq))
        Interrupts.remove(Irq);
    }
    Checksum += Interrupts.size();

    // Register snapshot per context switch: fixed-size map, many gets.
    Map<AppElem, AppElem> Registers = RegisterMap.create();
    ++Instances;
    for (AppElem Reg = 0; Reg != 32; ++Reg)
      Registers.put(Reg, static_cast<AppElem>(Rng.next() & 0xff));
    for (size_t Read = 0; Read != 96; ++Read) {
      const AppElem *V =
          Registers.get(static_cast<AppElem>(Rng.nextBelow(32)));
      Checksum += V ? static_cast<uint64_t>(*V) : 0;
    }

    // Radio packets: append + iterate.
    List<AppElem> Packets = PacketList.create();
    ++Instances;
    size_t PacketCount = 16 + Rng.nextBelow(48);
    for (size_t I = 0; I != PacketCount; ++I)
      Packets.add(static_cast<AppElem>(Rng.next() & 0xffff));
    uint64_t Sum = 0;
    Packets.forEach([&Sum](const AppElem &V) {
      Sum += static_cast<uint64_t>(V);
    });
    Checksum += Sum;

    if (Round % 120 == 119)
      Harness.evaluateAll();
  }

  // Long-lived node list, iterated at shutdown.
  List<AppElem> Nodes = NodeList.create();
  ++Instances;
  for (size_t I = 0; I != 64; ++I)
    Nodes.add(static_cast<AppElem>(I));
  uint64_t NodeSum = 0;
  Nodes.forEach([&NodeSum](const AppElem &V) {
    NodeSum += static_cast<uint64_t>(V);
  });
  Checksum += NodeSum;

  return Scope.finish(Harness, Checksum, Instances);
}
