//===- H2Sim.cpp - In-memory database workload ----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Stand-in for DaCapo h2 (paper Table 5: 10 target allocation sites).
// H2 is an in-memory SQL database; the paper singles out the allocation
// site IndexCursor:70 which "instantiates +1 million objects in a few
// seconds", mostly short-lived lists exposed to lookups. Expected
// transitions (Table 6): AL -> AdaptiveList (Rtime), HS -> ArraySet
// (Ralloc).
//
//===----------------------------------------------------------------------===//

#include "apps/AppSupport.h"

#include <array>
#include <deque>

using namespace cswitch;
using namespace cswitch::detail;

AppResult cswitch::runH2Sim(const AppRunConfig &RunConfig) {
  AppHarness Harness(RunConfig.Config, RunConfig.Rule,
                     resolveModel(RunConfig), RunConfig.CtxOptions);

  // 10 target sites.
  AppHarness::ListSite IndexCursor = Harness.declareListSite(
      "h2:IndexCursor:70", ListVariant::ArrayList);
  AppHarness::ListSite ResultRows = Harness.declareListSite(
      "h2:LocalResult.rows", ListVariant::ArrayList);
  AppHarness::ListSite UndoLog = Harness.declareListSite(
      "h2:Session.undoLog", ListVariant::ArrayList);
  AppHarness::SetSite LockSet = Harness.declareSetSite(
      "h2:Session.locks", SetVariant::ChainedHashSet);
  AppHarness::SetSite DistinctSet = Harness.declareSetSite(
      "h2:LocalResult.distinct", SetVariant::ChainedHashSet);
  AppHarness::SetSite SessionSet = Harness.declareSetSite(
      "h2:Database.sessions", SetVariant::ChainedHashSet);
  AppHarness::MapSite IndexMap = Harness.declareMapSite(
      "h2:PageBtreeIndex.cache", MapVariant::ChainedHashMap);
  AppHarness::MapSite PlanCache = Harness.declareMapSite(
      "h2:Session.planCache", MapVariant::ChainedHashMap);
  AppHarness::MapSite ColumnMap = Harness.declareMapSite(
      "h2:Table.columnByName", MapVariant::ChainedHashMap);
  AppHarness::ListSite TriggerList = Harness.declareListSite(
      "h2:Table.triggers", ListVariant::ArrayList);

  SplitMix64 Rng(RunConfig.Seed);
  AppRunScope Scope;
  uint64_t Checksum = 0;
  uint64_t Instances = 0;

  // Open sessions keep every third distinct-filter and result set
  // alive for the rest of the run, so peak memory reflects the chosen
  // variants while the short-lived majority keeps windows filling.
  std::deque<Set<AppElem>> OpenFilters;
  std::deque<List<AppElem>> OpenResults;
  uint64_t RetainCounter = 0;

  // Long-lived structures: a btree page cache and per-table metadata.
  Map<AppElem, AppElem> PageCache = IndexMap.create();
  ++Instances;
  for (size_t I = 0; I != 2048; ++I)
    PageCache.put(static_cast<AppElem>(I),
                  static_cast<AppElem>(Rng.next() & 0xffffff));
  Map<AppElem, AppElem> Columns = ColumnMap.create();
  ++Instances;
  for (size_t I = 0; I != 24; ++I)
    Columns.put(static_cast<AppElem>(I), static_cast<AppElem>(I * 8));
  List<AppElem> Triggers = TriggerList.create();
  ++Instances;
  for (size_t I = 0; I != 4; ++I)
    Triggers.add(static_cast<AppElem>(I));

  auto Queries = static_cast<size_t>(2500 * RunConfig.Scale);
  for (size_t Query = 0; Query != Queries; ++Query) {
    // IndexCursor: the hot site — short-lived row-id list, populated
    // from a range scan, then probed by the join filter.
    size_t MatchCount = bimodalSize(Rng, 10, 120, 250, 500, 7);
    List<AppElem> Cursor = IndexCursor.create();
    ++Instances;
    for (size_t I = 0; I != MatchCount; ++I)
      Cursor.add(static_cast<AppElem>(Rng.nextBelow(MatchCount * 4)));
    for (size_t Probe = 0; Probe != 1000; ++Probe)
      Checksum += Cursor.contains(
          static_cast<AppElem>(Rng.nextBelow(MatchCount * 4)));

    // Result assembly: append rows, iterate once to serialize.
    List<AppElem> Rows = ResultRows.create();
    ++Instances;
    size_t RowCount = 8 + Rng.nextBelow(56);
    for (size_t I = 0; I != RowCount; ++I) {
      const AppElem *Page = PageCache.get(
          static_cast<AppElem>(Rng.nextBelow(2048)));
      Rows.add(Page ? *Page : 0);
    }
    uint64_t RowSum = 0;
    Rows.forEach([&RowSum](const AppElem &V) {
      RowSum += static_cast<uint64_t>(V);
    });
    Checksum += RowSum;
    if (RetainCounter++ % 3 == 0)
      OpenResults.push_back(std::move(Rows));

    // Distinct filter: small set with duplicate-heavy adds.
    Set<AppElem> Distinct = DistinctSet.create();
    ++Instances;
    for (size_t I = 0; I != RowCount; ++I)
      Distinct.add(static_cast<AppElem>(Rng.nextBelow(16)));
    Checksum += Distinct.size();
    if (RetainCounter % 3 == 0)
      OpenFilters.push_back(std::move(Distinct));

    // Lock set: a handful of table locks, probed per row.
    Set<AppElem> Locks = LockSet.create();
    ++Instances;
    for (size_t I = 0; I != 6; ++I)
      Locks.add(static_cast<AppElem>(Rng.nextBelow(12)));
    for (size_t Probe = 0; Probe != 16; ++Probe)
      Checksum += Locks.contains(
          static_cast<AppElem>(Rng.nextBelow(12)));

    // Undo log for the write fraction of the workload.
    if (Query % 4 == 0) {
      List<AppElem> Undo = UndoLog.create();
      ++Instances;
      size_t UndoCount = 4 + Rng.nextBelow(28);
      for (size_t I = 0; I != UndoCount; ++I)
        Undo.add(static_cast<AppElem>(Rng.next() & 0xffff));
      // Rollback walks the log backwards by index.
      for (size_t I = Undo.size(); I > 0; --I)
        Checksum += static_cast<uint64_t>(Undo.get(I - 1));
    }

    // Plan cache: per-session map with repeated lookups.
    if (Query % 16 == 0) {
      Map<AppElem, AppElem> Plans = PlanCache.create();
      ++Instances;
      for (size_t I = 0; I != 10; ++I)
        Plans.put(static_cast<AppElem>(Rng.nextBelow(64)),
                  static_cast<AppElem>(I));
      for (size_t Probe = 0; Probe != 40; ++Probe)
        Checksum += Plans.containsKey(
            static_cast<AppElem>(Rng.nextBelow(64)));
    }

    // Session registry churn.
    if (Query % 64 == 0) {
      Set<AppElem> Sessions = SessionSet.create();
      ++Instances;
      size_t SessionCount = 2 + Rng.nextBelow(14);
      for (size_t I = 0; I != SessionCount; ++I)
        Sessions.add(static_cast<AppElem>(I));
      Checksum += Sessions.size();
    }

    Checksum += Triggers.size() + Columns.size();

    if (Query % 250 == 249)
      Harness.evaluateAll();
  }

  return Scope.finish(Harness, Checksum, Instances);
}
