//===- Apps.cpp - The DaCapo-substitute mini-applications ----------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include <cassert>

using namespace cswitch;

const char *cswitch::appKindName(AppKind Kind) {
  switch (Kind) {
  case AppKind::Avrora:
    return "avrora";
  case AppKind::Bloat:
    return "bloat";
  case AppKind::Fop:
    return "fop";
  case AppKind::H2:
    return "h2";
  case AppKind::Lusearch:
    return "lusearch";
  }
  return "unknown";
}

AppResult cswitch::runApp(AppKind Kind, const AppRunConfig &RunConfig) {
  switch (Kind) {
  case AppKind::Avrora:
    return runAvroraSim(RunConfig);
  case AppKind::Bloat:
    return runBloatSim(RunConfig);
  case AppKind::Fop:
    return runFopSim(RunConfig);
  case AppKind::H2:
    return runH2Sim(RunConfig);
  case AppKind::Lusearch:
    return runLusearchSim(RunConfig);
  }
  assert(false && "unknown app kind");
  return AppResult();
}
