//===- FopSim.cpp - XSL-FO formatter workload ----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Stand-in for DaCapo fop (paper Table 5: 15 target allocation sites).
// FOP renders XSL-FO documents to PDF; the paper reports allocation
// sites that "extensively instantiate lists exposed to large amounts of
// lookup calls", transitioned to AdaptiveList under both rules (Table 6).
//
//===----------------------------------------------------------------------===//

#include "apps/AppSupport.h"

#include <array>
#include <deque>

using namespace cswitch;
using namespace cswitch::detail;

AppResult cswitch::runFopSim(const AppRunConfig &RunConfig) {
  AppHarness Harness(RunConfig.Config, RunConfig.Rule,
                     resolveModel(RunConfig), RunConfig.CtxOptions);

  // 15 target sites: 5 child-list sites, 4 property-list sites,
  // 3 text-run sites, font/attribute/break maps.
  std::array<AppHarness::ListSite, 5> ChildLists;
  for (size_t I = 0; I != ChildLists.size(); ++I)
    ChildLists[I] = Harness.declareListSite(
        "fop:FONode.children" + std::to_string(I), ListVariant::ArrayList);
  std::array<AppHarness::ListSite, 4> PropertyLists;
  for (size_t I = 0; I != PropertyLists.size(); ++I)
    PropertyLists[I] = Harness.declareListSite(
        "fop:PropertyList.values" + std::to_string(I),
        ListVariant::ArrayList);
  std::array<AppHarness::ListSite, 3> TextRuns;
  for (size_t I = 0; I != TextRuns.size(); ++I)
    TextRuns[I] = Harness.declareListSite(
        "fop:TextArea.runs" + std::to_string(I), ListVariant::ArrayList);
  AppHarness::MapSite FontMap = Harness.declareMapSite(
      "fop:FontCache.byKey", MapVariant::ChainedHashMap);
  AppHarness::MapSite AttributeMap = Harness.declareMapSite(
      "fop:Attributes.byName", MapVariant::ChainedHashMap);
  AppHarness::MapSite BreakMap = Harness.declareMapSite(
      "fop:BreakPoints.byLine", MapVariant::ChainedHashMap);

  SplitMix64 Rng(RunConfig.Seed);
  AppRunScope Scope;
  uint64_t Checksum = 0;
  uint64_t Instances = 0;

  // Every third child list joins the long-lived area tree, so peak
  // memory reflects the list variant while the short-lived majority
  // keeps the monitoring windows filling.
  std::deque<List<AppElem>> AreaTree;
  uint64_t NodeCounter = 0;

  auto Pages = static_cast<size_t>(350 * RunConfig.Scale);
  for (size_t Page = 0; Page != Pages; ++Page) {
    // Layout-tree construction: child lists of widely ranging fanout
    // receiving duplicate-filtering lookups (style resolution).
    size_t NodeCount = 6 + Rng.nextBelow(6);
    for (size_t Node = 0; Node != NodeCount; ++Node) {
      AppHarness::ListSite &Site = ChildLists[Node % ChildLists.size()];
      size_t Fanout = bimodalSize(Rng, 4, 50, 150, 400, 9);
      List<AppElem> Children = Site.create();
      ++Instances;
      for (size_t I = 0; I != Fanout; ++I) {
        AppElem Style = static_cast<AppElem>(Rng.nextBelow(Fanout * 2));
        // Style-dedup lookup before inserting the child.
        Checksum += Children.contains(Style);
        Children.add(Style);
      }
      // Layout passes re-scan the children for inherited styles.
      for (size_t Probe = 0; Probe != Fanout; ++Probe)
        Checksum += Children.contains(
            static_cast<AppElem>(Rng.nextBelow(Fanout * 2)));
      if (NodeCounter++ % 3 == 0)
        AreaTree.push_back(std::move(Children));
    }

    // Property lists: small, append + iterate.
    for (size_t P = 0; P != PropertyLists.size(); ++P) {
      List<AppElem> Props = PropertyLists[P].create();
      ++Instances;
      size_t PropCount = 8 + Rng.nextBelow(24);
      for (size_t I = 0; I != PropCount; ++I)
        Props.add(static_cast<AppElem>(Rng.nextBelow(256)));
      uint64_t Sum = 0;
      Props.forEach([&Sum](const AppElem &V) {
        Sum += static_cast<uint64_t>(V);
      });
      Checksum += Sum;
    }

    // Text runs: line-breaking inserts hyphenation points mid-list.
    AppHarness::ListSite &RunSite = TextRuns[Page % TextRuns.size()];
    List<AppElem> Runs = RunSite.create();
    ++Instances;
    size_t GlyphCount = 60 + Rng.nextBelow(120);
    for (size_t I = 0; I != GlyphCount; ++I)
      Runs.add(static_cast<AppElem>(Rng.nextBelow(0x250)));
    for (size_t Break = 0; Break != 8; ++Break)
      Runs.insert(Runs.size() / 2, static_cast<AppElem>(-1));
    Checksum += Runs.size();

    // Font cache per page-sequence: small map, repeated gets.
    Map<AppElem, AppElem> Fonts = FontMap.create();
    ++Instances;
    for (size_t I = 0; I != 12; ++I)
      Fonts.put(static_cast<AppElem>(I),
                static_cast<AppElem>(Rng.nextBelow(1024)));
    for (size_t Probe = 0; Probe != 64; ++Probe) {
      const AppElem *F =
          Fonts.get(static_cast<AppElem>(Rng.nextBelow(16)));
      Checksum += F ? static_cast<uint64_t>(*F) : 0;
    }

    // Attribute map: tiny, write-then-read-all.
    Map<AppElem, AppElem> Attributes = AttributeMap.create();
    ++Instances;
    for (size_t I = 0; I != 6; ++I)
      Attributes.put(static_cast<AppElem>(I),
                     static_cast<AppElem>(Rng.nextBelow(64)));
    uint64_t AttrSum = 0;
    Attributes.forEach([&AttrSum](const AppElem &, const AppElem &V) {
      AttrSum += static_cast<uint64_t>(V);
    });
    Checksum += AttrSum;

    // Break map: medium map keyed by line number.
    Map<AppElem, AppElem> Breaks = BreakMap.create();
    ++Instances;
    size_t LineCount = 30 + Rng.nextBelow(40);
    for (size_t I = 0; I != LineCount; ++I)
      Breaks.put(static_cast<AppElem>(I),
                 static_cast<AppElem>(Rng.nextBelow(100)));
    for (size_t Probe = 0; Probe != LineCount; ++Probe)
      Checksum += Breaks.containsKey(
          static_cast<AppElem>(Rng.nextBelow(LineCount * 2)));

    if (Page % 60 == 59)
      Harness.evaluateAll();
  }

  return Scope.finish(Harness, Checksum, Instances);
}
