//===- AppHarness.h - Instrumentation harness for the mini-apps -*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation harness of the DaCapo-substitute applications
/// (paper §5.2). Each application declares its target allocation sites
/// through this harness, which realizes them in one of three
/// configurations:
///
///   * Original     — every site always instantiates its fixed default
///                    variant (the unmodified program),
///   * FullAdap     — every site goes through an adaptive allocation
///                    context (the full CollectionSwitch),
///   * InstanceAdap — every site always instantiates the adaptive
///                    variant (instance-level adaptivity only).
///
/// All applications use int64_t elements, matching the data type of the
/// performance model's factorial plan (paper Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_APPS_APPHARNESS_H
#define CSWITCH_APPS_APPHARNESS_H

#include "core/Switch.h"

#include <memory>
#include <string>
#include <vector>

namespace cswitch {

/// Which instrumentation level an application run uses (paper Table 5).
enum class AppConfig : unsigned {
  Original,     ///< Fixed default variants.
  FullAdap,     ///< Adaptive allocation contexts.
  InstanceAdap, ///< Always-adaptive collection variants.
};

/// Returns "original", "fulladap" or "instanceadap".
const char *appConfigName(AppConfig Config);

/// Element type all mini-applications use.
using AppElem = int64_t;

/// Declares allocation sites and realizes them per configuration.
class AppHarness {
public:
  AppHarness(AppConfig Config, SelectionRule Rule,
             std::shared_ptr<const PerformanceModel> Model,
             ContextOptions CtxOptions = {});

  ~AppHarness();

  AppHarness(const AppHarness &) = delete;
  AppHarness &operator=(const AppHarness &) = delete;

  /// A declared list allocation site.
  class ListSite {
  public:
    /// Instantiates a list per the harness configuration.
    List<AppElem> create() {
      if (Ctx)
        return Ctx->createList();
      return List<AppElem>(makeListImpl<AppElem>(Fixed));
    }

  private:
    friend class AppHarness;
    ListVariant Fixed = ListVariant::ArrayList;
    ListContext<AppElem> *Ctx = nullptr;
  };

  /// A declared set allocation site.
  class SetSite {
  public:
    Set<AppElem> create() {
      if (Ctx)
        return Ctx->createSet();
      return Set<AppElem>(makeSetImpl<AppElem>(Fixed));
    }

  private:
    friend class AppHarness;
    SetVariant Fixed = SetVariant::ChainedHashSet;
    SetContext<AppElem> *Ctx = nullptr;
  };

  /// A declared map allocation site.
  class MapSite {
  public:
    Map<AppElem, AppElem> create() {
      if (Ctx)
        return Ctx->createMap();
      return Map<AppElem, AppElem>(makeMapImpl<AppElem, AppElem>(Fixed));
    }

  private:
    friend class AppHarness;
    MapVariant Fixed = MapVariant::ChainedHashMap;
    MapContext<AppElem, AppElem> *Ctx = nullptr;
  };

  /// Declares a list site whose unmodified program uses \p Default.
  ListSite declareListSite(const std::string &Name, ListVariant Default);

  /// Declares a set site whose unmodified program uses \p Default.
  SetSite declareSetSite(const std::string &Name, SetVariant Default);

  /// Declares a map site whose unmodified program uses \p Default.
  MapSite declareMapSite(const std::string &Name, MapVariant Default);

  /// Evaluates every FullAdap context once (the deterministic stand-in
  /// for the engine's periodic task); returns performed transitions.
  size_t evaluateAll();

  /// The FullAdap contexts, for post-run inspection (empty in the other
  /// configurations).
  std::vector<const AllocationContextBase *> contexts() const;

  /// Number of declared sites.
  size_t siteCount() const { return Sites; }

  AppConfig config() const { return Config; }

private:
  AppConfig Config;
  SelectionRule Rule;
  std::shared_ptr<const PerformanceModel> Model;
  ContextOptions CtxOptions;
  size_t Sites = 0;
  std::vector<std::unique_ptr<AllocationContextBase>> Owned;
};

} // namespace cswitch

#endif // CSWITCH_APPS_APPHARNESS_H
