//===- SessionServerSim.cpp - Multi-tenant session-server scenario -------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the session-server scenario declared in SessionServer.h.
/// Three engine-managed contexts back the server state:
///
///   server:tenant-cache  Map<int64_t, int64_t> — the hot per-tenant
///                        cache every request touches (Zipf keys),
///   server:sessions      Set<int64_t> — the churning session registry,
///   server:events        List<int64_t> — the append-mostly event feed
///                        with periodic scans.
///
/// Each epoch creates one fresh instance per context, shares it across
/// all worker threads (valid because the contexts run in a concurrent
/// mode: thread-safe implementations plus shared monitoring profiles),
/// retires the instances once the workers join, and runs an engine
/// evaluation sweep. Under Concurrency::Auto the contention sketch
/// feeds the Contention cost dimension, and the engine migrates the hot
/// map from the mutex-serialized variant to the lock-striped one as the
/// observed thread count grows (DESIGN.md §11).
///
//===----------------------------------------------------------------------===//

#include "apps/SessionServer.h"

#include "support/Random.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>

using namespace cswitch;

namespace {

/// Read fraction of a tenant's request mix: even tenants model
/// dashboard-style read-heavy traffic, odd tenants ingest-style
/// write-heavy traffic.
double tenantReadFraction(size_t Tenant) {
  return Tenant % 2 == 0 ? 0.9 : 0.6;
}

/// One worker's request loop over the shared epoch instances.
void runWorker(const ServerRunConfig &Config, const ZipfDistribution &Zipf,
               Map<int64_t, int64_t> &Cache, Set<int64_t> &Sessions,
               List<int64_t> &Events, size_t Epoch, size_t Thread,
               std::atomic<uint64_t> &Checksum) {
  SplitMix64 Rng(Config.Seed * 0x9e3779b9ULL + Epoch * 1315423911ULL +
                 Thread * 2654435761ULL + 1);
  uint64_t Local = 0;
  for (size_t I = 0; I != Config.OpsPerThread; ++I) {
    // Requests round-robin the tenants so every thread exercises both
    // read-heavy and write-heavy mixes within one epoch.
    size_t Tenant = (I + Thread) % Config.Tenants;
    int64_t Key = static_cast<int64_t>(Tenant * Config.KeysPerTenant +
                                       Zipf.next(Rng));
    if (Rng.nextBool(tenantReadFraction(Tenant))) {
      int64_t Value = 0;
      if (Cache.lookup(Key, Value))
        Local += static_cast<uint64_t>(Value);
    } else {
      Cache.put(Key, static_cast<int64_t>(I));
    }

    // Session churn: log in a session id, occasionally log one out.
    if (I % 16 == 0) {
      int64_t Session = static_cast<int64_t>(Rng.nextBelow(512));
      if (Rng.nextBool(0.5))
        Sessions.add(Session);
      else
        Sessions.remove(Session);
    }

    // Event feed: append-mostly with a periodic bounded scan (the
    // admin dashboard reading recent events).
    if (I % 64 == 0)
      Events.add(static_cast<int64_t>(I));
    if (I % 1024 == 0) {
      uint64_t Seen = 0;
      Events.forEach([&Seen](const int64_t &) { ++Seen; });
      Local += Seen;
    }
  }
  Checksum.fetch_add(Local, std::memory_order_relaxed);
}

} // namespace

ServerRunResult cswitch::runSessionServerSim(const ServerRunConfig &Config) {
  assert(Config.Threads > 0 && "need at least one worker");
  assert(Config.Tenants > 0 && Config.KeysPerTenant > 0 && Config.Epochs > 0);
  assert(Config.Mode != Concurrency::None &&
         "instances are shared across threads — a concurrent mode is "
         "required");

  ContextOptions Opts = Config.CtxOptions;
  Opts.concurrency(Config.Mode);

  auto CacheCtx = Switch::makeContext<Map<int64_t, int64_t>>(
      "server:tenant-cache", MapVariant::ChainedHashMap, Config.Rule, Opts);
  auto SessionCtx = Switch::makeContext<Set<int64_t>>(
      "server:sessions", SetVariant::ChainedHashSet, Config.Rule, Opts);
  auto EventCtx = Switch::makeContext<List<int64_t>>(
      "server:events", ListVariant::ArrayList, Config.Rule, Opts);

  ZipfDistribution Zipf(Config.KeysPerTenant, Config.ZipfSkew);
  std::atomic<uint64_t> Checksum{0};

  ServerRunResult Result;
  EngineStats Before = Switch::stats();
  auto Start = std::chrono::steady_clock::now();
  for (size_t Epoch = 0; Epoch != Config.Epochs; ++Epoch) {
    // Fresh instances pick up any strategy switch from the previous
    // epoch's evaluation; destroying them afterwards publishes their
    // shared profiles into the monitoring windows.
    auto Cache = CacheCtx->createMap();
    auto Sessions = SessionCtx->createSet();
    auto Events = EventCtx->createList();

    std::vector<std::thread> Workers;
    Workers.reserve(Config.Threads);
    for (size_t T = 0; T != Config.Threads; ++T)
      Workers.emplace_back([&, Epoch, T] {
        runWorker(Config, Zipf, Cache, Sessions, Events, Epoch, T, Checksum);
      });
    for (std::thread &W : Workers)
      W.join();

    { // Retire the generation, then let the engine act on it.
      auto RetireCache = std::move(Cache);
      auto RetireSessions = std::move(Sessions);
      auto RetireEvents = std::move(Events);
    }
    SwitchEngine::global().evaluateAll();
    Result.CacheVariantTrail.push_back(mapVariantName(
        static_cast<MapVariant>(CacheCtx->currentVariantIndex())));
  }
  auto End = std::chrono::steady_clock::now();

  Result.Seconds = std::chrono::duration<double>(End - Start).count();
  Result.Operations = static_cast<uint64_t>(Config.Threads) *
                      Config.OpsPerThread * Config.Epochs;
  Result.OpsPerSecond =
      Result.Seconds > 0.0
          ? static_cast<double>(Result.Operations) / Result.Seconds
          : 0.0;
  Result.Checksum = Checksum.load(std::memory_order_relaxed);
  Result.CacheSwitches = CacheCtx->switchCount();
  Result.TotalSwitches = CacheCtx->switchCount() + SessionCtx->switchCount() +
                         EventCtx->switchCount();
  Result.CacheVariant =
      mapVariantName(static_cast<MapVariant>(CacheCtx->currentVariantIndex()));
  Result.ContendedThreads = CacheCtx->contendedThreads();
  Result.Stats = Switch::stats() - Before;
  return Result;
}
