//===- Apps.h - The DaCapo-substitute mini-applications ---------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five synthetic applications standing in for the paper's DaCapo
/// subset (§5.2). Each reproduces the *collection usage profile* the
/// paper reports for its namesake — instance counts, size distributions
/// and operation mixes — while performing deterministic pseudo-work (see
/// DESIGN.md §1 for the substitution rationale):
///
///   * h2sim       — in-memory database: massive numbers of short-lived
///                   index-cursor lists exposed to lookups (the
///                   IndexCursor:70 behaviour of §2.1), persistent row
///                   sets, index maps.
///   * lusearchsim — text search: an inverted index queried with many
///                   small (mostly <20 entries) per-query score maps of
///                   occasionally large size.
///   * fopsim      — XSL-FO formatter: layout-tree child lists that
///                   extensively receive lookup calls.
///   * bloatsim    — bytecode optimizer: linked-list heavy worklist
///                   analysis with positional access, plus many small
///                   def-use sets.
///   * avrorasim   — AVR microcontroller simulator: event-queue and
///                   watch sets dominated by membership tests.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_APPS_APPS_H
#define CSWITCH_APPS_APPS_H

#include "apps/AppHarness.h"

#include <cstdint>
#include <string>

namespace cswitch {

/// The DaCapo-substitute applications (paper Table 5 rows).
enum class AppKind : unsigned {
  Avrora,
  Bloat,
  Fop,
  H2,
  Lusearch,
};

/// Number of AppKind values.
constexpr size_t NumAppKinds = 5;

/// All applications, in Table 5 order.
constexpr std::array<AppKind, NumAppKinds> AllAppKinds = {
    AppKind::Avrora, AppKind::Bloat, AppKind::Fop, AppKind::H2,
    AppKind::Lusearch};

/// Returns the application's lowercase name ("avrora", ...).
const char *appKindName(AppKind Kind);

/// Parameters of one application execution.
struct AppRunConfig {
  AppConfig Config = AppConfig::Original;
  SelectionRule Rule = SelectionRule::timeRule();
  std::shared_ptr<const PerformanceModel> Model;
  uint64_t Seed = 1;
  /// Scales the workload volume (1.0 ≈ the "large"/default input of
  /// Table 5, a few hundred milliseconds per run).
  double Scale = 1.0;
  ContextOptions CtxOptions;
};

/// Outcome of one application execution.
struct AppResult {
  double Seconds = 0.0;          ///< Wall-clock time of the run.
  int64_t PeakLiveBytes = 0;     ///< Peak collection memory footprint.
  uint64_t Checksum = 0;         ///< Workload checksum (config-invariant).
  uint64_t InstancesCreated = 0; ///< Collections created at target sites.
  size_t TargetSites = 0;        ///< Declared target allocation sites.
  size_t Transitions = 0;        ///< FullAdap variant transitions.
  /// Engine-stats interval over the run (app contexts are registered
  /// with the global engine, so this is the framework's own account of
  /// the monitoring work — no hand-diffed counters).
  EngineStats Stats;
};

/// Runs \p Kind under \p RunConfig and reports timing, peak collection
/// footprint and a configuration-invariant checksum (used by tests to
/// prove that the instrumentation never changes program semantics).
AppResult runApp(AppKind Kind, const AppRunConfig &RunConfig);

/// Individual entry points (all drive AppHarness the same way).
AppResult runAvroraSim(const AppRunConfig &RunConfig);
AppResult runBloatSim(const AppRunConfig &RunConfig);
AppResult runFopSim(const AppRunConfig &RunConfig);
AppResult runH2Sim(const AppRunConfig &RunConfig);
AppResult runLusearchSim(const AppRunConfig &RunConfig);

} // namespace cswitch

#endif // CSWITCH_APPS_APPS_H
