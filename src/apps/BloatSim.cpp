//===- BloatSim.cpp - Bytecode optimizer workload ------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Stand-in for DaCapo bloat (paper Table 5: 17 target allocation sites).
// BLOAT is a Java bytecode optimizer; the paper reports linked-list heavy
// worklist analyses where positional access makes LinkedList a poor
// default (Table 6 Rtime: LL -> AL) and many small def-use sets replaced
// by adaptive sets under Ralloc (HS -> AdaptiveSet).
//
//===----------------------------------------------------------------------===//

#include "apps/AppSupport.h"

#include <array>
#include <deque>

using namespace cswitch;
using namespace cswitch::detail;

AppResult cswitch::runBloatSim(const AppRunConfig &RunConfig) {
  AppHarness Harness(RunConfig.Config, RunConfig.Rule,
                     resolveModel(RunConfig), RunConfig.CtxOptions);

  // 17 target sites (Table 5): 6 worklist sites, 6 def-use set sites,
  // 3 instruction-buffer sites, a constant pool and a CFG successor map.
  std::array<AppHarness::ListSite, 6> Worklists;
  for (size_t I = 0; I != Worklists.size(); ++I)
    Worklists[I] = Harness.declareListSite(
        "bloat:DataFlow.worklist" + std::to_string(I),
        ListVariant::LinkedList);
  std::array<AppHarness::SetSite, 6> DefUseSets;
  for (size_t I = 0; I != DefUseSets.size(); ++I)
    DefUseSets[I] = Harness.declareSetSite(
        "bloat:SSA.defuse" + std::to_string(I),
        SetVariant::ChainedHashSet);
  std::array<AppHarness::ListSite, 3> InsnBuffers;
  for (size_t I = 0; I != InsnBuffers.size(); ++I)
    InsnBuffers[I] = Harness.declareListSite(
        "bloat:CodeGen.buffer" + std::to_string(I),
        ListVariant::ArrayList);
  AppHarness::MapSite ConstantPool = Harness.declareMapSite(
      "bloat:ConstantPool.entries", MapVariant::ChainedHashMap);
  AppHarness::MapSite SuccessorMap = Harness.declareMapSite(
      "bloat:FlowGraph.successors", MapVariant::ChainedHashMap);

  SplitMix64 Rng(RunConfig.Seed);
  AppRunScope Scope;
  uint64_t Checksum = 0;
  uint64_t Instances = 0;

  // The analysis database keeps every third def-use set alive for the
  // rest of the run, so the peak footprint tracks the set variant in
  // use while the short-lived majority keeps the windows filling.
  std::deque<Set<AppElem>> AnalysisDb;
  uint64_t DefUseCounter = 0;

  auto Methods = static_cast<size_t>(700 * RunConfig.Scale);
  for (size_t Method = 0; Method != Methods; ++Method) {
    size_t BlockCount = bimodalSize(Rng, 8, 40, 120, 300, 10);

    // Worklist pass: populate, then drain by positional access — the
    // access pattern that penalizes LinkedList.
    AppHarness::ListSite &WorklistSite = Worklists[Method % 6];
    List<AppElem> Worklist = WorklistSite.create();
    ++Instances;
    for (size_t I = 0; I != BlockCount; ++I)
      Worklist.add(static_cast<AppElem>(I));
    // Dataflow iteration: repeated positional reads over the worklist.
    for (size_t Sweep = 0; Sweep != 3; ++Sweep)
      for (size_t I = 0; I != BlockCount; ++I)
        Checksum += static_cast<uint64_t>(
            Worklist.get((I * 7 + Sweep) % BlockCount));
    // Drain from the middle, as the priority-ordered analysis does.
    while (Worklist.size() > BlockCount / 2)
      Worklist.removeAt(Worklist.size() / 2);
    Checksum += Worklist.size();

    // Def-use sets: one per analyzed variable, mostly tiny, sometimes
    // large (wide-ranging — adaptive-eligible).
    AppHarness::SetSite &DefUseSite = DefUseSets[Method % 6];
    size_t Variables = 4 + Rng.nextBelow(8);
    for (size_t Var = 0; Var != Variables; ++Var) {
      size_t UseCount = bimodalSize(Rng, 2, 12, 60, 160, 16);
      Set<AppElem> Uses = DefUseSite.create();
      ++Instances;
      for (size_t I = 0; I != UseCount; ++I)
        Uses.add(static_cast<AppElem>(Rng.nextBelow(UseCount * 3 + 8)));
      for (size_t Probe = 0; Probe != UseCount; ++Probe)
        Checksum += Uses.contains(
            static_cast<AppElem>(Rng.nextBelow(UseCount * 3 + 8)));
      if (DefUseCounter++ % 3 == 0)
        AnalysisDb.push_back(std::move(Uses));
    }

    // Instruction buffer: append + full iteration (codegen emission).
    AppHarness::ListSite &BufferSite = InsnBuffers[Method % 3];
    List<AppElem> Buffer = BufferSite.create();
    ++Instances;
    size_t InsnCount = BlockCount * 4;
    for (size_t I = 0; I != InsnCount; ++I)
      Buffer.add(static_cast<AppElem>(Rng.next() & 0xffff));
    uint64_t EmitSum = 0;
    Buffer.forEach([&EmitSum](const AppElem &V) {
      EmitSum += static_cast<uint64_t>(V);
    });
    Checksum += EmitSum;

    // CFG successor map: one entry per block, looked up during sweeps.
    Map<AppElem, AppElem> Successors = SuccessorMap.create();
    ++Instances;
    for (size_t I = 0; I != BlockCount; ++I)
      Successors.put(static_cast<AppElem>(I),
                     static_cast<AppElem>((I + 1) % BlockCount));
    for (size_t Probe = 0; Probe != BlockCount * 2; ++Probe) {
      const AppElem *Succ = Successors.get(
          static_cast<AppElem>(Rng.nextBelow(BlockCount)));
      Checksum += Succ ? static_cast<uint64_t>(*Succ) : 0;
    }

    if (Method % 100 == 99)
      Harness.evaluateAll();
  }

  // Constant pool: one long-lived map, built once, heavily queried.
  Map<AppElem, AppElem> Pool = ConstantPool.create();
  ++Instances;
  for (size_t I = 0; I != 512; ++I)
    Pool.put(static_cast<AppElem>(I), static_cast<AppElem>(I * 31));
  for (size_t Probe = 0; Probe != 4096; ++Probe) {
    const AppElem *V =
        Pool.get(static_cast<AppElem>(Rng.nextBelow(640)));
    Checksum += V ? static_cast<uint64_t>(*V) : 1;
  }

  return Scope.finish(Harness, Checksum, Instances);
}
