//===- LusearchSim.cpp - Text search workload -----------------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// Stand-in for DaCapo lusearch (paper Table 5: 12 target allocation
// sites). Lusearch runs Lucene text queries; the paper reports that
// "most of its HashMap instances held less than 20 elements" and were
// replaced by AdaptiveMap and OpenHashMap, giving the largest time win
// (~15% under Rtime) plus a ~5% peak-memory reduction as a side effect.
//
//===----------------------------------------------------------------------===//

#include "apps/AppSupport.h"

#include <array>
#include <deque>

using namespace cswitch;
using namespace cswitch::detail;

AppResult cswitch::runLusearchSim(const AppRunConfig &RunConfig) {
  AppHarness Harness(RunConfig.Config, RunConfig.Rule,
                     resolveModel(RunConfig), RunConfig.CtxOptions);

  // 12 target sites: 4 score-map sites (one per searcher shard),
  // 3 term-cache sites, 2 hit lists, posting list, field map, stop set.
  std::array<AppHarness::MapSite, 4> ScoreMaps;
  for (size_t I = 0; I != ScoreMaps.size(); ++I)
    ScoreMaps[I] = Harness.declareMapSite(
        "lusearch:Scorer.scores" + std::to_string(I),
        MapVariant::ChainedHashMap);
  std::array<AppHarness::MapSite, 3> TermCaches;
  for (size_t I = 0; I != TermCaches.size(); ++I)
    TermCaches[I] = Harness.declareMapSite(
        "lusearch:TermInfosReader.cache" + std::to_string(I),
        MapVariant::ChainedHashMap);
  std::array<AppHarness::ListSite, 2> HitLists;
  for (size_t I = 0; I != HitLists.size(); ++I)
    HitLists[I] = Harness.declareListSite(
        "lusearch:TopDocs.hits" + std::to_string(I),
        ListVariant::ArrayList);
  AppHarness::ListSite PostingSite = Harness.declareListSite(
      "lusearch:SegmentTermDocs.postings", ListVariant::ArrayList);
  AppHarness::MapSite FieldMap = Harness.declareMapSite(
      "lusearch:FieldInfos.byName", MapVariant::ChainedHashMap);
  AppHarness::SetSite StopSet = Harness.declareSetSite(
      "lusearch:StopFilter.stopWords", SetVariant::ChainedHashSet);

  SplitMix64 Rng(RunConfig.Seed);
  AppRunScope Scope;
  uint64_t Checksum = 0;
  uint64_t Instances = 0;

  // Every third segment-level term cache is retained for the rest of
  // the run, so peak memory reflects the map variant in use while the
  // short-lived majority keeps the monitoring windows filling.
  std::deque<Map<AppElem, AppElem>> SegmentCaches;
  uint64_t CacheCounter = 0;

  // The inverted index: term id -> posting list (long-lived, built once).
  constexpr size_t TermUniverse = 512;
  std::vector<List<AppElem>> Index;
  Index.reserve(TermUniverse);
  for (size_t Term = 0; Term != TermUniverse; ++Term) {
    List<AppElem> Postings = PostingSite.create();
    ++Instances;
    size_t DocCount = 4 + Rng.nextBelow(60);
    for (size_t I = 0; I != DocCount; ++I)
      Postings.add(static_cast<AppElem>(Rng.nextBelow(4096)));
    Index.push_back(std::move(Postings));
  }

  // Stop-word set: long-lived, probed for every query term.
  Set<AppElem> StopWords = StopSet.create();
  ++Instances;
  for (size_t I = 0; I != 32; ++I)
    StopWords.add(static_cast<AppElem>(I * 17 % TermUniverse));

  auto QueryCount = static_cast<size_t>(3000 * RunConfig.Scale);
  for (size_t Query = 0; Query != QueryCount; ++Query) {
    // Per-query score map: mostly < 20 entries, occasionally large
    // (phrase queries over common terms) — the wide range that makes
    // AdaptiveMap eligible.
    AppHarness::MapSite &ScoreSite = ScoreMaps[Query % ScoreMaps.size()];
    size_t TermCount = bimodalSize(Rng, 2, 6, 12, 20, 100);
    Map<AppElem, AppElem> Scores = ScoreSite.create();
    ++Instances;
    for (size_t T = 0; T != TermCount; ++T) {
      AppElem Term = static_cast<AppElem>(Rng.nextBelow(TermUniverse));
      if (StopWords.contains(Term)) {
        Checksum += 1;
        continue;
      }
      // Accumulate per-document scores from the posting list.
      const List<AppElem> &Postings = Index[static_cast<size_t>(Term)];
      uint64_t DocSum = 0;
      Postings.forEach([&DocSum](const AppElem &Doc) {
        DocSum += static_cast<uint64_t>(Doc);
      });
      AppElem Bucket = static_cast<AppElem>(DocSum % 97);
      AppElem *Score = Scores.getMutable(Bucket);
      if (Score)
        *Score += 1;
      else
        Scores.put(Bucket, 1);
      // Scorers re-read accumulated buckets constantly.
      for (size_t Probe = 0; Probe != 12; ++Probe) {
        const AppElem *S = Scores.get(
            static_cast<AppElem>(Rng.nextBelow(97)));
        Checksum += S ? static_cast<uint64_t>(*S) : 0;
      }
    }
    Checksum += Scores.size();

    // Term-info cache per segment: small map, get-or-insert pattern.
    AppHarness::MapSite &CacheSite = TermCaches[Query % TermCaches.size()];
    Map<AppElem, AppElem> Cache = CacheSite.create();
    ++Instances;
    for (size_t I = 0; I != 24; ++I) {
      AppElem Term = static_cast<AppElem>(Rng.nextBelow(48));
      const AppElem *Info = Cache.get(Term);
      if (!Info)
        Cache.put(Term, Term * 5);
      else
        Checksum += static_cast<uint64_t>(*Info);
    }
    if (CacheCounter++ % 3 == 0)
      SegmentCaches.push_back(std::move(Cache));

    // Hit list: top documents, appended then iterated for display.
    AppHarness::ListSite &HitSite = HitLists[Query % HitLists.size()];
    List<AppElem> Hits = HitSite.create();
    ++Instances;
    size_t HitCount = 10 + Rng.nextBelow(40);
    for (size_t I = 0; I != HitCount; ++I)
      Hits.add(static_cast<AppElem>(Rng.nextBelow(4096)));
    uint64_t HitSum = 0;
    Hits.forEach([&HitSum](const AppElem &V) {
      HitSum += static_cast<uint64_t>(V);
    });
    Checksum += HitSum;

    // Field map: tiny per-document map during result loading.
    if (Query % 4 == 0) {
      Map<AppElem, AppElem> Fields = FieldMap.create();
      ++Instances;
      for (size_t I = 0; I != 5; ++I)
        Fields.put(static_cast<AppElem>(I),
                   static_cast<AppElem>(Rng.nextBelow(256)));
      for (size_t Probe = 0; Probe != 10; ++Probe)
        Checksum += Fields.containsKey(
            static_cast<AppElem>(Rng.nextBelow(8)));
    }

    if (Query % 300 == 299)
      Harness.evaluateAll();
  }

  return Scope.finish(Harness, Checksum, Instances);
}
