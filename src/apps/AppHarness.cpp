//===- AppHarness.cpp - Instrumentation harness for the mini-apps --------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "apps/AppHarness.h"

using namespace cswitch;

const char *cswitch::appConfigName(AppConfig Config) {
  switch (Config) {
  case AppConfig::Original:
    return "original";
  case AppConfig::FullAdap:
    return "fulladap";
  case AppConfig::InstanceAdap:
    return "instanceadap";
  }
  return "unknown";
}

AppHarness::AppHarness(AppConfig Config, SelectionRule Rule,
                       std::shared_ptr<const PerformanceModel> Model,
                       ContextOptions CtxOptions)
    : Config(Config), Rule(std::move(Rule)), Model(std::move(Model)),
      CtxOptions(CtxOptions) {}

AppHarness::~AppHarness() {
  // Contexts are registered with the global engine (so engine-level
  // telemetry observes app runs); detach them before they die.
  for (auto &Ctx : Owned)
    SwitchEngine::global().unregisterContext(Ctx.get());
}

AppHarness::ListSite AppHarness::declareListSite(const std::string &Name,
                                                 ListVariant Default) {
  ++Sites;
  ListSite Site;
  switch (Config) {
  case AppConfig::Original:
    Site.Fixed = Default;
    break;
  case AppConfig::InstanceAdap:
    Site.Fixed = ListVariant::AdaptiveList;
    break;
  case AppConfig::FullAdap: {
    auto Ctx = std::make_unique<ListContext<AppElem>>(Name, Default, Model,
                                                      Rule, CtxOptions);
    Site.Ctx = Ctx.get();
    Owned.push_back(std::move(Ctx));
    SwitchEngine::global().registerContext(Site.Ctx);
    break;
  }
  }
  return Site;
}

AppHarness::SetSite AppHarness::declareSetSite(const std::string &Name,
                                               SetVariant Default) {
  ++Sites;
  SetSite Site;
  switch (Config) {
  case AppConfig::Original:
    Site.Fixed = Default;
    break;
  case AppConfig::InstanceAdap:
    Site.Fixed = SetVariant::AdaptiveSet;
    break;
  case AppConfig::FullAdap: {
    auto Ctx = std::make_unique<SetContext<AppElem>>(Name, Default, Model,
                                                     Rule, CtxOptions);
    Site.Ctx = Ctx.get();
    Owned.push_back(std::move(Ctx));
    SwitchEngine::global().registerContext(Site.Ctx);
    break;
  }
  }
  return Site;
}

AppHarness::MapSite AppHarness::declareMapSite(const std::string &Name,
                                               MapVariant Default) {
  ++Sites;
  MapSite Site;
  switch (Config) {
  case AppConfig::Original:
    Site.Fixed = Default;
    break;
  case AppConfig::InstanceAdap:
    Site.Fixed = MapVariant::AdaptiveMap;
    break;
  case AppConfig::FullAdap: {
    auto Ctx = std::make_unique<MapContext<AppElem, AppElem>>(
        Name, Default, Model, Rule, CtxOptions);
    Site.Ctx = Ctx.get();
    Owned.push_back(std::move(Ctx));
    SwitchEngine::global().registerContext(Site.Ctx);
    break;
  }
  }
  return Site;
}

size_t AppHarness::evaluateAll() {
  size_t Transitions = 0;
  for (auto &Ctx : Owned)
    if (Ctx->evaluate())
      ++Transitions;
  return Transitions;
}

std::vector<const AllocationContextBase *> AppHarness::contexts() const {
  std::vector<const AllocationContextBase *> Out;
  Out.reserve(Owned.size());
  for (const auto &Ctx : Owned)
    Out.push_back(Ctx.get());
  return Out;
}
