//===- Tuner.cpp - Offline evolutionary parameter tuner -------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include "fleet/ModelArtifact.h"
#include "store/StoreFormat.h"
#include "support/Random.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

using namespace cswitch;
using namespace cswitch::tuner;

namespace {

/// Uniform double in [0, 1) from the top 53 bits of one draw.
double uniform01(SplitMix64 &Rng) {
  return static_cast<double>(Rng.next() >> 11) * 0x1.0p-53;
}

} // namespace

Tuner::Tuner(std::shared_ptr<const PerformanceModel> Model,
             TunerOptions Options)
    : Model(std::move(Model)), Options(Options) {}

void Tuner::addTrace(OpTrace Trace) {
  Corpus.push_back(std::move(Trace));
  // The corpus defines the fitness function; cached fitnesses and the
  // baseline are stale now.
  Cache.clear();
  Baseline.clear();
  BaselineReady = false;
}

std::string Tuner::corpusDigest() const {
  std::string All;
  for (const OpTrace &Trace : Corpus)
    All += encodeTrace(Trace);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "crc32:%08x", storeCrc32(All));
  return Buf;
}

ReplayOptions Tuner::replayOptionsFor(const ParameterSet &Params) const {
  ReplayOptions O;
  O.Mode = ReplayMode::Engine;
  O.Seed = Options.ReplaySeed;
  O.Threads = 1; // Parallelism lives across genomes, not inside replays.
  O.EvalEveryOps = Params.evalEveryOps();
  O.Context.LogEvents = false;
  O.Context.WindowSize = Params.windowSize();
  O.Context.FinishedRatio = Params.finishedRatio();
  O.Context.WideRangeFactor = Params.wideRangeFactor();
  O.Context.WarmWindowFactor = Params.warmWindowFactor();
  O.Context.AdaptiveOverride = Params.thresholds();
  SelectionRule Rule = SelectionRule::timeRule();
  Rule.Name = "Rtime(tuned)";
  Rule.Criteria.front().Threshold = Params.ruleTimeThreshold();
  O.Rule = std::move(Rule);
  O.Model = Model;
  return O;
}

std::vector<Tuner::TraceScore>
Tuner::score(const ParameterSet &Params) const {
  std::vector<TraceScore> Scores;
  Scores.reserve(Corpus.size());
  for (const OpTrace &Trace : Corpus) {
    Replayer Replay(Trace, replayOptionsFor(Params));
    ReplayResult Result = Replay.run();
    TraceScore S;
    S.Time = Result.TrajectoryTime;
    S.Alloc = Result.TrajectoryAlloc;
    S.SwitchesPerInstance =
        Result.InstancesReplayed
            ? static_cast<double>(Result.Switches) /
                  static_cast<double>(Result.InstancesReplayed)
            : 0.0;
    Scores.push_back(S);
  }
  return Scores;
}

double Tuner::fitnessOf(const std::vector<TraceScore> &Scores,
                        const ParameterSet &Params) const {
  double Wt = Options.TimeWeight;
  double Wa = Options.AllocWeight;
  double WeightSum = Wt + Wa;
  if (!(WeightSum > 0.0)) {
    Wt = 1.0;
    Wa = 0.0;
    WeightSum = 1.0;
  }

  double Fit = 0.0;
  double WorstTimeRatio = 0.0;
  for (size_t I = 0, E = Scores.size(); I != E; ++I) {
    double TimeRatio = Baseline[I].Time > 0.0
                           ? Scores[I].Time / Baseline[I].Time
                           : 1.0;
    double AllocRatio = Baseline[I].Alloc > 0.0
                            ? Scores[I].Alloc / Baseline[I].Alloc
                            : 1.0;
    Fit += (Wt * TimeRatio + Wa * AllocRatio) / WeightSum;
    Fit += Options.SwitchPenalty * Scores[I].SwitchesPerInstance;
    WorstTimeRatio = std::max(WorstTimeRatio, TimeRatio);
  }
  if (!Scores.empty())
    Fit /= static_cast<double>(Scores.size());

  // Parameters the corpus exerts no pressure on must not drift from the
  // paper defaults just because mutation pushed them around.
  double Reg = 0.0;
  for (const ParamInfo &Info : parameterSpace()) {
    double Span = Info.Max - Info.Min;
    double Dist =
        Span > 0.0 ? (Params.get(Info.Id) - Info.Default) / Span : 0.0;
    Reg += Dist * Dist;
  }
  Fit += Options.Regularization * Reg /
         static_cast<double>(NumTunableParams);

  // Worst-trace time regression vs the default genome: winning on
  // average while losing badly somewhere fails the acceptance gate, so
  // make the search feel it too.
  Fit += Options.RegressionPenalty * std::max(0.0, WorstTimeRatio - 1.0);
  return Fit;
}

double Tuner::evaluate(const ParameterSet &Params) {
  if (!BaselineReady) {
    Baseline = score(ParameterSet());
    BaselineReady = true;
  }
  auto It = Cache.find(Params.values());
  if (It != Cache.end())
    return It->second;
  ++CacheMisses;
  double Fit = fitnessOf(score(Params), Params);
  Cache.emplace(Params.values(), Fit);
  return Fit;
}

TunerResult Tuner::run() {
  TunerResult Result;
  if (Corpus.empty()) {
    // Nothing to fit against: the defaults are the answer.
    Result.BestFitness = Result.BaselineFitness = 0.0;
    return Result;
  }

  if (!BaselineReady) {
    Baseline = score(ParameterSet());
    BaselineReady = true;
  }
  Result.BaselineFitness = evaluate(ParameterSet());

  const auto &Space = parameterSpace();
  unsigned Pop = std::max(2u, Options.Population);
  unsigned Elites = std::min(Options.Elites, Pop - 1);
  unsigned Tournament = std::max(1u, Options.TournamentSize);
  SplitMix64 Rng(Options.Seed);

  // Generation 0: the paper defaults plus uniformly random genomes —
  // the search can only improve on the defaults, never lose to them.
  std::vector<ParameterSet> Population(Pop);
  for (unsigned I = 1; I != Pop; ++I)
    for (const ParamInfo &Info : Space)
      Population[I].set(Info.Id,
                        Info.Min + uniform01(Rng) * (Info.Max - Info.Min));

  std::vector<double> Fitness(Pop);
  ParameterSet BestGenome;
  double BestFit = std::numeric_limits<double>::infinity();
  unsigned Stale = 0;

  for (unsigned Gen = 0; Gen != std::max(1u, Options.Generations); ++Gen) {
    // Evaluate the generation. Cache lookups and insertions stay on
    // this thread; workers only compute fitness for the distinct
    // uncached genomes, each into its own slot — so the cache contents,
    // the draw sequence, and therefore the whole search are identical
    // for any Threads value.
    std::vector<size_t> PendingIdx; // Index of first occurrence.
    for (size_t I = 0; I != Pop; ++I) {
      if (Cache.count(Population[I].values()))
        continue;
      bool Seen = false;
      for (size_t J : PendingIdx)
        if (Population[J] == Population[I]) {
          Seen = true;
          break;
        }
      if (!Seen)
        PendingIdx.push_back(I);
    }

    std::vector<double> Pending(PendingIdx.size());
    unsigned Threads = std::max(1u, Options.Threads);
    if (Threads <= 1 || PendingIdx.size() <= 1) {
      for (size_t J = 0; J != PendingIdx.size(); ++J) {
        const ParameterSet &P = Population[PendingIdx[J]];
        Pending[J] = fitnessOf(score(P), P);
      }
    } else {
      std::atomic<size_t> Next{0};
      auto Worker = [&] {
        for (size_t J = Next.fetch_add(1, std::memory_order_relaxed);
             J < PendingIdx.size();
             J = Next.fetch_add(1, std::memory_order_relaxed)) {
          const ParameterSet &P = Population[PendingIdx[J]];
          Pending[J] = fitnessOf(score(P), P);
        }
      };
      unsigned NumWorkers = static_cast<unsigned>(
          std::min<size_t>(Threads, PendingIdx.size()));
      std::vector<std::thread> PoolThreads;
      PoolThreads.reserve(NumWorkers - 1);
      for (unsigned T = 1; T != NumWorkers; ++T)
        PoolThreads.emplace_back(Worker);
      Worker();
      for (std::thread &T : PoolThreads)
        T.join();
    }
    for (size_t J = 0; J != PendingIdx.size(); ++J) {
      Cache.emplace(Population[PendingIdx[J]].values(), Pending[J]);
      ++CacheMisses;
    }
    for (size_t I = 0; I != Pop; ++I)
      Fitness[I] = Cache.find(Population[I].values())->second;

    // Track the champion (ties broken by genome bytes so the result
    // never depends on population order).
    double PrevBest = BestFit;
    for (size_t I = 0; I != Pop; ++I) {
      if (Fitness[I] < BestFit ||
          (Fitness[I] == BestFit && Population[I].values() <
                                        BestGenome.values())) {
        BestFit = Fitness[I];
        BestGenome = Population[I];
      }
    }
    ++Result.GenerationsRun;
    Result.History.push_back(BestFit);
    if (PrevBest - BestFit >= Options.MinImprovement)
      Stale = 0;
    else
      ++Stale;
    if (Stale >= Options.Patience)
      break;
    if (Gen + 1 == std::max(1u, Options.Generations))
      break;

    // Breed the next generation: elitism + tournament parents +
    // uniform crossover + bounded mutation. Every draw happens here,
    // on the driving thread.
    std::vector<size_t> Order(Pop);
    for (size_t I = 0; I != Pop; ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(),
                     [&](size_t A, size_t B) {
                       if (Fitness[A] != Fitness[B])
                         return Fitness[A] < Fitness[B];
                       return Population[A].values() <
                              Population[B].values();
                     });

    auto SelectParent = [&]() -> const ParameterSet & {
      size_t Winner = Rng.nextBelow(Pop);
      for (unsigned T = 1; T != Tournament; ++T) {
        size_t Contender = Rng.nextBelow(Pop);
        if (Fitness[Contender] < Fitness[Winner])
          Winner = Contender;
      }
      return Population[Winner];
    };

    std::vector<ParameterSet> NextGen;
    NextGen.reserve(Pop);
    for (unsigned I = 0; I != Elites; ++I)
      NextGen.push_back(Population[Order[I]]);
    while (NextGen.size() != Pop) {
      const ParameterSet &ParentA = SelectParent();
      const ParameterSet &ParentB = SelectParent();
      ParameterSet Child = ParentA;
      if (uniform01(Rng) < Options.CrossoverRate)
        for (const ParamInfo &Info : Space)
          if (uniform01(Rng) < 0.5)
            Child.set(Info.Id, ParentB.get(Info.Id));
      for (const ParamInfo &Info : Space) {
        if (uniform01(Rng) >= Options.MutationRate)
          continue;
        double Span = Info.Max - Info.Min;
        if (uniform01(Rng) < 0.2) {
          // Occasional full resample keeps the search from collapsing
          // into one basin.
          Child.set(Info.Id, Info.Min + uniform01(Rng) * Span);
        } else {
          double Step = (uniform01(Rng) * 2.0 - 1.0) * 0.25 * Span;
          Child.set(Info.Id, Child.get(Info.Id) + Step);
        }
      }
      NextGen.push_back(std::move(Child));
    }
    Population = std::move(NextGen);
  }

  Result.Best = BestGenome;
  Result.BestFitness = BestFit;
  Result.Evaluations = CacheMisses;
  return Result;
}

TuningArtifact Tuner::makeArtifact(const TunerResult &Result) const {
  TuningArtifact Artifact = artifactFromParams(Result.Best);
  Artifact.HostFingerprint = fleet::hostFingerprint();
  Artifact.Seed = Options.Seed;
  Artifact.Generations = Result.GenerationsRun;
  Artifact.Population = std::max(2u, Options.Population);
  Artifact.Evaluations = Result.Evaluations;
  Artifact.CorpusDigest = corpusDigest();
  Artifact.TimeWeight = Options.TimeWeight;
  Artifact.AllocWeight = Options.AllocWeight;
  Artifact.WinnerFitness = Result.BestFitness;
  Artifact.BaselineFitness = Result.BaselineFitness;
  return Artifact;
}
