//===- TuningArtifact.cpp - Versioned tuned-config artifact ---------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningArtifact.h"

#include "store/StoreFormat.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define CSWITCH_TUNER_POSIX 1
#endif

using namespace cswitch;
using namespace cswitch::tuner;

namespace {

constexpr char Magic[] = "cswitch-tuning-v1"; // 17 bytes, no terminator.
constexpr size_t MagicSize = 17;
constexpr uint64_t FormatVersion = 1;

/// Longest accepted fingerprint / corpus-digest string. Real values are
/// tens of bytes; anything larger is a corrupt length field.
constexpr uint64_t MaxHeaderString = 1 << 12;

void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out += static_cast<char>((Value & 0x7f) | 0x80);
    Value >>= 7;
  }
  Out += static_cast<char>(Value);
}

void putDouble(std::string &Out, double Value) {
  uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  for (int Byte = 0; Byte != 8; ++Byte)
    Out += static_cast<char>((Bits >> (8 * Byte)) & 0xFFu);
}

void putCrc(std::string &Out, std::string_view Payload) {
  uint32_t Crc = storeCrc32(Payload);
  for (int Byte = 0; Byte != 4; ++Byte)
    Out += static_cast<char>((Crc >> (8 * Byte)) & 0xFFu);
}

/// Bounded byte reader (the store format's Reader, plus doubles).
class Reader {
public:
  Reader(std::string_view Bytes) : Cur(Bytes.data()), End(Cur + Bytes.size()) {}

  bool varint(uint64_t &Out) {
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Cur == End)
        return false;
      uint8_t Byte = static_cast<uint8_t>(*Cur++);
      Out |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return true;
    }
    return false; // More than 10 continuation bytes: corrupt.
  }

  bool bytes(size_t N, std::string &Out) {
    if (static_cast<size_t>(End - Cur) < N)
      return false;
    Out.assign(Cur, N);
    Cur += N;
    return true;
  }

  bool view(size_t N, std::string_view &Out) {
    if (static_cast<size_t>(End - Cur) < N)
      return false;
    Out = std::string_view(Cur, N);
    Cur += N;
    return true;
  }

  bool byte(uint8_t &Out) {
    if (Cur == End)
      return false;
    Out = static_cast<uint8_t>(*Cur++);
    return true;
  }

  bool f64(double &Out) {
    if (static_cast<size_t>(End - Cur) < 8)
      return false;
    uint64_t Bits = 0;
    for (int Byte = 0; Byte != 8; ++Byte)
      Bits |= static_cast<uint64_t>(static_cast<uint8_t>(Cur[Byte]))
              << (8 * Byte);
    Cur += 8;
    std::memcpy(&Out, &Bits, sizeof(Out));
    return true;
  }

  bool crcOf(std::string_view Payload) {
    uint32_t Stored = 0;
    for (int Byte = 0; Byte != 4; ++Byte) {
      uint8_t B = 0;
      if (!byte(B))
        return false;
      Stored |= static_cast<uint32_t>(B) << (8 * Byte);
    }
    return Stored == storeCrc32(Payload);
  }

  bool atEnd() const { return Cur == End; }

private:
  const char *Cur;
  const char *End;
};

bool fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return false;
}

std::string encodeHeaderPayload(const TuningArtifact &Artifact) {
  std::string Out;
  putVarint(Out, Artifact.HostFingerprint.size());
  Out += Artifact.HostFingerprint;
  putVarint(Out, Artifact.Seed);
  putVarint(Out, Artifact.Generations);
  putVarint(Out, Artifact.Population);
  putVarint(Out, Artifact.Evaluations);
  putVarint(Out, Artifact.CorpusDigest.size());
  Out += Artifact.CorpusDigest;
  putDouble(Out, Artifact.TimeWeight);
  putDouble(Out, Artifact.AllocWeight);
  putDouble(Out, Artifact.WinnerFitness);
  putDouble(Out, Artifact.BaselineFitness);
  return Out;
}

std::string encodeRowPayload(const TuningArtifact::Row &Row) {
  std::string Out;
  putVarint(Out, Row.Name.size());
  Out += Row.Name;
  putDouble(Out, Row.Value);
  return Out;
}

bool decodeHeaderPayload(std::string_view Payload, TuningArtifact &Out,
                         std::string *Error) {
  Reader In(Payload);
  uint64_t FingerprintLen = 0;
  if (!In.varint(FingerprintLen) || FingerprintLen > MaxHeaderString ||
      !In.bytes(FingerprintLen, Out.HostFingerprint))
    return fail(Error, "truncated host fingerprint");
  if (!In.varint(Out.Seed))
    return fail(Error, "truncated seed");
  if (!In.varint(Out.Generations))
    return fail(Error, "truncated generation count");
  if (!In.varint(Out.Population))
    return fail(Error, "truncated population size");
  if (!In.varint(Out.Evaluations))
    return fail(Error, "truncated evaluation count");
  uint64_t DigestLen = 0;
  if (!In.varint(DigestLen) || DigestLen > MaxHeaderString ||
      !In.bytes(DigestLen, Out.CorpusDigest))
    return fail(Error, "truncated corpus digest");
  if (!In.f64(Out.TimeWeight) || !In.f64(Out.AllocWeight))
    return fail(Error, "truncated objective weights");
  if (!std::isfinite(Out.TimeWeight) || Out.TimeWeight < 0.0 ||
      !std::isfinite(Out.AllocWeight) || Out.AllocWeight < 0.0)
    return fail(Error, "non-finite or negative objective weight");
  if (!In.f64(Out.WinnerFitness) || !In.f64(Out.BaselineFitness))
    return fail(Error, "truncated fitness values");
  if (!std::isfinite(Out.WinnerFitness) ||
      !std::isfinite(Out.BaselineFitness))
    return fail(Error, "non-finite fitness value");
  if (!In.atEnd())
    return fail(Error, "oversized header payload");
  return true;
}

bool decodeRowPayload(std::string_view Payload, TuningArtifact::Row &Row,
                      std::string *Error) {
  Reader In(Payload);
  uint64_t NameLen = 0;
  if (!In.varint(NameLen) || NameLen > MaxHeaderString ||
      !In.bytes(NameLen, Row.Name))
    return fail(Error, "truncated parameter name");
  if (!In.f64(Row.Value))
    return fail(Error, "truncated parameter value");
  if (!In.atEnd())
    return fail(Error, "oversized row payload");

  // Semantic validation: the row must name a known parameter and carry
  // a value the parameter space accepts as-is.
  const ParamInfo *Info = findParam(Row.Name);
  if (!Info) {
    if (Error)
      *Error = "unknown parameter \"" + Row.Name + "\"";
    return false;
  }
  if (!std::isfinite(Row.Value)) {
    if (Error)
      *Error = "non-finite value for parameter \"" + Row.Name + "\"";
    return false;
  }
  if (Row.Value < Info->Min || Row.Value > Info->Max) {
    if (Error)
      *Error = "parameter \"" + Row.Name + "\" value " +
               std::to_string(Row.Value) + " outside [" +
               std::to_string(Info->Min) + ", " + std::to_string(Info->Max) +
               "]";
    return false;
  }
  if (Info->Integer && Row.Value != std::nearbyint(Row.Value)) {
    if (Error)
      *Error = "parameter \"" + Row.Name + "\" requires an integral value";
    return false;
  }
  return true;
}

} // namespace

std::string
cswitch::tuner::encodeTuningArtifact(const TuningArtifact &Artifact) {
  // Canonical order regardless of the caller's: encode a name-sorted
  // view.
  std::vector<size_t> Order(Artifact.Rows.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::sort(Order.begin(), Order.end(), [&Artifact](size_t A, size_t B) {
    return Artifact.Rows[A].Name < Artifact.Rows[B].Name;
  });

  std::string Out;
  Out.reserve(MagicSize + 96 + Artifact.Rows.size() * 48);
  Out.append(Magic, MagicSize);
  putVarint(Out, FormatVersion);
  std::string Header = encodeHeaderPayload(Artifact);
  putVarint(Out, Header.size());
  Out += Header;
  putCrc(Out, Header);
  putVarint(Out, Artifact.Rows.size());
  for (size_t I : Order) {
    std::string Payload = encodeRowPayload(Artifact.Rows[I]);
    putVarint(Out, Payload.size());
    Out += Payload;
    putCrc(Out, Payload);
  }
  return Out;
}

bool cswitch::tuner::decodeTuningArtifact(std::string_view Bytes,
                                          TuningArtifact &Out,
                                          std::string *Error) {
  Out = TuningArtifact();
  if (Bytes.size() < MagicSize ||
      std::memcmp(Bytes.data(), Magic, MagicSize) != 0)
    return fail(Error, "not a cswitch-tuning document (bad magic)");
  Reader In(Bytes.substr(MagicSize));

  uint64_t Version = 0;
  if (!In.varint(Version))
    return fail(Error, "truncated version");
  if (Version != FormatVersion) {
    if (Error)
      *Error = "unsupported cswitch-tuning version " +
               std::to_string(Version) + " (expected " +
               std::to_string(FormatVersion) + ")";
    return false;
  }

  uint64_t HeaderLen = 0;
  std::string_view Header;
  if (!In.varint(HeaderLen) || !In.view(HeaderLen, Header))
    return fail(Error, "truncated header record");
  if (!In.crcOf(Header))
    return fail(Error, "header crc mismatch");
  if (!decodeHeaderPayload(Header, Out, Error)) {
    Out = TuningArtifact();
    return false;
  }

  uint64_t RowCount = 0;
  if (!In.varint(RowCount)) {
    Out = TuningArtifact();
    return fail(Error, "truncated row count");
  }
  if (RowCount != NumTunableParams) {
    Out = TuningArtifact();
    if (Error)
      *Error = "expected " + std::to_string(NumTunableParams) +
               " parameter rows, found " + std::to_string(RowCount);
    return false;
  }
  Out.Rows.reserve(NumTunableParams);
  for (uint64_t I = 0; I != RowCount; ++I) {
    uint64_t PayloadLen = 0;
    std::string_view Payload;
    if (!In.varint(PayloadLen) || !In.view(PayloadLen, Payload)) {
      Out = TuningArtifact();
      return fail(Error, "truncated row record");
    }
    if (!In.crcOf(Payload)) {
      Out = TuningArtifact();
      return fail(Error, "row crc mismatch");
    }
    TuningArtifact::Row Row;
    if (!decodeRowPayload(Payload, Row, Error)) {
      Out = TuningArtifact();
      return false;
    }
    if (!Out.Rows.empty() && !(Out.Rows.back().Name < Row.Name)) {
      Out = TuningArtifact();
      return fail(Error, "rows out of canonical order");
    }
    Out.Rows.push_back(std::move(Row));
  }
  // RowCount == NumTunableParams, every name known, and names strictly
  // ascending => the rows are exactly the full parameter space.

  if (!In.atEnd()) {
    Out = TuningArtifact();
    return fail(Error, "trailing bytes after row records");
  }
  return true;
}

bool cswitch::tuner::writeTuningArtifactToFile(const std::string &Path,
                                               const TuningArtifact &Artifact,
                                               std::string *Error) {
  std::string Bytes = encodeTuningArtifact(Artifact);
  std::string TmpPath = Path + ".tmp";
#ifdef CSWITCH_TUNER_POSIX
  // Crash-safe replace, mirroring writeModelArtifactToFile: a reader
  // (or a restarting process pointing CSWITCH_TUNING here) observes
  // either the complete old artifact or the complete new one, never a
  // torn write.
  int Fd = ::open(TmpPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    return fail(Error, "cannot create tuning temp file");
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      return fail(Error, "short write to tuning temp file");
    }
    Off += static_cast<size_t>(N);
  }
  bool Flushed = ::fsync(Fd) == 0;
  bool Closed = ::close(Fd) == 0;
  if (!Flushed || !Closed ||
      std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    return fail(Error, "cannot replace tuning file");
  }
  return true;
#else
  {
    std::ofstream OS(TmpPath, std::ios::binary | std::ios::trunc);
    if (!OS)
      return fail(Error, "cannot create tuning temp file");
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!OS) {
      std::remove(TmpPath.c_str());
      return fail(Error, "short write to tuning temp file");
    }
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return fail(Error, "cannot replace tuning file");
  }
  return true;
#endif
}

bool cswitch::tuner::readTuningArtifactFromFile(const std::string &Path,
                                                TuningArtifact &Out,
                                                std::string *Error) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    Out = TuningArtifact();
    return fail(Error, "cannot open tuning file");
  }
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  if (IS.bad()) {
    Out = TuningArtifact();
    return fail(Error, "I/O error reading tuning file");
  }
  return decodeTuningArtifact(Buffer.str(), Out, Error);
}

TuningArtifact cswitch::tuner::artifactFromParams(const ParameterSet &Params) {
  TuningArtifact Artifact;
  Artifact.Rows.reserve(NumTunableParams);
  for (const ParamInfo &Info : parameterSpace())
    Artifact.Rows.push_back({Info.Name, Params.get(Info.Id)});
  return Artifact;
}

bool cswitch::tuner::paramsFromArtifact(const TuningArtifact &Artifact,
                                        ParameterSet &Out,
                                        std::string *Error) {
  ParameterSet Params;
  for (const TuningArtifact::Row &Row : Artifact.Rows) {
    const ParamInfo *Info = findParam(Row.Name);
    if (!Info) {
      if (Error)
        *Error = "unknown parameter \"" + Row.Name + "\"";
      return false;
    }
    if (!std::isfinite(Row.Value)) {
      if (Error)
        *Error = "non-finite value for parameter \"" + Row.Name + "\"";
      return false;
    }
    Params.set(Info->Id, Row.Value);
  }
  Out = Params;
  return true;
}
