//===- Tuner.h - Offline evolutionary parameter tuner -----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline search-based autotuner (DESIGN.md §13): a seeded,
/// deterministic evolutionary search — tournament selection, uniform
/// crossover, bounded per-gene mutation, elitism, early stop — over the
/// typed ParameterSpace, with the deterministic Replayer as its fitness
/// function (Darwinian Data Structure Selection, Basios et al.; fitness
/// through trace replay as in MapReplay, Schiavio et al.).
///
/// Fitness of a genome is the *trajectory cost* of replaying the trace
/// corpus under that genome's configuration: every replayed instance is
/// costed (by the performance model) on the variant it was actually
/// created with, so a configuration that converges to the right variant
/// in one monitoring round genuinely beats one that takes five —
/// window size, evaluation cadence and rule threshold all move the
/// fitness, not just the final variant choice. Time and alloc costs are
/// normalized against the paper-default genome per trace and
/// scalarized with user weights; a regularization term keeps parameters
/// the corpus exerts no pressure on (e.g. contention knobs under
/// sequential traces) at their paper defaults instead of drifting.
///
/// Determinism (the property the whole pipeline leans on): the search
/// is a pure function of (corpus bytes, TunerOptions). All random draws
/// happen on the driving thread between generations; worker threads
/// only evaluate genomes into result slots indexed by population
/// position, and the fitness memo-cache is consulted before dispatch —
/// so a Threads=8 run returns bit-identical results to Threads=1.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_TUNER_TUNER_H
#define CSWITCH_TUNER_TUNER_H

#include "replay/Replayer.h"
#include "tuner/TuningArtifact.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cswitch {
namespace tuner {

/// Search configuration. Defaults run a small-but-real search; CI smoke
/// runs shrink Population/Generations further.
struct TunerOptions {
  /// Root seed of every random draw (selection, crossover, mutation).
  uint64_t Seed = 0x1905;
  /// Genomes per generation (gen 0 = paper defaults + random rest).
  unsigned Population = 24;
  /// Maximum generations (early stop may end the search sooner).
  unsigned Generations = 12;
  /// Best genomes copied unchanged into the next generation.
  unsigned Elites = 2;
  /// Tournament size of parent selection.
  unsigned TournamentSize = 3;
  /// Probability of crossover (vs cloning the first parent).
  double CrossoverRate = 0.9;
  /// Per-gene mutation probability.
  double MutationRate = 0.2;
  /// Worker threads for population evaluation (1 = serial; any value
  /// produces identical results — see the determinism note above).
  unsigned Threads = 1;
  /// Scalarization weights of the multi-objective fitness.
  double TimeWeight = 1.0;
  double AllocWeight = 0.25;
  /// Penalty per variant switch per replayed instance (0 = off):
  /// discourages configurations that win by thrashing.
  double SwitchPenalty = 0.0;
  /// Weight of the squared normalized distance from the paper defaults:
  /// parameters the corpus gives no signal on stay put.
  double Regularization = 0.01;
  /// Weight of the worst-trace time regression (ratios above 1 vs the
  /// default genome): guards the "no scenario regresses" acceptance
  /// criterion during the search itself.
  double RegressionPenalty = 2.0;
  /// Seed handed to the fitness replays (independent of Seed so the
  /// search seed does not change the workloads being scored).
  uint64_t ReplaySeed = 0x1905;
  /// Early stop: generations without MinImprovement before giving up.
  unsigned Patience = 4;
  double MinImprovement = 1e-4;
};

/// Outcome of one search.
struct TunerResult {
  ParameterSet Best;
  /// Fitness of Best / of the paper-default genome (lower is better;
  /// Best <= Baseline because gen 0 contains the default genome and
  /// elitism never loses it).
  double BestFitness = 0.0;
  double BaselineFitness = 0.0;
  unsigned GenerationsRun = 0;
  /// Fitness evaluations actually performed (memo-cache misses).
  uint64_t Evaluations = 0;
  /// Best fitness after each generation (History.size() ==
  /// GenerationsRun).
  std::vector<double> History;
};

/// The evolutionary tuner. Reusable: run() is const apart from the
/// fitness memo-cache, and repeated runs with equal options return
/// identical results.
class Tuner {
public:
  Tuner(std::shared_ptr<const PerformanceModel> Model, TunerOptions Options);

  /// Adds a recorded trace to the fitness corpus.
  void addTrace(OpTrace Trace);

  size_t traceCount() const { return Corpus.size(); }

  /// Digest tying artifacts to this corpus ("crc32:XXXXXXXX" over the
  /// serialized traces, in addTrace order).
  std::string corpusDigest() const;

  /// Fitness of one genome over the corpus (lower is better). Exposed
  /// for tests and for scoring externally-supplied configurations;
  /// memoized.
  double evaluate(const ParameterSet &Params);

  /// Runs the search. Requires at least one trace.
  TunerResult run();

  /// Packages \p Result as a `cswitch-tuning-v1` artifact with full
  /// provenance (fingerprint, seed, geometry, corpus digest, fitness).
  TuningArtifact makeArtifact(const TunerResult &Result) const;

  /// The ReplayOptions a genome's fitness replay runs with — also the
  /// exact configuration `ablation_parameters --check` and the CLI use
  /// to score artifacts, so "fitness" means the same thing everywhere.
  ReplayOptions replayOptionsFor(const ParameterSet &Params) const;

private:
  struct TraceScore {
    double Time = 0.0;
    double Alloc = 0.0;
    double SwitchesPerInstance = 0.0;
  };

  /// Replays every corpus trace under \p Params (serially, fixed seed).
  std::vector<TraceScore> score(const ParameterSet &Params) const;

  /// Scalarizes per-trace scores against the baseline.
  double fitnessOf(const std::vector<TraceScore> &Scores,
                   const ParameterSet &Params) const;

  std::shared_ptr<const PerformanceModel> Model;
  TunerOptions Options;
  std::vector<OpTrace> Corpus;
  /// Per-trace scores of the paper-default genome (computed lazily on
  /// first evaluate()).
  std::vector<TraceScore> Baseline;
  bool BaselineReady = false;
  /// Fitness memo-cache keyed by the genome's raw bytes. std::map (not
  /// unordered) so iteration order can never leak scheduling into
  /// results.
  std::map<std::array<double, NumTunableParams>, double> Cache;
  uint64_t CacheMisses = 0;
};

} // namespace tuner
} // namespace cswitch

#endif // CSWITCH_TUNER_TUNER_H
