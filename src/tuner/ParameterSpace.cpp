//===- ParameterSpace.cpp - Typed tuner parameter space -------------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "tuner/ParameterSpace.h"

#include <cmath>

using namespace cswitch;
using namespace cswitch::tuner;

const std::array<ParamInfo, NumTunableParams> &cswitch::tuner::parameterSpace() {
  // Bounds are deliberately generous around the paper defaults: wide
  // enough for the search to find genuinely different regimes, narrow
  // enough that every point is a *sane* runtime configuration (a tuning
  // artifact can never install a pathological value; see also
  // validateThresholds).
  static const std::array<ParamInfo, NumTunableParams> Table = {{
      {ParamId::AdaptiveListThreshold, "adaptive.list.threshold", 8.0, 4096.0,
       80.0, true},
      {ParamId::AdaptiveSetThreshold, "adaptive.set.threshold", 8.0, 4096.0,
       40.0, true},
      {ParamId::AdaptiveMapThreshold, "adaptive.map.threshold", 8.0, 4096.0,
       50.0, true},
      {ParamId::ContextWindow, "context.window", 8.0, 2048.0, 100.0, true},
      {ParamId::ContextFinishedRatio, "context.finished_ratio", 0.1, 1.0, 0.6,
       false},
      {ParamId::ContextWideRangeFactor, "context.wide_range_factor", 1.0, 64.0,
       4.0, false},
      {ParamId::ContextWarmWindowFactor, "context.warm_window_factor", 0.05,
       1.0, 0.25, false},
      {ParamId::RuleTimeThreshold, "rule.time_threshold", 0.5, 0.99, 0.8,
       false},
      {ParamId::EngineEvalEveryOps, "engine.eval_every_ops", 32.0, 8192.0,
       256.0, true},
      {ParamId::StoreDecay, "store.decay", 0.05, 0.95, 0.5, false},
      {ParamId::ContentionMinOps, "contention.min_ops", 16.0, 65536.0, 256.0,
       true},
      {ParamId::ContentionSmoothing, "contention.smoothing", 0.05, 1.0, 0.5,
       false},
      {ParamId::ContentionShards, "contention.shards", 0.0, 64.0, 0.0, true},
  }};
  return Table;
}

const ParamInfo *cswitch::tuner::findParam(std::string_view Name) {
  for (const ParamInfo &Info : parameterSpace())
    if (Name == Info.Name)
      return &Info;
  return nullptr;
}

double cswitch::tuner::clampParam(const ParamInfo &Info, double Value) {
  if (!std::isfinite(Value))
    return Info.Default;
  if (Info.Integer)
    Value = std::nearbyint(Value);
  if (Value < Info.Min)
    return Info.Min;
  if (Value > Info.Max)
    return Info.Max;
  return Value;
}

ParameterSet::ParameterSet() {
  const auto &Space = parameterSpace();
  for (size_t I = 0; I != NumTunableParams; ++I)
    Values[static_cast<size_t>(Space[I].Id)] = Space[I].Default;
}

void ParameterSet::set(ParamId Id, double Value) {
  const ParamInfo &Info = parameterSpace()[static_cast<size_t>(Id)];
  Values[static_cast<size_t>(Id)] = clampParam(Info, Value);
}

AdaptiveThresholds ParameterSet::thresholds() const {
  AdaptiveThresholds T;
  T.List = static_cast<size_t>(get(ParamId::AdaptiveListThreshold));
  T.Set = static_cast<size_t>(get(ParamId::AdaptiveSetThreshold));
  T.Map = static_cast<size_t>(get(ParamId::AdaptiveMapThreshold));
  return T;
}

ContentionPolicy ParameterSet::contention() const {
  ContentionPolicy P;
  P.MinOps = static_cast<uint64_t>(get(ParamId::ContentionMinOps));
  P.Smoothing = get(ParamId::ContentionSmoothing);
  P.Shards = static_cast<size_t>(get(ParamId::ContentionShards));
  return P;
}
