//===- ParameterSpace.h - Typed tuner parameter space -----------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed parameter space the offline tuner searches (DESIGN.md §13):
/// every hand-tuned constant the paper's decision pipeline hides —
/// adaptive-switch thresholds (§3.2 Table 1), monitoring window geometry
/// (§4.3), selection-rule improvement thresholds (Table 4), evaluation
/// cadence, selection-store decay, and the concurrent tier's contention
/// knobs — described as a bounded, typed genome. This is the Darwinian
/// Data Structure Selection idea (Basios et al.) applied to the
/// *parameters* of the selection machinery rather than the collections.
///
/// A ParameterSet is one point of the space (a genome): a dense array of
/// doubles indexed by ParamId, always clamped to the per-parameter
/// bounds, with integer-typed parameters held at integral values. The
/// conversion accessors (thresholds(), contention(), ...) hand the typed
/// slices to the subsystems that consume them.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_TUNER_PARAMETERSPACE_H
#define CSWITCH_TUNER_PARAMETERSPACE_H

#include "collections/AdaptiveConfig.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cswitch {
namespace tuner {

/// Identity of one tunable parameter. The enumerator order is the dense
/// storage order of ParameterSet; artifacts are keyed by the stable
/// string names in parameterSpace() instead, so this enum may be
/// reordered/extended freely between releases.
enum class ParamId : unsigned {
  AdaptiveListThreshold, ///< AdaptiveList array->hash size (paper: 80).
  AdaptiveSetThreshold,  ///< AdaptiveSet array->hash size (paper: 40).
  AdaptiveMapThreshold,  ///< AdaptiveMap array->hash size (paper: 50).
  ContextWindow,         ///< Monitoring window size (paper: 100).
  ContextFinishedRatio,  ///< Finished ratio gating analysis (paper: 0.6).
  ContextWideRangeFactor, ///< Adaptive wide-range gate (§3.2).
  ContextWarmWindowFactor, ///< Warm-start window shrink.
  RuleTimeThreshold,     ///< Rtime improvement threshold (Table 4: 0.8).
  EngineEvalEveryOps,    ///< Replay evaluation cadence, ops.
  StoreDecay,            ///< Selection-store exponential decay.
  ContentionMinOps,      ///< Ops before the thread estimate is trusted.
  ContentionSmoothing,   ///< EWMA weight of the thread estimate.
  ContentionShards,      ///< Stripe count of sharded variants (0 = auto).
};

/// Number of tunable parameters (one per ParamId enumerator).
inline constexpr size_t NumTunableParams = 13;

/// Static description of one parameter: stable artifact name, bounds,
/// paper default, and whether values must be integral.
struct ParamInfo {
  ParamId Id;
  const char *Name; ///< Stable key used in `cswitch-tuning-v1` rows.
  double Min;
  double Max;
  double Default;
  bool Integer;
};

/// The full parameter table, indexed by ParamId.
const std::array<ParamInfo, NumTunableParams> &parameterSpace();

/// Looks a parameter up by its stable artifact name; nullptr when
/// unknown.
const ParamInfo *findParam(std::string_view Name);

/// Clamps \p Value into \p Info's bounds, rounding integer parameters
/// to the nearest integral value first.
double clampParam(const ParamInfo &Info, double Value);

/// One point of the parameter space (a tuner genome). Values are always
/// within bounds: every write path clamps.
class ParameterSet {
public:
  /// Initializes every parameter to its paper default.
  ParameterSet();

  double get(ParamId Id) const {
    return Values[static_cast<size_t>(Id)];
  }

  /// Sets \p Id to \p Value clamped into its bounds (integral for
  /// integer parameters).
  void set(ParamId Id, double Value);

  bool operator==(const ParameterSet &Other) const {
    return Values == Other.Values;
  }
  bool operator!=(const ParameterSet &Other) const {
    return !(*this == Other);
  }

  /// Raw genome storage (for hashing/memoization).
  const std::array<double, NumTunableParams> &values() const {
    return Values;
  }

  //===--------------------------------------------------------------===//
  // Typed slices for the consuming subsystems
  //===--------------------------------------------------------------===//

  /// Adaptive transition thresholds (collections/AdaptiveConfig).
  AdaptiveThresholds thresholds() const;

  /// Concurrent-tier contention policy (collections/AdaptiveConfig).
  ContentionPolicy contention() const;

  size_t windowSize() const {
    return static_cast<size_t>(get(ParamId::ContextWindow));
  }
  double finishedRatio() const { return get(ParamId::ContextFinishedRatio); }
  double wideRangeFactor() const {
    return get(ParamId::ContextWideRangeFactor);
  }
  double warmWindowFactor() const {
    return get(ParamId::ContextWarmWindowFactor);
  }
  double ruleTimeThreshold() const { return get(ParamId::RuleTimeThreshold); }
  uint64_t evalEveryOps() const {
    return static_cast<uint64_t>(get(ParamId::EngineEvalEveryOps));
  }
  double storeDecay() const { return get(ParamId::StoreDecay); }

private:
  std::array<double, NumTunableParams> Values;
};

} // namespace tuner
} // namespace cswitch

#endif // CSWITCH_TUNER_PARAMETERSPACE_H
