//===- TuningArtifact.h - Versioned tuned-config artifact -------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned `cswitch-tuning-v1` artifact: the winning parameter set
/// of an offline tuner run, plus the provenance needed to trust it (host
/// fingerprint, search seed/geometry, corpus digest, winner-vs-baseline
/// fitness). Same persistence discipline as `cswitch-model-v2`
/// (fleet/ModelArtifact.h): CRC-framed records, a total decoder that
/// rejects every malformed input without crashing, and crash-safe
/// tmp + fsync + rename installs.
///
/// Layout:
///
///   "cswitch-tuning-v1"            17-byte magic
///   varint   format version (1)
///   varint   header payload length
///   header   fingerprint, seed, generations, population, evaluations,
///            corpus digest, objective weights, winner/baseline fitness
///   u32      CRC-32 of the header payload
///   varint   row count (must equal NumTunableParams)
///   rows     { varint payload length | name, f64 value | u32 CRC }
///            in strictly ascending name order
///
/// The decoder is semantic, not just structural: rows must cover exactly
/// the known parameter space (unknown names, duplicates, gaps rejected),
/// every value must be finite, within the parameter's bounds, and
/// integral for integer-typed parameters. A decoded artifact therefore
/// always converts to a valid ParameterSet — a corrupt or hand-edited
/// file can never install a pathological configuration.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_TUNER_TUNINGARTIFACT_H
#define CSWITCH_TUNER_TUNINGARTIFACT_H

#include "tuner/ParameterSpace.h"

#include <string>
#include <string_view>
#include <vector>

namespace cswitch {
namespace tuner {

/// A tuned configuration with its provenance.
struct TuningArtifact {
  /// One tuned parameter (stable name from parameterSpace()).
  struct Row {
    std::string Name;
    double Value = 0.0;
  };

  /// "node/arch/cN" of the machine the tuner ran on
  /// (fleet::hostFingerprint). Informational: artifacts apply anywhere,
  /// but telemetry surfaces a foreign fingerprint.
  std::string HostFingerprint;
  /// Root seed of the evolutionary search.
  uint64_t Seed = 0;
  /// Generations the search actually ran (after early stop).
  uint64_t Generations = 0;
  /// Population size per generation.
  uint64_t Population = 0;
  /// Fitness evaluations performed (cache misses, not genomes).
  uint64_t Evaluations = 0;
  /// Digest of the trace corpus the fitness replayed ("crc32:XXXXXXXX"
  /// over the serialized traces) — ties the artifact to its workload.
  std::string CorpusDigest;
  /// Scalarization weights of the multi-objective fitness.
  double TimeWeight = 1.0;
  double AllocWeight = 0.25;
  /// Fitness of the winner and of the paper-default genome on the same
  /// corpus (lower is better; Winner <= Baseline by construction).
  double WinnerFitness = 0.0;
  double BaselineFitness = 0.0;
  /// The tuned parameters. Encoding canonicalizes to ascending name
  /// order regardless of this vector's order.
  std::vector<Row> Rows;
};

/// Serializes \p Artifact into the canonical `cswitch-tuning-v1` byte
/// string (rows name-sorted; byte-identical for equal artifacts).
std::string encodeTuningArtifact(const TuningArtifact &Artifact);

/// Total decoder: \returns true and fills \p Out on success; on any
/// malformed input returns false, resets \p Out, and describes the
/// problem in \p Error (when non-null). Never crashes on untrusted
/// bytes.
bool decodeTuningArtifact(std::string_view Bytes, TuningArtifact &Out,
                          std::string *Error = nullptr);

/// Atomically replaces \p Path with the serialized artifact
/// (tmp + fsync + rename; same discipline as writeModelArtifactToFile).
bool writeTuningArtifactToFile(const std::string &Path,
                               const TuningArtifact &Artifact,
                               std::string *Error = nullptr);

/// Reads and decodes \p Path (total: corrupt files report false).
bool readTuningArtifactFromFile(const std::string &Path, TuningArtifact &Out,
                                std::string *Error = nullptr);

/// Builds the artifact rows from \p Params (provenance fields are left
/// for the caller to fill).
TuningArtifact artifactFromParams(const ParameterSet &Params);

/// Converts decoded rows back into a ParameterSet. With an artifact
/// that came through decodeTuningArtifact this cannot fail; hand-built
/// artifacts with unknown names or wild values report false (and
/// \p Error) instead of installing garbage. Values are clamped into
/// bounds on the way in.
bool paramsFromArtifact(const TuningArtifact &Artifact, ParameterSet &Out,
                        std::string *Error = nullptr);

} // namespace tuner
} // namespace cswitch

#endif // CSWITCH_TUNER_TUNINGARTIFACT_H
