//===- ThresholdAnalyzer.h - Adaptive transition thresholds -----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the transition thresholds of the adaptive collections (paper
/// §3.2, Fig. 3, Table 1). Following the paper's method, the threshold is
/// the collection size for which the cost of transitioning to a hash
/// representation is surpassed by the penalty of performing the lookup
/// operation for every element on the array representation:
///
///   benefit(n) = [ n·(containsArray(n) − containsHash(n))
///                  − n·populateHash(n) ] / (n·populateHash(n))
///
/// benefit starts at −1 (pure transition cost, no savings) and crosses
/// zero at the optimal threshold — the curve of Fig. 3.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_MODEL_THRESHOLDANALYZER_H
#define CSWITCH_MODEL_THRESHOLDANALYZER_H

#include "collections/AdaptiveConfig.h"
#include "collections/Variants.h"
#include "model/CostModel.h"

#include <vector>

namespace cswitch {

/// One point of the benefit-versus-size curve (Fig. 3).
struct ThresholdCurvePoint {
  size_t Size;
  double Benefit;
};

/// Derives adaptive transition thresholds from a performance model.
class ThresholdAnalyzer {
public:
  explicit ThresholdAnalyzer(const PerformanceModel &Model) : Model(Model) {}

  /// Benefit of the array → hash transition at size \p Size for the given
  /// abstraction (the y-value of Fig. 3).
  double benefitAt(AbstractionKind Kind, size_t Size) const;

  /// The benefit curve for sizes 1..\p MaxSize (Fig. 3 data).
  std::vector<ThresholdCurvePoint> benefitCurve(AbstractionKind Kind,
                                                size_t MaxSize) const;

  /// The smallest size whose benefit is non-negative; returns \p MaxSize
  /// if the transition never pays off within the scanned range.
  size_t computeThreshold(AbstractionKind Kind,
                          size_t MaxSize = 1024) const;

  /// Thresholds for all three abstractions (Table 1), ready to install
  /// into AdaptiveConfig.
  AdaptiveThresholds computeAll(size_t MaxSize = 1024) const;

private:
  /// The array-representation and hash-representation variants the
  /// adaptive collection of \p Kind switches between.
  static VariantId arrayVariantOf(AbstractionKind Kind);
  static VariantId hashVariantOf(AbstractionKind Kind);

  const PerformanceModel &Model;
};

} // namespace cswitch

#endif // CSWITCH_MODEL_THRESHOLDANALYZER_H
