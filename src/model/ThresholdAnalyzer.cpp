//===- ThresholdAnalyzer.cpp - Adaptive transition thresholds ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//

#include "model/ThresholdAnalyzer.h"

#include <cassert>

using namespace cswitch;

VariantId ThresholdAnalyzer::arrayVariantOf(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    return VariantId::of(ListVariant::ArrayList);
  case AbstractionKind::Set:
    return VariantId::of(SetVariant::ArraySet);
  case AbstractionKind::Map:
    return VariantId::of(MapVariant::ArrayMap);
  }
  assert(false && "unknown abstraction kind");
  return VariantId::of(ListVariant::ArrayList);
}

VariantId ThresholdAnalyzer::hashVariantOf(AbstractionKind Kind) {
  switch (Kind) {
  case AbstractionKind::List:
    // AdaptiveList transitions array -> hash-array (paper Table 1).
    return VariantId::of(ListVariant::HashArrayList);
  case AbstractionKind::Set:
    // AdaptiveSet transitions array -> openhash.
    return VariantId::of(SetVariant::OpenHashSet);
  case AbstractionKind::Map:
    return VariantId::of(MapVariant::OpenHashMap);
  }
  assert(false && "unknown abstraction kind");
  return VariantId::of(ListVariant::HashArrayList);
}

double ThresholdAnalyzer::benefitAt(AbstractionKind Kind,
                                    size_t Size) const {
  VariantId Array = arrayVariantOf(Kind);
  VariantId Hash = hashVariantOf(Kind);
  double N = static_cast<double>(Size);

  double LookupPenalty =
      N * (Model.operationCost(Array, OperationKind::Contains,
                               CostDimension::Time, N) -
           Model.operationCost(Hash, OperationKind::Contains,
                               CostDimension::Time, N));
  double TransitionCost =
      N * Model.operationCost(Hash, OperationKind::Populate,
                              CostDimension::Time, N);
  if (TransitionCost <= 0.0)
    return 0.0;
  return (LookupPenalty - TransitionCost) / TransitionCost;
}

std::vector<ThresholdCurvePoint>
ThresholdAnalyzer::benefitCurve(AbstractionKind Kind, size_t MaxSize) const {
  std::vector<ThresholdCurvePoint> Curve;
  Curve.reserve(MaxSize);
  for (size_t Size = 1; Size <= MaxSize; ++Size)
    Curve.push_back({Size, benefitAt(Kind, Size)});
  return Curve;
}

size_t ThresholdAnalyzer::computeThreshold(AbstractionKind Kind,
                                           size_t MaxSize) const {
  for (size_t Size = 1; Size <= MaxSize; ++Size)
    if (benefitAt(Kind, Size) >= 0.0)
      return Size;
  return MaxSize;
}

AdaptiveThresholds ThresholdAnalyzer::computeAll(size_t MaxSize) const {
  AdaptiveThresholds T;
  T.List = computeThreshold(AbstractionKind::List, MaxSize);
  T.Set = computeThreshold(AbstractionKind::Set, MaxSize);
  T.Map = computeThreshold(AbstractionKind::Map, MaxSize);
  return T;
}
