//===- EnergyModel.h - Derived energy cost dimension ------------*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The energy cost dimension — the paper's §7 future-work item ("expand
/// the performance model ... to other cost dimensions such as energy
/// usage"), building on the energy-profiling line of work the paper cites
/// (Hasan et al., ICSE'16).
///
/// Substitution note (DESIGN.md §1): without RAPL or other hardware
/// energy counters, the energy model is *derived* from the measured
/// time and allocation models with a linear power model
///
///   energy_op,V(s) = P_core · time_op,V(s) + E_byte · alloc_op,V(s)
///
/// which captures the first-order physics — active-core power burns
/// joules proportional to runtime, and memory traffic costs a roughly
/// fixed energy per byte moved. The default coefficients correspond to
/// a ~3.5 W active core and ~20 pJ per allocated byte (DRAM write +
/// allocator bookkeeping), so energy mostly tracks time but penalizes
/// allocation-churn-heavy variants — exactly the trade-off an Renergy
/// rule must navigate differently from Rtime.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_MODEL_ENERGYMODEL_H
#define CSWITCH_MODEL_ENERGYMODEL_H

#include "model/CostModel.h"

namespace cswitch {

/// Coefficients of the linear energy model.
struct EnergyCoefficients {
  /// Nanojoules per nanosecond of execution (= watts of active power).
  double NanojoulesPerNanosecond = 3.5;
  /// Nanojoules per allocated byte (memory traffic + allocator cost).
  double NanojoulesPerByte = 0.02;
};

/// Fills the Energy dimension of \p Model from its Time and Alloc
/// dimensions: energy = P·time + E·alloc for every (variant, operation).
/// Existing energy polynomials are overwritten; triples with neither a
/// time nor an alloc model stay empty.
void deriveEnergyModel(PerformanceModel &Model,
                       const EnergyCoefficients &Coefficients = {});

} // namespace cswitch

#endif // CSWITCH_MODEL_ENERGYMODEL_H
