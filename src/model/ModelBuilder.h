//===- ModelBuilder.h - Benchmark-driven model construction -----*- C++ -*-===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The performance model builder (paper §4.1): runs a factorial plan of
/// microbenchmarks — every collection variant × critical operation ×
/// collection size, with uniformly distributed 64-bit integer data
/// (paper Table 3) — measuring nanoseconds and allocated bytes per
/// operation, and fits cubic polynomials by least squares. The resulting
/// PerformanceModel is what allocation contexts consult at runtime.
///
/// Building the full model takes seconds to minutes depending on the
/// options; production deployments run it once per target machine via
/// `bench/model_builder` and persist the result.
///
//===----------------------------------------------------------------------===//

#ifndef CSWITCH_MODEL_MODELBUILDER_H
#define CSWITCH_MODEL_MODELBUILDER_H

#include "model/CostModel.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cswitch {

/// Options of the factorial measurement plan.
struct ModelBuildOptions {
  /// Collection sizes to measure (paper Table 3: [10, 50, 100, .., 1000]).
  std::vector<size_t> Sizes;
  /// Unmeasured executions per (variant, op, size) point.
  size_t WarmupIterations = 2;
  /// Measured executions per point; each contributes one fit sample.
  size_t MeasuredIterations = 8;
  /// Minimum wall time of one measured sample, for clock resolution.
  uint64_t MinSampleNanos = 200000;
  /// Degree of the fitted cost polynomials (paper: 3).
  size_t PolynomialDegree = 3;
  /// Seed of all generated workloads.
  uint64_t Seed = 42;

  /// The paper's plan: sizes {10, 50, 100, 150, ..., 1000}.
  static std::vector<size_t> paperSizes();

  /// A reduced plan for tests: fewer sizes and iterations.
  static ModelBuildOptions quick();
};

/// Builds a PerformanceModel by benchmarking the variants on this machine.
class ModelBuilder {
public:
  explicit ModelBuilder(ModelBuildOptions Options = {});

  /// Benchmarks every abstraction and returns the fitted model.
  PerformanceModel build();

  /// Benchmarks only the named abstraction into \p Model.
  void buildListModels(PerformanceModel &Model);
  void buildSetModels(PerformanceModel &Model);
  void buildMapModels(PerformanceModel &Model);

  /// Progress callback: invoked with a human-readable line per measured
  /// (variant, operation) pair. Off by default.
  void setProgressCallback(std::function<void(const std::string &)> Cb) {
    Progress = std::move(Cb);
  }

private:
  void fitAndStore(PerformanceModel &Model, VariantId Variant,
                   OperationKind Op, const std::vector<double> &Sizes,
                   const std::vector<double> &TimeSamples,
                   const std::vector<double> &AllocSamples);
  void report(const std::string &Line);

  ModelBuildOptions Options;
  std::function<void(const std::string &)> Progress;
};

} // namespace cswitch

#endif // CSWITCH_MODEL_MODELBUILDER_H
