//===- DefaultModel.cpp - Built-in fallback performance model ------------===//
//
// Part of the CollectionSwitch C++ reproduction (CGO'18, Costa & Andrzejak).
//
//===----------------------------------------------------------------------===//
//
// The constants below are nanoseconds (time dimension) and bytes (alloc
// dimension) per operation for 8-byte elements, expressed as {c0, c1}
// polynomials of the collection size. They were chosen to match the
// measured shape on a commodity x86-64 core and — more importantly — to
// preserve the *orderings* the selection rules depend on:
//
//  * linear scans cost ~0.5 ns/element (contiguous, predictable),
//  * pointer-chasing variants pay ~2 ns/element and ~15 ns/lookup,
//  * open addressing at load 1/2 is the fastest O(1) lookup,
//  * compact open addressing saves bytes but pays ~40% on lookups,
//  * node-based variants allocate the most bytes per insertion.
//
//===----------------------------------------------------------------------===//

#include "model/DefaultModel.h"

#include "model/EnergyModel.h"

using namespace cswitch;

namespace {

/// One row of the default cost table.
struct CostRow {
  OperationKind Op;
  double TimeC0, TimeC1; ///< ns = TimeC0 + TimeC1 * size
  double AllocBytes;     ///< bytes allocated per operation (size-free)
};

void setRows(PerformanceModel &Model, VariantId Variant,
             std::initializer_list<CostRow> Rows) {
  for (const CostRow &Row : Rows) {
    Model.setCost(Variant, Row.Op, CostDimension::Time,
                  Polynomial({Row.TimeC0, Row.TimeC1}));
    Model.setCost(Variant, Row.Op, CostDimension::Alloc,
                  Polynomial({Row.AllocBytes}));
  }
}

/// Installs the contention polynomial {-Slope, Slope} — i.e.
/// Slope * (threads - 1) extra nanoseconds per operation, clamped to 0
/// at one thread by evaluateNonNegative — for each listed operation.
void setContention(PerformanceModel &Model, VariantId Variant,
                   std::initializer_list<OperationKind> Ops, double Slope) {
  for (OperationKind Op : Ops)
    Model.setCost(Variant, Op, CostDimension::Contention,
                  Polynomial({-Slope, Slope}));
}

} // namespace

PerformanceModel cswitch::defaultPerformanceModel() {
  using OK = OperationKind;
  PerformanceModel Model;

  // --- Lists -------------------------------------------------------------
  setRows(Model, VariantId::of(ListVariant::ArrayList),
          {{OK::Populate, 4, 0, 24},
           {OK::Contains, 2, 0.5, 0},
           {OK::Iterate, 4, 0.5, 0},
           {OK::IndexAccess, 2, 0, 0},
           {OK::Middle, 12, 0.15, 0},
           {OK::Remove, 10, 0.5, 0}});
  setRows(Model, VariantId::of(ListVariant::LinkedList),
          {{OK::Populate, 18, 0, 32},
           {OK::Contains, 4, 1.8, 0},
           {OK::Iterate, 4, 2.0, 0},
           {OK::IndexAccess, 4, 0.9, 0},
           {OK::Middle, 6, 0.9, 0},
           {OK::Remove, 8, 1.8, 0}});
  setRows(Model, VariantId::of(ListVariant::HashArrayList),
          {{OK::Populate, 30, 0, 80},
           {OK::Contains, 10, 0, 0},
           {OK::Iterate, 4, 0.5, 0},
           {OK::IndexAccess, 2, 0, 0},
           {OK::Middle, 40, 0.15, 0},
           // Remove checks the bag, then still scans the array and
           // maintains both structures — strictly slower than ArrayList.
           {OK::Remove, 30, 0.5, 0}});
  setRows(Model, VariantId::of(ListVariant::AdaptiveList),
          {{OK::Populate, 10, 0, 40},
           {OK::Contains, 12, 0, 0},
           {OK::Iterate, 4, 0.55, 0},
           {OK::IndexAccess, 2, 0, 0},
           {OK::Middle, 14, 0.15, 0},
           {OK::Remove, 12, 0.4, 0}});

  // --- Sets ----------------------------------------------------------------
  setRows(Model, VariantId::of(SetVariant::ChainedHashSet),
          {{OK::Populate, 35, 0, 60},
           {OK::Contains, 14, 0, 0},
           {OK::Iterate, 8, 1.6, 0},
           {OK::Remove, 16, 0, 0}});
  setRows(Model, VariantId::of(SetVariant::OpenHashSet),
          {{OK::Populate, 18, 0, 40},
           {OK::Contains, 7, 0, 0},
           {OK::Iterate, 4, 0.9, 0},
           {OK::Remove, 9, 0, 0}});
  setRows(Model, VariantId::of(SetVariant::LinkedHashSet),
          {{OK::Populate, 40, 0, 80},
           {OK::Contains, 14, 0, 0},
           {OK::Iterate, 4, 1.2, 0},
           {OK::Remove, 18, 0, 0}});
  setRows(Model, VariantId::of(SetVariant::ArraySet),
          // add() performs a duplicate check, hence the linear term.
          {{OK::Populate, 4, 0.5, 18},
           {OK::Contains, 2, 0.5, 0},
           {OK::Iterate, 3, 0.5, 0},
           {OK::Remove, 6, 0.5, 0}});
  setRows(Model, VariantId::of(SetVariant::CompactHashSet),
          {{OK::Populate, 22, 0, 22},
           {OK::Contains, 10, 0, 0},
           {OK::Iterate, 4, 0.8, 0},
           {OK::Remove, 12, 0, 0}});
  setRows(Model, VariantId::of(SetVariant::AdaptiveSet),
          {{OK::Populate, 16, 0, 30},
           {OK::Contains, 10, 0, 0},
           {OK::Iterate, 4, 0.8, 0},
           {OK::Remove, 11, 0, 0}});
  // The log-n costs of the tree variants are approximated by a shallow
  // linear term over the modelled 10..1000 range.
  setRows(Model, VariantId::of(SetVariant::TreeSet),
          {{OK::Populate, 40, 0.02, 40},
           {OK::Contains, 14, 0.02, 0},
           {OK::Iterate, 6, 2.2, 0},
           {OK::Remove, 18, 0.02, 0}});
  setRows(Model, VariantId::of(SetVariant::SortedArraySet),
          {{OK::Populate, 8, 0.12, 18},
           {OK::Contains, 6, 0.01, 0},
           {OK::Iterate, 3, 0.5, 0},
           {OK::Remove, 8, 0.12, 0}});

  // --- Maps ----------------------------------------------------------------
  setRows(Model, VariantId::of(MapVariant::ChainedHashMap),
          {{OK::Populate, 38, 0, 70},
           {OK::Contains, 15, 0, 0},
           {OK::Iterate, 8, 1.8, 0},
           {OK::Remove, 17, 0, 0}});
  setRows(Model, VariantId::of(MapVariant::OpenHashMap),
          {{OK::Populate, 20, 0, 60},
           {OK::Contains, 8, 0, 0},
           {OK::Iterate, 4, 1.1, 0},
           {OK::Remove, 10, 0, 0}});
  setRows(Model, VariantId::of(MapVariant::LinkedHashMap),
          {{OK::Populate, 44, 0, 90},
           {OK::Contains, 15, 0, 0},
           {OK::Iterate, 4, 1.4, 0},
           {OK::Remove, 19, 0, 0}});
  setRows(Model, VariantId::of(MapVariant::ArrayMap),
          {{OK::Populate, 4, 0.5, 34},
           {OK::Contains, 2, 0.5, 0},
           {OK::Iterate, 3, 0.7, 0},
           {OK::Remove, 7, 0.5, 0}});
  setRows(Model, VariantId::of(MapVariant::CompactHashMap),
          {{OK::Populate, 25, 0, 34},
           {OK::Contains, 11, 0, 0},
           {OK::Iterate, 4, 1.0, 0},
           {OK::Remove, 13, 0, 0}});
  setRows(Model, VariantId::of(MapVariant::AdaptiveMap),
          {{OK::Populate, 18, 0, 45},
           {OK::Contains, 11, 0, 0},
           {OK::Iterate, 4, 1.0, 0},
           {OK::Remove, 12, 0, 0}});
  setRows(Model, VariantId::of(MapVariant::TreeMap),
          {{OK::Populate, 44, 0.02, 48},
           {OK::Contains, 15, 0.02, 0},
           {OK::Iterate, 6, 2.4, 0},
           {OK::Remove, 20, 0.02, 0}});
  setRows(Model, VariantId::of(MapVariant::SortedArrayMap),
          {{OK::Populate, 10, 0.12, 34},
           {OK::Contains, 7, 0.01, 0},
           {OK::Iterate, 3, 0.7, 0},
           {OK::Remove, 9, 0.12, 0}});

  // --- Concurrent tier (DESIGN.md §11) ------------------------------------
  //
  // Base time rows are the sequential analogue plus the uncontended lock
  // overhead (~4 ns for one mutex, ~9 ns for striped: shard dispatch +
  // lock). The contention dimension adds Slope * (threads - 1) ns per
  // operation on top: a single mutex convoys (~55 ns/extra thread) while
  // a striped table only collides with probability ~1/shards (~4 ns).
  // Under the ratio rule (0.8) this makes the mutex strategy win at one
  // thread and lose to striping from two threads on.

  // MutexList = ArrayList + one lock acquisition per operation.
  setRows(Model, VariantId::of(ListVariant::MutexList),
          {{OK::Populate, 8, 0, 24},
           {OK::Contains, 6, 0.5, 0},
           {OK::Iterate, 8, 0.5, 0},
           {OK::IndexAccess, 6, 0, 0},
           {OK::Middle, 16, 0.15, 0},
           {OK::Remove, 14, 0.5, 0}});
  setContention(Model, VariantId::of(ListVariant::MutexList),
                {OK::Populate, OK::Contains, OK::Iterate, OK::IndexAccess,
                 OK::Middle, OK::Remove},
                55);

  // SnapshotList: lock-free reads at sequential-array speed; every
  // write copies the whole array (linear time and bytes). Writers still
  // serialize, but copying dominates, so their contention slope is
  // lower than a fully convoying mutex; reads never contend.
  setRows(Model, VariantId::of(ListVariant::SnapshotList),
          {{OK::Populate, 30, 0.9, 0},
           {OK::Contains, 2, 0.5, 0},
           {OK::Iterate, 4, 0.5, 0},
           {OK::IndexAccess, 2, 0, 0},
           {OK::Middle, 30, 0.9, 0},
           {OK::Remove, 30, 0.9, 0}});
  for (OperationKind Op : {OK::Populate, OK::Middle, OK::Remove})
    Model.setCost(VariantId::of(ListVariant::SnapshotList), Op,
                  CostDimension::Alloc, Polynomial({40, 8}));
  setContention(Model, VariantId::of(ListVariant::SnapshotList),
                {OK::Populate, OK::Middle, OK::Remove}, 30);

  // MutexHashSet / StripedHashSet over OpenHashSet.
  setRows(Model, VariantId::of(SetVariant::MutexHashSet),
          {{OK::Populate, 22, 0, 40},
           {OK::Contains, 11, 0, 0},
           {OK::Iterate, 8, 0.9, 0},
           {OK::Remove, 13, 0, 0}});
  setContention(Model, VariantId::of(SetVariant::MutexHashSet),
                {OK::Populate, OK::Contains, OK::Iterate, OK::Remove}, 55);
  setRows(Model, VariantId::of(SetVariant::StripedHashSet),
          {{OK::Populate, 27, 0, 52},
           {OK::Contains, 16, 0, 0},
           {OK::Iterate, 13, 1.0, 0},
           {OK::Remove, 18, 0, 0}});
  setContention(Model, VariantId::of(SetVariant::StripedHashSet),
                {OK::Populate, OK::Contains, OK::Iterate, OK::Remove}, 4);

  // MutexHashMap / ShardedHashMap over OpenHashMap.
  setRows(Model, VariantId::of(MapVariant::MutexHashMap),
          {{OK::Populate, 24, 0, 60},
           {OK::Contains, 12, 0, 0},
           {OK::Iterate, 8, 1.1, 0},
           {OK::Remove, 14, 0, 0}});
  setContention(Model, VariantId::of(MapVariant::MutexHashMap),
                {OK::Populate, OK::Contains, OK::Iterate, OK::Remove}, 55);
  setRows(Model, VariantId::of(MapVariant::ShardedHashMap),
          {{OK::Populate, 29, 0, 72},
           {OK::Contains, 17, 0, 0},
           {OK::Iterate, 13, 1.2, 0},
           {OK::Remove, 19, 0, 0}});
  setContention(Model, VariantId::of(MapVariant::ShardedHashMap),
                {OK::Populate, OK::Contains, OK::Iterate, OK::Remove}, 4);

  // The energy dimension (paper §7 future work) is derived from time
  // and allocation; see EnergyModel.h.
  deriveEnergyModel(Model);
  return Model;
}

void cswitch::augmentConcurrentCoverage(PerformanceModel &Model) {
  PerformanceModel Defaults = defaultPerformanceModel();
  for (size_t A = 0; A != NumAbstractionKinds; ++A) {
    auto Kind = static_cast<AbstractionKind>(A);
    for (unsigned V = firstConcurrentVariant(Kind),
                  E = static_cast<unsigned>(numVariantsOf(Kind));
         V != E; ++V) {
      VariantId Id{Kind, V};
      bool CopyAll = !Model.hasVariant(Id);
      for (OperationKind Op : AllOperationKinds) {
        for (CostDimension Dim : AllCostDimensions) {
          // Contention cells are analytic, never measured; backfill them
          // even on variants the loaded model otherwise covers.
          if (!CopyAll && Dim != CostDimension::Contention)
            continue;
          if (!Model.cost(Id, Op, Dim).coefficients().empty())
            continue;
          const Polynomial &P = Defaults.cost(Id, Op, Dim);
          if (!P.coefficients().empty())
            Model.setCost(Id, Op, Dim, P);
        }
      }
    }
  }
}
